"""Latency accounting with the paper's four-way breakdown.

Figure 9 of the paper decomposes per-write latency into:

* ``scsi``      -- SCSI command processing overhead inside the drive,
* ``transfer``  -- time moving bits to/from the media once positioned,
* ``locate``    -- seek + rotational delay + head-switch time,
* ``other``     -- host processing (system call, file system code, driver).

:class:`Breakdown` is one operation's decomposition; :class:`LatencyRecorder`
aggregates many operations and can reproduce both the average-latency numbers
(Figures 8, 10, 11) and the percentage breakdown bars (Figure 9).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional

#: Component names, in the order the paper stacks them in Figure 9.
COMPONENTS = ("scsi", "transfer", "locate", "other")


class Breakdown:
    """Per-operation latency decomposition (seconds per component)."""

    __slots__ = ("scsi", "transfer", "locate", "other")

    def __init__(
        self,
        scsi: float = 0.0,
        transfer: float = 0.0,
        locate: float = 0.0,
        other: float = 0.0,
    ) -> None:
        self.scsi = scsi
        self.transfer = transfer
        self.locate = locate
        self.other = other

    @property
    def total(self) -> float:
        return self.scsi + self.transfer + self.locate + self.other

    def add(self, other: "Breakdown") -> "Breakdown":
        """Accumulate another breakdown into this one (in place)."""
        self.scsi += other.scsi
        self.transfer += other.transfer
        self.locate += other.locate
        self.other += other.other
        return self

    def charge(self, component: str, seconds: float) -> None:
        """Add ``seconds`` to one named component."""
        if component not in COMPONENTS:
            raise KeyError(f"unknown latency component {component!r}")
        if seconds < 0.0:
            raise ValueError("latency charges must be non-negative")
        setattr(self, component, getattr(self, component) + seconds)

    def as_dict(self) -> Dict[str, float]:
        return {name: getattr(self, name) for name in COMPONENTS}

    def copy(self) -> "Breakdown":
        return Breakdown(self.scsi, self.transfer, self.locate, self.other)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Breakdown):
            return NotImplemented
        return all(
            getattr(self, name) == getattr(other, name)
            for name in COMPONENTS
        )

    # Breakdowns are mutable accumulators; keep them unhashable so they
    # are never silently used as set members or dict keys.
    __hash__ = None  # type: ignore[assignment]

    def isclose(self, other: "Breakdown", rel_tol: float = 1e-9,
                abs_tol: float = 1e-12) -> bool:
        """Component-wise :func:`math.isclose` (for accumulated sums whose
        float addition order may differ)."""
        return all(
            math.isclose(
                getattr(self, name), getattr(other, name),
                rel_tol=rel_tol, abs_tol=abs_tol,
            )
            for name in COMPONENTS
        )

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={getattr(self, k) * 1e3:.3f}ms" for k in COMPONENTS)
        return f"Breakdown({parts})"


class LatencyRecorder:
    """Aggregates operation latencies and their component breakdowns."""

    def __init__(self) -> None:
        self._totals: List[float] = []
        self._sum = Breakdown()

    def record(self, breakdown: Breakdown) -> None:
        self._totals.append(breakdown.total)
        self._sum.add(breakdown)

    def record_parts(self, **parts: float) -> None:
        """Convenience: record a breakdown given as keyword components."""
        self.record(Breakdown(**parts))

    @property
    def count(self) -> int:
        return len(self._totals)

    @property
    def total_time(self) -> float:
        return self._sum.total

    def mean(self) -> float:
        """Mean per-operation latency in seconds (0.0 when empty)."""
        if not self._totals:
            return 0.0
        return self._sum.total / len(self._totals)

    def percentile(self, fraction: float) -> float:
        """Latency at ``fraction`` in [0, 1] (nearest-rank)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("percentile fraction must lie in [0, 1]")
        if not self._totals:
            return 0.0
        ordered = sorted(self._totals)
        rank = min(len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1))
        return ordered[rank]

    def component_totals(self) -> Dict[str, float]:
        """Total seconds spent in each component."""
        return self._sum.as_dict()

    def component_fractions(self) -> Dict[str, float]:
        """Each component as a fraction of total latency (Figure 9 bars)."""
        total = self._sum.total
        if total <= 0.0:
            return {name: 0.0 for name in COMPONENTS}
        return {name: getattr(self._sum, name) / total for name in COMPONENTS}

    def merge(self, others: Iterable["LatencyRecorder"]) -> "LatencyRecorder":
        """Fold other recorders' samples into this one (in place)."""
        for other in others:
            self._totals.extend(other._totals)
            self._sum.add(other._sum)
        return self

    def reset(self) -> None:
        self._totals.clear()
        self._sum = Breakdown()

    def summary(self, label: Optional[str] = None) -> str:
        """One-line human-readable summary, latencies in milliseconds."""
        prefix = f"{label}: " if label else ""
        fractions = self.component_fractions()
        parts = " ".join(f"{k}={v * 100:.0f}%" for k, v in fractions.items())
        return (
            f"{prefix}n={self.count} mean={self.mean() * 1e3:.3f}ms "
            f"p95={self.percentile(0.95) * 1e3:.3f}ms [{parts}]"
        )
