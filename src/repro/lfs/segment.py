"""Segments: the summary-block format and the segment writer.

Every segment starts with a summary block describing the blocks that follow
-- (kind, inode number, file block index) per slot -- plus a monotonically
increasing flush sequence number.  Summaries serve two masters: the cleaner
(deciding which blocks of a victim segment are live) and crash recovery
(rolling forward from a checkpoint).

The writer implements the LLD's partial-segment semantics (Section 4.4):
a ``sync`` with the segment filled above the *partial segment threshold*
(75 % in the experiments) flushes it as if it were full and moves on; below
the threshold, the filled prefix is written but the in-memory copy is
retained to receive more writes, with only the delta (plus the updated
summary) written on the next sync.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.blockdev.interface import BlockDevice
from repro.lfs.layout import LFSLayout
from repro.sim.stats import Breakdown


class BlockKind:
    DATA = 1
    INODE_BLOCK = 2
    INDIRECT = 3

    #: file-block codes for indirect blocks (stored in the summary's fblk
    #: field): -1 single indirect, -2 double indirect root, -(3+i) the i-th
    #: level-1 block under the double indirect root.
    SINGLE_INDIRECT = -1
    DOUBLE_INDIRECT = -2

    @staticmethod
    def level1(index: int) -> int:
        return -(3 + index)


_SUM_HEADER = struct.Struct("<8sQIId")
_SUM_ENTRY = struct.Struct("<Iiq")
_SUM_MAGIC = b"LFSSUMM1"


@dataclass
class SummaryEntry:
    kind: int
    inum: int
    fblk: int  # file block index, or a BlockKind indirect code


@dataclass
class SegmentSummary:
    """Parsed summary block."""

    seqno: int
    timestamp: float
    entries: List[SummaryEntry] = field(default_factory=list)

    def pack(self, block_size: int) -> bytes:
        header = _SUM_HEADER.pack(
            _SUM_MAGIC, self.seqno, len(self.entries), 0, self.timestamp
        )
        body = b"".join(
            _SUM_ENTRY.pack(e.kind, e.inum, e.fblk) for e in self.entries
        )
        raw = header + body
        if len(raw) > block_size:
            raise ValueError("summary does not fit in one block")
        return raw + bytes(block_size - len(raw))

    @classmethod
    def unpack(cls, raw: bytes) -> Optional["SegmentSummary"]:
        if len(raw) < _SUM_HEADER.size:
            return None
        magic, seqno, count, _pad, ts = _SUM_HEADER.unpack(
            raw[: _SUM_HEADER.size]
        )
        if magic != _SUM_MAGIC:
            return None
        entries = []
        offset = _SUM_HEADER.size
        for _ in range(count):
            kind, inum, fblk = _SUM_ENTRY.unpack(
                raw[offset : offset + _SUM_ENTRY.size]
            )
            entries.append(SummaryEntry(kind, inum, fblk))
            offset += _SUM_ENTRY.size
        return cls(seqno=seqno, timestamp=ts, entries=entries)


class SegmentWriter:
    """Accumulates dirty blocks into the current segment and writes them.

    ``pick_free_segment`` is supplied by the owner (it consults the segment
    usage table, possibly running the cleaner first).
    """

    def __init__(
        self,
        device: BlockDevice,
        layout: LFSLayout,
        pick_free_segment: Callable[[], int],
        partial_threshold: float = 0.75,
        now: Callable[[], float] = lambda: 0.0,
    ) -> None:
        if not 0.0 < partial_threshold <= 1.0:
            raise ValueError("partial threshold must lie in (0, 1]")
        self.device = device
        self.layout = layout
        self.pick_free_segment = pick_free_segment
        self.partial_threshold = partial_threshold
        self.now = now
        self.current_segment: Optional[int] = None
        self._staged: List[Tuple[SummaryEntry, bytes]] = []
        self._written_prefix = 0  # staged blocks already on disk
        self.flush_seqno = 0
        self.segments_written = 0
        self.partial_flushes = 0

    # ------------------------------------------------------------------

    @property
    def staged_blocks(self) -> int:
        return len(self._staged)

    @property
    def fill_fraction(self) -> float:
        return len(self._staged) / self.layout.data_blocks_per_segment

    def room(self) -> int:
        return self.layout.data_blocks_per_segment - len(self._staged)

    def stage(
        self, kind: int, inum: int, fblk: int, data: bytes
    ) -> Tuple[int, Breakdown]:
        """Add one block to the current segment; returns its log address.

        May write out the (now full) segment as a side effect.
        """
        breakdown = Breakdown()
        if len(data) != self.layout.block_size:
            raise ValueError("staged blocks must be exactly one block")
        if self.current_segment is None:
            chosen = self.pick_free_segment()
            if self.current_segment is None:
                # pick_free_segment may clean, which stages blocks and can
                # open (and even retire) segments re-entrantly; only adopt
                # our choice when no segment was opened underneath us.
                self.current_segment = chosen
        address = (
            self.layout.segment_start(self.current_segment)
            + 1
            + len(self._staged)
        )
        self._staged.append((SummaryEntry(kind, inum, fblk), data))
        if self.room() == 0:
            breakdown.add(self.finish_segment())
        return address, breakdown

    def staged_data(self, address: int) -> Optional[bytes]:
        """Contents of a staged-but-unretired block, if ``address`` is in
        the current segment's buffer.

        Addresses are handed out at stage time, before the media write, so
        readers must consult this buffer or they would see stale disk
        contents.
        """
        if self.current_segment is None:
            return None
        start = self.layout.segment_start(self.current_segment) + 1
        index = address - start
        if 0 <= index < len(self._staged):
            return self._staged[index][1]
        return None

    # ------------------------------------------------------------------

    def _summary(self) -> SegmentSummary:
        return SegmentSummary(
            seqno=self.flush_seqno,
            timestamp=self.now(),
            entries=[entry for entry, _data in self._staged],
        )

    def finish_segment(self) -> Breakdown:
        """Write out everything staged and retire the segment."""
        breakdown = Breakdown()
        if self.current_segment is None or not self._staged:
            return breakdown
        self.flush_seqno += 1
        start = self.layout.segment_start(self.current_segment)
        payload = self._summary().pack(self.layout.block_size) + b"".join(
            data for _entry, data in self._staged
        )
        breakdown.add(
            self.device.write_blocks(start, 1 + len(self._staged), payload)
        )
        self._staged.clear()
        self._written_prefix = 0
        self.current_segment = None
        self.segments_written += 1
        return breakdown

    def sync(self) -> Breakdown:
        """Apply the partial-segment-threshold policy to a sync request."""
        breakdown = Breakdown()
        if self.current_segment is None or not self._staged:
            return breakdown
        if self.fill_fraction >= self.partial_threshold:
            return self.finish_segment()
        # Partial flush: updated summary plus the not-yet-written delta.
        self.flush_seqno += 1
        self.partial_flushes += 1
        start = self.layout.segment_start(self.current_segment)
        breakdown.add(
            self.device.write_block(
                start, self._summary().pack(self.layout.block_size)
            )
        )
        delta = self._staged[self._written_prefix :]
        if delta:
            first = start + 1 + self._written_prefix
            payload = b"".join(data for _entry, data in delta)
            breakdown.add(
                self.device.write_blocks(first, len(delta), payload)
            )
            self._written_prefix = len(self._staged)
        return breakdown
