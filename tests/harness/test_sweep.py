"""Determinism and caching contract of the parallel sweep engine.

The load-bearing guarantee: for every experiment, ``jobs=4`` produces
*exactly* the same structure as ``jobs=1``, and a second run against a
warm cache returns identical values without a single executor
submission.  (Point functions derive all randomness from their explicit
seeds, so neither process boundaries nor replay may change a digit.)
"""

import json

import pytest

from repro.harness import experiments, sweep
from repro.harness.cache import ResultCache
from repro.harness.sweep import (
    DroppedPointWarning,
    SweepPoint,
    run_sweep,
    sweep_values,
)

# Tiny-scale kwargs per experiment: enough points to exercise the grid,
# small enough workloads to keep the suite quick.
EXPERIMENTS = {
    "figure1": dict(fractions=[0.2, 0.7], trials=40),
    "figure2": dict(thresholds=[0.1, 0.6], trials=6),
    "figure6": dict(num_files=60),
    "figure7": dict(file_mb=1),
    "figure8": dict(
        file_mbs=[4, 17], updates=30, warmup=10,
        lfs_updates=200, lfs_warmup=50,
    ),
    "table2": dict(utilization=0.4, updates=20, warmup=5),
    "figure10": dict(
        burst_kbs=[128], idle_seconds=[0.0, 0.5], bursts=2,
        utilization=0.4,
    ),
    "figure11": dict(
        burst_kbs=[512], idle_seconds=[0.0, 0.1], bursts=2,
        utilization=0.4,
    ),
}


def canon(value) -> str:
    return json.dumps(value, sort_keys=True)


@pytest.mark.parametrize("name", sorted(EXPERIMENTS))
def test_parallel_and_cached_runs_match_serial(name, tmp_path):
    """jobs=4 == jobs=1, and a warm-cache rerun hits without submitting."""
    fn = getattr(experiments, name)
    kwargs = EXPERIMENTS[name]

    with sweep.configured(jobs=1, cache=None):
        serial = fn(**kwargs)

    cache = ResultCache(str(tmp_path / "cache"))
    sweep.reset_stats()
    with sweep.configured(jobs=4, cache=cache):
        parallel = fn(**kwargs)
        cold = sweep.reset_stats()
        warm_result = fn(**kwargs)
        warm = sweep.reset_stats()

    assert canon(parallel) == canon(serial)
    assert canon(warm_result) == canon(serial)
    assert cold.cache_hits == 0
    assert cold.points == cold.cache_misses
    assert warm.submissions == 0
    assert warm.inline_runs == 0
    assert warm.cache_hits == warm.points == cold.points


def test_figure8_warns_on_dropped_points():
    """A file that cannot fit surfaces as a DroppedPointWarning, not a
    silently shorter curve."""
    with pytest.warns(DroppedPointWarning, match="figure8.*ufs-regular"):
        result = experiments.figure8(
            file_mbs=[4, 4000], updates=10, warmup=0,
            lfs_updates=10, lfs_warmup=0,
        )
    # The oversized point is gone from the curve; the small one remains.
    assert len(result["ufs-regular"]["utilization"]) == 1


def _square(*, seed, x):
    return {"seed": seed, "value": x * x}


def test_inline_fallback_without_fork(monkeypatch):
    """jobs>1 degrades gracefully to inline when the platform lacks fork."""
    monkeypatch.setattr(sweep, "fork_available", lambda: False)
    points = [
        SweepPoint(f"{__name__}:_square", {"x": x}, seed=x) for x in range(4)
    ]
    sweep.reset_stats()
    values = sweep_values(points, jobs=4, cache=None)
    stats = sweep.reset_stats()
    assert values == [{"seed": x, "value": x * x} for x in range(4)]
    assert stats.submissions == 0
    assert stats.inline_runs == 4


def test_results_ordered_and_timed():
    points = [
        SweepPoint(f"{__name__}:_square", {"x": x}, seed=0) for x in (3, 1, 2)
    ]
    results = run_sweep(points, jobs=2, cache=None)
    assert [r.value["value"] for r in results] == [9, 1, 4]
    assert all(r.seconds >= 0.0 and not r.cached for r in results)


def test_single_pending_point_runs_inline(tmp_path):
    """A sweep with at most one cache miss never pays for a pool."""
    cache = ResultCache(str(tmp_path))
    points = [
        SweepPoint(f"{__name__}:_square", {"x": x}, seed=0) for x in (1, 2)
    ]
    sweep_values(points, jobs=4, cache=cache)  # populate
    extra = points + [SweepPoint(f"{__name__}:_square", {"x": 9}, seed=0)]
    sweep.reset_stats()
    values = sweep_values(extra, jobs=4, cache=cache)
    stats = sweep.reset_stats()
    assert values[-1]["value"] == 81
    assert stats.cache_hits == 2
    assert stats.submissions == 0 and stats.inline_runs == 1


def test_bad_fn_name_rejected():
    with pytest.raises(ValueError, match="pkg.module:function"):
        sweep.resolve_point_fn("no-colon-here")


def test_jobs_must_be_positive():
    with pytest.raises(ValueError):
        run_sweep([], jobs=0)
    with pytest.raises(ValueError):
        sweep.set_default_jobs(0)
