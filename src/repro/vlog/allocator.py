"""Eager-writing allocation: choose a free block near the disk head.

Three policies, matching the paper's Section 2 models and the Section 4.2
implementation:

* ``NEAREST`` -- always pick the globally cheapest free run (used for the
  Figure 1 simulation, whose eager-writing algorithm "is not restricted to
  the current cylinder and always seeks to the nearest sector").
* ``GREEDY_CYLINDER`` -- prefer the current cylinder (the two-way race of
  the single-cylinder model); when it is full, seek in *one direction* only,
  wrapping at the last cylinder, to avoid trapping the head in a region of
  high utilization (Section 4.2).
* ``TRACK_FILL`` -- the compactor-assisted regime of Section 2.3: fill an
  empty track until only ``1 - fill_threshold`` of it remains free, then
  move to the next empty track; fall back to ``GREEDY_CYLINDER`` when the
  compactor has not produced empty tracks.

The allocator answers in the same closed-form timing the disk engine will
recompute when the write is issued, so the chosen block really is the one
the head can reach soonest.
"""

from __future__ import annotations

import enum
from typing import Iterable, Optional, Tuple

from repro.disk.disk import Disk
from repro.disk.freemap import FreeSpaceMap


class AllocationPolicy(enum.Enum):
    NEAREST = "nearest"
    GREEDY_CYLINDER = "greedy_cylinder"
    TRACK_FILL = "track_fill"


class DiskFullError(Exception):
    """No free run of the requested size exists anywhere on the disk."""


class EagerAllocator:
    """Chooses and accounts for physical blocks near the disk head.

    Args:
        disk: The simulated disk (for head position and timing).
        freemap: Free-space bookkeeping; the allocator marks its choices
            used and exposes :meth:`free_block` for recycling.
        block_sectors: Allocation unit in sectors (8 = 4 KB, the paper's
            VLD physical block size).
        policy: Placement policy.
        fill_threshold: ``TRACK_FILL`` occupancy target (0.75 = fill each
            empty track to 75 % as in the paper's experiments).
    """

    def __init__(
        self,
        disk: Disk,
        freemap: FreeSpaceMap,
        block_sectors: int = 8,
        policy: AllocationPolicy = AllocationPolicy.TRACK_FILL,
        fill_threshold: float = 0.75,
    ) -> None:
        if block_sectors <= 0:
            raise ValueError("block_sectors must be positive")
        if not 0.0 < fill_threshold <= 1.0:
            raise ValueError("fill_threshold must lie in (0, 1]")
        self.disk = disk
        self.freemap = freemap
        self.block_sectors = block_sectors
        self.policy = policy
        self.fill_threshold = fill_threshold
        geometry = disk.geometry
        if geometry.sectors_per_track % block_sectors != 0:
            raise ValueError("blocks must not straddle track boundaries")
        #: Free sectors to leave on a fill track before switching (the
        #: model's ``m``).
        self.reserve_sectors = int(
            round((1.0 - fill_threshold) * geometry.sectors_per_track)
        )
        self._fill_track: Optional[Tuple[int, int]] = None
        #: Lazily-built suffix minimum of the seek curve by distance: the
        #: sound prune bound for the NEAREST cylinder sweep (the two-piece
        #: curve need not be monotone, so the seek at one distance says
        #: nothing about farther ones).
        self._seek_floor: Optional[list] = None
        #: One-direction sweep cursor (Section 4.2).
        self._sweep_cylinder = 0
        self.allocations = 0
        self.fallbacks = 0

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------

    def allocate(self, sectors: Optional[int] = None) -> int:
        """Pick a free block near the head; returns the physical block index.

        The chosen run is marked used.  ``sectors`` may be passed for
        interface clarity but must equal ``block_sectors``.
        """
        if sectors is not None and sectors != self.block_sectors:
            raise ValueError(
                f"allocator unit is {self.block_sectors} sectors, "
                f"got request for {sectors}"
            )
        sector = self._choose_sector()
        self.freemap.mark_used(sector, self.block_sectors)
        self.allocations += 1
        return sector // self.block_sectors

    def allocate_run(self, max_blocks: int) -> Tuple[int, int]:
        """Allocate up to ``max_blocks`` physically contiguous blocks near
        the head; returns ``(first_block, blocks)``.

        The first block is chosen exactly as :meth:`allocate` chooses it.
        Under ``TRACK_FILL`` with an active fill track the run is then
        extended block by block while the *next adjacent* block is
        provably what the scalar query would return after servicing the
        previous block's write:

        * the fill track stays above its reserve (``_track_usable``),
        * the adjacent block's sectors are free and inside the track, and
        * the head -- projected forward with exactly the per-block service
          arithmetic ``Disk.write`` uses -- arrives within one block's
          worth of slots of the adjacent sectors' angle, which forces the
          rotationally-nearest aligned run to be those very sectors
          (aligned candidates sit exactly ``block_sectors`` slots apart).

        The extension never runs the policy's full query, so no policy
        state (``_fill_track``, ``fallbacks``, sweep cursors) mutates
        beyond what the scalar per-block sequence would do.  When the
        proof fails the run simply stops; the caller issues the run and
        the next call re-queries at the true clock, which by construction
        equals the projected time -- so a conservative stop splits a run
        without ever changing placement.
        """
        if max_blocks <= 0:
            raise ValueError("max_blocks must be positive")
        sector = self._choose_sector()
        spb = self.block_sectors
        run = 1
        fallback_blocks = 0
        if max_blocks > 1:
            policy = self.policy
            fill = self._fill_track
            fill_mode = greedy_mode = False
            if policy is AllocationPolicy.TRACK_FILL:
                if fill is not None:
                    fill_mode = True
                elif self.freemap._empty_tracks == 0:
                    # Greedy fallback, and it stays the fallback for every
                    # block of the run: empty tracks cannot appear while
                    # we only allocate, so the scalar per-block sequence
                    # deterministically re-enters ``_choose_greedy`` (and
                    # counts a fallback) each time.
                    greedy_mode = True
            elif policy is AllocationPolicy.GREEDY_CYLINDER:
                greedy_mode = True
            disk = self.disk
            geometry = disk.geometry
            n = geometry.sectors_per_track
            track = sector // n
            sect = sector - track * n
            tpc = geometry.tracks_per_cylinder
            cylinder = track // tpc
            head = track - cylinder * tpc
            if fill_mode and (cylinder, head) != fill:
                fill_mode = False
            if fill_mode or greedy_mode:
                batch = disk.batch
                freemap = self.freemap
                rotational_slot = batch.rotational_slot
                seeks = batch.seek_by_distance
                switch = batch.head_switch_time
                sector_time = batch.sector_time
                switch_slots = disk.spec.head_switch_time / sector_time
                skew = batch.skew_by_track[track]
                transfer = spb * sector_time
                reserve = max(self.reserve_sectors + spb, spb)
                free = freemap.track_free_count(cylinder, head)
                base = track * n
                # Project servicing the first block's write, starting
                # from the true head position and clock.
                t = disk.clock.now
                distance = cylinder - disk.head_cylinder
                if distance < 0:
                    distance = -distance
                positioning = seeks[distance]
                if head != disk.head_head and switch > positioning:
                    positioning = switch
                seek_same = seeks[0]
                cur = sect
                while True:
                    if positioning > 0.0:
                        t += positioning
                    angle = cur + skew
                    if angle >= n:
                        angle -= n
                    rotational = ((angle - rotational_slot(t)) % n) * sector_time
                    if rotational > 0.0:
                        t += rotational
                    t += transfer
                    free -= spb
                    if run >= max_blocks:
                        break
                    nxt = cur + spb
                    if nxt + spb > n:
                        break
                    if fill_mode and free < reserve:
                        break
                    if not freemap.segment_free(base + nxt, spb):
                        break
                    next_angle = nxt + skew
                    if next_angle >= n:
                        next_angle -= n
                    if fill_mode:
                        # The scalar fill query runs at time ``t`` with
                        # the head already on the fill track: its arrival
                        # is the platter angle after the same-track
                        # positioning, and the nearest aligned run on the
                        # track is forced to be the adjacent block when
                        # its gap is under one block (aligned candidates
                        # sit exactly ``spb`` slots apart).
                        arrival = rotational_slot(t + seek_same)
                        if (next_angle - arrival) % n >= spb:
                            break
                    else:
                        # The scalar greedy query races every track of
                        # the cylinder; the adjacent block is forced when
                        # its gap also beats the head-switch penalty any
                        # other track's candidate must pay.
                        arrival = rotational_slot(t + 0.0)
                        gap = (next_angle - arrival) % n
                        if gap >= spb or gap >= switch_slots:
                            break
                    cur = nxt
                    run += 1
                    if greedy_mode and policy is AllocationPolicy.TRACK_FILL:
                        fallback_blocks += 1
                    positioning = seek_same
        self.freemap.mark_used(sector, run * spb)
        self.allocations += run
        self.fallbacks += fallback_blocks
        return sector // spb, run

    def free_block(self, block: int, sectors: Optional[int] = None) -> None:
        """Return a block to the free pool."""
        if sectors is not None and sectors != self.block_sectors:
            raise ValueError("sector count mismatch")
        self.freemap.mark_free(block * self.block_sectors, self.block_sectors)

    def free_blocks(self, blocks: List[int]) -> None:
        """Return many blocks to the free pool at once, coalescing
        physically adjacent blocks into range-granular free-map updates.

        The free map is a set: marking ``[a, a+2)`` free is the same state
        as marking ``a`` and ``a+1`` separately, in any order, so this is
        pure bookkeeping batching -- displaced old copies from a logical
        run were usually allocated as one physical run and free as one.
        """
        if not blocks:
            return
        spb = self.block_sectors
        mark_free = self.freemap.mark_free
        ordered = sorted(blocks)
        start = prev = ordered[0]
        for block in ordered[1:]:
            if block == prev + 1:
                prev = block
                continue
            mark_free(start * spb, (prev - start + 1) * spb)
            start = prev = block
        mark_free(start * spb, (prev - start + 1) * spb)

    def reserve_block(self, block: int) -> None:
        """Permanently remove a block from the pool (e.g. the power-down
        record's home)."""
        self.freemap.mark_used(block * self.block_sectors, self.block_sectors)

    # ------------------------------------------------------------------
    # Policy dispatch
    # ------------------------------------------------------------------

    def _choose_sector(self) -> int:
        if self.freemap.free_sectors < self.block_sectors:
            raise DiskFullError("no free space left on device")
        if self.policy is AllocationPolicy.NEAREST:
            sector = self._choose_nearest()
        elif self.policy is AllocationPolicy.GREEDY_CYLINDER:
            sector = self._choose_greedy()
        else:
            sector = self._choose_track_fill()
        if sector is None:
            raise DiskFullError(
                f"no aligned free run of {self.block_sectors} sectors"
            )
        return sector

    # -- NEAREST --------------------------------------------------------

    def _choose_nearest(self) -> Optional[int]:
        """Globally cheapest run: scan cylinders outward, pruning by seek."""
        disk = self.disk
        batch = disk.batch
        now = disk.clock.now
        seeks = batch.seek_by_distance
        sector_time = batch.sector_time
        switch_slots = disk.spec.head_switch_time / sector_time
        best_cost: Optional[float] = None
        best_sector: Optional[int] = None
        for cylinder, distance in self._cylinders_by_distance():
            if best_cost is not None and self._seek_floor_at(distance) >= best_cost:
                break  # no remaining distance can even out-seek the incumbent
            seek = seeks[distance]
            if not self.freemap.cylinder_has_run(
                cylinder, self.block_sectors, self.block_sectors
            ):
                # Batch pre-check on the bitmap: enough free sectors *and*
                # at least one aligned run, without pricing every track.
                continue
            arrival_slot = batch.rotational_slot(now + seek)
            found = self.freemap.nearest_free_in_cylinder(
                cylinder,
                disk.head_head,
                arrival_slot,
                self.block_sectors,
                align=self.block_sectors,
                head_switch_slots=max(
                    0.0, switch_slots - seek / sector_time
                ),
            )
            if found is None:
                continue
            gap_slots, linear, _head = found
            cost = seek + gap_slots * sector_time
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_sector = linear
        return best_sector

    def _seek_floor_at(self, distance: int) -> float:
        """Smallest seek over any distance ``>= distance``."""
        floor = self._seek_floor
        if floor is None:
            spec = self.disk.spec
            total = self.disk.geometry.num_cylinders
            floor = [0.0] * total
            for d in range(total - 1, 0, -1):
                here = spec.seek_time(d)
                floor[d] = here if d == total - 1 else min(here, floor[d + 1])
            self._seek_floor = floor
        return floor[distance]

    def _cylinders_by_distance(self) -> Iterable[Tuple[int, int]]:
        """Yield (cylinder, distance) pairs, nearest first."""
        here = self.disk.head_cylinder
        total = self.disk.geometry.num_cylinders
        yield here, 0
        for distance in range(1, total):
            emitted = False
            if here + distance < total:
                yield here + distance, distance
                emitted = True
            if here - distance >= 0:
                yield here - distance, distance
                emitted = True
            if not emitted:
                break

    # -- GREEDY_CYLINDER --------------------------------------------------

    def _choose_greedy(self) -> Optional[int]:
        """Current cylinder first, then a one-direction cylinder sweep."""
        disk = self.disk
        batch = disk.batch
        now = disk.clock.now
        sector_time = batch.sector_time
        switch_slots = disk.spec.head_switch_time / sector_time
        found = self.freemap.nearest_free_in_cylinder(
            disk.head_cylinder,
            disk.head_head,
            batch.rotational_slot(now + 0.0),
            self.block_sectors,
            align=self.block_sectors,
            head_switch_slots=switch_slots,
        )
        if found is not None:
            return found[1]
        # Sweep in one direction, wrapping (Section 4.2's anti-trap rule).
        seeks = batch.seek_by_distance
        here = disk.head_cylinder
        total = disk.geometry.num_cylinders
        if self._sweep_cylinder == here:
            self._sweep_cylinder = (here + 1) % total
        cursor = self._sweep_cylinder
        for _ in range(total):
            # No existence pre-check: ``nearest_free_in_cylinder`` skips
            # a cylinder without a run from the counters alone, so a
            # ``cylinder_has_run`` probe here would just fold every track
            # twice.  Same cylinders succeed either way.
            seek = seeks[cursor - here if cursor >= here else here - cursor]
            arrival = batch.rotational_slot(now + seek)
            found = self.freemap.nearest_free_in_cylinder(
                cursor,
                disk.head_head,
                arrival,
                self.block_sectors,
                align=self.block_sectors,
                head_switch_slots=max(
                    0.0, switch_slots - seek / sector_time
                ),
            )
            if found is not None:
                self._sweep_cylinder = cursor
                return found[1]
            cursor = (cursor + 1) % total
        return None

    # -- TRACK_FILL -------------------------------------------------------

    def _choose_track_fill(self) -> Optional[int]:
        """Fill empty tracks to the threshold; greedy fallback otherwise."""
        track = self._fill_track
        if track is not None and not self._track_usable(*track):
            track = None
        if track is None:
            track = self._next_empty_track()
            self._fill_track = track
        if track is None:
            self.fallbacks += 1
            return self._choose_greedy()
        cylinder, head = track
        disk = self.disk
        _seek, arrival = disk.batch.position_and_arrival(
            disk.clock.now, disk.head_cylinder, disk.head_head, cylinder, head
        )
        found = self.freemap.nearest_free_run(
            cylinder, head, arrival, self.block_sectors, align=self.block_sectors
        )
        if found is None:
            # Shouldn't happen given _track_usable, but stay safe.
            self._fill_track = None
            self.fallbacks += 1
            return self._choose_greedy()
        return found[1]

    def _track_usable(self, cylinder: int, head: int) -> bool:
        """A fill track is usable while it is above the reserve threshold."""
        free = self.freemap.track_free_count(cylinder, head)
        return free >= max(self.reserve_sectors + self.block_sectors,
                           self.block_sectors)

    def _next_empty_track(self) -> Optional[Tuple[int, int]]:
        """Nearest completely empty track, sweeping one direction."""
        return self.freemap.find_empty_track(self.disk.head_cylinder)
