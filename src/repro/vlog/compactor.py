"""Idle-time free-space compaction (Sections 2.3, 4.2, 5.5).

The compactor runs on the drive's "free" internal bandwidth during idle
periods: it picks a partially-filled track (targets chosen randomly, as in
the paper's implementation), reads its live blocks, and hole-plugs them
into the free space of *other* non-empty tracks, leaving the source track
completely empty for the track-fill allocator.  Unlike the LFS cleaner it
moves data at track (indeed block) granularity, so it profits from idle
intervals far shorter than a segment write (Figure 11 vs Figure 10).

Moving a data block updates the indirection map (batched per chunk); moving
a live map-record block relocates that chunk's record through the virtual
log.  The power-down record's block is immovable, so its track is never a
compaction target.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.vlog.resilience import MediaError
from repro.vlog.vld import VirtualLogDisk


class FreeSpaceCompactor:
    """Track-granularity hole-plugging compactor for a VLD."""

    def __init__(self, vld: VirtualLogDisk, rng: Optional[random.Random] = None):
        self.vld = vld
        self.rng = rng if rng is not None else random.Random(0x5EED)
        self.tracks_compacted = 0
        self.blocks_moved = 0
        #: Lazily checked once: is the seek curve monotone in distance?
        self._seeks_sorted: Optional[bool] = None

    # ------------------------------------------------------------------

    def run_for(self, seconds: float) -> float:
        """Compact until ``seconds`` of idle time are consumed or no work
        remains; returns the simulated time actually used."""
        if seconds < 0.0:
            raise ValueError("idle budget must be non-negative")
        clock = self.vld.disk.clock
        start = clock.now
        deadline = start + seconds
        while clock.now < deadline:
            target = self._pick_target()
            if target is None:
                break
            # Compaction rewrites the log: any stale power-down record
            # must go first.
            from repro.sim.stats import Breakdown

            self.vld._disarm_power_record(Breakdown())
            if not self._compact_track(target, deadline):
                break
        return clock.now - start

    # ------------------------------------------------------------------

    def _pick_target(self) -> Optional[Tuple[int, int]]:
        """A random partially-filled track (never the power-down track, never
        the allocator's current fill track)."""
        geometry = self.vld.disk.geometry
        freemap = self.vld.freemap
        per_track = geometry.sectors_per_track
        pinned_track = self._power_down_track()
        fill_track = self.vld.allocator._fill_track
        candidates: List[Tuple[int, int]] = []
        for cylinder in range(geometry.num_cylinders):
            for head in range(geometry.tracks_per_cylinder):
                if (cylinder, head) == pinned_track:
                    continue
                if (cylinder, head) == fill_track:
                    continue
                free = freemap.track_free_count(cylinder, head)
                if 0 < free < per_track:
                    candidates.append((cylinder, head))
        if not candidates:
            return None
        return self.rng.choice(candidates)

    def _power_down_track(self) -> Tuple[int, int]:
        geometry = self.vld.disk.geometry
        sector = self.vld.POWER_DOWN_BLOCK * self.vld.sectors_per_block
        cylinder, head, _ = geometry.decompose(sector)
        return cylinder, head

    def _compact_track(self, track: Tuple[int, int], deadline: float) -> bool:
        """Move every live block off one track; returns False when stuck
        (no holes elsewhere) or out of time."""
        vld = self.vld
        geometry = vld.disk.geometry
        clock = vld.disk.clock
        cylinder, head = track
        base_sector = geometry.track_start(cylinder, head)
        spb = vld.sectors_per_block
        map_spb = vld.vlog.sectors_per_block
        #: lbas whose data moved, grouped by map chunk for batched commits.
        touched_chunks: Dict[int, List[int]] = {}
        progressed = False
        sector = base_sector
        end = base_sector + geometry.sectors_per_track
        while sector < end:
            if clock.now >= deadline:
                self._commit_moves(touched_chunks)
                return False
            # Skip straight to the next occupied sector via the free map's
            # track bitmap (live state: blocks this pass frees or the map
            # allocator fills mid-scan are seen, exactly as the old
            # one-sector-at-a-time walk did).
            used = vld.freemap.next_used_on_track(
                cylinder, head, sector - base_sector
            )
            if used is None:
                break
            sector = used
            block = sector // spb
            if sector % spb == 0 and block in vld.reverse:
                # A 4 KB data block.
                lba = vld.reverse[block]
                moved_chunk = self._move_data_block(block, lba, track)
                if moved_chunk is None:
                    self._commit_moves(touched_chunks)
                    return False
                touched_chunks.setdefault(moved_chunk, []).append(lba)
                progressed = True
                sector += spb
                continue
            record = sector // map_spb
            chunk_id = vld.vlog.chunk_of_block(record)
            if chunk_id is not None and sector % map_spb == 0:
                # Relocate the live record through the log itself;
                # ``relocate`` resolves the payload for every chunk kind
                # (map, quarantine-table, or transaction-commit records).
                vld.vlog.relocate(chunk_id)
                progressed = True
                sector += map_spb
                continue
            # Neither data nor a live record: a reserved sector (the
            # power-down block never shares a target track) or one freed
            # mid-scan; nothing to move.
            sector += 1
        self._commit_moves(touched_chunks)
        if progressed:
            self.tracks_compacted += 1
        return progressed

    def _move_data_block(
        self, block: int, lba: int, source_track: Tuple[int, int]
    ) -> Optional[int]:
        """Hole-plug one data block into another track; returns the map
        chunk needing commit, or None when no hole exists."""
        vld = self.vld
        spb = vld.sectors_per_block
        destination = self._find_hole(source_track)
        if destination is None:
            return None
        try:
            data = vld._read_physical(block * spb, spb, None)
        except MediaError:
            # The block resists reading even with retries: leave it for
            # the scrubber (the failed read queued it as a suspect) and
            # stop compacting this track.
            return None
        vld.freemap.mark_used(destination * spb, spb)
        chunk_id = vld.move_block(lba, block, destination, data)
        # The old copy is freed immediately; the map commit is batched by
        # the caller.  A crash between move and commit recovers the *old*
        # mapping -- whose block we just freed but have not yet reused
        # within this compaction pass, preserving correctness for the
        # paper's single-compactor design.
        vld.freemap.mark_free(block * spb, spb)
        self.blocks_moved += 1
        return chunk_id

    def _find_hole(self, source_track: Tuple[int, int]) -> Optional[int]:
        """Nearest free block on a *partially used* track other than the
        source (classic hole-plugging: never consume empty tracks).

        The winner is the minimum by ``(cost, track index)`` over the
        partial tracks -- exactly what the old in-order scan over
        ``partial_tracks`` (which iterates in row-major track order) with
        its strict-improvement rule selected.  Rather than pricing every
        partial track on the drive, the search walks cylinders outward
        from the arm by seek distance and stops as soon as the seek alone
        exceeds the incumbent's full cost (cost = positioning + a
        non-negative rotational term), so the rotational pricing and the
        per-track run query only run for the handful of nearest tracks.
        """
        vld = self.vld
        disk = vld.disk
        spb = vld.sectors_per_block
        freemap = vld.freemap
        batch = disk.batch
        seeks = batch.seek_by_distance
        switch = batch.head_switch_time
        sector_time = batch.sector_time
        rotational_slot = batch.rotational_slot
        head_cyl = disk.head_cylinder
        head_head = disk.head_head
        now = disk.clock.now
        geometry = disk.geometry
        tpc = geometry.tracks_per_cylinder
        num_cylinders = geometry.num_cylinders
        per_track = geometry.sectors_per_track
        track_free = freemap._track_free
        nearest_free_run = freemap.nearest_free_run
        src_cyl, src_head = source_track
        if self._seeks_sorted is None:
            # The outward walk prunes whole distances on the premise that
            # the seek curve never decreases with distance; verify once
            # (physically always true, but cheap insurance).
            self._seeks_sorted = all(a <= b for a, b in zip(seeks, seeks[1:]))
        can_prune_distance = self._seeks_sorted
        best_cost = 0.0
        best_key = -1
        best_block: Optional[int] = None
        for distance in range(num_cylinders):
            floor = seeks[distance]
            if (
                can_prune_distance
                and best_block is not None
                and floor > best_cost
            ):
                # Every remaining track sits at least this seek away, so
                # its cost (>= its seek) cannot beat the incumbent.
                break
            lo = head_cyl - distance
            hi = head_cyl + distance
            if lo < 0 and hi >= num_cylinders:
                break
            cylinders = (lo,) if lo == hi else (lo, hi)
            for cylinder in cylinders:
                if cylinder < 0 or cylinder >= num_cylinders:
                    continue
                base = cylinder * tpc
                for head in range(tpc):
                    free = track_free[base + head]
                    if free < spb or free >= per_track:
                        continue
                    if cylinder == src_cyl and head == src_head:
                        continue
                    positioning = floor
                    if head != head_head and switch > positioning:
                        positioning = switch
                    key = base + head
                    if best_block is not None and (
                        positioning > best_cost
                        or (positioning == best_cost and key > best_key)
                    ):
                        # cost >= positioning, so this track either costs
                        # strictly more than the incumbent or at best ties
                        # with a later track index; it cannot win.
                        continue
                    found = nearest_free_run(
                        cylinder, head,
                        rotational_slot(now + positioning), spb,
                        align=spb,
                    )
                    if found is None:
                        continue
                    gap_slots, linear = found
                    cost = positioning + gap_slots * sector_time
                    if (
                        best_block is None
                        or cost < best_cost
                        or (cost == best_cost and key < best_key)
                    ):
                        best_cost = cost
                        best_key = key
                        best_block = linear // spb
        return best_block

    def _commit_moves(self, touched_chunks: Dict[int, List[int]]) -> None:
        """Write the map records for all chunks whose entries moved."""
        for chunk_id in touched_chunks:
            self.vld.vlog.append(
                chunk_id, self.vld.imap.chunk_entries(chunk_id)
            )
        touched_chunks.clear()
