"""The discrete-event simulation core.

PR 5 modelled overlap by *inference*: time accumulated inside synchronous
``Disk`` calls, host think time advanced the clock only when the queue
happened to be empty, and the metrics layer attributed clock *gaps* to
host or device after the fact.  That worked for one host over one disk at
modest depth, but drain barriers, lazy service, and gap heuristics do not
compose to N hosts hammering M disks.

:class:`EventEngine` replaces inference with an actual event loop:

* a heap of ``(time, seq, event)`` with **deterministic tie-breaking**
  (events scheduled for the same instant fire in scheduling order --
  ``seq`` is a monotone counter, so a run is a pure function of the
  schedule calls, never of heap internals or hash order);
* **named processes** -- plain Python generators adopted via
  :meth:`EventEngine.spawn`.  A process yields what it is waiting for:
  a delay (seconds or a :class:`Timer`), a :class:`Signal`, or a
  resource grant -- and is resumed by the engine when that occurs;
* **timers** and **wait/signal primitives** (:class:`Signal`,
  :class:`Resource`) so service completion is an *event* other
  processes block on, not a lazy drain somebody has to remember to
  call;
* an optional **event trace** -- the exact ``(time, seq, name)``
  sequence of fired events -- which is what the determinism tests diff
  across runs and across ``--jobs 1`` vs ``--jobs N``;
* an :class:`IntervalRecorder` collecting the *real* busy/think/idle
  intervals of every process, from which host/disk/overlap time is
  computed exactly (interval intersection) instead of by clock-gap
  attribution.

Time relationship: the engine owns the timeline; its
:class:`~repro.sim.clock.SimClock` is the *view* of engine time that the
rest of the codebase reads (``clock.now``) -- firing an event advances
the view to the event's time.  Synchronous device code running inside a
process turn may still advance a *local* clock past the engine frontier
(a disk pricing a whole service closed-form); the process then yields a
timer for the difference, and the engine catches the global view up.
That local-lookahead rule is what lets the closed-form mechanics engine
(`repro.disk`) run unmodified under the event core.
"""

from __future__ import annotations

import heapq
from typing import (
    Any,
    Callable,
    Dict,
    Generator,
    Iterable,
    List,
    Optional,
    Tuple,
)

from repro.sim.clock import SimClock


class Event:
    """One scheduled occurrence.

    Fires ``action`` at ``time``; :meth:`cancel` makes it a no-op without
    the cost of a heap delete (the heap entry stays and is skipped).
    """

    __slots__ = ("time", "seq", "name", "action", "cancelled")

    def __init__(
        self, time: float, seq: int, name: str, action: Callable[[], None]
    ) -> None:
        self.time = time
        self.seq = seq
        self.name = name
        self.action = action
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __repr__(self) -> str:
        state = " cancelled" if self.cancelled else ""
        return f"Event({self.name!r} @ {self.time:.9f}s #{self.seq}{state})"


class Timer:
    """A yieldable delay: ``yield Timer(dt)`` resumes the process after
    ``dt`` seconds of engine time (bare non-negative numbers work too)."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0.0:
            raise ValueError("timer delay must be non-negative")
        self.delay = delay


class Until:
    """A yieldable *absolute* resumption: ``yield Until(t)`` resumes the
    process exactly at engine time ``t`` (immediately if ``t`` is already
    past).  Unlike a delay, there is no ``now + (t - now)`` float
    round-trip -- the local-lookahead catch-up (a disk pricing a whole
    service closed-form, then handing the timeline back) uses this so
    engine time lands *bit-exactly* on the closed-form end, which the
    depth-1 identity tests rely on.
    """

    __slots__ = ("time",)

    def __init__(self, time: float) -> None:
        self.time = time


class Signal:
    """A wait/signal primitive.

    Processes wait by yielding the signal; :meth:`fire` resumes every
    current waiter (in the order they started waiting -- deterministic)
    with the fired value.  A signal carries no memory: firing with no
    waiters is a no-op, so guard with state (``if not req.done: yield
    req.completed``) when the occurrence may precede the wait.
    """

    __slots__ = ("engine", "name", "_waiters", "fires")

    def __init__(self, engine: "EventEngine", name: str) -> None:
        self.engine = engine
        self.name = name
        self._waiters: List["Process"] = []
        self.fires = 0

    def _add_waiter(self, process: "Process") -> None:
        self._waiters.append(process)

    def fire(self, value: Any = None) -> int:
        """Wake every waiter (resumed via zero-delay events, so wake-ups
        interleave deterministically with everything else scheduled for
        this instant).  Returns the number of processes woken."""
        self.fires += 1
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self.engine.after(
                0.0,
                lambda p=process, v=value: p._resume(v),
                name=f"{self.name}->{process.name}",
            )
        return len(waiters)

    def __repr__(self) -> str:
        return f"Signal({self.name!r}, waiters={len(self._waiters)})"


class Resource:
    """A FIFO resource with ``capacity`` concurrent holders.

    ``grant = resource.request(); yield grant`` acquires (the grant
    signal fires when a slot frees up -- immediately, via a zero-delay
    event, if one is free now); :meth:`release` hands the slot to the
    oldest queued request.  Grant order is strictly first-come-first-
    served, so contention resolves deterministically.
    """

    __slots__ = ("engine", "name", "capacity", "in_use", "_queue")

    def __init__(
        self, engine: "EventEngine", capacity: int = 1, name: str = "resource"
    ) -> None:
        if capacity <= 0:
            raise ValueError("resource capacity must be positive")
        self.engine = engine
        self.name = name
        self.capacity = capacity
        self.in_use = 0
        self._queue: List[Signal] = []

    def request(self) -> Signal:
        grant = Signal(self.engine, f"{self.name}.grant")
        if self.in_use < self.capacity:
            self.in_use += 1
            # Fire on the next engine step: the requester has not yielded
            # the grant yet (it is still mid-turn), and zero-delay events
            # preserve request order.
            self.engine.after(0.0, grant.fire, name=f"{self.name}.acquire")
        else:
            self._queue.append(grant)
        return grant

    def release(self) -> None:
        if self.in_use <= 0:
            raise RuntimeError(f"release of idle resource {self.name!r}")
        if self._queue:
            grant = self._queue.pop(0)
            self.engine.after(0.0, grant.fire, name=f"{self.name}.acquire")
        else:
            self.in_use -= 1

    def __repr__(self) -> str:
        return (
            f"Resource({self.name!r}, {self.in_use}/{self.capacity} used, "
            f"{len(self._queue)} queued)"
        )


class Process:
    """A named generator adopted by the engine.

    The generator yields what it waits for -- a delay (number or
    :class:`Timer`), an absolute time (:class:`Until`), a
    :class:`Signal`, or ``None`` (yield the turn, resume at the same
    instant after pending same-time events).  When it
    returns, ``done`` flips and ``terminated`` fires with the return
    value (also stored in ``result``).
    """

    __slots__ = ("engine", "name", "_gen", "done", "result", "terminated")

    def __init__(
        self,
        engine: "EventEngine",
        gen: Generator[Any, Any, Any],
        name: str,
    ) -> None:
        self.engine = engine
        self.name = name
        self._gen = gen
        self.done = False
        self.result: Any = None
        self.terminated = Signal(engine, f"{name}.terminated")

    def _resume(self, value: Any = None) -> None:
        if self.done:
            return
        try:
            waited = self._gen.send(value)
        except StopIteration as stop:
            self.done = True
            self.result = stop.value
            self.terminated.fire(stop.value)
            return
        self._interpret(waited)

    def _interpret(self, waited: Any) -> None:
        if waited is None:
            self.engine.after(0.0, self._resume, name=f"{self.name}.turn")
        elif isinstance(waited, Timer):
            self.engine.after(
                waited.delay, self._resume, name=f"{self.name}.timer"
            )
        elif isinstance(waited, (int, float)):
            self.engine.after(
                float(waited), self._resume, name=f"{self.name}.timer"
            )
        elif isinstance(waited, Until):
            self.engine.at(
                max(waited.time, self.engine.now),
                self._resume,
                name=f"{self.name}.until",
            )
        elif isinstance(waited, Signal):
            waited._add_waiter(self)
        else:
            raise TypeError(
                f"process {self.name!r} yielded {waited!r}; expected a "
                "delay, Timer, Until, Signal, or None"
            )

    def __repr__(self) -> str:
        state = "done" if self.done else "running"
        return f"Process({self.name!r}, {state})"


class EventTrace:
    """The fired-event record the determinism tests diff.

    Each entry is ``(time, seq, name)`` -- seq included so that even
    same-instant reorderings (the hostile case) are visible.
    """

    __slots__ = ("records",)

    def __init__(self) -> None:
        self.records: List[Tuple[float, int, str]] = []

    def note(self, event: Event) -> None:
        self.records.append((event.time, event.seq, event.name))

    def as_tuples(self) -> List[Tuple[float, int, str]]:
        return list(self.records)

    def __len__(self) -> int:
        return len(self.records)


def _merge(intervals: Iterable[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Union of intervals as a sorted, disjoint list."""
    merged: List[Tuple[float, float]] = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1]:
            if end > merged[-1][1]:
                merged[-1] = (merged[-1][0], end)
        else:
            merged.append((start, end))
    return merged


def _intersection_seconds(
    a: List[Tuple[float, float]], b: List[Tuple[float, float]]
) -> float:
    """Total length of the intersection of two disjoint sorted lists."""
    total = 0.0
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if hi > lo:
            total += hi - lo
        if a[i][1] <= b[j][1]:
            i += 1
        else:
            j += 1
    return total


class IntervalRecorder:
    """Real event intervals, by kind and key.

    Processes note what they actually did and when -- ``("service",
    "disk0", start, end)``, ``("think", "host2", ...)`` -- and reports
    are computed by exact interval arithmetic: total busy time is the
    measure of the union, overlap is the measure of an intersection.
    This replaces the PR 5 clock-gap attribution heuristics with ground
    truth.
    """

    def __init__(self) -> None:
        #: kind -> key -> [(start, end), ...] in note order.
        self._raw: Dict[str, Dict[str, List[Tuple[float, float]]]] = {}

    def note(self, kind: str, key: str, start: float, end: float) -> None:
        """Record one ``[start, end)`` interval.

        Zero-length intervals (``end == start``) are dropped here, by
        design: an instantaneous event has measure zero, so keeping it
        could never change a total but *would* force every consumer of
        :meth:`merged` to handle degenerate spans.  ``end < start`` is a
        caller bug and raises.
        """
        if end < start:
            raise ValueError(f"interval ends before it starts: {start}..{end}")
        if end == start:
            return
        self._raw.setdefault(kind, {}).setdefault(key, []).append((start, end))

    def keys(self, kind: str) -> List[str]:
        return sorted(self._raw.get(kind, {}))

    def merged(
        self, kind: str, key: Optional[str] = None
    ) -> List[Tuple[float, float]]:
        """Union of intervals for one key, or across every key of a kind."""
        per_key = self._raw.get(kind, {})
        if key is not None:
            return _merge(per_key.get(key, []))
        spans: List[Tuple[float, float]] = []
        for intervals in per_key.values():
            spans.extend(intervals)
        return _merge(spans)

    def total(self, kind: str, key: Optional[str] = None) -> float:
        return sum(end - start for start, end in self.merged(kind, key))

    def total_within(
        self,
        kind: str,
        window: Tuple[float, float],
        key: Optional[str] = None,
    ) -> float:
        """Seconds of ``kind`` activity clipped to ``window`` -- the
        "how busy was this disk during the degraded window" question,
        answered by exact interval arithmetic.

        Boundary convention (pinned): intervals and the window are both
        **half-open** ``[lo, hi)``.  An interval that merely *abuts* a
        window edge -- ending exactly at ``lo``, or starting exactly at
        ``hi`` -- shares a single point with it, has measure zero inside
        it, and contributes ``0.0``; the strict ``>`` clip below is what
        enforces that (``>=`` would admit those degenerate touches as
        zero-length terms, harmless for the sum but wrong as a "was it
        active in the window" predicate).  Consequently two windows that
        tile a span, ``(a, m)`` and ``(m, b)``, partition every
        interval's measure exactly: nothing at ``m`` is double-counted
        and nothing is dropped.  An empty or inverted window has measure
        zero and returns ``0.0``.
        """
        lo, hi = window
        if hi <= lo:
            return 0.0
        return sum(
            min(end, hi) - max(start, lo)
            for start, end in self.merged(kind, key)
            if min(end, hi) > max(start, lo)
        )

    def overlap(
        self,
        kind_a: str,
        kind_b: str,
        key_a: Optional[str] = None,
        key_b: Optional[str] = None,
    ) -> float:
        """Seconds during which both kinds were in progress (union-level:
        concurrent intervals of the same kind count once)."""
        return _intersection_seconds(
            self.merged(kind_a, key_a), self.merged(kind_b, key_b)
        )

    def per_key_overlap(self, kind_a: str, kind_b: str) -> float:
        """Aggregate overlap: each key of ``kind_a`` intersected with the
        union of ``kind_b``, then summed.  This is the "aggregate host
        think time hidden behind disk service" metric: two hosts thinking
        through the same busy second both hid a second of work."""
        busy = self.merged(kind_b)
        return sum(
            _intersection_seconds(self.merged(kind_a, key), busy)
            for key in self.keys(kind_a)
        )


class EventEngine:
    """The heap-of-events core.

    Args:
        clock: The :class:`SimClock` serving as the view of engine time
            (a fresh one is created when omitted).  Firing an event
            advances it to the event's time; it never runs backwards.
        trace: Record every fired event into :attr:`trace` (the
            determinism-diff artifact).  Off by default -- tracing a
            long run costs memory.
    """

    def __init__(
        self, clock: Optional[SimClock] = None, trace: bool = False
    ) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.clock.bind(self)
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = 0
        self.events_fired = 0
        self.trace: Optional[EventTrace] = EventTrace() if trace else None
        self.processes: Dict[str, Process] = {}
        #: Real busy/think/idle intervals, for exact overlap accounting.
        self.intervals = IntervalRecorder()

    # ------------------------------------------------------------------
    # Time and scheduling
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current engine time (the clock is the view of this)."""
        return self.clock.now

    def at(
        self, time: float, action: Callable[[], None], name: str = "event"
    ) -> Event:
        """Schedule ``action`` at absolute ``time`` (>= now)."""
        if time < self.clock.now:
            raise ValueError(
                f"cannot schedule {name!r} at {time!r}, "
                f"before now ({self.clock.now!r})"
            )
        event = Event(time, self._seq, name, action)
        self._seq += 1
        heapq.heappush(self._heap, (event.time, event.seq, event))
        return event

    def after(
        self, delay: float, action: Callable[[], None], name: str = "event"
    ) -> Event:
        """Schedule ``action`` ``delay`` seconds from now."""
        if delay < 0.0:
            raise ValueError("delay must be non-negative")
        return self.at(self.clock.now + delay, action, name)

    def timer(self, delay: float) -> Timer:
        return Timer(delay)

    def signal(self, name: str = "signal") -> Signal:
        return Signal(self, name)

    def resource(self, capacity: int = 1, name: str = "resource") -> Resource:
        return Resource(self, capacity, name)

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------

    def spawn(
        self, gen: Generator[Any, Any, Any], name: str = "process"
    ) -> Process:
        """Adopt a generator as a named process and give it its first
        turn via a zero-delay event (so spawn order *is* first-turn
        order, deterministically)."""
        process = Process(self, gen, name)
        self.processes[name] = process
        self.after(0.0, process._resume, name=f"{name}.start")
        return process

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Events still scheduled (including cancelled placeholders)."""
        return len(self._heap)

    def step(self) -> Optional[Event]:
        """Fire the next non-cancelled event; ``None`` when idle."""
        while self._heap:
            _, _, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.clock.advance_to(event.time)
            self.events_fired += 1
            if self.trace is not None:
                self.trace.note(event)
            event.action()
            return event
        return None

    def run(
        self, until: Optional[float] = None, max_events: int = 0
    ) -> int:
        """Fire events until the heap drains (or past ``until``, or
        ``max_events`` -- a runaway-loop backstop when positive).
        Returns the number of events fired."""
        fired = 0
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                break
            if self.step() is None:
                break
            fired += 1
            if max_events and fired >= max_events:
                raise RuntimeError(
                    f"engine exceeded {max_events} events "
                    f"(t={self.clock.now:.6f}s) -- runaway process?"
                )
        if until is not None:
            self.clock.advance_to(until)
        return fired

    def __repr__(self) -> str:
        return (
            f"EventEngine(t={self.clock.now:.9f}s, pending={self.pending}, "
            f"fired={self.events_fired})"
        )
