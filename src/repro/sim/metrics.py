"""Reusable operation accounting: counters and latency histograms.

Two consumers share these structures:

* :class:`~repro.disk.disk.Disk` keeps its physical-request statistics in
  an :class:`OpCounters` (previously five ad-hoc attributes);
* :class:`~repro.blockdev.interpose.MetricsDevice` keeps per-component
  :class:`LatencyHistogram` objects at the logical-block layer, from which
  the Figure 9 breakdown report can be regenerated without any bespoke
  accounting in the workloads.

Histograms use power-of-two buckets (microsecond base), the usual shape
for storage latency distributions: exact counts and exact sums are kept,
so totals and means are precise while percentiles are bucket-resolution.
"""

from __future__ import annotations

import math
from typing import Dict


class OpCounters:
    """Read/write operation and sector counters plus busy time."""

    __slots__ = (
        "reads",
        "writes",
        "sectors_read",
        "sectors_written",
        "busy_time",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.sectors_read = 0
        self.sectors_written = 0
        self.busy_time = 0.0

    def note_read(self, sectors: int, seconds: float) -> None:
        self.reads += 1
        self.sectors_read += sectors
        self.busy_time += seconds

    def note_write(self, sectors: int, seconds: float) -> None:
        self.writes += 1
        self.sectors_written += sectors
        self.busy_time += seconds

    def as_dict(self) -> Dict[str, float]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        return (
            f"OpCounters(reads={self.reads}, writes={self.writes}, "
            f"sectors_read={self.sectors_read}, "
            f"sectors_written={self.sectors_written}, "
            f"busy_time={self.busy_time:.6f}s)"
        )


class LatencyHistogram:
    """Log2-bucketed latency histogram with exact count and sum.

    Bucket ``i`` holds samples in ``[base * 2**i, base * 2**(i+1))``;
    ``base`` defaults to one microsecond.  Sub-base samples (including
    exact zeros) land in a dedicated underflow bucket ``-1``.
    """

    __slots__ = ("base", "buckets", "count", "sum")

    def __init__(self, base: float = 1e-6) -> None:
        if base <= 0.0:
            raise ValueError("histogram base must be positive")
        self.base = base
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.sum = 0.0

    def record(self, seconds: float) -> None:
        if seconds < 0.0:
            raise ValueError("latencies must be non-negative")
        index = (
            -1 if seconds < self.base
            else int(math.floor(math.log2(seconds / self.base)))
        )
        self.buckets[index] = self.buckets.get(index, 0) + 1
        self.count += 1
        self.sum += seconds

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> float:
        """Upper edge of the bucket holding the requested quantile.

        An *empty* histogram has no quantiles: the result is ``NaN``,
        which survives formatting as the honest "no data" marker --
        returning ``0.0`` here read as "instantaneous", which is
        actively misleading for near-empty quick-run histograms (the NVM
        destage histograms often record nothing at quick scale).  With
        1-2 samples every fraction resolves to a real recorded bucket:
        nearest-rank over ``max(1, ceil(fraction * count))`` -- p50 of
        two samples is the first, p99 of anything non-empty is the last
        recorded bucket's upper edge, never an index error.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("percentile fraction must lie in [0, 1]")
        if not self.count:
            return float("nan")
        target = max(1, math.ceil(fraction * self.count))
        seen = 0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= target:
                return self.base * 2.0 ** (index + 1)
        return self.base * 2.0 ** (max(self.buckets) + 1)

    def percentiles(self) -> Dict[str, float]:
        """The standard latency report (bucket-resolution seconds): median,
        p95, and the p99/p999 tail the concurrency experiments care about."""
        return {
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
            "p999": self.percentile(0.999),
        }

    def as_dict(self) -> Dict[str, int]:
        """Bucket counts keyed by a human-readable upper edge."""
        result = {}
        for index in sorted(self.buckets):
            upper = self.base * 2.0 ** (index + 1)
            result[f"<{upper * 1e6:g}us"] = self.buckets[index]
        return result

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        if other.base != self.base:
            raise ValueError("cannot merge histograms with different bases")
        for index, n in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + n
        self.count += other.count
        self.sum += other.sum
        return self

    def reset(self) -> None:
        self.buckets.clear()
        self.count = 0
        self.sum = 0.0

    def __repr__(self) -> str:
        return (
            f"LatencyHistogram(n={self.count}, "
            f"mean={self.mean() * 1e3:.3f}ms)"
        )
