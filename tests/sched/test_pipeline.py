"""The host/disk pipeline, the idle-time dispatcher, and the headline
queue-depth acceptance property (SATF beats FIFO once the disk can
reorder)."""

import pytest

from repro.disk.disk import Disk
from repro.disk.specs import ST19101
from repro.harness.runner import simulate_queued_workload
from repro.sched.idle import IdleManager
from repro.sched.pipeline import HostPipeline
from repro.sched.scheduler import DiskScheduler
from repro.sim.clock import SimClock
from repro.sim.stats import Breakdown
from repro.vlog.vld import VirtualLogDisk


def _payload(tag: int, size: int = 4096) -> bytes:
    return bytes([tag % 251]) * size


class TestHostPipeline:
    def test_think_advances_clock_when_queue_empty(self):
        disk = Disk(ST19101, num_cylinders=2, store_data=False)
        pipeline = HostPipeline(
            DiskScheduler(disk, queue_depth=4), think_seconds=0.002
        )
        before = disk.clock.now
        pipeline.write(0, 8)
        assert disk.clock.now >= before + 0.002
        assert pipeline.think_hidden_seconds == 0.0

    def test_think_hidden_while_requests_outstanding(self):
        disk = Disk(ST19101, num_cylinders=2, store_data=False)
        pipeline = HostPipeline(
            DiskScheduler(disk, queue_depth=4), think_seconds=0.002
        )
        pipeline.write(0, 8)
        assert pipeline.scheduler.outstanding == 1
        now = disk.clock.now
        pipeline.write(64, 8)  # queue non-empty: think overlaps service
        assert disk.clock.now == now
        assert pipeline.think_hidden_seconds == pytest.approx(0.002)

    def test_negative_think_rejected(self):
        disk = Disk(ST19101, num_cylinders=1, store_data=False)
        with pytest.raises(ValueError):
            HostPipeline(DiskScheduler(disk), think_seconds=-1.0)

    def test_finish_drains_everything(self):
        disk = Disk(ST19101, num_cylinders=2, store_data=False)
        pipeline = HostPipeline(DiskScheduler(disk, queue_depth=8))
        for i in range(5):
            pipeline.write(i * 16, 8)
        assert pipeline.scheduler.outstanding == 5
        breakdown = pipeline.finish()
        assert pipeline.scheduler.outstanding == 0
        assert breakdown.total > 0.0
        assert pipeline.submitted == 5


class TestIdleManager:
    def test_workers_run_in_registration_order(self):
        clock = SimClock()
        mgr = IdleManager(clock)
        ran = []
        mgr.register("a", lambda r: ran.append(("a", r)))
        mgr.register("b", lambda r: ran.append(("b", r)))
        mgr.grant(1.5)
        assert [name for name, _ in ran] == ["a", "b"]
        assert ran[0][1] == pytest.approx(1.5)
        assert clock.now == pytest.approx(1.5)

    def test_gate_skips_worker(self):
        mgr = IdleManager(SimClock())
        ran = []
        mgr.register("gated", lambda r: ran.append(r), gate=lambda: False)
        mgr.grant(1.0)
        assert ran == []

    def test_needs_time_false_runs_on_zero_budget(self):
        mgr = IdleManager(SimClock())
        ran = []
        mgr.register("urgent", lambda r: ran.append(r), needs_time=False)
        mgr.register("lazy", lambda r: ran.append(("lazy", r)))
        mgr.grant(0.0)
        assert ran == [0.0]  # urgent ran, lazy skipped

    def test_breakdowns_accumulate(self):
        mgr = IdleManager(SimClock())

        def worker(remaining):
            b = Breakdown()
            b.charge("other", 0.25)
            return b

        mgr.register("w1", worker)
        mgr.register("w2", worker)
        total = mgr.grant(1.0)
        assert total.other == pytest.approx(0.5)
        assert mgr.grants == 1
        assert mgr.granted_seconds == pytest.approx(1.0)

    def test_clock_reaches_deadline_even_if_workers_use_nothing(self):
        clock = SimClock()
        mgr = IdleManager(clock)
        mgr.register("noop", lambda r: None)
        mgr.grant(2.0)
        assert clock.now == pytest.approx(2.0)

    def test_negative_grant_rejected(self):
        with pytest.raises(ValueError):
            IdleManager(SimClock()).grant(-0.1)


class TestQueueDepthAcceptance:
    """The headline property: at depth >= 4 on the random-update
    workload, SATF beats FIFO mean service time."""

    def test_satf_beats_fifo_at_depth_four(self):
        fifo = simulate_queued_workload(
            ST19101, queue_depth=4, policy="fifo", requests=200
        )
        satf = simulate_queued_workload(
            ST19101, queue_depth=4, policy="satf", requests=200
        )
        assert satf["mean_service_ms"] < fifo["mean_service_ms"]
        assert satf["elapsed_seconds"] < fifo["elapsed_seconds"]

    def test_depth_one_identical_across_policies(self):
        runs = [
            simulate_queued_workload(
                ST19101, queue_depth=1, policy=policy, requests=100
            )
            for policy in ("fifo", "scan", "satf")
        ]
        assert runs[0] == runs[1] == runs[2]

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            simulate_queued_workload(ST19101, workload="backwards")


class TestVLDQueuedConsistency:
    """Crash consistency survives a deeper queue: the commit barrier
    drains data writes before each map-chunk append, so everything a
    completed write_blocks() call covered recovers intact."""

    @pytest.mark.parametrize("sched", ["fifo", "satf"])
    def test_crash_recover_after_queued_writes(self, sched):
        disk = Disk(ST19101, num_cylinders=2)
        vld = VirtualLogDisk(disk, queue_depth=4, sched=sched)
        for lba in range(40):
            vld.write_block(lba, _payload(lba))
        # Overwrite a few, multi-block runs included.
        vld.write_blocks(8, 4, b"".join(_payload(100 + i) for i in range(4)))
        vld.crash()
        outcome = vld.recover()
        assert not outcome.degraded
        for lba in range(40):
            expected = _payload(100 + lba - 8) if 8 <= lba < 12 else _payload(lba)
            assert vld.read_block(lba)[0] == expected
        vld.vlog.check_invariants()

    def test_idle_signal_drains_queue_before_compaction(self):
        disk = Disk(ST19101, num_cylinders=2)
        vld = VirtualLogDisk(disk, queue_depth=4)
        for lba in range(16):
            vld.write_block(lba, _payload(lba))
        assert vld.scheduler.outstanding == 0  # commit barrier drained
        vld.idle(0.05)
        assert vld.scheduler.outstanding == 0
