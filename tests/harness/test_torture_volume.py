"""Tests for the multi-shard volume torture harness.

Same philosophy as the single-device harness tests: prove a composed
multi-shard plan survives, that the point is deterministic, and --
checker-mutation -- that a planted durability bug is caught, minimized,
and written out as a ``volume-`` repro artifact.
"""

import json
import os

import pytest

from repro.harness.torture import (
    VOLUME_FAMILIES,
    VOLUME_QUICK_WORKLOADS,
    minimize,
    volume_long_set,
    volume_matrix,
    volume_quick_set,
    volume_torture_point,
    write_repro,
)
from repro.harness.torture import WORKLOADS
from repro.sim.stats import Breakdown
from repro.vlog.virtual_log import VirtualLog


class TestVolumeTorturePoint:
    def test_shard_crash_point_survives(self):
        verdict = volume_torture_point(
            workload="small_writes", ops=100, shards=3,
            crash_shard=0, crash_after=30, torn=True, seed=0,
        )
        assert verdict["ok"], verdict["failures"]
        assert verdict["crashed_at"] is not None
        assert verdict["down_shard"] == 0
        assert verdict["recovery"]["shard"] == 0
        assert verdict["recovery"]["scanned"]

    def test_degraded_window_serves_and_bounds(self):
        verdict = volume_torture_point(
            workload="sequential", ops=100, shards=3,
            crash_shard=1, crash_after=25, torn=False, seed=0,
        )
        assert verdict["ok"], verdict["failures"]
        window = verdict["degraded_window"]
        # The window saw traffic, some of it served by healthy shards
        # and some bounced off the down shard -- but bounded, not hung.
        assert window["ops"] > 0
        assert window["healthy_ok"] > 0
        assert window["unavailable"] >= 0

    def test_orderly_point_recovers_every_shard(self):
        verdict = volume_torture_point(
            workload="overwrites", ops=60, shards=3, seed=1,
        )
        assert verdict["ok"], verdict["failures"]
        assert verdict["crashed_at"] is None
        assert verdict["recovery"]["shard"] is None
        assert verdict["recovery"]["used_power_down_record"]

    def test_composed_point_contains_each_fault(self):
        params = dict(VOLUME_FAMILIES["shard-composed"])
        verdict = volume_torture_point(
            workload="small_writes", seed=0, **params
        )
        assert verdict["ok"], verdict["failures"]
        assert verdict["down_shard"] == params["crash_shard"]
        assert verdict["shards"] == params["shards"]

    def test_deterministic_verdicts(self):
        kwargs = dict(
            workload="bursty_idle", ops=80, shards=3,
            crash_shard=2, crash_after=20, seed=4,
        )
        assert volume_torture_point(**kwargs) == volume_torture_point(
            **kwargs
        )

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            volume_torture_point(workload="nope")


class TestVolumeMatrix:
    def test_quick_set_covers_workload_subset_and_every_family(self):
        points = volume_quick_set()
        assert len(points) == (
            len(VOLUME_QUICK_WORKLOADS) * len(VOLUME_FAMILIES)
        )
        params = [p.params for p in points]
        assert {p["workload"] for p in params} == set(
            VOLUME_QUICK_WORKLOADS
        )
        assert all(p["shards"] >= 3 for p in params)

    def test_long_set_is_the_full_multi_seed_grid(self):
        assert len(volume_long_set()) == (
            4 * len(WORKLOADS) * len(VOLUME_FAMILIES)
        )

    def test_points_name_the_importable_fn(self):
        point = volume_matrix(seeds=(0,))[0]
        assert point.fn_name == (
            "repro.harness.torture:volume_torture_point"
        )


class TestVolumeCheckerMutation:
    """Plant the lost-commit bug on every shard; the volume point must
    see it, the minimizer must shrink it, the artifact must say so."""

    @pytest.fixture()
    def lost_commits(self, monkeypatch):
        monkeypatch.setattr(
            VirtualLog, "append",
            lambda self, chunk_id, entries, txn_id=0: Breakdown(),
        )

    PARAMS = dict(
        workload="small_writes", ops=80, shards=3,
        crash_shard=0, crash_after=25, torn=False,
    )

    def test_mutation_is_caught(self, lost_commits):
        verdict = volume_torture_point(seed=0, **self.PARAMS)
        assert not verdict["ok"]
        assert verdict["failures"]

    def test_minimizer_shrinks_with_the_volume_fn(self, lost_commits):
        minimized = minimize(
            dict(self.PARAMS), seed=0, fn=volume_torture_point
        )
        assert minimized["params"]["ops"] <= self.PARAMS["ops"]
        assert minimized["fn"] == (
            "repro.harness.torture:volume_torture_point"
        )
        assert not volume_torture_point(
            seed=0, **minimized["params"]
        )["ok"]

    def test_repro_artifact_is_volume_tagged(self, lost_commits, tmp_path):
        verdict = volume_torture_point(seed=0, **self.PARAMS)
        verdict["params"] = dict(self.PARAMS)
        minimized = {
            "params": dict(self.PARAMS), "seed": 0, "runs": 1,
            "fn": "repro.harness.torture:volume_torture_point",
        }
        path = write_repro(verdict, minimized, directory=str(tmp_path))
        assert "volume-" in os.path.basename(path)
        artifact = json.loads(open(path).read())
        assert artifact["fn"] == (
            "repro.harness.torture:volume_torture_point"
        )
        assert "volume_torture_point(" in artifact["reproduce"]
        assert artifact["failures"]
