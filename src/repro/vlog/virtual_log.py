"""The virtual log proper: an eagerly-written, tree-threaded log.

Section 3.2 of the paper: map entries cannot carry *forward* pointers
(eager writing makes the next entry's location unpredictable), so entries
are chained *backwards* from a log tail.  Overwriting an entry would strand
the chain, so the chain is generalised to a tree (Figure 3b): each new tail
points both at the previous root and "around" the entry it overwrites,
letting the overwritten block be recycled without recopying live entries.

Formally, the invariant this module maintains on the graph of *live*
records (the newest version of each map chunk) is:

    every live record except the tail has at least one in-edge
    from a live record.

Because every edge points from a newer record to a strictly older one, the
invariant implies every live record is reachable from the tail -- chase
in-edges newer-ward and you must arrive at the unique newest record.  On
overwrite of record ``B``, targets of ``B`` whose last live in-edge died
("orphans") are re-homed onto the new root's pointer slots; in the rare
case more orphans exist than slots, the overflow chunks are themselves
relocated (appended afresh), which restores their reachability trivially.
The recovery traversal is youngest-first by sequence number, pruning
pointers that land on recycled or stale blocks, exactly as Section 3.2
describes ("obsolete log entries can be recognized as such because their
updated versions are younger and traversed earlier").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.disk.disk import Disk
from repro.sim.stats import Breakdown
from repro.vlog.allocator import EagerAllocator
from repro.vlog.entries import COMMIT_CHUNK_BASE, MapRecord


@dataclass
class _Node:
    """In-memory shadow of one live on-disk record."""

    chunk_id: int
    seqno: int
    targets: List[int] = field(default_factory=list)
    #: transaction this record is a member of (0 = standalone).
    txn_id: int = 0
    #: True while a newer (uncommitted) version exists; the record stays
    #: in the graph so recovery can fall back to it if the transaction
    #: never commits.
    superseded: bool = False


class VirtualLog:
    """Maintains the on-disk virtual log of indirection-map chunks.

    Args:
        disk: The underlying simulated disk (accessed as the drive's own
            processor: no SCSI charge).
        allocator: Eager-writing allocator used to place each record.
        chunk_provider: Callable returning the *current* entry list for a
            chunk -- used when a chunk must be rewritten for reachability or
            by the compactor.
        block_size: Physical block size in bytes (one record per block).
    """

    #: Pointer slots in a record besides ``prev_root``.
    _BYPASS_SLOTS = 2

    def __init__(
        self,
        disk: Disk,
        allocator: EagerAllocator,
        chunk_provider: Callable[[int], List[int]],
        block_size: int = 4096,
    ) -> None:
        self.disk = disk
        self.allocator = allocator
        self.chunk_provider = chunk_provider
        self.block_size = block_size
        self.sectors_per_block = block_size // disk.sector_bytes
        self.tail: Optional[int] = None
        self.next_seqno = 1
        #: phys block -> live record shadow
        self._nodes: Dict[int, _Node] = {}
        #: chunk id -> phys block of its live record
        self._chunk_location: Dict[int, int] = {}
        #: phys block -> blocks of live records pointing at it.  Kept exact:
        #: when a record is deleted, its in- and out-edges are purged, so a
        #: recycled block never inherits stale edges.
        self._in_edges: Dict[int, Set[int]] = {}
        #: blocks freed by overwrites; owner recycles them (mark_free)
        self.appends = 0
        self.relocations = 0
        #: transaction bookkeeping: live member-record count per txn,
        #: commit-record slot per txn, and retired slots free for reuse.
        self._txn_live_members: Dict[int, int] = {}
        self._txn_slot: Dict[int, int] = {}
        #: Inverse of ``_txn_slot`` (commit slot -> txn), maintained at
        #: every mutation so the append path answers commit-slot payloads
        #: without rebuilding the reversed dict per record.
        self._slot_txn: Dict[int, int] = {}
        self._free_commit_slots: List[int] = []
        self._next_commit_slot = COMMIT_CHUNK_BASE
        self.last_txn_seen = 0
        self.recovered_committed_txns: Set[int] = set()
        #: True when the last recovery traversal hit an unreadable record
        #: (media failure, not normal pruning) -- the caller should fall
        #: back to a full-disk reconstruction.
        self.last_recovery_degraded = False

    def reset_volatile(self) -> None:
        """Drop all in-memory state (a crash on a fresh device)."""
        self.tail = None
        self.next_seqno = 1
        self._nodes.clear()
        self._chunk_location.clear()
        self._in_edges.clear()
        self._txn_live_members.clear()
        self._txn_slot.clear()
        self._slot_txn.clear()
        self._free_commit_slots.clear()
        self._next_commit_slot = COMMIT_CHUNK_BASE
        self.recovered_committed_txns = set()
        self.last_recovery_degraded = False

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def location_of(self, chunk_id: int) -> Optional[int]:
        """Physical block currently holding a chunk's record, if any."""
        return self._chunk_location.get(chunk_id)

    def live_blocks(self) -> Set[int]:
        """Physical blocks occupied by live log records."""
        return set(self._nodes)

    def chunk_of_block(self, phys_block: int) -> Optional[int]:
        """Which chunk a live record block belongs to (None if not a record)."""
        node = self._nodes.get(phys_block)
        return node.chunk_id if node else None

    # ------------------------------------------------------------------
    # Appending (the one-disk-I/O map update of Section 3.2)
    # ------------------------------------------------------------------

    def _chunk_payload(self, chunk_id: int) -> List[int]:
        """Current contents of a chunk (commit slots answer locally)."""
        if chunk_id >= COMMIT_CHUNK_BASE:
            txn = self._slot_txn.get(chunk_id)
            return [txn] if txn is not None else [0]
        return self.chunk_provider(chunk_id)

    def append(
        self, chunk_id: int, entries: List[int], txn_id: int = 0
    ) -> Breakdown:
        """Write a new version of ``chunk_id``; returns the latency paid.

        Recycles the chunk's previous record block (if any) and any overflow
        relocations needed to preserve the reachability invariant.  With a
        nonzero ``txn_id`` the record is a transaction member; use
        :meth:`append_txn_member` for the deferred-recycle variant.
        """
        breakdown = Breakdown()
        worklist: List[Tuple[int, List[int], int]] = [
            (chunk_id, entries, txn_id)
        ]
        # Safety valve: relocation cascades must converge long before this.
        budget = 4 * (len(self._chunk_location) + 2)
        while worklist:
            if budget <= 0:
                raise RuntimeError("virtual-log relocation cascade diverged")
            budget -= 1
            cid, payload, txn = worklist.pop()
            overflow = self._append_one(cid, payload, breakdown, txn_id=txn)
            for orphan_chunk in overflow:
                self.relocations += 1
                worklist.append(
                    (orphan_chunk, self._chunk_payload(orphan_chunk), 0)
                )
        return breakdown

    def relocate(self, chunk_id: int) -> Breakdown:
        """Rewrite a chunk's record elsewhere (used by the compactor)."""
        if chunk_id not in self._chunk_location:
            raise KeyError(f"chunk {chunk_id} has no live record")
        self.relocations += 1
        return self.append(chunk_id, self._chunk_payload(chunk_id))

    def _append_one(
        self,
        chunk_id: int,
        entries: List[int],
        breakdown: Breakdown,
        txn_id: int = 0,
        keep_old: bool = False,
    ) -> List[int]:
        """Append one record; returns chunk ids needing relocation.

        ``keep_old`` defers recycling the superseded record: it stays in
        the graph (marked superseded) so that recovery can fall back to it
        while the enclosing transaction is not yet committed.
        """
        old_block = self._chunk_location.get(chunk_id)
        # Collect orphans: targets of the overwritten record whose last live
        # in-edge is about to disappear.
        orphans: List[int] = []
        if old_block is not None and not keep_old:
            for target in self._nodes[old_block].targets:
                if self._in_edges.get(target) == {old_block}:
                    orphans.append(target)
        # Pointer slots: prev_root plus bypasses.
        slots: List[Optional[int]] = []
        if self.tail is not None and (keep_old or self.tail != old_block):
            slots.append(self.tail)
        slot_capacity = 1 + self._BYPASS_SLOTS
        overflow_chunks: List[int] = []
        for orphan in orphans:
            if len(slots) < slot_capacity:
                slots.append(orphan)
            else:
                overflow_chunks.append(self._nodes[orphan].chunk_id)
        while len(slots) < slot_capacity:
            slots.append(None)
        record = MapRecord(
            chunk_id=chunk_id,
            seqno=self.next_seqno,
            entries=list(entries),
            prev_root=slots[0],
            bypass1=slots[1],
            bypass2=slots[2],
            txn_id=txn_id,
        )
        self.next_seqno += 1
        # Place and write the record near the head (no SCSI charge: this is
        # the drive's own processor at work).
        new_block = self.allocator.allocate(self.sectors_per_block)
        sector = new_block * self.sectors_per_block
        breakdown.add(
            self.disk.write(
                sector,
                self.sectors_per_block,
                record.pack(self.block_size),
                charge_scsi=False,
            )
        )
        # Update the in-memory graph: add the new node ...
        node = _Node(chunk_id=chunk_id, seqno=record.seqno, txn_id=txn_id)
        node.targets = [s for s in slots if s is not None]
        self._nodes[new_block] = node
        for target in node.targets:
            self._in_edges.setdefault(target, set()).add(new_block)
        self._chunk_location[chunk_id] = new_block
        self.tail = new_block
        self.appends += 1
        if txn_id:
            self._txn_live_members[txn_id] = (
                self._txn_live_members.get(txn_id, 0) + 1
            )
            self.last_txn_seen = max(self.last_txn_seen, txn_id)
        # ... then delete the overwritten one and recycle its block --
        # unless a transaction needs it to remain recoverable.
        if old_block is not None:
            if keep_old:
                self._nodes[old_block].superseded = True
            else:
                self._delete_node(old_block)
        return overflow_chunks

    # ------------------------------------------------------------------
    # Transactions (atomic multi-chunk updates, Section 3.2's promise)
    # ------------------------------------------------------------------

    def begin_txn(self) -> int:
        """Allocate a fresh transaction id."""
        self.last_txn_seen += 1
        return self.last_txn_seen

    def append_txn_member(
        self, chunk_id: int, entries: List[int], txn_id: int
    ) -> Tuple[Breakdown, Optional[int]]:
        """Append a transaction member; the superseded record is *not*
        recycled yet.  Returns ``(cost, superseded_block_or_None)``."""
        if txn_id <= 0:
            raise ValueError("transaction ids are positive")
        old_block = self._chunk_location.get(chunk_id)
        breakdown = Breakdown()
        overflow = self._append_one(
            chunk_id, entries, breakdown, txn_id=txn_id, keep_old=True
        )
        assert not overflow  # keep_old never orphans anything
        return breakdown, old_block

    def commit_txn(
        self, txn_id: int, superseded: List[int]
    ) -> Breakdown:
        """Make a transaction durable: write its commit record, then
        recycle the superseded member predecessors."""
        if txn_id <= 0:
            raise ValueError("transaction ids are positive")
        slot = self._allocate_commit_slot()
        self._txn_slot[txn_id] = slot
        self._slot_txn[slot] = txn_id
        breakdown = self.append(slot, [txn_id])
        for block in superseded:
            if block in self._nodes:
                breakdown.add(self._delete_with_repair(block))
        return breakdown

    def abort_txn(self, txn_id: int, restore) -> Breakdown:
        """Undo an uncommitted transaction.

        ``restore(chunk_id)`` must return the chunk's *pre-transaction*
        contents; fresh standalone records supersede the uncommitted
        members (whose blocks recycle normally).
        """
        breakdown = Breakdown()
        members = [
            node.chunk_id
            for node in self._nodes.values()
            if node.txn_id == txn_id and not node.superseded
        ]
        for chunk_id in members:
            breakdown.add(self.append(chunk_id, restore(chunk_id)))
        # The superseded pre-transaction records are now stale duplicates
        # of their chunks; recycle them.
        stale = [
            block
            for block, node in self._nodes.items()
            if node.superseded and self._chunk_location.get(node.chunk_id) != block
        ]
        for block in stale:
            node = self._nodes.get(block)
            if node is not None and node.superseded:
                breakdown.add(self._delete_with_repair(block))
        return breakdown

    def _allocate_commit_slot(self) -> int:
        # Prefer retired slots (their transactions have no live members,
        # so superseding their record loses nothing).
        while self._free_commit_slots:
            slot = self._free_commit_slots.pop()
            return slot
        slot = self._next_commit_slot
        self._next_commit_slot += 1
        return slot

    def _on_txn_member_deleted(self, txn_id: int) -> None:
        remaining = self._txn_live_members.get(txn_id, 0) - 1
        if remaining > 0:
            self._txn_live_members[txn_id] = remaining
            return
        self._txn_live_members.pop(txn_id, None)
        slot = self._txn_slot.pop(txn_id, None)
        if slot is not None:
            self._slot_txn.pop(slot, None)
            self._free_commit_slots.append(slot)

    def _delete_with_repair(self, block: int) -> Breakdown:
        """Delete a node outside the append path, re-homing any records it
        alone kept reachable by relocating their chunks."""
        breakdown = Breakdown()
        node = self._nodes.get(block)
        if node is None:
            return breakdown
        orphans = [
            target
            for target in node.targets
            if self._in_edges.get(target) == {block}
        ]
        self._delete_node(block)
        for orphan in orphans:
            orphan_node = self._nodes.get(orphan)
            if orphan_node is not None and orphan == self._chunk_location.get(
                orphan_node.chunk_id
            ):
                breakdown.add(
                    self.append(
                        orphan_node.chunk_id,
                        self._chunk_payload(orphan_node.chunk_id),
                    )
                )
            elif orphan_node is not None:
                # A superseded record lost its last edge; recycle it too.
                breakdown.add(self._delete_with_repair(orphan))
        return breakdown

    def _delete_node(self, block: int) -> None:
        node = self._nodes.pop(block)
        if node.txn_id:
            self._on_txn_member_deleted(node.txn_id)
        # Purge out-edges ...
        for target in node.targets:
            parents = self._in_edges.get(target)
            if parents is not None:
                parents.discard(block)
                if not parents:
                    del self._in_edges[target]
        # ... and in-edges: parents drop their (now dangling) pointer from
        # the in-memory view, so a future occupant of this block never
        # inherits it.  (On disk the pointer remains; recovery prunes it by
        # record validation and sequence-number ordering.)
        for parent in self._in_edges.pop(block, ()):  # type: ignore[arg-type]
            parent_node = self._nodes.get(parent)
            if parent_node is not None and block in parent_node.targets:
                parent_node.targets.remove(block)
        self.allocator.free_block(block, self.sectors_per_block)

    # ------------------------------------------------------------------
    # Recovery (Section 3.2's youngest-first tree traversal)
    # ------------------------------------------------------------------

    def recover_from_tail(
        self,
        tail_block: int,
        timed: bool = True,
        repair: bool = True,
        reader=None,
    ) -> Tuple[Dict[int, List[int]], Breakdown, int]:
        """Rebuild chunk contents by traversing the tree from ``tail_block``.

        Returns ``(chunks, breakdown, records_read)`` where ``chunks`` maps
        chunk id to its youngest entry list.  Also rebuilds this object's
        in-memory state so normal operation can resume.

        ``timed=False`` reads via :meth:`Disk.peek` (no simulated time), for
        tests that only care about correctness.

        ``repair=False`` defers the reachability repair (relocating chunks
        the pruned tree no longer reaches): the owner must call
        :meth:`repair_reachability` once its free-space map reflects the
        recovered state, or the relocation writes could land on live data.

        ``reader`` (optional) is a fault-tolerant read callable
        ``reader(sector, count, breakdown) -> Optional[bytes]`` returning
        ``None`` for an unreadable run.  An unreadable *tail* raises
        ``ValueError`` (the caller falls back to scanning); an unreadable
        interior record merely prunes that edge and sets
        :attr:`last_recovery_degraded` so the caller can escalate to a
        full-disk reconstruction.
        """
        import heapq

        breakdown = Breakdown()
        self.last_recovery_degraded = False
        visited: Set[int] = set()
        records: Dict[int, MapRecord] = {}
        heap: List[Tuple[int, int]] = []

        def read_record(block: int) -> Optional[MapRecord]:
            sector = block * self.sectors_per_block
            if reader is not None:
                raw = reader(sector, self.sectors_per_block, breakdown)
                if raw is None:
                    # Media failure (not normal pruning): remember it.
                    self.last_recovery_degraded = True
                    return None
            elif timed:
                raw, cost = self.disk.read(
                    sector, self.sectors_per_block, charge_scsi=False
                )
                breakdown.add(cost)
            else:
                raw = self.disk.peek(sector, self.sectors_per_block)
            return MapRecord.unpack(raw)

        first = read_record(tail_block)
        if first is None:
            raise ValueError(f"block {tail_block} does not hold a map record")
        heapq.heappush(heap, (-first.seqno, tail_block))
        records[tail_block] = first
        while heap:
            neg_seqno, block = heapq.heappop(heap)
            if block in visited:
                continue
            visited.add(block)
            record = records[block]
            for pointer in record.pointers():
                if pointer in visited or pointer in records:
                    continue
                child = read_record(pointer)
                if child is None:
                    continue  # recycled block: prune this edge
                if child.seqno >= record.seqno:
                    # A younger record reused this block; the edge is stale.
                    continue
                records[pointer] = child
                heapq.heappush(heap, (-child.seqno, pointer))

        map_chunks = self._install_recovered(records, repair=repair)
        return map_chunks, breakdown, len(visited)

    def recover_from_records(
        self, records: Dict[int, MapRecord], repair: bool = True
    ) -> Tuple[Dict[int, List[int]], int]:
        """Rebuild from *every* valid record found by a full-disk scan.

        The last-resort reconstruction when the tail traversal is degraded
        by unreadable records: threading is ignored entirely and the
        youngest valid version of each chunk wins, which is sound because
        sequence numbers are globally ordered and stale records are only
        recycled *after* their successor commits.  Returns
        ``(map_chunks, records_considered)``.
        """
        map_chunks = self._install_recovered(dict(records), repair=repair)
        return map_chunks, len(records)

    def _install_recovered(
        self, records: Dict[int, MapRecord], repair: bool
    ) -> Dict[int, List[int]]:
        """Select effective chunk versions and rebuild in-memory state."""
        candidates: Dict[int, List[Tuple[int, int]]] = {}
        committed: Set[int] = set()
        for block, record in records.items():
            candidates.setdefault(record.chunk_id, []).append(
                (record.seqno, block)
            )
            if record.is_commit and record.entries:
                committed.add(record.entries[0])
        # Effective youngest per chunk: skip versions belonging to
        # transactions whose commit record was never found -- the
        # all-or-nothing guarantee (Section 3.2's atomic writes).
        youngest: Dict[int, Tuple[int, int]] = {}
        chunks: Dict[int, List[int]] = {}
        for chunk_id, versions in candidates.items():
            for seqno, block in sorted(versions, reverse=True):
                record = records[block]
                if record.txn_id and record.txn_id not in committed:
                    continue  # uncommitted: fall back to an older version
                youngest[chunk_id] = (seqno, block)
                chunks[chunk_id] = list(record.entries)
                break

        self._rebuild_state(youngest, records, repair=repair)
        # Expose transaction outcomes to owners (for id reuse and space
        # reclamation of uncommitted data blocks).
        self.recovered_committed_txns = committed
        self.last_txn_seen = max(
            [self.last_txn_seen, *committed]
            + [r.txn_id for r in records.values()]
        )
        # Map-chunk contents only; commit records are internal.
        return {
            cid: payload
            for cid, payload in chunks.items()
            if cid < COMMIT_CHUNK_BASE
        }

    def _rebuild_state(
        self,
        youngest: Dict[int, Tuple[int, int]],
        records: Dict[int, MapRecord],
        repair: bool = True,
    ) -> None:
        """Reconstitute the in-memory graph from recovered records."""
        self._nodes.clear()
        self._chunk_location.clear()
        self._in_edges.clear()
        live_blocks = {block for _seq, block in youngest.values()}
        max_seqno = 0
        tail_block: Optional[int] = None
        self._txn_live_members.clear()
        self._txn_slot.clear()
        self._slot_txn.clear()
        for chunk_id, (seqno, block) in youngest.items():
            record = records[block]
            node = _Node(
                chunk_id=chunk_id, seqno=seqno, txn_id=record.txn_id
            )
            node.targets = [
                p for p in record.pointers() if p in live_blocks
            ]
            self._nodes[block] = node
            self._chunk_location[chunk_id] = block
            if record.txn_id:
                self._txn_live_members[record.txn_id] = (
                    self._txn_live_members.get(record.txn_id, 0) + 1
                )
            if record.is_commit and record.entries:
                self._txn_slot[record.entries[0]] = chunk_id
                self._slot_txn[chunk_id] = record.entries[0]
            if seqno > max_seqno:
                max_seqno = seqno
                tail_block = block
        # Commit slots whose transactions no longer have live members are
        # free for reuse.
        self._free_commit_slots = []
        for txn in [
            t
            for t in self._txn_slot
            if self._txn_live_members.get(t, 0) == 0
        ]:
            slot = self._txn_slot.pop(txn)
            self._slot_txn.pop(slot, None)
            self._free_commit_slots.append(slot)
        if self._nodes:
            commit_ids = [
                c for c in self._chunk_location if c >= COMMIT_CHUNK_BASE
            ]
            if commit_ids:
                self._next_commit_slot = max(commit_ids) + 1
        for block, node in self._nodes.items():
            for target in node.targets:
                self._in_edges.setdefault(target, set()).add(block)
        self.tail = tail_block
        self.next_seqno = max_seqno + 1
        # After recovery the tail may no longer dominate every live record
        # (stale edges were pruned); rewriting any unreachable chunks
        # restores the invariant.  Owners that must rebuild their free map
        # first pass ``repair=False`` and call :meth:`repair_reachability`
        # themselves -- relocating before the free map knows which blocks
        # hold live data could allocate on top of them.
        if repair:
            self.repair_reachability()

    def repair_reachability(self) -> Breakdown:
        """Relocate any live records the tail no longer reaches, restoring
        the reachability invariant; returns the latency paid."""
        breakdown = Breakdown()
        for block in self._unreachable_live_blocks():
            node = self._nodes.get(block)
            if node is not None:
                breakdown.add(self.relocate(node.chunk_id))
        return breakdown

    def _unreachable_live_blocks(self) -> List[int]:
        """Live record blocks not reachable from the tail via live edges."""
        if self.tail is None:
            return []
        seen: Set[int] = set()
        stack = [self.tail]
        while stack:
            block = stack.pop()
            if block in seen:
                continue
            seen.add(block)
            stack.extend(
                t
                for t in self._nodes[block].targets
                if t not in seen and t in self._nodes
            )
        return [b for b in self._nodes if b not in seen]

    # ------------------------------------------------------------------
    # Invariant checking (used heavily by the test suite)
    # ------------------------------------------------------------------

    def invariant_violations(self) -> List[str]:
        """Every internal-consistency violation, as human-readable strings
        (empty means healthy).  The collecting form lets ``vlfsck`` report
        all problems at once instead of dying on the first."""
        problems: List[str] = []
        edges: Dict[int, Set[int]] = {}
        for block, node in self._nodes.items():
            if (
                not node.superseded
                and self._chunk_location.get(node.chunk_id) != block
            ):
                problems.append(
                    f"chunk {node.chunk_id} location desynchronised"
                )
            if len(node.targets) != len(set(node.targets)):
                problems.append(f"record {block} has duplicate out-edges")
            for target in node.targets:
                if target not in self._nodes:
                    problems.append(
                        f"record {block} holds dangling edge to {target}"
                    )
                else:
                    edges.setdefault(target, set()).add(block)
        if edges != self._in_edges:
            problems.append("in-edge sets desynchronised")
        for block, node in self._nodes.items():
            if block != self.tail and not self._in_edges.get(block):
                problems.append(f"live record {block} has no live in-edge")
        if self._nodes:
            if self.tail not in self._nodes:
                problems.append("tail must be a live record")
            else:
                tail_seqno = self._nodes[self.tail].seqno
                for block, node in self._nodes.items():
                    if block != self.tail and node.seqno >= tail_seqno:
                        problems.append(
                            f"record {block} is as young as the tail"
                        )
        if self.tail is None or self.tail in self._nodes:
            unreachable = self._unreachable_live_blocks()
            if unreachable:
                problems.append(
                    f"live records unreachable: {sorted(unreachable)}"
                )
        return problems

    def check_invariants(self) -> None:
        """Raise AssertionError when internal consistency is violated."""
        problems = self.invariant_violations()
        assert not problems, "; ".join(problems)
