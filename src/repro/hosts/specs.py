"""Host CPU overhead models.

The paper runs its benchmarks on two hosts: a 50 MHz SPARCstation-10 and a
167 MHz UltraSPARC-170 (Section 4).  Figure 9 shows that the host-side
("other") latency component -- system call entry, file system code, device
driver, and, on their platform, the simulator itself -- is a large fraction
of virtual-log latency on the slow host and shrinks on the fast one.

We model the host as a handful of per-event CPU charges.  The absolute values
are calibrated so that the Figure 9 percentage breakdowns and the Table 2
speed-up progression land near the paper's; the *scaling* between hosts is
the 50 MHz : 167 MHz clock ratio, which is what the paper's Table 2 exercise
varies.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HostSpec:
    """Per-event host CPU costs, in seconds.

    Attributes:
        name: Marketing name of the host.
        clock_mhz: CPU clock, used only for reporting.
        syscall_overhead: Cost of entering/leaving a system call and running
            generic file system code for one request.
        per_block_overhead: Additional cost per 4 KB block moved between user
            and kernel space (copying, buffer cache bookkeeping).
        interrupt_overhead: Cost of fielding one disk completion interrupt
            and running the driver's completion path.
    """

    name: str
    clock_mhz: float
    syscall_overhead: float
    per_block_overhead: float
    interrupt_overhead: float

    def request_overhead(self, blocks: int = 1) -> float:
        """Host CPU time for one file system request moving ``blocks`` blocks."""
        if blocks < 0:
            raise ValueError("block count must be non-negative")
        return (
            self.syscall_overhead
            + blocks * self.per_block_overhead
            + self.interrupt_overhead
        )


def _scaled(base: "HostSpec", name: str, clock_mhz: float) -> "HostSpec":
    """Derive a host spec by scaling CPU costs inversely with clock rate."""
    ratio = base.clock_mhz / clock_mhz
    return HostSpec(
        name=name,
        clock_mhz=clock_mhz,
        syscall_overhead=base.syscall_overhead * ratio,
        per_block_overhead=base.per_block_overhead * ratio,
        interrupt_overhead=base.interrupt_overhead * ratio,
    )


#: 50 MHz SPARCstation-10, 64 MB, Solaris 2.6 (the paper's primary host).
#: Calibrated so the Figure 9 breakdown puts "other" at roughly half of
#: virtual-log latency on this host, as the paper's bars show.
SPARCSTATION_10 = HostSpec(
    name="SPARCstation-10",
    clock_mhz=50.0,
    syscall_overhead=300e-6,
    per_block_overhead=120e-6,
    interrupt_overhead=80e-6,
)

#: 167 MHz UltraSPARC-170 (used in Section 5.4 to vary host speed).
ULTRASPARC_170 = _scaled(SPARCSTATION_10, "UltraSPARC-170", 167.0)

#: Registry by short name, used by the harness configuration layer.
HOSTS = {
    "sparc10": SPARCSTATION_10,
    "ultra170": ULTRASPARC_170,
}
