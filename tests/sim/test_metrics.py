"""OpCounters and LatencyHistogram: the accounting primitives the Disk
and the MetricsDevice interposer share."""

import pytest

from repro.sim.metrics import LatencyHistogram, OpCounters


class TestOpCounters:
    def test_starts_at_zero(self):
        c = OpCounters()
        assert c.as_dict() == {
            "reads": 0, "writes": 0, "sectors_read": 0,
            "sectors_written": 0, "busy_time": 0.0,
        }

    def test_note_read_and_write(self):
        c = OpCounters()
        c.note_read(8, 0.004)
        c.note_write(16, 0.002)
        c.note_write(8, 0.001)
        assert c.reads == 1 and c.sectors_read == 8
        assert c.writes == 2 and c.sectors_written == 24
        assert c.busy_time == pytest.approx(0.007)

    def test_reset(self):
        c = OpCounters()
        c.note_read(8, 0.004)
        c.reset()
        assert c.reads == 0 and c.busy_time == 0.0

    def test_repr_readable(self):
        c = OpCounters()
        c.note_write(8, 0.5)
        assert "writes=1" in repr(c)


class TestLatencyHistogram:
    def test_exact_count_and_sum(self):
        h = LatencyHistogram()
        for v in (0.001, 0.002, 0.004):
            h.record(v)
        assert h.count == 3
        assert h.sum == pytest.approx(0.007)
        assert h.mean() == pytest.approx(0.007 / 3)

    def test_log2_bucketing(self):
        h = LatencyHistogram()  # base 1us
        h.record(1.5e-6)   # [1us, 2us)  -> bucket 0
        h.record(3e-6)     # [2us, 4us)  -> bucket 1
        h.record(3.9e-6)
        assert h.buckets == {0: 1, 1: 2}

    def test_underflow_bucket(self):
        h = LatencyHistogram()
        h.record(0.0)
        h.record(5e-7)
        assert h.buckets == {-1: 2}
        assert h.sum == pytest.approx(5e-7)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            LatencyHistogram().record(-1.0)
        with pytest.raises(ValueError):
            LatencyHistogram(base=0.0)

    def test_percentile_is_bucket_upper_edge(self):
        h = LatencyHistogram()
        for _ in range(99):
            h.record(1.5e-6)  # bucket 0, upper edge 2us
        h.record(1e-3)        # a single slow outlier
        assert h.percentile(0.5) == pytest.approx(2e-6)
        assert h.percentile(1.0) >= 1e-3

    def test_percentile_bounds_checked(self):
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(1.5)

    def test_empty_histogram_percentile_is_nan(self):
        # "No data" must not read as "instantaneous": an empty histogram
        # (common for near-empty NVM destage histograms on quick runs)
        # reports NaN for every quantile, never 0.0 or an index error.
        import math as _math

        empty = LatencyHistogram()
        for fraction in (0.0, 0.5, 0.99, 0.999, 1.0):
            assert _math.isnan(empty.percentile(fraction))
        assert all(_math.isnan(v) for v in empty.percentiles().values())

    def test_single_sample_histogram(self):
        h = LatencyHistogram()
        h.record(1.5e-6)  # bucket 0, upper edge 2us
        for fraction in (0.0, 0.5, 0.99, 0.999, 1.0):
            assert h.percentile(fraction) == pytest.approx(2e-6)

    def test_two_sample_histogram(self):
        h = LatencyHistogram()
        h.record(1.5e-6)  # bucket 0, upper edge 2us
        h.record(1e-3)    # a much slower second sample
        # Nearest-rank: p50 resolves to the fast sample, the tail
        # quantiles to the slow one -- defined values at every fraction.
        assert h.percentile(0.5) == pytest.approx(2e-6)
        assert h.percentile(0.99) >= 1e-3
        assert h.percentile(0.999) >= 1e-3

    def test_merge(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        a.record(1.5e-6)
        b.record(1.5e-6)
        b.record(1e-3)
        a.merge(b)
        assert a.count == 3
        assert a.buckets[0] == 2

    def test_merge_rejects_mismatched_base(self):
        with pytest.raises(ValueError):
            LatencyHistogram(base=1e-6).merge(LatencyHistogram(base=1e-3))

    def test_as_dict_keys_are_readable(self):
        h = LatencyHistogram()
        h.record(1.5e-6)
        assert h.as_dict() == {"<2us": 1}

    def test_reset(self):
        h = LatencyHistogram()
        h.record(1.0)
        h.reset()
        assert h.count == 0 and h.sum == 0.0 and h.buckets == {}
