"""The NVM write-ahead tier: absorption, reads, destage, backpressure."""

import pytest

from repro.blockdev.nvm import NVM_SPECS, NVMSpec
from repro.blockdev.regular import RegularDisk
from repro.disk.disk import Disk
from repro.disk.specs import ST19101
from repro.nvm import NVWal
from repro.sim.clock import SimClock
from repro.vlog.vld import VirtualLogDisk


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def disk(clock):
    return Disk(ST19101, clock)


@pytest.fixture
def vld(disk):
    return VirtualLogDisk(disk)


@pytest.fixture
def wal(vld):
    return NVWal(vld)


def _blk(byte, size=4096):
    return bytes([byte]) * size


class TestAbsorption:
    def test_small_write_does_not_touch_backing(self, wal, vld):
        before = vld.disk.clock.now
        wal.write_block(5, _blk(0x55))
        assert wal.absorbed_writes == 1
        assert wal.dirty_blocks == 1
        # The backing VLD has no mapping yet: the write lives in NVM only.
        assert vld.imap.get(5) is None

    def test_ack_is_orders_faster_than_backing(self, wal, vld, clock):
        wal.write_block(5, _blk(0x55))
        nvm_ack = clock.now
        vld.write_block(6, _blk(0x66))
        disk_ack = clock.now - nvm_ack
        assert nvm_ack < disk_ack / 100

    def test_read_your_writes_from_tier(self, wal):
        wal.write_block(5, _blk(0x55))
        data, _ = wal.read_block(5)
        assert data == _blk(0x55)

    def test_clean_read_passes_through(self, wal, vld):
        vld.write_block(9, _blk(0x99))
        data, _ = wal.read_block(9)
        assert data == _blk(0x99)

    def test_mixed_run_read_stitches_tier_and_backing(self, wal, vld):
        vld.write_blocks(10, 4, _blk(0xAA) * 4)
        wal.write_block(11, _blk(0xBB))
        wal.trim(13, 1)
        data, _ = wal.read_blocks(10, 4)
        assert data == _blk(0xAA) + _blk(0xBB) + _blk(0xAA) + bytes(4096)

    def test_large_write_bypasses_tier(self, wal, vld):
        count = wal.absorb_max_blocks + 1
        payload = _blk(0xCC) * count
        wal.write_blocks(0, count, payload)
        assert wal.bypassed_writes == 1
        assert wal.dirty_blocks == 0
        data, _ = vld.read_blocks(0, count)
        assert data == payload

    def test_bypass_drains_overlapping_dirty_first(self, wal, vld):
        wal.write_block(3, _blk(0x11))  # older, absorbed
        count = wal.absorb_max_blocks + 1
        payload = _blk(0x22) * count
        wal.write_blocks(0, count, payload)  # newer, bypassed, overlaps
        # Tier drained before the bypass: nothing can destage (or replay)
        # stale 0x11 bytes over the newer passthrough data.
        assert wal.dirty_blocks == 0
        data, _ = wal.read_block(3)
        assert data == _blk(0x22)

    def test_partial_write_through_tier(self, wal):
        wal.write_block(9, _blk(0x11))
        wal.write_partial(9, 1024, b"\x22" * 1024)
        data, _ = wal.read_block(9)
        assert data[:1024] == b"\x11" * 1024
        assert data[1024:2048] == b"\x22" * 1024
        assert data[2048:] == b"\x11" * 2048

    def test_trim_reads_zero(self, wal, vld):
        vld.write_block(4, _blk(0x44))
        wal.trim(4, 1)
        data, _ = wal.read_block(4)
        assert data == bytes(4096)


class TestDestage:
    def test_idle_destages_to_backing(self, wal, vld):
        wal.write_block(5, _blk(0x55))
        wal.idle(1.0)
        assert wal.dirty_blocks == 0
        assert vld.imap.get(5) is not None
        data, _ = vld.read_block(5)
        assert data == _blk(0x55)

    def test_destage_resets_log(self, wal):
        wal.write_block(5, _blk(0x55))
        wal.idle(1.0)
        assert wal.log_resets == 1
        assert wal.stats()["dirty_blocks"] == 0

    def test_idle_budget_reaches_backing_compactor(self, wal, vld):
        # The idle chain must hand leftover time to the backing store:
        # the VLD's own idle machinery still gets its grant.
        wal.write_block(5, _blk(0x55))
        start = wal.clock.now
        wal.idle(2.0)
        assert wal.clock.now == pytest.approx(start + 2.0)

    def test_zero_budget_idle_is_safe(self, wal):
        wal.write_block(5, _blk(0x55))
        wal.idle(0.0)

    def test_destage_preserves_later_overwrite(self, wal, vld):
        wal.write_block(5, _blk(0x55))
        wal.write_block(5, _blk(0x66))
        wal.destage_all()
        data, _ = vld.read_block(5)
        assert data == _blk(0x66)

    def test_trim_destages_to_backing_trim(self, wal, vld):
        vld.write_block(4, _blk(0x44))
        wal.trim(4, 1)
        wal.destage_all()
        assert vld.imap.get(4) is None

    def test_backpressure_destages_when_log_full(self, disk):
        vld = VirtualLogDisk(disk)
        # ~96 KiB of NVM: a handful of 4 KiB records before backpressure.
        spec = NVM_SPECS["nvdimm"].with_overrides(capacity_bytes=96 << 10)
        wal = NVWal(vld, spec=spec)
        for i in range(60):
            wal.write_block(i, _blk(i & 0xFF))
        assert wal.pressure_destages > 0
        # Every write is still readable with the newest contents.
        for i in range(60):
            data, _ = wal.read_block(i)
            assert data == _blk(i & 0xFF)

    def test_power_down_drains_then_stops_backing(self, wal, vld):
        wal.write_block(5, _blk(0x55))
        wal.power_down()
        assert wal.dirty_blocks == 0
        outcome = wal.recover()
        assert outcome.replayed_records == 0
        assert outcome.used_power_down_record  # delegated to the VLD

    def test_works_over_regular_disk(self, clock):
        disk = Disk(ST19101, clock)
        device = RegularDisk(disk)
        wal = NVWal(device)
        wal.write_block(5, _blk(0x55))
        data, _ = wal.read_block(5)
        assert data == _blk(0x55)
        wal.idle(1.0)
        data, _ = device.read_block(5)
        assert data == _blk(0x55)
        # power_down/recover degrade gracefully on a recovery-less device.
        wal.write_block(6, _blk(0x66))
        wal.power_down()
        outcome = wal.recover()
        assert outcome.inner is None
        assert not outcome.used_power_down_record


class TestCapacityGuards:
    def test_rejects_nvm_too_small_for_one_record(self, vld):
        with pytest.raises(ValueError):
            NVWal(vld, spec=NVMSpec(capacity_bytes=1 << 10))

    def test_oversized_record_bypasses(self, vld):
        # absorb_max_blocks would allow it, but the log cannot hold it.
        spec = NVM_SPECS["nvdimm"].with_overrides(capacity_bytes=96 << 10)
        wal = NVWal(vld, spec=spec, absorb_max_blocks=64)
        payload = _blk(0xDD) * 32  # 128 KiB > 96 KiB log
        wal.write_blocks(0, 32, payload)
        assert wal.bypassed_writes == 1
        data, _ = vld.read_blocks(0, 32)
        assert data == payload
