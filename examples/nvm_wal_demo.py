#!/usr/bin/env python3
"""The NVM write-ahead tier, end to end (DESIGN.md Section 16).

Four short stories:

* a synchronous 4 KB write acks at NVM store+flush speed -- microseconds
  -- instead of waiting out a disk revolution;
* the dirty blocks destage to the backing Virtual Log Disk during idle
  time, leaving an empty log;
* power loss *between* the NVM commit and the destage: recovery scans
  the NVM log, recovers the VLD underneath, and replays every acked
  write -- nothing acked is lost;
* a torn final record (half-persisted at the instant of the crash) is
  detected by its CRC and discarded; every record before it replays.

Run:  python examples/nvm_wal_demo.py
"""

from repro.blockdev.interpose import DeviceCrashed
from repro.blockdev.nvm import NVM_SPECS
from repro.disk import Disk, ST19101
from repro.nvm import NVWal, NVWalInjector
from repro.vlog.resilience import vlfsck
from repro.vlog.vld import VirtualLogDisk


def _blk(byte: int) -> bytes:
    return bytes([byte]) * 4096


def ack_latency_story() -> None:
    print("== Synchronous write ack: eager VLD vs NVM tier ==")
    vld = VirtualLogDisk(Disk(ST19101))
    clock = vld.disk.clock
    start = clock.now
    vld.write_block(0, _blk(0x11))
    eager = clock.now - start

    wal = NVWal(VirtualLogDisk(Disk(ST19101)))
    clock = wal.inner.disk.clock
    start = clock.now
    wal.write_block(0, _blk(0x11))
    nvm = clock.now - start
    print(f"  eager VLD write ack : {eager * 1e3:8.3f} ms")
    print(f"  NVM-absorbed ack    : {nvm * 1e3:8.3f} ms "
          f"({eager / nvm:,.0f}x faster)")
    print()


def destage_story() -> None:
    print("== Idle-time destage ==")
    wal = NVWal(VirtualLogDisk(Disk(ST19101)))
    for lba in range(8):
        wal.write_block(lba, _blk(0x20 + lba))
    before = wal.dirty_blocks
    backing_before = wal.inner.imap.get(0)
    wal.idle(0.25)  # a quarter second of simulated idle time
    print(f"  dirty blocks before idle: {before} "
          f"(backing map for lba 0: {backing_before})")
    print(f"  dirty blocks after idle : {wal.dirty_blocks} "
          f"(backing map for lba 0: {wal.inner.imap.get(0)})")
    print(f"  log resets: {wal.log_resets} -- the drained log restarts "
          f"at a new epoch")
    print()


def crash_before_destage_story() -> None:
    print("== Crash between NVM commit and destage ==")
    vld = VirtualLogDisk(Disk(ST19101))
    wal = NVWal(vld)
    expected = {lba: _blk(0x40 + lba) for lba in range(10)}
    for lba, payload in expected.items():
        wal.write_block(lba, payload)
    print(f"  {len(expected)} writes acked, {wal.dirty_blocks} still "
          f"dirty in NVM, backing VLD untouched")
    wal.crash()
    outcome = wal.recover()
    ok = all(wal.read_block(l)[0] == p for l, p in expected.items())
    clean = not vlfsck(vld).violations
    print(f"  recovery replayed {outcome.replayed_records} records / "
          f"{outcome.replayed_blocks} blocks "
          f"(intact: {ok}, vlfsck clean: {clean})")
    print()


def torn_tail_story() -> None:
    print("== Torn final record ==")
    vld = VirtualLogDisk(Disk(ST19101))
    wal = NVWal(vld)
    wal.injector = NVWalInjector(crash_after_appends=4, torn=True)
    survived = {}
    try:
        for lba in range(8):
            payload = _blk(0x60 + lba)
            wal.write_block(lba, payload)
            survived[lba] = payload  # only reached for acked writes
    except DeviceCrashed:
        print(f"  power failed mid-append of record {len(survived) + 1}; "
              f"{len(survived)} writes were acked before it")
    wal.injector = None
    wal.crash()
    outcome = wal.recover()
    ok = all(wal.read_block(l)[0] == p for l, p in survived.items())
    print(f"  torn tail detected: {outcome.torn_tail}; replayed "
          f"{outcome.replayed_records} acked records (intact: {ok})")
    print()


def main() -> None:
    ack_latency_story()
    destage_story()
    crash_before_destage_story()
    torn_tail_story()
    print("every acked write survived; the torn record never acked")


if __name__ == "__main__":
    main()
