"""The NVM write-ahead tier: absorb sync writes, destage at idle.

:class:`NVWal` wraps any :class:`~repro.blockdev.interface.BlockDevice`
and turns every synchronous write into an appended, CRC-chained record in
a byte-addressable :class:`~repro.blockdev.nvm.NVMDevice` log.  The
acknowledgement point is the NVM *flush* -- microseconds -- instead of
the backing store's media write; dirty blocks are served back from the
tier (read-your-writes) and written to the backing store during idle
time, through an :class:`~repro.sched.idle.IdleManager` worker chain
whose last worker hands the remaining budget to the backing device's own
idle machinery (the VLD's scrubber and compactor keep their slots).

Two-tier commit point
---------------------

A write is durable the moment its record is inside the NVM persistence
domain; the backing store's own commit point (the VLD's map-chunk
append) only matters for blocks already destaged.  On recovery the NVM
log is scanned *first* -- epoch tag, per-record CRC, and a strictly
sequential seqno chain identify the valid prefix, so a store torn by the
crash (or anything after it) is discarded exactly like the virtual log's
own torn tail.  The backing store then runs its normal
``power_down``-record / ``scan_for_tail`` pipeline, and finally the
surviving NVM records are replayed onto it and the log is reset.
Replayed writes are idempotent: a record that was already destaged
before the crash rewrites the same bytes.

Log format (offsets in NVM bytes)::

    [0, 64)   superblock: magic, epoch, crc
    [64, ...) records, appended contiguously:
                magic, epoch, seqno, lba, count, op, crc | payload

Truncation is wholesale: once every dirty block has destaged, the epoch
is bumped and the superblock rewritten, which invalidates every old
record at once (their epoch tags no longer match).  There is no ring
arithmetic to recover through; a full log destages synchronously (the
backpressure a real bounded WAL applies).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.blockdev.interface import BlockDevice
from repro.blockdev.nvm import NVMDevice, NVMSpec, NVM_SPECS
from repro.sched.idle import IdleManager
from repro.sim.clock import SimClock
from repro.sim.metrics import LatencyHistogram
from repro.sim.stats import Breakdown

_SB_MAGIC = b"NVWALSB1"
_SB = struct.Struct("<8sII")  # magic, epoch, crc
#: First record offset; the superblock owns everything below it.
_DATA_START = 64

_REC_MAGIC = 0x4E564C47  # "NVLG"
_REC = struct.Struct("<IIqqiBI")  # magic, epoch, seqno, lba, count, op, crc

_OP_WRITE = 0
_OP_TRIM = 1


class NVWalInjector:
    """Crash injection at the tier's own commit point.

    Arms a :class:`~repro.blockdev.interpose.DeviceCrashed` on the
    ``crash_after_appends``-th record append.  With ``torn`` the fatal
    record persists only a prefix of its bytes (a store cut mid-flight by
    the power loss -- the CRC exposes it on replay); without, the record
    reaches the persistence domain and *then* the power drops, so the
    in-flight request legally reads back new.  Every earlier append was
    acknowledged and must survive -- the crash lands squarely between
    NVM commit and destage.
    """

    def __init__(self, crash_after_appends: int, torn: bool = False) -> None:
        if crash_after_appends <= 0:
            raise ValueError("crash_after_appends must be positive")
        self.crash_after_appends = crash_after_appends
        self.torn = torn
        self.appends_seen = 0

    def fatal(self) -> bool:
        """Count one append; ``True`` when this is the fatal one."""
        self.appends_seen += 1
        return self.appends_seen == self.crash_after_appends


@dataclass
class NVRecoveryOutcome:
    """What a two-tier :meth:`NVWal.recover` did.

    ``inner`` carries the backing store's own
    :class:`~repro.vlog.recovery.RecoveryOutcome` (``None`` for a
    backing device with no recovery machinery, e.g. a regular disk); the
    commonly-reported fields delegate to it so torture verdicts read the
    same either way.
    """

    #: Valid records found in the NVM log (the tier-1 commit point).
    replayed_records: int = 0
    #: Blocks written back to the backing store during replay.
    replayed_blocks: int = 0
    #: Trimmed blocks forwarded to the backing store during replay.
    replayed_trims: int = 0
    #: True when the scan stopped at a record that failed validation
    #: (a store torn by the crash) rather than at the clean tail.
    torn_tail: bool = False
    inner: Optional[object] = None
    breakdown: Breakdown = field(default_factory=Breakdown)

    @property
    def elapsed(self) -> float:
        return self.breakdown.total

    def _inner_field(self, name: str, default):
        return getattr(self.inner, name, default) if self.inner else default

    @property
    def used_power_down_record(self) -> bool:
        return self._inner_field("used_power_down_record", False)

    @property
    def scanned(self) -> bool:
        return self._inner_field("scanned", False)

    @property
    def degraded(self) -> bool:
        return self._inner_field("degraded", False)

    @property
    def reconstructed(self) -> bool:
        return self._inner_field("reconstructed", False)

    @property
    def records_read(self) -> int:
        return self._inner_field("records_read", 0)

    @property
    def media_errors(self) -> int:
        return self._inner_field("media_errors", 0)

    @property
    def quarantined_sectors(self) -> int:
        return self._inner_field("quarantined_sectors", 0)


class NVWal(BlockDevice):
    """A transparent write-ahead tier in front of a block device.

    Args:
        inner: The backing store (VLD, regular disk, anything).
        spec: The stable-memory part (:data:`~repro.blockdev.nvm.NVM_SPECS`).
        absorb_max_blocks: Writes longer than this bypass the tier
            straight to the backing store -- the WAL accelerates small
            synchronous writes, not streaming transfers.
        destage_run_blocks: Largest contiguous run one destage write
            sends down (the budget-check granularity during idle).
        clock: Shared simulation clock; defaults to the backing disk's.
    """

    def __init__(
        self,
        inner: BlockDevice,
        spec: Optional[NVMSpec] = None,
        absorb_max_blocks: int = 64,
        destage_run_blocks: int = 16,
        clock: Optional[SimClock] = None,
    ) -> None:
        if absorb_max_blocks <= 0 or destage_run_blocks <= 0:
            raise ValueError("block limits must be positive")
        self.inner = inner
        if clock is None:
            disk = getattr(inner, "disk", None)
            clock = getattr(disk, "clock", None) or SimClock()
        self.clock = clock
        self.spec = spec if spec is not None else NVM_SPECS["nvdimm"]
        min_capacity = _DATA_START + _REC.size + self.block_size
        if self.spec.capacity_bytes < min_capacity:
            raise ValueError(
                f"NVM capacity {self.spec.capacity_bytes} cannot hold even "
                f"one block record ({min_capacity} bytes)"
            )
        self.nvm = NVMDevice(self.spec, clock)
        self.absorb_max_blocks = absorb_max_blocks
        self.destage_run_blocks = destage_run_blocks
        self.injector: Optional[NVWalInjector] = None
        # Volatile tier state, rebuilt from the log by recover().
        self._dirty: Dict[int, bytes] = {}
        self._trimmed: Set[int] = set()
        self._epoch = 1
        self._seq = 0
        self._tail = _DATA_START
        # Counters and the destage/ack histograms.
        self.absorbed_writes = 0
        self.absorbed_blocks = 0
        self.bypassed_writes = 0
        self.destaged_blocks = 0
        self.pressure_destages = 0
        self.log_resets = 0
        self.ack_times = LatencyHistogram()
        self.destage_times = LatencyHistogram()
        self._write_superblock(timed=False)
        # The idle chain: destage first (free tier capacity, and give the
        # backing store real data to compact), then hand whatever budget
        # remains to the backing device's own idle machinery.
        self.idle_manager = IdleManager(clock)
        self.idle_manager.register(
            "nvm-destage",
            self._idle_destage,
            gate=lambda: bool(self._dirty or self._trimmed),
        )
        self.idle_manager.register(
            "backing", self._idle_inner, needs_time=False
        )

    # -- BlockDevice surface -------------------------------------------

    @property
    def block_size(self) -> int:  # type: ignore[override]
        return self.inner.block_size

    @property
    def num_blocks(self) -> int:  # type: ignore[override]
        return self.inner.num_blocks

    def __getattr__(self, name: str):
        if name == "inner":  # guard: __init__ not yet run
            raise AttributeError(name)
        return getattr(self.inner, name)

    # -- the log -------------------------------------------------------

    def _write_superblock(self, timed: bool = True) -> Breakdown:
        body = _SB.pack(_SB_MAGIC, self._epoch, 0)[:-4]
        crc = zlib.crc32(body) & 0xFFFFFFFF
        cost = self.nvm.store(0, _SB.pack(_SB_MAGIC, self._epoch, crc),
                              timed=timed)
        cost.add(self.nvm.flush(timed=timed))
        return cost

    def _read_superblock(self, timed: bool = True) -> Tuple[Optional[int],
                                                            Breakdown]:
        raw, cost = self.nvm.load(0, _SB.size, timed=timed)
        magic, epoch, stored = _SB.unpack(raw)
        if magic != _SB_MAGIC:
            return None, cost
        if zlib.crc32(raw[:-4]) & 0xFFFFFFFF != stored:
            return None, cost
        return epoch, cost

    def _record_bytes(self, op: int, lba: int, count: int,
                      payload: bytes) -> bytes:
        body = _REC.pack(_REC_MAGIC, self._epoch, self._seq, lba, count,
                         op, 0)[:-4]
        crc = zlib.crc32(body + payload) & 0xFFFFFFFF
        return (
            _REC.pack(_REC_MAGIC, self._epoch, self._seq, lba, count, op, crc)
            + payload
        )

    def _reset_log(self, timed: bool = True) -> Breakdown:
        """Invalidate every record at once by bumping the epoch."""
        self._epoch += 1
        self._seq = 0
        self._tail = _DATA_START
        self.log_resets += 1
        return self._write_superblock(timed=timed)

    def _append(self, op: int, lba: int, count: int,
                payload: bytes) -> Breakdown:
        """Append one record and flush it into the persistence domain --
        the tier's commit point.  Raises the armed injector's crash
        *after* counting the append, modelling power loss at (torn) or
        just after (not torn) the store."""
        total = Breakdown()
        record_len = _REC.size + len(payload)
        if self._tail + record_len > self.nvm.capacity_bytes:
            # Backpressure: the bounded log is full; destage everything
            # synchronously and start a fresh epoch before absorbing.
            self.pressure_destages += 1
            total.add(self._destage(None))
        # Built after any reset: the record must carry the live epoch/seqno.
        record = self._record_bytes(op, lba, count, payload)
        fatal = self.injector is not None and self.injector.fatal()
        if fatal and self.injector.torn:
            torn = record[: max(1, len(record) // 2)]
            self.nvm.store(self._tail, torn)
            self.nvm.flush()
            from repro.blockdev.interpose import DeviceCrashed

            raise DeviceCrashed(
                "power loss tore the NVM append",
                op="write" if op == _OP_WRITE else "trim",
                lba=lba, count=count,
            )
        total.add(self.nvm.store(self._tail, record))
        total.add(self.nvm.flush())
        self._tail += len(record)
        self._seq += 1
        if fatal:
            from repro.blockdev.interpose import DeviceCrashed

            raise DeviceCrashed(
                "power loss after the NVM append",
                op="write" if op == _OP_WRITE else "trim",
                lba=lba, count=count,
            )
        return total

    # -- writes --------------------------------------------------------

    def write_block(self, lba: int, data: Optional[bytes] = None) -> Breakdown:
        return self.write_blocks(lba, 1, data)

    def write_blocks(
        self, lba: int, count: int, data: Optional[bytes] = None
    ) -> Breakdown:
        self.check_lba(lba, count)
        data = self.check_data(data, count)
        record_len = _REC.size + count * self.block_size
        if (
            count > self.absorb_max_blocks
            or _DATA_START + record_len > self.nvm.capacity_bytes
        ):
            return self._write_through(lba, count, data)
        cost = self._append(_OP_WRITE, lba, count, data)
        bs = self.block_size
        for i in range(count):
            block = lba + i
            self._dirty[block] = data[i * bs : (i + 1) * bs]
            self._trimmed.discard(block)
        self.absorbed_writes += 1
        self.absorbed_blocks += count
        self.ack_times.record(cost.total)
        return cost

    def _write_through(self, lba: int, count: int, data: bytes) -> Breakdown:
        """Bypass for writes the tier does not absorb.  Any tier state
        overlapping the range must drain first: stale dirty blocks would
        otherwise destage (or replay) *over* the newer bypass data."""
        total = Breakdown()
        if any(
            lba + i in self._dirty or lba + i in self._trimmed
            for i in range(count)
        ):
            total.add(self._destage(None))
        self.bypassed_writes += 1
        total.add(self.inner.write_blocks(lba, count, data))
        return total

    def write_partial(self, lba: int, offset: int, data: bytes) -> Breakdown:
        """Read-modify-write through the tier: the WAL absorbs whole
        blocks, so a fragment write costs one block read (tier or
        backing) plus one absorbed block."""
        self.check_lba(lba)
        if offset < 0 or offset + len(data) > self.block_size:
            raise ValueError("partial write outside the block")
        total = Breakdown()
        if lba in self._dirty:
            current = self._dirty[lba]
            _, cost = self.nvm.load(0, len(current))
            total.add(cost)
        elif lba in self._trimmed:
            current = bytes(self.block_size)
        else:
            current, cost = self.inner.read_block(lba)
            total.add(cost)
        patched = current[:offset] + data + current[offset + len(data):]
        total.add(self.write_blocks(lba, 1, patched))
        return total

    def trim(self, lba: int, count: int = 1) -> Breakdown:
        """Log a trim record so a post-crash replay cannot resurrect the
        trimmed blocks; the backing store's trim runs at destage."""
        self.check_lba(lba, count)
        cost = self._append(_OP_TRIM, lba, count, b"")
        for i in range(count):
            block = lba + i
            self._dirty.pop(block, None)
            self._trimmed.add(block)
        return cost

    # -- reads ---------------------------------------------------------

    def _load_dirty(self, lba: int) -> Tuple[bytes, Breakdown]:
        data = self._dirty[lba]
        _, cost = self.nvm.load(0, len(data))
        return data, cost

    def read_block(self, lba: int) -> Tuple[bytes, Breakdown]:
        self.check_lba(lba)
        if lba in self._dirty:
            return self._load_dirty(lba)
        if lba in self._trimmed:
            _, cost = self.nvm.load(0, 0)
            return bytes(self.block_size), cost
        return self.inner.read_block(lba)

    def read_blocks(self, lba: int, count: int) -> Tuple[bytes, Breakdown]:
        self.check_lba(lba, count)
        if not any(
            lba + i in self._dirty or lba + i in self._trimmed
            for i in range(count)
        ):
            return self.inner.read_blocks(lba, count)
        pieces: List[bytes] = []
        total = Breakdown()
        run_start: Optional[int] = None
        for block in range(lba, lba + count + 1):
            tiered = block < lba + count and (
                block in self._dirty or block in self._trimmed
            )
            if not tiered and block < lba + count:
                if run_start is None:
                    run_start = block
                continue
            if run_start is not None:
                data, cost = self.inner.read_blocks(
                    run_start, block - run_start
                )
                pieces.append(data)
                total.add(cost)
                run_start = None
            if block < lba + count:
                if block in self._dirty:
                    data, cost = self._load_dirty(block)
                else:
                    _, cost = self.nvm.load(0, 0)
                    data = bytes(self.block_size)
                pieces.append(data)
                total.add(cost)
        return b"".join(pieces), total

    # -- destage -------------------------------------------------------

    def _trim_runs(self) -> List[Tuple[int, int]]:
        runs: List[Tuple[int, int]] = []
        for block in sorted(self._trimmed):
            if runs and block == runs[-1][0] + runs[-1][1]:
                runs[-1] = (runs[-1][0], runs[-1][1] + 1)
            else:
                runs.append((block, 1))
        return runs

    def _dirty_runs(self, cap: Optional[int]) -> List[Tuple[int, bytes]]:
        runs: List[Tuple[int, bytes]] = []
        for block in sorted(self._dirty):
            if (
                runs
                and cap is not None
                and len(runs[-1][1]) >= cap * self.block_size
            ):
                runs.append((block, self._dirty[block]))
            elif runs and block == runs[-1][0] + len(runs[-1][1]) // self.block_size:
                runs[-1] = (runs[-1][0], runs[-1][1] + self._dirty[block])
            else:
                runs.append((block, self._dirty[block]))
        return runs

    def _destage(self, deadline: Optional[float]) -> Breakdown:
        """Write tier state back to the backing store; with a deadline,
        stop between runs once the clock passes it.  A fully drained
        tier resets the log (wholesale truncation)."""
        total = Breakdown()
        start = self.clock.now
        inner_trim = getattr(self.inner, "trim", None)
        for block, count in self._trim_runs():
            if deadline is not None and self.clock.now >= deadline:
                break
            if inner_trim is not None:
                total.add(inner_trim(block, count))
            for i in range(count):
                self._trimmed.discard(block + i)
        if not self._trimmed:
            for block, data in self._dirty_runs(self.destage_run_blocks):
                if deadline is not None and self.clock.now >= deadline:
                    break
                count = len(data) // self.block_size
                total.add(self.inner.write_blocks(block, count, data))
                self.destaged_blocks += count
                for i in range(count):
                    self._dirty.pop(block + i, None)
        if not self._dirty and not self._trimmed and self._seq:
            total.add(self._reset_log())
        if self.clock.now > start:
            self.destage_times.record(self.clock.now - start)
        return total

    def destage_all(self) -> Breakdown:
        """Drain the whole tier synchronously (shutdown, or a test)."""
        return self._destage(None)

    # -- idle ----------------------------------------------------------

    def _idle_destage(self, budget: float) -> Breakdown:
        return self._destage(self.clock.now + budget)

    def _idle_inner(self, budget: float) -> Optional[Breakdown]:
        self.inner.idle(max(0.0, budget))
        return None

    def idle(self, seconds: float) -> None:
        self.idle_manager.grant(seconds)

    # -- shutdown, crash, recovery -------------------------------------

    def power_down(self, timed: bool = True) -> Breakdown:
        """Orderly shutdown: drain the tier, then the backing store's own
        power-down sequence.  A clean stop leaves an empty log."""
        total = self.destage_all()
        inner_down = getattr(self.inner, "power_down", None)
        if inner_down is not None:
            total.add(inner_down(timed))
        else:
            self.inner.idle(0.0)
        return total

    def crash(self) -> None:
        """Power loss: stores outside the NVM persistence domain are
        gone, all volatile tier state is gone, and the backing store
        crashes too.  Only :meth:`recover` may run next."""
        self.nvm.crash()
        self._dirty = {}
        self._trimmed = set()
        inner_crash = getattr(self.inner, "crash", None)
        if inner_crash is not None:
            inner_crash()

    def _scan_log(self, timed: bool = True) -> Tuple[
        List[Tuple[int, int, int, bytes]], bool, Breakdown
    ]:
        """Walk the NVM log: superblock epoch, then records while the
        (magic, epoch, seqno-chain, CRC) validation holds.  Returns
        ``(records, torn_tail, cost)`` with records as ``(op, lba,
        count, payload)`` in append order."""
        total = Breakdown()
        epoch, cost = self._read_superblock(timed=timed)
        total.add(cost)
        records: List[Tuple[int, int, int, bytes]] = []
        torn = False
        if epoch is None:
            # No valid superblock: a fresh part (all zeros) or one whose
            # superblock store itself tore.  Either way there is nothing
            # to replay.
            return records, torn, total
        self._epoch = epoch
        offset = _DATA_START
        expected_seq = 0
        capacity = self.nvm.capacity_bytes
        bs = self.block_size
        while offset + _REC.size <= capacity:
            raw, cost = self.nvm.load(offset, _REC.size, timed=timed)
            total.add(cost)
            magic, epoch_tag, seqno, lba, count, op, stored = _REC.unpack(raw)
            if magic != _REC_MAGIC or epoch_tag != self._epoch:
                break
            if seqno != expected_seq:
                torn = True
                break
            payload_len = count * bs if op == _OP_WRITE else 0
            if (
                count <= 0
                or op not in (_OP_WRITE, _OP_TRIM)
                or lba < 0
                or lba + count > self.num_blocks
                or offset + _REC.size + payload_len > capacity
            ):
                torn = True
                break
            payload, cost = self.nvm.load(
                offset + _REC.size, payload_len, timed=timed
            )
            total.add(cost)
            body = _REC.pack(magic, epoch_tag, seqno, lba, count, op, 0)[:-4]
            if zlib.crc32(body + payload) & 0xFFFFFFFF != stored:
                torn = True
                break
            records.append((op, lba, count, payload))
            offset += _REC.size + payload_len
            expected_seq += 1
        self._tail = offset
        self._seq = expected_seq
        return records, torn, total

    def recover(self, timed: bool = True) -> NVRecoveryOutcome:
        """Two-tier recovery: establish the NVM commit point (scan the
        log's valid prefix), run the backing store's own recovery
        pipeline, replay the surviving records onto it, reset the log."""
        records, torn, total = self._scan_log(timed=timed)
        # Rebuild the tier's view of the surviving records in order; the
        # final state per block is what replays (later records win).
        self._dirty = {}
        self._trimmed = set()
        bs = self.block_size
        replayed_blocks = 0
        replayed_trims = 0
        for op, lba, count, payload in records:
            if op == _OP_WRITE:
                for i in range(count):
                    block = lba + i
                    self._dirty[block] = payload[i * bs : (i + 1) * bs]
                    self._trimmed.discard(block)
            else:
                for i in range(count):
                    self._dirty.pop(lba + i, None)
                    self._trimmed.add(lba + i)
        inner_outcome = None
        inner_recover = getattr(self.inner, "recover", None)
        if inner_recover is not None:
            inner_outcome = inner_recover(timed)
            if inner_outcome is not None:
                total.add(inner_outcome.breakdown)
        replayed_blocks = len(self._dirty)
        replayed_trims = len(self._trimmed)
        total.add(self.destage_all())
        return NVRecoveryOutcome(
            replayed_records=len(records),
            replayed_blocks=replayed_blocks,
            replayed_trims=replayed_trims,
            torn_tail=torn,
            inner=inner_outcome,
            breakdown=total,
        )

    # -- reporting -----------------------------------------------------

    @property
    def dirty_blocks(self) -> int:
        return len(self._dirty)

    def stats(self) -> Dict[str, object]:
        return {
            "absorbed_writes": self.absorbed_writes,
            "absorbed_blocks": self.absorbed_blocks,
            "bypassed_writes": self.bypassed_writes,
            "destaged_blocks": self.destaged_blocks,
            "pressure_destages": self.pressure_destages,
            "log_resets": self.log_resets,
            "dirty_blocks": len(self._dirty),
            "trimmed_blocks": len(self._trimmed),
            "mean_ack_s": self.ack_times.mean(),
            "nvm": self.nvm.stats(),
        }

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        return (
            f"NVWal({self.spec.name}, dirty={len(self._dirty)}, "
            f"absorbed={self.absorbed_writes})"
        )
