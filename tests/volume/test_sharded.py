"""The sharded volume: striping layout, scatter/gather, fault
containment, and the volume-level fsck."""

import pytest

from repro.blockdev.interpose import DiskFaultInjector
from repro.harness.configs import build_sharded_volume
from repro.vlog.resilience import MediaError
from repro.volume import ShardUnavailable, ShardedVolume, volume_fsck


def small_volume(shards=3, stripe_blocks=4, **kwargs):
    return build_sharded_volume(
        shards=shards, stripe_blocks=stripe_blocks, num_cylinders=2,
        **kwargs,
    )


def payload(lba, size):
    return bytes([lba % 251]) * size


class TestLayout:
    def test_round_robin_bijection(self):
        volume, _, _ = small_volume()
        seen = set()
        for lba in range(volume.num_blocks):
            shard, s_lba = volume.shard_of(lba)
            assert 0 <= shard < volume.num_shards
            assert 0 <= s_lba < volume.shard_capacity
            assert volume.volume_lba(shard, s_lba) == lba
            seen.add((shard, s_lba))
        assert len(seen) == volume.num_blocks  # injective

    def test_stripes_rotate_across_shards(self):
        volume, _, _ = small_volume(shards=3, stripe_blocks=4)
        # Stripe t lands whole on shard t % 3.
        for stripe in range(6):
            shards = {
                volume.shard_of(stripe * 4 + w)[0] for w in range(4)
            }
            assert shards == {stripe % 3}

    def test_capacity_is_whole_stripes_times_shards(self):
        volume, devices, _ = small_volume()
        per_shard = min(d.num_blocks for d in devices)
        rows = per_shard // volume.stripe_blocks
        assert volume.num_blocks == rows * volume.stripe_blocks * 3
        assert volume.shard_capacity == rows * volume.stripe_blocks

    def test_plan_splits_into_contiguous_shard_runs(self):
        volume, _, _ = small_volume(shards=3, stripe_blocks=4)
        # A range spanning three stripes touches all three shards, one
        # contiguous run each.
        plan = volume._plan(2, 10)  # blocks 2..11: stripes 0, 1, 2
        assert [entry[0] for entry in plan] == [0, 1, 2]
        covered = []
        for _shard, _start, count, positions in plan:
            assert len(positions) == count
            covered.extend(positions)
        assert sorted(covered) == list(range(10))

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="at least one shard"):
            ShardedVolume([])
        volume, devices, _ = small_volume()
        with pytest.raises(ValueError, match="stripe width"):
            ShardedVolume(devices, stripe_blocks=0)


class TestScatterGather:
    def test_multi_stripe_write_reads_back_everywhere(self):
        volume, _, _ = small_volume(shards=3, stripe_blocks=4)
        size = volume.block_size
        data = b"".join(payload(lba, size) for lba in range(2, 12))
        volume.write_blocks(2, 10, data)
        # Bulk read...
        got, _ = volume.read_blocks(2, 10)
        assert got == data
        # ...and per-block reads agree (the scatter matches the gather).
        for lba in range(2, 12):
            one, _ = volume.read_block(lba)
            assert one == payload(lba, size)

    def test_single_block_ops_route_to_one_shard(self):
        volume, _, _ = small_volume()
        volume.write_block(5, payload(5, volume.block_size))
        shard, _ = volume.shard_of(5)
        assert volume.shard_calls[shard] >= 1
        others = [
            calls for index, calls in enumerate(volume.shard_calls)
            if index != shard
        ]
        assert all(count == 0 for count in others)

    def test_trim_fans_out_and_unmaps(self):
        volume, devices, _ = small_volume(shards=3, stripe_blocks=4)
        size = volume.block_size
        data = b"".join(payload(lba, size) for lba in range(12))
        volume.write_blocks(0, 12, data)
        volume.trim(0, 12)
        for device in devices:
            assert all(
                device.imap.get(s_lba) is None for s_lba in range(4)
            )


class TestFaultContainment:
    def test_crash_hits_one_shard_only(self):
        volume, _, _ = small_volume()
        size = volume.block_size
        for lba in range(24):
            volume.write_block(lba, payload(lba, size))
        volume.crash_shard(1)
        assert volume.degraded
        for lba in range(24):
            shard, _ = volume.shard_of(lba)
            if shard == 1:
                with pytest.raises(ShardUnavailable) as err:
                    volume.read_block(lba)
                assert err.value.shard == 1
            else:
                data, _ = volume.read_block(lba)
                assert data == payload(lba, size)

    def test_media_fault_is_stamped_with_its_shard(self):
        volume, devices, disks = small_volume()
        size = volume.block_size
        for lba in range(24):
            volume.write_block(lba, payload(lba, size))
        victim = next(
            lba for lba in range(24) if volume.shard_of(lba)[0] == 2
        )
        _, s_lba = volume.shard_of(victim)
        sector = devices[2].imap.get(s_lba) * devices[2].sectors_per_block
        DiskFaultInjector(bad_sectors={sector}, seed=1).install(disks[2])
        with pytest.raises(MediaError) as err:
            volume.read_block(victim)
        assert err.value.shard == 2
        assert volume.shard_faults[2] == 1
        # The sibling shards never noticed.
        for lba in range(24):
            if volume.shard_of(lba)[0] != 2:
                data, _ = volume.read_block(lba)
                assert data == payload(lba, size)

    def test_recover_shard_restores_service(self):
        volume, _, _ = small_volume()
        size = volume.block_size
        for lba in range(24):
            volume.write_block(lba, payload(lba, size))
        volume.crash_shard(0)
        outcome = volume.recover_shard(0)
        assert not volume.degraded
        assert outcome.scanned  # a crash leaves no power record
        for lba in range(24):
            data, _ = volume.read_block(lba)
            assert data == payload(lba, size)

    def test_idle_skips_down_shards(self):
        volume, _, _ = small_volume()
        for lba in range(12):
            volume.write_block(lba, payload(lba, volume.block_size))
        volume.crash_shard(2)
        volume.idle(0.2)  # must not raise, must not touch shard 2
        assert volume.states[2].value == "down"


class TestVolumeFsck:
    def test_clean_volume_passes_deep_fsck(self):
        volume, _, _ = small_volume()
        for lba in range(24):
            volume.write_block(lba, payload(lba, volume.block_size))
        report = volume_fsck(volume, deep=True)
        assert report.ok, report.summary()
        assert report.checked_lbas > 0
        assert len(report.shard_reports) == 3

    def test_orphaned_shard_mapping_is_flagged(self):
        # Stripe width 3 leaves a sub-stripe remainder on each shard:
        # blocks the volume can never address.
        volume, devices, _ = small_volume(stripe_blocks=3)
        # Write past the volume's stripe range directly on a shard: a
        # mapping the volume's stripe map cannot account for.
        orphan = volume.shard_capacity
        assert orphan < devices[0].num_blocks
        devices[0].write_block(orphan, b"\xee" * volume.block_size)
        report = volume_fsck(volume)
        assert not report.ok
        assert any(v.kind == "shard-map" for v in report.violations)

    def test_capacity_disagreement_is_flagged(self):
        volume, _, _ = small_volume()
        volume.num_blocks += volume.stripe_blocks  # corrupt the stripe map
        report = volume_fsck(volume)
        assert not report.ok
        assert any(v.kind == "capacity" for v in report.violations)

    def test_fsck_summary_mentions_shards(self):
        volume, _, _ = small_volume()
        report = volume_fsck(volume)
        assert "3 shard(s)" in report.summary()
