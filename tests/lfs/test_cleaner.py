"""Cleaner policies and mechanics."""

import random

import pytest

from repro.blockdev.regular import RegularDisk
from repro.disk.disk import Disk
from repro.disk.specs import ST19101
from repro.hosts.specs import SPARCSTATION_10
from repro.lfs.cleaner import CleanerPolicy
from repro.lfs.lfs import LFS


def make_lfs(policy=CleanerPolicy.COST_BENEFIT):
    device = RegularDisk(Disk(ST19101))
    return LFS(device, SPARCSTATION_10, cleaner_policy=policy)


def churn(fs, file_mb=10, updates=1500, seed=5):
    blob = bytes(4096) * 256
    fs.create("/churn")
    for chunk in range(file_mb):
        fs.write("/churn", chunk * len(blob), blob)
    fs.sync()
    rng = random.Random(seed)
    for _ in range(updates):
        fs.write(
            "/churn", rng.randrange(file_mb * 256) * 4096, b"u" * 4096,
            sync=True,
        )


class TestVictimSelection:
    def test_no_victim_on_clean_log(self):
        fs = make_lfs()
        assert fs.cleaner.select_victim() is None

    def test_greedy_picks_min_live(self):
        fs = make_lfs(CleanerPolicy.GREEDY)
        churn(fs, updates=300)
        victim = fs.cleaner.select_victim()
        current = fs.writer.current_segment
        candidates = fs.segusage.dirty_segments(exclude=current)
        assert fs.segusage.live_bytes[victim] == min(
            fs.segusage.live_bytes[s] for s in candidates
        )

    def test_cost_benefit_prefers_cold_segments(self):
        fs = make_lfs(CleanerPolicy.COST_BENEFIT)
        churn(fs, updates=300)
        fs.clock.advance(100.0)  # age everything written so far
        # Dirty one fresh segment with similar utilization.
        fs.write("/churn", 0, b"hot" + bytes(4093), sync=True)
        victim = fs.cleaner.select_victim()
        # The freshly written segment must not be chosen over old ones.
        newest = max(
            fs.segusage.dirty_segments(exclude=fs.writer.current_segment),
            key=lambda s: fs.segusage.last_write[s],
        )
        assert victim != newest

    def test_force_greedy_overrides_policy(self):
        fs = make_lfs(CleanerPolicy.COST_BENEFIT)
        churn(fs, updates=300)
        victim = fs.cleaner.select_victim(force_greedy=True)
        current = fs.writer.current_segment
        candidates = fs.segusage.dirty_segments(exclude=current)
        assert fs.segusage.live_bytes[victim] == min(
            fs.segusage.live_bytes[s] for s in candidates
        )

    def test_never_selects_current_segment(self):
        fs = make_lfs()
        churn(fs, updates=200)
        for _ in range(10):
            victim = fs.cleaner.select_victim()
            assert victim != fs.writer.current_segment


class TestCleaningMechanics:
    def test_clean_one_reclaims_space(self):
        fs = make_lfs()
        churn(fs, updates=800)
        victim = fs.cleaner.select_victim(force_greedy=True)
        live = fs.segusage.live_bytes[victim]
        fs.cleaner.clean_one(force_greedy=True)
        assert fs.segusage.is_clean(victim)
        assert fs.cleaner.segments_cleaned == (
            fs.cleaner.segments_cleaned  # counter advanced
        )

    def test_cleaning_cost_scales_with_liveness(self):
        """Cleaning a nearly-empty segment is cheap; a full one costly --
        the economics behind Figure 8's blow-up."""
        fs = make_lfs()
        churn(fs, file_mb=14, updates=1200)
        usage = fs.segusage
        current = fs.writer.current_segment
        candidates = usage.dirty_segments(exclude=current)
        emptiest = min(candidates, key=lambda s: usage.live_bytes[s])
        fullest = max(candidates, key=lambda s: usage.live_bytes[s])
        if usage.live_bytes[fullest] - usage.live_bytes[emptiest] < 50 * 4096:
            pytest.skip("segment utilizations too uniform in this run")
        cheap = fs.copy_live_blocks(emptiest).total
        costly = fs.copy_live_blocks(fullest).total
        assert costly > cheap

    def test_clean_until_free_reaches_target(self):
        fs = make_lfs()
        churn(fs, file_mb=12, updates=1500)
        target = fs.free_segments() + 2
        fs.cleaner.clean_until_free(target)
        assert fs.free_segments() >= target

    def test_run_idle_respects_deadline_granularity(self):
        """Section 5.5: the cleaner works at segment granularity, so it
        only starts victims while time remains."""
        fs = make_lfs()
        churn(fs, file_mb=12, updates=800)
        start = fs.clock.now
        fs.cleaner.run_idle(start + 0.01)
        # At most one segment copy of overshoot.
        assert fs.clock.now - start < 0.01 + 0.5

    def test_idle_cleaning_stops_on_mostly_clean_log(self):
        fs = make_lfs()
        fs.create("/small")
        fs.write("/small", 0, bytes(4096) * 10)
        fs.sync()
        cleaned_before = fs.cleaner.segments_cleaned
        fs.idle(10.0)
        # Nothing worth cleaning: at most a couple of segments touched.
        assert fs.cleaner.segments_cleaned - cleaned_before <= 2
