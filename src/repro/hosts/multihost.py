"""N hosts x M disks on the event engine.

The ROADMAP scale-out item: run several closed-loop host processes, each
with its own think time and seeded request stream, against a bank of
independent device stacks (disk + request scheduler), all on one
:class:`~repro.sim.engine.EventEngine`.  Requests stripe across the
disks; each disk services its own queue as an engine process, so host
think time genuinely overlaps disk service -- and the report measures
that overlap *exactly* from the recorded think/service intervals rather
than inferring it from clock gaps.

Determinism: every host draws from its own ``random.Random`` stream and
the engine breaks event ties by schedule order, so a run is a pure
function of its arguments -- byte-identical across repeats and across
process boundaries (the ``--jobs N`` sweep).  With ``hosts=1`` host 0's
stream is seeded exactly like
:func:`repro.harness.runner.simulate_queued_workload`'s, so the
single-host fifo configuration replays the synchronous depth-1 path
call-for-call (the identity test pins this).

Tail latency: service and response distributions are reported at
p50/p95/p99/p999 -- under concurrency the p99/p999 response tail is
where queueing shows first, which is the point of running more than one
host.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.disk.disk import Disk
from repro.disk.specs import DiskSpec
from repro.harness.runner import QUEUE_WORKLOADS
from repro.sched.scheduler import DiskScheduler
from repro.sim.engine import EventEngine
from repro.sim.metrics import LatencyHistogram


def run_multihost(
    spec: DiskSpec,
    hosts: int = 4,
    disks: int = 1,
    requests_per_host: int = 200,
    request_sectors: int = 8,
    think_seconds: Union[float, Sequence[float]] = 0.0002,
    workload: str = "random-update",
    policy: str = "fifo",
    seed: int = 3,
    num_cylinders: int = 0,
    trace: bool = False,
    shards: Optional[int] = None,
    shard_slow: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Drive ``hosts`` closed-loop writers against ``disks`` device stacks.

    Each host thinks (a real engine timer), submits one striped write of
    ``request_sectors`` sectors, and waits for its completion event --
    the classic closed loop, so each host keeps at most one request in
    flight and concurrency comes from the host count.  ``think_seconds``
    may be a scalar or one value per host (per-client think times).
    Workloads match :data:`~repro.harness.runner.QUEUE_WORKLOADS`, drawn
    per host from ``random.Random(seed + 1000003 * host)``.

    Returns a report with mean/p50/p95/p99/p999 service and response
    times (milliseconds), throughput, per-disk busy time, and the
    overlap metrics: ``hidden_think_seconds`` is the aggregate host
    think time that fell inside disk busy time (exact interval
    intersection; zero for one host at depth 1, positive once hosts
    overlap each other's service).  With ``trace=True`` the full
    ``(time, seq, name)`` event trace rides along for determinism diffs.

    Sharded mode (``shards=N``): the disk bank is interpreted as the N
    fault domains of a sharded volume -- same striping, but the report
    gains a ``per_shard`` section (per-shard request counts and
    response-time tails) and, when ``shard_slow`` marks one shard
    fail-slow (``{"shard": i, "factor": f, "after": a, "ops": n}`` --
    a window of serviced-request ordinals, mirroring the block-layer
    ``slow`` fault family), a ``degraded_window`` section measuring
    completed requests, throughput, and per-shard busy time *inside*
    the limping window.  ``shards`` replaces ``disks``; the non-sharded
    report keys are unchanged (the identity tests stay pinned).
    """
    if workload not in QUEUE_WORKLOADS:
        raise ValueError(
            f"unknown workload {workload!r}; known: "
            + ", ".join(QUEUE_WORKLOADS)
        )
    if shards is not None:
        if disks != 1:
            raise ValueError("pass shards= or disks=, not both")
        if shards <= 0:
            raise ValueError("shard count must be positive")
        disks = shards
    elif shard_slow is not None:
        raise ValueError("shard_slow requires shards=")
    if hosts <= 0 or disks <= 0:
        raise ValueError("host and disk counts must be positive")
    if requests_per_host <= 0:
        raise ValueError("request count must be positive")
    thinks = _per_host_thinks(think_seconds, hosts)

    engine = EventEngine(trace=trace)
    stacks = [
        Disk(spec, num_cylinders=num_cylinders, store_data=False)
        for _ in range(disks)
    ]
    schedulers = [
        DiskScheduler(disk, policy=policy, queue_depth=1) for disk in stacks
    ]
    bank = "shard" if shards is not None else "disk"
    for index, scheduler in enumerate(schedulers):
        scheduler.attach_engine(engine, name=f"{bank}{index}")
    if shard_slow is not None:
        slow_shard = int(shard_slow["shard"])  # type: ignore[arg-type]
        if not 0 <= slow_shard < disks:
            raise ValueError(f"shard_slow shard {slow_shard} out of range")
        schedulers[slow_shard].set_slow_window(
            float(shard_slow["factor"]),  # type: ignore[arg-type]
            after_ops=int(shard_slow.get("after", 0)),  # type: ignore[arg-type]
            duration_ops=(
                int(shard_slow["ops"])  # type: ignore[arg-type]
                if shard_slow.get("ops") is not None
                else None
            ),
        )

    # One addressable stripe unit per aligned run, across all disks:
    # target t lives on disk t % disks at aligned run t // disks.
    aligned_per_disk = stacks[0].geometry.total_sectors // request_sectors
    stripe_units = aligned_per_disk * disks

    def host(index: int):
        rng = random.Random(seed + 1000003 * index)
        name = f"host{index}"
        think = thinks[index]
        # Matches simulate_queued_workload: the cursor is drawn before
        # the loop for every workload (identity depends on stream shape).
        cursor = rng.randrange(stripe_units)
        for i in range(requests_per_host):
            if think > 0.0:
                start = engine.now
                yield think
                engine.intervals.note("think", name, start, engine.now)
            if workload == "random-update":
                target = rng.randrange(stripe_units)
            elif workload == "sequential":
                target = (cursor + i) % stripe_units
            else:  # mixed
                if i % 2:
                    target = rng.randrange(stripe_units)
                else:
                    cursor = (cursor + 1) % stripe_units
                    target = cursor
            scheduler = schedulers[target % disks]
            sector = (target // disks) * request_sectors
            req = scheduler.submit("write", sector, request_sectors)
            if not req.done:
                assert req.completed is not None
                yield req.completed

    for index in range(hosts):
        engine.spawn(host(index), name=f"host{index}")
    engine.run()
    for scheduler in schedulers:
        scheduler.close()
    engine.run()  # let the disk processes terminate

    return _report(
        engine, schedulers, hosts, disks, requests_per_host, trace,
        shards=shards,
    )


def _per_host_thinks(
    think_seconds: Union[float, Sequence[float]], hosts: int
) -> List[float]:
    if isinstance(think_seconds, (int, float)):
        thinks = [float(think_seconds)] * hosts
    else:
        thinks = [float(value) for value in think_seconds]
        if len(thinks) != hosts:
            raise ValueError(
                f"got {len(thinks)} think times for {hosts} hosts"
            )
    if any(value < 0.0 for value in thinks):
        raise ValueError("think time must be non-negative")
    return thinks


def _report(
    engine: EventEngine,
    schedulers: List[DiskScheduler],
    hosts: int,
    disks: int,
    requests_per_host: int,
    trace: bool,
    shards: Optional[int] = None,
) -> Dict[str, object]:
    service = LatencyHistogram()
    response = LatencyHistogram()
    busy = 0.0
    serviced = 0
    for scheduler in schedulers:
        service.merge(scheduler.service_times)
        response.merge(scheduler.response_times)
        busy += scheduler.busy_seconds
        serviced += scheduler.serviced
    intervals = engine.intervals
    elapsed = engine.now
    requests = hosts * requests_per_host
    assert serviced == requests

    service_pct = service.percentiles()
    response_pct = response.percentiles()
    report: Dict[str, object] = {
        "hosts": hosts,
        "disks": disks,
        "requests": requests,
        "elapsed_seconds": elapsed,
        "requests_per_second": requests / elapsed if elapsed > 0 else 0.0,
        "mean_service_ms": service.mean() * 1e3,
        "mean_response_ms": response.mean() * 1e3,
        # Aggregate host think time that fell inside disk busy time:
        # the overlap the event loop makes real (and measurable).
        "hidden_think_seconds": intervals.per_key_overlap("think", "service"),
        "think_seconds": sum(
            intervals.total("think", key) for key in intervals.keys("think")
        ),
        "disk_busy_seconds": {
            key: intervals.total("service", key)
            for key in intervals.keys("service")
        },
        "max_outstanding": max(s.max_outstanding for s in schedulers),
        "events": engine.events_fired,
    }
    for name, value in service_pct.items():
        report[f"{name}_service_ms"] = value * 1e3
    for name, value in response_pct.items():
        report[f"{name}_response_ms"] = value * 1e3
    if shards is not None:
        report["shards"] = shards
        report["per_shard"] = _per_shard_report(engine, schedulers)
    if trace and engine.trace is not None:
        report["trace"] = engine.trace.as_tuples()
    return report


def _per_shard_report(
    engine: EventEngine, schedulers: List[DiskScheduler]
) -> Dict[str, object]:
    """Per-shard tails, plus degraded-window accounting when one shard
    ran fail-slow (its slow span is the window; healthy shards' busy
    time and completions are clipped to it)."""
    window: Optional[Tuple[float, float]] = None
    for scheduler in schedulers:
        if scheduler.slow_span is not None:
            window = (scheduler.slow_span[0], scheduler.slow_span[1])
            break
    rows: List[Dict[str, object]] = []
    for scheduler in schedulers:
        pct = scheduler.response_times.percentiles()
        row: Dict[str, object] = {
            "shard": scheduler.name,
            "requests": scheduler.serviced,
            "busy_seconds": scheduler.busy_seconds,
            "ops_slowed": scheduler.ops_slowed,
            "slow_extra_seconds": scheduler.slow_extra_seconds,
            "mean_response_ms": scheduler.response_times.mean() * 1e3,
        }
        for name, value in pct.items():
            row[f"{name}_response_ms"] = value * 1e3
        if window is not None:
            row["busy_in_window_seconds"] = engine.intervals.total_within(
                "service", window, scheduler.name
            )
            row["completed_in_window"] = sum(
                1
                for at in scheduler.completion_times
                if window[0] <= at <= window[1]
            )
        rows.append(row)
    out: Dict[str, object] = {"shards": rows}
    if window is not None:
        seconds = window[1] - window[0]
        completed = sum(
            int(row["completed_in_window"]) for row in rows  # type: ignore[arg-type]
        )
        out["degraded_window"] = {
            "start": window[0],
            "end": window[1],
            "seconds": seconds,
            "completed": completed,
            "requests_per_second": (
                completed / seconds if seconds > 0 else 0.0
            ),
        }
    return out


def format_report(report: Dict[str, object]) -> str:
    """A compact human-readable rendering of a multihost report."""
    busy = report["disk_busy_seconds"]
    assert isinstance(busy, dict)
    lines = [
        (
            f"{report['hosts']} host(s) x {report['disks']} disk(s): "
            f"{report['requests']} requests in "
            f"{float(report['elapsed_seconds']):.4f}s "
            f"({float(report['requests_per_second']):.0f} req/s)"
        ),
        (
            "service ms: "
            f"mean={float(report['mean_service_ms']):.3f} "
            f"p50={float(report['p50_service_ms']):.3f} "
            f"p95={float(report['p95_service_ms']):.3f} "
            f"p99={float(report['p99_service_ms']):.3f} "
            f"p999={float(report['p999_service_ms']):.3f}"
        ),
        (
            "response ms: "
            f"mean={float(report['mean_response_ms']):.3f} "
            f"p50={float(report['p50_response_ms']):.3f} "
            f"p95={float(report['p95_response_ms']):.3f} "
            f"p99={float(report['p99_response_ms']):.3f} "
            f"p999={float(report['p999_response_ms']):.3f}"
        ),
        (
            f"overlap: hidden_think={float(report['hidden_think_seconds']):.4f}s "
            f"of {float(report['think_seconds']):.4f}s think; busy "
            + " ".join(
                f"{key}={float(value):.4f}s" for key, value in busy.items()
            )
        ),
    ]
    per_shard = report.get("per_shard")
    if isinstance(per_shard, dict):
        for row in per_shard["shards"]:
            line = (
                f"{row['shard']}: {row['requests']} reqs "
                f"response p50={float(row['p50_response_ms']):.3f} "
                f"p99={float(row['p99_response_ms']):.3f} "
                f"p999={float(row['p999_response_ms']):.3f}ms "
                f"busy={float(row['busy_seconds']):.4f}s"
            )
            if row["ops_slowed"]:
                line += (
                    f" slowed={row['ops_slowed']} "
                    f"(+{float(row['slow_extra_seconds']):.4f}s)"
                )
            lines.append(line)
        window = per_shard.get("degraded_window")
        if window is not None:
            lines.append(
                f"degraded window: {float(window['seconds']):.4f}s, "
                f"{window['completed']} completed "
                f"({float(window['requests_per_second']):.0f} req/s)"
            )
    return "\n".join(lines)
