"""Composable block-device interposers: tracing, metrics, fault injection.

Any :class:`~repro.blockdev.interface.BlockDevice` can be wrapped by an
:class:`InterposedDevice`, which forwards the whole device interface to an
inner device while exposing a hook per operation.  Wrappers compose::

    TracingDevice(MetricsDevice(FaultDevice(RegularDisk(disk), plan)))

and are **transparent**: a wrapped device returns byte-identical data and
identical latency breakdowns (the interposers consume zero simulated
time), so they can be left in a stack without perturbing an experiment.
Unknown attributes delegate to the inner device, so code that reaches for
``device.disk``, ``device.vlog`` or ``device.trim`` keeps working through
any number of layers.

Three concrete layers:

* :class:`TracingDevice` -- structured per-operation event records (op,
  lba, count, latency breakdown, simulated timestamp) into a bounded ring
  buffer, optionally mirrored to a JSONL sink;
* :class:`MetricsDevice` -- op/block counters and per-component latency
  histograms from which the Figure 9 breakdown report can be regenerated,
  including host time inferred from the simulated-clock gaps between
  device operations;
* :class:`FaultDevice` -- deterministic, seeded injection of torn writes,
  dropped writes, read errors, and crash-after-N-operations.

For faults *below* the logical layer (killing a Virtual Log Disk in the
middle of its internal write sequence), :class:`DiskFaultInjector`
installs on the raw :class:`~repro.disk.disk.Disk` and crashes on the
N-th physical write -- the crash-point methodology the recovery tests
sweep.

:func:`build_device_stack` is the single factory every consumer builds
its stack through (the harness, the examples, the file systems).
"""

from __future__ import annotations

import json
import random
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional, Set, Tuple, Type

from repro.blockdev.interface import BlockDevice
from repro.blockdev.regular import RegularDisk
from repro.sim.engine import IntervalRecorder
from repro.sim.metrics import LatencyHistogram
from repro.sim.stats import COMPONENTS, Breakdown

_UNSET = object()


class DeviceFault(Exception):
    """Base class for injected device failures.

    Carries structured context so that observers (tracing, metrics, the
    retry machinery) can record *what* failed without parsing message
    strings: the logical operation, the logical block / physical sector it
    targeted, the run length, and -- when a retry policy is replaying the
    operation -- which attempt this was.  ``shard`` identifies the fault
    domain inside a sharded volume (``None`` for a single-device stack);
    the volume layer stamps it onto faults escaping a shard, so torture
    artifacts and retry logs name the failing domain.  All fields are
    optional; raisers fill in what they know.
    """

    def __init__(
        self,
        message: str = "",
        *,
        op: Optional[str] = None,
        lba: Optional[int] = None,
        sector: Optional[int] = None,
        count: Optional[int] = None,
        attempt: Optional[int] = None,
        shard: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.op = op
        self.lba = lba
        self.sector = sector
        self.count = count
        self.attempt = attempt
        self.shard = shard

    def context(self) -> Dict[str, object]:
        """The non-``None`` structured fields, for trace records."""
        fields = {
            "op": self.op,
            "lba": self.lba,
            "sector": self.sector,
            "count": self.count,
            "attempt": self.attempt,
            "shard": self.shard,
        }
        return {k: v for k, v in fields.items() if v is not None}


class DeviceCrashed(DeviceFault):
    """The device lost power mid-operation; volatile state is gone.

    The disk image below the crash point survives (possibly with a torn
    final write); callers model recovery by invoking the wrapped device's
    ``crash()``/``recover()`` machinery.
    """


class InjectedReadError(DeviceFault):
    """An unrecoverable media error on a read, injected by a fault plan."""


# ======================================================================
# The wrapper base
# ======================================================================

class InterposedDevice(BlockDevice):
    """A block device that forwards every operation to an inner device.

    Subclasses observe (or perturb) operations by overriding the
    interface methods; the base class is a pure pass-through.  Attribute
    access falls through to the inner device, which keeps device-specific
    surface (``.disk``, ``.vlog``, ``.trim``, ``.utilization``, ...)
    reachable through a stack of wrappers.
    """

    def __init__(self, inner: BlockDevice) -> None:
        self.inner = inner

    # ``block_size``/``num_blocks`` are declared (not set) on BlockDevice,
    # so they must delegate explicitly rather than via ``__getattr__``.
    @property
    def block_size(self) -> int:  # type: ignore[override]
        return self.inner.block_size

    @property
    def num_blocks(self) -> int:  # type: ignore[override]
        return self.inner.num_blocks

    def __getattr__(self, name: str):
        if name == "inner":  # guard: __init__ not yet run
            raise AttributeError(name)
        return getattr(self.inner, name)

    # -- the BlockDevice interface, delegated --------------------------

    def read_block(self, lba: int) -> Tuple[bytes, Breakdown]:
        return self.inner.read_block(lba)

    def write_block(self, lba: int, data: Optional[bytes] = None) -> Breakdown:
        return self.inner.write_block(lba, data)

    def read_blocks(self, lba: int, count: int) -> Tuple[bytes, Breakdown]:
        return self.inner.read_blocks(lba, count)

    def write_blocks(
        self, lba: int, count: int, data: Optional[bytes] = None
    ) -> Breakdown:
        return self.inner.write_blocks(lba, count, data)

    def write_partial(self, lba: int, offset: int, data: bytes) -> Breakdown:
        return self.inner.write_partial(lba, offset, data)

    def idle(self, seconds: float) -> None:
        self.inner.idle(seconds)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.inner!r})"


def layers(device: BlockDevice) -> Iterator[BlockDevice]:
    """Yield every layer of a device stack, outermost first."""
    while True:
        yield device
        if not isinstance(device, InterposedDevice):
            return
        device = device.inner


def core_device(device: BlockDevice) -> BlockDevice:
    """The innermost (unwrapped) device of a stack."""
    for layer in layers(device):
        pass
    return layer


def find_layer(device: BlockDevice, cls: Type) -> Optional[BlockDevice]:
    """The outermost layer of type ``cls`` in a stack, or ``None``."""
    for layer in layers(device):
        if isinstance(layer, cls):
            return layer
    return None


class ObservingDevice(InterposedDevice):
    """An interposer that observes completed operations without changing
    them.  Subclasses implement :meth:`_note`; when ``enabled`` is False
    every operation short-circuits to plain delegation (the zero-cost-
    when-disabled contract).

    Operations that *fail* (the wrapped device raises a
    :class:`DeviceFault` mid-operation) are routed to :meth:`_note_fault`
    before the exception propagates, so observers never lose the event or
    leave a half-recorded operation behind.
    """

    def __init__(self, inner: BlockDevice) -> None:
        super().__init__(inner)
        self.enabled = True

    def _clock_now(self) -> float:
        clock = getattr(getattr(self.inner, "disk", None), "clock", None)
        return clock.now if clock is not None else 0.0

    def _take_slow_delta(self) -> Tuple[int, float]:
        """(ops, seconds) of fail-slow surplus since the last call.

        Observers sit *above* the fault layer, so a slowed op reaches
        them as an ordinary completion with a stretched breakdown; the
        only way to attribute the stretch is to diff the fault layer's
        cumulative slow counters across each op.  Uses ``__dict__``
        directly: a missing attribute here must not fall through
        ``__getattr__`` to an inner observer's cache.
        """
        cache = self.__dict__.get("_slow_source", _UNSET)
        if cache is _UNSET:
            cache = find_layer(self.inner, FaultDevice)
            self.__dict__["_slow_source"] = cache
        if cache is None:
            return 0, 0.0
        cursor = self.__dict__.get("_slow_cursor", (0, 0.0))
        now = (cache.ops_slowed, cache.slow_extra_seconds)
        self.__dict__["_slow_cursor"] = now
        return now[0] - cursor[0], now[1] - cursor[1]

    def _note(
        self,
        op: str,
        lba: int,
        count: int,
        breakdown: Breakdown,
        start: float,
    ) -> None:
        raise NotImplementedError  # pragma: no cover - abstract hook

    def _note_fault(
        self,
        op: str,
        lba: int,
        count: int,
        fault: DeviceFault,
        start: float,
    ) -> None:
        pass

    def read_block(self, lba: int) -> Tuple[bytes, Breakdown]:
        if not self.enabled:
            return self.inner.read_block(lba)
        start = self._clock_now()
        try:
            data, breakdown = self.inner.read_block(lba)
        except DeviceFault as fault:
            self._note_fault("read", lba, 1, fault, start)
            raise
        self._note("read", lba, 1, breakdown, start)
        return data, breakdown

    def write_block(self, lba: int, data: Optional[bytes] = None) -> Breakdown:
        if not self.enabled:
            return self.inner.write_block(lba, data)
        start = self._clock_now()
        try:
            breakdown = self.inner.write_block(lba, data)
        except DeviceFault as fault:
            self._note_fault("write", lba, 1, fault, start)
            raise
        self._note("write", lba, 1, breakdown, start)
        return breakdown

    def read_blocks(self, lba: int, count: int) -> Tuple[bytes, Breakdown]:
        if not self.enabled:
            return self.inner.read_blocks(lba, count)
        start = self._clock_now()
        try:
            data, breakdown = self.inner.read_blocks(lba, count)
        except DeviceFault as fault:
            self._note_fault("read", lba, count, fault, start)
            raise
        self._note("read", lba, count, breakdown, start)
        return data, breakdown

    def write_blocks(
        self, lba: int, count: int, data: Optional[bytes] = None
    ) -> Breakdown:
        if not self.enabled:
            return self.inner.write_blocks(lba, count, data)
        start = self._clock_now()
        try:
            breakdown = self.inner.write_blocks(lba, count, data)
        except DeviceFault as fault:
            self._note_fault("write", lba, count, fault, start)
            raise
        self._note("write", lba, count, breakdown, start)
        return breakdown

    def write_partial(self, lba: int, offset: int, data: bytes) -> Breakdown:
        if not self.enabled:
            return self.inner.write_partial(lba, offset, data)
        start = self._clock_now()
        try:
            breakdown = self.inner.write_partial(lba, offset, data)
        except DeviceFault as fault:
            self._note_fault("write_partial", lba, 1, fault, start)
            raise
        self._note("write_partial", lba, 1, breakdown, start)
        return breakdown

    def idle(self, seconds: float) -> None:
        self.inner.idle(seconds)
        if self.enabled:
            self._note_idle(seconds)

    def _note_idle(self, seconds: float) -> None:
        pass


# ======================================================================
# Tracing
# ======================================================================

@dataclass
class TraceEvent:
    """One logical device operation, as the host saw it.

    ``fault`` names the :class:`DeviceFault` subclass when the operation
    failed instead of completing (``fault_context`` carries its structured
    fields); the breakdown is then empty, since the device never reported
    a latency for an operation it aborted.  ``slow_extra`` is the seconds
    of fail-slow surplus a fault layer injected into this op (already
    inside the breakdown; recorded so slow ops are identifiable).
    """

    seq: int
    op: str
    lba: int
    count: int
    start: float
    breakdown: Breakdown
    fault: Optional[str] = None
    fault_context: Optional[Dict[str, object]] = None
    slow_extra: float = 0.0

    @property
    def elapsed(self) -> float:
        return self.breakdown.total

    def as_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "seq": self.seq,
            "op": self.op,
            "lba": self.lba,
            "count": self.count,
            "start": self.start,
            "elapsed": self.elapsed,
            "breakdown": self.breakdown.as_dict(),
        }
        if self.fault is not None:
            record["fault"] = self.fault
            record["fault_context"] = self.fault_context or {}
        if self.slow_extra:
            record["slow_extra"] = self.slow_extra
        return record


class TracingDevice(ObservingDevice):
    """Records a structured event per operation into a ring buffer.

    Args:
        inner: The wrapped device.
        capacity: Ring-buffer depth (oldest events are evicted).
        sink: Optional JSONL destination -- a path (opened lazily,
            append mode) or any object with a ``write`` method.
    """

    def __init__(
        self,
        inner: BlockDevice,
        capacity: int = 4096,
        sink: Optional[object] = None,
    ) -> None:
        super().__init__(inner)
        if capacity <= 0:
            raise ValueError("trace capacity must be positive")
        self.events: deque = deque(maxlen=capacity)
        self.total_events = 0
        self._sink_spec = sink
        self._sink = sink if sink is None or hasattr(sink, "write") else None
        self._owns_sink = False

    def _note(self, op, lba, count, breakdown, start) -> None:
        slowed, slow_extra = self._take_slow_delta()
        self._emit(TraceEvent(
            seq=self.total_events,
            op=op,
            lba=lba,
            count=count,
            start=start,
            breakdown=breakdown.copy(),
            slow_extra=slow_extra if slowed else 0.0,
        ))

    def _note_fault(self, op, lba, count, fault, start) -> None:
        # A failed operation is still an event the host saw; record it
        # instead of letting the unwinding exception erase it from the
        # trace (the classic "the log ends right before the interesting
        # part" failure mode).
        self._emit(TraceEvent(
            seq=self.total_events,
            op=op,
            lba=lba,
            count=count,
            start=start,
            breakdown=Breakdown(),
            fault=type(fault).__name__,
            fault_context=fault.context(),
        ))

    def _emit(self, event: TraceEvent) -> None:
        self.total_events += 1
        self.events.append(event)
        sink = self._open_sink()
        if sink is not None:
            sink.write(json.dumps(event.as_dict()) + "\n")

    def _open_sink(self):
        if self._sink is None and self._sink_spec is not None:
            self._sink = open(str(self._sink_spec), "a")
            self._owns_sink = True
        return self._sink

    def close(self) -> None:
        """Flush and close a path-opened sink (no-op otherwise)."""
        if self._sink is not None:
            if hasattr(self._sink, "flush"):
                self._sink.flush()
            if self._owns_sink:
                self._sink.close()
                self._sink = None
                self._owns_sink = False

    def reset(self) -> None:
        self.events.clear()
        self.total_events = 0


# ======================================================================
# Metrics
# ======================================================================

class MetricsDevice(ObservingDevice):
    """Counts operations and histograms latencies per component.

    Beyond the device-visible components (``scsi``, ``transfer``,
    ``locate``), host processing time is inferred from the simulated
    clock: any time that passes *between* two device operations (and is
    not declared idle via :meth:`idle`) must have been spent above the
    device -- system call, file system code, driver.  That inferred time
    is reported as the ``other`` component, which is how the Figure 9
    breakdown is regenerated from this layer's data alone.

    The inference is queue-aware: once the wrapped device runs a request
    scheduler with outstanding requests, the time between two completions
    is the *device* draining its queue, not host compute.  Gaps that open
    while requests were outstanding are therefore accumulated separately
    (``overlapped_seconds``) instead of being double-counted as host time.
    The depth observed after each operation also feeds a queue-depth
    sample histogram, and per-op service-time percentiles
    (p50/p95/p99/p999) are available from the latency histograms.

    When the stack runs under an :class:`~repro.sim.engine.EventEngine`
    (the stack clock is engine-bound), :meth:`report` stops inferring:
    host, device, and overlap time come from the *real* think/service
    intervals the engine processes recorded, computed by exact interval
    intersection.  Each completed op's own real span is always noted in
    :attr:`intervals` (kind ``"op"``, keyed by op name), engine or not.
    """

    def __init__(self, inner: BlockDevice) -> None:
        super().__init__(inner)
        self.reset()

    def reset(self) -> None:
        self.ops: Dict[str, int] = {}
        self.blocks: Dict[str, int] = {}
        #: Real [start, end) spans of completed ops, by op name.
        self.intervals = IntervalRecorder()
        self.op_latency: Dict[str, LatencyHistogram] = {}
        self.component_hist: Dict[str, LatencyHistogram] = {
            name: LatencyHistogram() for name in COMPONENTS
        }
        #: Operations the wrapped device aborted with a DeviceFault, per
        #: op name, and the simulated time those aborted operations
        #: consumed before failing.  Kept apart from the completed-op
        #: counters and histograms so injected faults cannot skew them.
        self.faulted: Dict[str, int] = {}
        self.faulted_seconds = 0.0
        #: Completed ops a fault layer stretched with a fail-slow window,
        #: per op name, and the injected surplus seconds.  The surplus is
        #: already inside the op's breakdown (honest latency), so these
        #: sit beside the faulted accounting for attribution only --
        #: host_seconds is never inflated by them.
        self.slowed: Dict[str, int] = {}
        self.slow_seconds = 0.0
        self._take_slow_delta()  # re-anchor the cursor past old surplus
        self.host_seconds = 0.0
        self.idle_seconds = 0.0
        #: Clock gaps that opened while the device still had queued
        #: requests outstanding: device overlap, not host compute.
        self.overlapped_seconds = 0.0
        #: Queue depth observed after each operation -> sample count.
        self.queue_depth_samples: Dict[int, int] = {}
        self.max_outstanding = 0
        self._last_end: Optional[float] = self._clock_now()
        self._last_outstanding = self._outstanding_now()

    def _outstanding_now(self) -> int:
        """Requests currently queued below us (0 for unscheduled devices).

        Duck-typed: any wrapped device exposing a ``scheduler`` with an
        ``outstanding`` count participates; plain devices never overlap.
        """
        scheduler = getattr(self.inner, "scheduler", None)
        if scheduler is None:
            return 0
        return int(getattr(scheduler, "outstanding", 0))

    def _attribute_gap(self, start: float) -> None:
        if self._last_end is not None and start > self._last_end:
            gap = start - self._last_end
            if self._last_outstanding > 0:
                self.overlapped_seconds += gap
            else:
                self.host_seconds += gap

    def _sample_queue(self) -> None:
        depth = self._outstanding_now()
        self._last_outstanding = depth
        self.queue_depth_samples[depth] = (
            self.queue_depth_samples.get(depth, 0) + 1
        )
        if depth > self.max_outstanding:
            self.max_outstanding = depth

    def _note(self, op, lba, count, breakdown, start) -> None:
        self.ops[op] = self.ops.get(op, 0) + 1
        self.blocks[op] = self.blocks.get(op, 0) + count
        self.op_latency.setdefault(op, LatencyHistogram()).record(
            breakdown.total
        )
        for name in COMPONENTS:
            self.component_hist[name].record(getattr(breakdown, name))
        slowed, slow_extra = self._take_slow_delta()
        if slowed:
            self.slowed[op] = self.slowed.get(op, 0) + slowed
            self.slow_seconds += slow_extra
        self._attribute_gap(start)
        self._last_end = self._clock_now()
        self.intervals.note("op", op, start, self._last_end)
        self._sample_queue()

    def _note_fault(self, op, lba, count, fault, start) -> None:
        # Without this hook a mid-operation fault left the op half
        # recorded: no counter, no histogram sample, and -- worse -- a
        # stale ``_last_end``, so the *next* operation's clock gap
        # silently absorbed the faulted op's device time into
        # ``host_seconds``.  Record the event in its own bucket and
        # advance the gap origin past whatever time the aborted operation
        # consumed.
        self.faulted[op] = self.faulted.get(op, 0) + 1
        self._attribute_gap(start)
        end = self._clock_now()
        if end > start:
            self.faulted_seconds += end - start
        self._last_end = end
        self._last_outstanding = self._outstanding_now()

    def _note_idle(self, seconds: float) -> None:
        # Idle time is neither device nor host work; advance the gap
        # origin past it so it is not misread as host processing.
        self.idle_seconds += seconds
        self._last_end = self._clock_now()
        self._last_outstanding = self._outstanding_now()

    # -- reporting -----------------------------------------------------

    @property
    def total_ops(self) -> int:
        return sum(self.ops.values())

    def component_totals(self, include_host: bool = True) -> Dict[str, float]:
        """Seconds per component, ``other`` inferred from clock gaps."""
        totals = {
            name: self.component_hist[name].sum for name in COMPONENTS
        }
        if include_host:
            totals["other"] += self.host_seconds
        return totals

    def component_fractions(self, include_host: bool = True) -> Dict[str, float]:
        """Each component as a fraction of total time (Figure 9 bars)."""
        totals = self.component_totals(include_host)
        whole = sum(totals.values())
        if whole <= 0.0:
            return {name: 0.0 for name in COMPONENTS}
        return {name: totals[name] / whole for name in COMPONENTS}

    def device_seconds(self) -> float:
        return sum(self.component_hist[name].sum for name in COMPONENTS)

    def queue_stats(self) -> Dict[str, float]:
        """Queue-depth accounting: mean/max observed depth and the time
        that passed under outstanding requests."""
        samples = sum(self.queue_depth_samples.values())
        weighted = sum(
            depth * n for depth, n in self.queue_depth_samples.items()
        )
        return {
            "mean_depth": weighted / samples if samples else 0.0,
            "max_depth": float(self.max_outstanding),
            "overlapped_seconds": self.overlapped_seconds,
        }

    def service_percentiles(self, op: Optional[str] = None) -> Dict[str, float]:
        """p50/p95/p99/p999 of per-op service time, one op or all merged."""
        if op is not None:
            hist = self.op_latency.get(op)
            return hist.percentiles() if hist else LatencyHistogram().percentiles()
        merged = LatencyHistogram()
        for hist in self.op_latency.values():
            merged.merge(hist)
        return merged.percentiles()

    def _engine_intervals(self) -> Optional[IntervalRecorder]:
        """The engine's interval recorder when the stack clock is bound
        to an event engine, else ``None`` (gap attribution applies)."""
        clock = getattr(getattr(self.inner, "disk", None), "clock", None)
        engine = getattr(clock, "engine", None)
        return engine.intervals if engine is not None else None

    def report(self) -> Dict[str, object]:
        """Structured metrics report.

        Time attribution is exact under an event engine -- host time is
        the measure of the recorded think intervals, device time the
        measure of this disk's service intervals, and overlap their
        per-host intersection -- and falls back to the clock-gap
        heuristic on the synchronous path (``attribution`` says which).
        Percentiles include the p99/p999 tail.
        """
        recorder = self._engine_intervals()
        if recorder is not None:
            scheduler = getattr(self.inner, "scheduler", None)
            key = getattr(scheduler, "name", None)
            device = recorder.total("service", key)
            host = recorder.total("think")
            overlap = recorder.per_key_overlap("think", "service")
            attribution = "intervals"
        else:
            device = self.device_seconds()
            host = self.host_seconds
            overlap = self.overlapped_seconds
            attribution = "clock-gap"
        return {
            "attribution": attribution,
            "ops": dict(self.ops),
            "blocks": dict(self.blocks),
            "device_seconds": device,
            "host_seconds": host,
            "overlapped_seconds": overlap,
            "idle_seconds": self.idle_seconds,
            "component_totals": self.component_totals(),
            "service_percentiles": self.service_percentiles(),
            "queue": self.queue_stats(),
            "faulted": dict(self.faulted),
            "faulted_seconds": self.faulted_seconds,
            "slowed": dict(self.slowed),
            "slow_seconds": self.slow_seconds,
        }

    def summary(self) -> str:
        """One-line human-readable summary (latencies in milliseconds)."""
        ops = " ".join(
            f"{op}={self.ops[op]}({self.blocks[op]}blk)"
            for op in sorted(self.ops)
        )
        fractions = self.component_fractions()
        parts = " ".join(
            f"{k}={v * 100:.0f}%" for k, v in fractions.items()
        )
        line = (
            f"ops[{ops}] device={self.device_seconds() * 1e3:.3f}ms "
            f"host={self.host_seconds * 1e3:.3f}ms [{parts}]"
        )
        if self.max_outstanding:
            line += (
                f" queue[max={self.max_outstanding}"
                f" overlap={self.overlapped_seconds * 1e3:.3f}ms]"
            )
        if self.faulted:
            faults = " ".join(
                f"{op}={self.faulted[op]}" for op in sorted(self.faulted)
            )
            line += (
                f" faulted[{faults}]"
                f"={self.faulted_seconds * 1e3:.3f}ms"
            )
        if self.slowed:
            slows = " ".join(
                f"{op}={self.slowed[op]}" for op in sorted(self.slowed)
            )
            line += (
                f" slowed[{slows}]"
                f"={self.slow_seconds * 1e3:.3f}ms"
            )
        return line


# ======================================================================
# Fault injection
# ======================================================================

@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, seeded description of what to break.

    Rates are per-operation probabilities drawn from a private
    ``random.Random(seed)`` stream, so a plan misbehaves identically on
    every run.  ``crash_after_ops`` counts host-visible operations
    (reads and writes, not idle); the N-th operation raises
    :class:`DeviceCrashed` without reaching the inner device.

    The *fail-slow* family models a degraded-but-working device: every
    operation inside a window of host-visible ops takes
    ``slow_factor`` times its normal latency (the surplus charged as
    ``locate`` -- a stalling mechanism, not a bigger transfer).  The
    window starts at op ``slow_after_ops`` and lasts
    ``slow_duration_ops`` ops (open-ended when ``None``); with
    ``slow_factor > 1`` but no explicit onset, the onset and duration
    are drawn from the plan's seed, so a seeded plan gets a seeded
    window.
    """

    seed: int = 0
    read_error_rate: float = 0.0
    torn_write_rate: float = 0.0
    dropped_write_rate: float = 0.0
    crash_after_ops: Optional[int] = None
    slow_factor: float = 1.0
    slow_after_ops: Optional[int] = None
    slow_duration_ops: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("read_error_rate", "torn_write_rate",
                     "dropped_write_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1]")
        if self.crash_after_ops is not None and self.crash_after_ops <= 0:
            raise ValueError("crash_after_ops must be positive")
        if self.slow_factor < 1.0:
            raise ValueError("slow_factor must be at least 1")
        if self.slow_after_ops is not None and self.slow_after_ops <= 0:
            raise ValueError("slow_after_ops must be positive")
        if self.slow_duration_ops is not None and self.slow_duration_ops <= 0:
            raise ValueError("slow_duration_ops must be positive")

    def slow_window(self) -> Optional[Tuple[int, Optional[int]]]:
        """The fail-slow window as ``(first_op, end_op)`` in 1-based
        host-visible op ordinals (``end_op`` exclusive, ``None`` = open),
        or ``None`` when the plan never slows.  Unspecified bounds are
        drawn deterministically from the plan's seed -- the "seeded
        onset/duration" contract."""
        if self.slow_factor <= 1.0:
            return None
        if self.slow_after_ops is not None:
            first = self.slow_after_ops
            rng = None
        else:
            rng = random.Random(self.seed ^ 0x510B)
            first = rng.randrange(1, 33)
        if self.slow_duration_ops is not None:
            return first, first + self.slow_duration_ops
        if self.slow_after_ops is None:
            assert rng is not None
            return first, first + rng.randrange(16, 129)
        return first, None

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from ``key=value`` pairs, e.g.
        ``"crash_after=40,torn=0.05,drop=0.02,read_err=0.01,seed=7"``
        or ``"slow_factor=8,slow_after=20,slow_ops=60"``."""
        keys = {
            "seed": ("seed", int),
            "read_err": ("read_error_rate", float),
            "torn": ("torn_write_rate", float),
            "drop": ("dropped_write_rate", float),
            "crash_after": ("crash_after_ops", int),
            "slow_factor": ("slow_factor", float),
            "slow_after": ("slow_after_ops", int),
            "slow_ops": ("slow_duration_ops", int),
        }
        kwargs = {}
        for pair in filter(None, (p.strip() for p in spec.split(","))):
            key, _, value = pair.partition("=")
            if key not in keys or not value:
                raise ValueError(
                    f"bad fault spec {pair!r}; known keys: "
                    f"{', '.join(sorted(keys))}"
                )
            name, convert = keys[key]
            kwargs[name] = convert(value)
        return cls(**kwargs)


class FaultDevice(InterposedDevice):
    """Injects faults at the logical-block layer, per a :class:`FaultPlan`.

    * **read error**: the read raises :class:`InjectedReadError` before
      touching the inner device;
    * **torn write**: only a prefix of the written blocks reaches the
      inner device; the caller is told the write succeeded (the classic
      power-loss tear, discovered only on later reads);
    * **dropped write**: nothing reaches the inner device at all (a
      lying write cache);
    * **crash after N ops**: the N-th host-visible operation raises
      :class:`DeviceCrashed`;
    * **fail-slow window**: operations inside the plan's slow window
      complete correctly but take ``slow_factor`` times as long -- the
      surplus is charged to the breakdown's ``locate`` component and the
      simulated clock advances by it, so the host genuinely waits.

    A hedging layer above (the sharded volume) can bound the surplus a
    single operation may suffer by setting :attr:`hedge_cap` -- the model
    of a duplicate request racing the slow one: past the cap, the hedge
    wins and the caller stops paying for the stall.
    """

    def __init__(self, inner: BlockDevice, plan: FaultPlan) -> None:
        super().__init__(inner)
        self.plan = plan
        self.rng = random.Random(plan.seed)
        self.ops_seen = 0
        self.reads_failed = 0
        self.writes_torn = 0
        self.writes_dropped = 0
        self.crashed = False
        self._slow_window = plan.slow_window()
        self.ops_slowed = 0
        self.slow_extra_seconds = 0.0
        #: Upper bound (seconds) on the per-op slow surplus; ``None``
        #: means uncapped.  Set transiently by hedged readers.
        self.hedge_cap: Optional[float] = None

    def slow_active(self) -> bool:
        """Whether the *current* op (the one :meth:`_tick` just counted)
        falls inside the plan's fail-slow window."""
        if self._slow_window is None:
            return False
        first, end = self._slow_window
        if self.ops_seen < first:
            return False
        return end is None or self.ops_seen < end

    def _maybe_slow(self, breakdown: Breakdown) -> Breakdown:
        """Stretch a completed op's latency by the plan's slow factor.

        The surplus is charged as ``locate`` (the device is stalling, not
        transferring more data) and pushed onto the simulated clock, so
        the caller's elapsed time and the breakdown stay equal -- metrics
        layers above see an honest, if slow, operation.
        """
        if not self.slow_active():
            return breakdown
        extra = breakdown.total * (self.plan.slow_factor - 1.0)
        if self.hedge_cap is not None:
            extra = min(extra, self.hedge_cap)
        if extra <= 0.0:
            return breakdown
        breakdown.charge("locate", extra)
        clock = getattr(getattr(self.inner, "disk", None), "clock", None)
        if clock is not None:
            clock.advance(extra)
        self.ops_slowed += 1
        self.slow_extra_seconds += extra
        return breakdown

    def _tick(self, op: str, lba: int, count: int) -> None:
        if self.crashed:
            raise DeviceCrashed(
                "device already crashed", op=op, lba=lba, count=count
            )
        self.ops_seen += 1
        crash_at = self.plan.crash_after_ops
        if crash_at is not None and self.ops_seen >= crash_at:
            self.crashed = True
            raise DeviceCrashed(
                f"injected crash at operation {self.ops_seen}",
                op=op,
                lba=lba,
                count=count,
            )

    def _fire(self, rate: float) -> bool:
        return rate > 0.0 and self.rng.random() < rate

    def _check_read(self, lba: int, count: int) -> None:
        self._tick("read", lba, count)
        if self._fire(self.plan.read_error_rate):
            self.reads_failed += 1
            raise InjectedReadError(
                f"injected media error reading blocks [{lba}, {lba + count})",
                op="read",
                lba=lba,
                count=count,
            )

    def read_block(self, lba: int) -> Tuple[bytes, Breakdown]:
        self._check_read(lba, 1)
        data, breakdown = self.inner.read_block(lba)
        return data, self._maybe_slow(breakdown)

    def read_blocks(self, lba: int, count: int) -> Tuple[bytes, Breakdown]:
        self._check_read(lba, count)
        data, breakdown = self.inner.read_blocks(lba, count)
        return data, self._maybe_slow(breakdown)

    def write_block(self, lba: int, data: Optional[bytes] = None) -> Breakdown:
        return self.write_blocks(lba, 1, data)

    def write_blocks(
        self, lba: int, count: int, data: Optional[bytes] = None
    ) -> Breakdown:
        self._tick("write", lba, count)
        if self._fire(self.plan.dropped_write_rate):
            self.writes_dropped += 1
            self.check_lba(lba, count)
            self.check_data(data, count)
            return Breakdown()
        if self._fire(self.plan.torn_write_rate):
            self.writes_torn += 1
            self.check_lba(lba, count)
            data = self.check_data(data, count)
            keep = self.rng.randrange(count)  # 0..count-1 blocks survive
            if keep == 0:
                return Breakdown()
            return self._maybe_slow(self.inner.write_blocks(
                lba, keep, data[: keep * self.block_size]
            ))
        return self._maybe_slow(self.inner.write_blocks(lba, count, data))

    def write_partial(self, lba: int, offset: int, data: bytes) -> Breakdown:
        self._tick("write_partial", lba, 1)
        if self._fire(self.plan.dropped_write_rate):
            self.writes_dropped += 1
            return Breakdown()
        # A sub-block write is a single sector run; tearing it degenerates
        # to dropping it.
        if self._fire(self.plan.torn_write_rate):
            self.writes_torn += 1
            return Breakdown()
        return self._maybe_slow(self.inner.write_partial(lba, offset, data))


class DiskFaultInjector:
    """Crashes the raw :class:`~repro.disk.disk.Disk` on the N-th
    physical write -- *below* the logical layer, so a Virtual Log Disk is
    killed in the middle of its internal data-write / map-append
    sequence (the crash points Section 4's recovery must survive).

    ``torn=True`` applies the first half of the fatal write's sectors
    before crashing (a sector-granular tear); a one-sector write tears to
    nothing, i.e. it is dropped entirely.

    Media degradation is modelled at sector granularity:

    * ``flaky_sectors`` maps sector numbers to per-attempt failure
      probabilities -- a *transient* media error the drive's read-retry
      machinery can recover from (each replay re-rolls the seeded RNG);
    * ``bad_sectors`` fail every read that touches them -- the grown
      defects a resilience layer must quarantine and remap around;
    * ``read_error_rate`` remains the uncorrelated transient noise floor.

    Writes never fault (grown defects here are discovered on read, the
    common ECC story); only the crash machinery interrupts writes.
    """

    def __init__(
        self,
        crash_after_writes: Optional[int] = None,
        torn: bool = True,
        read_error_rate: float = 0.0,
        seed: int = 0,
        bad_sectors: Optional[Set[int]] = None,
        flaky_sectors: Optional[Dict[int, float]] = None,
    ) -> None:
        self.crash_after_writes = crash_after_writes
        self.torn = torn
        self.read_error_rate = read_error_rate
        self.rng = random.Random(seed)
        self.bad_sectors: Set[int] = set(bad_sectors or ())
        self.flaky_sectors: Dict[int, float] = dict(flaky_sectors or {})
        self.writes_seen = 0
        self.reads_seen = 0
        self.read_errors_raised = 0
        self.crashed = False

    def install(self, disk) -> "DiskFaultInjector":
        disk.fault_injector = self
        return self

    def uninstall(self, disk) -> None:
        if disk.fault_injector is self:
            disk.fault_injector = None

    def before_write(self, disk, sector: int, count: int, data) -> None:
        if self.crashed:
            raise DeviceCrashed(
                "disk already crashed", op="write", sector=sector, count=count
            )
        self.writes_seen += 1
        at = self.crash_after_writes
        if at is not None and self.writes_seen >= at:
            self.crashed = True
            if self.torn and data is not None and count > 1:
                keep = count // 2
                if getattr(disk, "_data", None) is not None:
                    disk.poke(sector, data[: keep * disk.sector_bytes])
            raise DeviceCrashed(
                f"injected power loss at physical write {self.writes_seen} "
                f"(sector {sector}, {count} sectors)",
                op="write",
                sector=sector,
                count=count,
            )

    def before_read(self, disk, sector: int, count: int) -> None:
        if self.crashed:
            raise DeviceCrashed(
                "disk already crashed", op="read", sector=sector, count=count
            )
        self.reads_seen += 1
        run = range(sector, sector + count)
        if self.bad_sectors:
            for s in run:
                if s in self.bad_sectors:
                    self.read_errors_raised += 1
                    raise InjectedReadError(
                        f"unrecoverable media error at sector {s}",
                        op="read",
                        sector=s,
                        count=count,
                    )
        if self.flaky_sectors:
            for s in run:
                rate = self.flaky_sectors.get(s)
                if rate is not None and self.rng.random() < rate:
                    self.read_errors_raised += 1
                    raise InjectedReadError(
                        f"transient media error at sector {s}",
                        op="read",
                        sector=s,
                        count=count,
                    )
        if self.read_error_rate > 0.0 and (
            self.rng.random() < self.read_error_rate
        ):
            self.read_errors_raised += 1
            raise InjectedReadError(
                f"injected media error at sector {sector}",
                op="read",
                sector=sector,
                count=count,
            )


# ======================================================================
# The stack factory
# ======================================================================

@dataclass(frozen=True)
class InterposeOptions:
    """Which interposers :func:`build_device_stack` should thread in."""

    trace: bool = False
    trace_capacity: int = 4096
    trace_sink: Optional[object] = None
    metrics: bool = False
    faults: Optional[FaultPlan] = None

    @property
    def any_enabled(self) -> bool:
        return self.trace or self.metrics or self.faults is not None


def wrap_device(
    device: BlockDevice, options: Optional[InterposeOptions]
) -> BlockDevice:
    """Apply the requested interposers around an existing device.

    Layer order, innermost out: faults (so observers see the faulty
    behaviour the host sees), then metrics, then tracing.  With no
    options enabled the device is returned untouched -- the disabled
    stack costs nothing.
    """
    if options is None or not options.any_enabled:
        return device
    if options.faults is not None:
        device = FaultDevice(device, options.faults)
    if options.metrics:
        device = MetricsDevice(device)
    if options.trace:
        device = TracingDevice(
            device,
            capacity=options.trace_capacity,
            sink=options.trace_sink,
        )
    return device


def build_device_stack(
    disk,
    device_type: str = "regular",
    block_size: int = 4096,
    *,
    options: Optional[InterposeOptions] = None,
    trace: bool = False,
    trace_capacity: int = 4096,
    trace_sink: Optional[object] = None,
    metrics: bool = False,
    faults: Optional[FaultPlan] = None,
    device_factory: Optional[Callable] = None,
    nvm=None,
    **device_kwargs,
) -> BlockDevice:
    """Build a core device over ``disk`` and wrap it with interposers.

    ``device_type`` selects the core: ``"regular"`` (update-in-place
    identity mapping) or ``"vld"`` (the Virtual Log Disk); a custom
    ``device_factory(disk, block_size=..., **device_kwargs)`` overrides
    both.  ``nvm`` threads an NVM write-ahead tier between the core and
    the interposers: pass ``True`` for the default NVDIMM spec, a part
    name from :data:`~repro.blockdev.nvm.NVM_SPECS`, or an
    :class:`~repro.blockdev.nvm.NVMSpec`.  Interposers come from
    ``options`` or, when that is omitted, from the individual keyword
    flags.  This is the single entry point the harness, the examples,
    and the file systems build stacks through.
    """
    if device_factory is not None:
        device: BlockDevice = device_factory(
            disk, block_size=block_size, **device_kwargs
        )
    elif device_type == "regular":
        device = RegularDisk(disk, block_size=block_size, **device_kwargs)
    elif device_type == "vld":
        from repro.vlog.vld import VirtualLogDisk

        device = VirtualLogDisk(disk, block_size=block_size, **device_kwargs)
    else:
        raise ValueError(f"unknown device type {device_type!r}")
    if nvm:
        from repro.blockdev.nvm import NVM_SPECS, NVMSpec
        from repro.nvm import NVWal

        if nvm is True:
            spec = None
        elif isinstance(nvm, NVMSpec):
            spec = nvm
        else:
            spec = NVM_SPECS[nvm]
        device = NVWal(device, spec=spec)
    if options is None:
        options = InterposeOptions(
            trace=trace,
            trace_capacity=trace_capacity,
            trace_sink=trace_sink,
            metrics=metrics,
            faults=faults,
        )
    return wrap_device(device, options)
