"""Analytical models of eager-writing latency (Section 2, Appendix A).

Three models, in increasing sophistication:

* :mod:`repro.models.single_track` -- expected rotational slots skipped to
  find a free sector on one track (formulas 1/6, 8, and the block-size
  extension 9).
* :mod:`repro.models.cylinder` -- the single-cylinder model (formulas 2-4)
  comparing the current track against the other tracks of the cylinder.
* :mod:`repro.models.compactor` -- the model assuming a free-space
  compactor (formulas 5, 10-13): fill empty tracks to a threshold, switch,
  and let idle-time compaction regenerate empty tracks.
"""

from repro.models.single_track import (
    expected_skip_sectors,
    expected_skip_recurrence,
    expected_block_locate_sectors,
)
from repro.models.cylinder import (
    cylinder_expected_skip_sectors,
    cylinder_expected_latency,
    single_track_latency,
)
from repro.models.compactor import (
    total_skip_exact,
    nonrandomness_correction,
    average_latency_exact,
    average_latency_closed_form,
    optimal_threshold,
)

__all__ = [
    "expected_skip_sectors",
    "expected_skip_recurrence",
    "expected_block_locate_sectors",
    "cylinder_expected_skip_sectors",
    "cylinder_expected_latency",
    "single_track_latency",
    "total_skip_exact",
    "nonrandomness_correction",
    "average_latency_exact",
    "average_latency_closed_form",
    "optimal_threshold",
]
