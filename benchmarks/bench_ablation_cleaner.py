"""Ablation: LFS cleaner policy (greedy vs cost-benefit) under churn."""

import random

from repro.blockdev.regular import RegularDisk
from repro.disk.disk import Disk
from repro.disk.specs import ST19101
from repro.harness.report import format_table
from repro.hosts.specs import SPARCSTATION_10
from repro.lfs.cleaner import CleanerPolicy
from repro.lfs.lfs import LFS
from repro.workloads.random_update import prepare_file, run_random_updates

from .conftest import full_scale, run_once

_MB = 1 << 20


def _run(policy):
    fs = LFS(
        RegularDisk(Disk(ST19101)),
        SPARCSTATION_10,
        nvram=True,
        cleaner_policy=policy,
    )
    file_bytes = 17 * _MB
    prepare_file(fs, "/t", file_bytes)
    updates = 4000 if full_scale() else 2500
    recorder = run_random_updates(
        fs, "/t", file_bytes, updates, warmup=1500
    )
    return {
        "latency_ms": recorder.mean() * 1e3,
        "segments_cleaned": fs.cleaner.segments_cleaned,
        "blocks_copied": fs.cleaner.blocks_copied,
    }


def test_ablation_cleaner_policy(benchmark):
    results = run_once(
        benchmark,
        lambda: {
            policy.value: _run(policy)
            for policy in (CleanerPolicy.GREEDY, CleanerPolicy.COST_BENEFIT)
        },
    )

    print()
    rows = [
        [
            name,
            entry["latency_ms"],
            entry["segments_cleaned"],
            entry["blocks_copied"],
        ]
        for name, entry in results.items()
    ]
    print(
        format_table(
            ["policy", "latency (ms/4KB)", "segs cleaned", "blocks copied"],
            rows,
            title="Ablation: LFS cleaner policy (random sync updates, "
            "17 MB file, NVRAM)",
        )
    )

    for entry in results.values():
        assert entry["segments_cleaned"] > 0
    # Both policies stay in the same order of magnitude on uniform-random
    # churn (cost-benefit pays off on skewed workloads).
    latencies = [e["latency_ms"] for e in results.values()]
    assert max(latencies) < 4 * min(latencies)
