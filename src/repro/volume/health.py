"""Per-shard fail-slow detection for the sharded volume.

A shard that *crashes* announces itself with an exception; a shard that
goes *fail-slow* does not -- every operation still completes, just an
order of magnitude late, which is the harder partial failure to handle
(the "limping" disks of the fail-slow literature).  The
:class:`ShardHealthMonitor` watches per-operation latencies and trips
when the p99 over a sliding window exceeds a multiple of a frozen
baseline p99, with hysteresis so the verdict does not flap at the
window's edge.  Once tripped, the volume hedges reads against the shard:
:meth:`hedge_delay` is the simulated-time bound after which a duplicate
request would have been served by a healthy sibling.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional


def _percentile(samples: List[float], fraction: float) -> float:
    """Nearest-rank percentile of a non-empty sample list."""
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[rank]


def median_baseline(monitors) -> Optional[float]:
    """The median of the frozen baselines across ``monitors`` (ignoring
    those still learning); ``None`` with fewer than two frozen baselines
    -- a single sibling cannot arbitrate who is the slow one."""
    frozen = sorted(
        m.baseline_p99 for m in monitors if m.baseline_p99 is not None
    )
    if len(frozen) < 2:
        return None
    mid = len(frozen) // 2
    if len(frozen) % 2:
        return frozen[mid]
    return (frozen[mid - 1] + frozen[mid]) / 2.0


class ShardHealthMonitor:
    """A p99-over-window latency tripwire for one shard.

    Args:
        window: Number of recent operations the rolling p99 covers.
        baseline_samples: Operations observed before the baseline p99 is
            frozen.  Until then the monitor never trips (it is still
            learning what "normal" looks like for this shard).
        trip_factor: Rolling p99 >= ``trip_factor`` x baseline p99 trips
            the monitor.
        clear_factor: Once tripped, the rolling p99 must fall back below
            ``clear_factor`` x baseline p99 to clear (hysteresis;
            must be < ``trip_factor``).
        hedge_factor: :meth:`hedge_delay` returns ``hedge_factor`` x
            baseline p99 -- the surplus a hedged read tolerates before
            the duplicate wins.
        min_samples: Rolling-window samples required before the trip
            comparison is meaningful.
    """

    def __init__(
        self,
        window: int = 64,
        baseline_samples: int = 32,
        trip_factor: float = 4.0,
        clear_factor: float = 2.0,
        hedge_factor: float = 2.0,
        min_samples: int = 8,
    ) -> None:
        if window <= 0 or baseline_samples <= 0 or min_samples <= 0:
            raise ValueError("window sizes must be positive")
        if clear_factor >= trip_factor:
            raise ValueError("clear_factor must be below trip_factor")
        self.window = window
        self.baseline_samples = baseline_samples
        self.trip_factor = trip_factor
        self.clear_factor = clear_factor
        self.hedge_factor = hedge_factor
        self.min_samples = min_samples
        self.reset()

    def reset(self) -> None:
        """Forget everything (a recovered shard re-learns its baseline)."""
        self._recent: Deque[float] = deque(maxlen=self.window)
        self._baseline_pool: List[float] = []
        self._baseline_p99: Optional[float] = None
        self._tripped = False
        self._calibrated = False
        self.samples = 0
        self.trips = 0

    def note(self, seconds: float) -> None:
        """Record one completed operation's latency and re-evaluate."""
        self.samples += 1
        if self._baseline_p99 is None:
            self._baseline_pool.append(seconds)
            if len(self._baseline_pool) >= self.baseline_samples:
                self._baseline_p99 = max(
                    _percentile(self._baseline_pool, 0.99), 1e-12
                )
                self._baseline_pool = []
            return
        self._recent.append(seconds)
        if len(self._recent) < self.min_samples:
            return
        p99 = _percentile(list(self._recent), 0.99)
        if not self._tripped:
            if p99 >= self.trip_factor * self._baseline_p99:
                self._tripped = True
                self.trips += 1
        elif p99 < self.clear_factor * self._baseline_p99:
            self._tripped = False

    def calibrate(self, reference_p99: float) -> bool:
        """Cross-check the frozen baseline against a *reference* p99
        (typically the median of the sibling shards' baselines).

        The baseline freezes over whatever samples arrive first, so a
        shard that is fail-slow from op 0 teaches the monitor that slow
        is normal: the inflated baseline means the ``trip_factor`` x
        comparison can never fire.  No amount of local data fixes that
        -- every sample the monitor ever saw was degraded -- so the
        volume lends it the siblings' notion of normal.  One-sided and
        one-shot: only a baseline at least ``trip_factor`` x the
        reference is treated as learned-while-degraded; it is replaced
        by the reference and the monitor trips immediately (the shard
        *is* slow by its siblings' normal).  A sane baseline is left
        untouched either way.  Returns ``True`` when recalibration
        happened.
        """
        self._calibrated = True
        if self._baseline_p99 is None or reference_p99 <= 0.0:
            return False
        if self._baseline_p99 < self.trip_factor * reference_p99:
            return False
        self._baseline_p99 = max(reference_p99, 1e-12)
        if not self._tripped:
            self._tripped = True
            self.trips += 1
        return True

    @property
    def calibrated(self) -> bool:
        """Whether the baseline has been cross-checked against siblings."""
        return self._calibrated

    @property
    def tripped(self) -> bool:
        """Whether the shard currently looks fail-slow."""
        return self._tripped

    @property
    def baseline_p99(self) -> Optional[float]:
        """The frozen baseline p99, or ``None`` while still learning."""
        return self._baseline_p99

    def rolling_p99(self) -> Optional[float]:
        """The p99 over the current window, or ``None`` when too few
        samples have arrived since the baseline froze."""
        if len(self._recent) < self.min_samples:
            return None
        return _percentile(list(self._recent), 0.99)

    def hedge_delay(self) -> Optional[float]:
        """Seconds of fail-slow surplus a hedged read tolerates before
        the duplicate request wins; ``None`` before the baseline froze
        (nothing to hedge against yet)."""
        if self._baseline_p99 is None:
            return None
        return self.hedge_factor * self._baseline_p99

    def stats(self) -> Dict[str, object]:
        return {
            "samples": self.samples,
            "tripped": self._tripped,
            "trips": self.trips,
            "baseline_p99": self._baseline_p99,
            "rolling_p99": self.rolling_p99(),
        }

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        return (
            f"ShardHealthMonitor(samples={self.samples}, "
            f"tripped={self._tripped})"
        )
