import math

import pytest

from repro.disk.batch_mechanics import BatchMechanics
from repro.disk.geometry import DiskGeometry
from repro.disk.mechanics import DiskMechanics
from repro.disk.specs import HP97560, ST19101


@pytest.fixture
def mech():
    return DiskMechanics(ST19101)


class TestRotation:
    def test_position_at_time_zero(self, mech):
        assert mech.rotational_slot(0.0) == pytest.approx(0.0)

    def test_position_wraps_each_revolution(self, mech):
        assert mech.rotational_slot(mech.rotation_time) == pytest.approx(
            0.0, abs=1e-6
        )

    def test_position_mid_revolution(self, mech):
        half = mech.rotation_time / 2
        assert mech.rotational_slot(half) == pytest.approx(128.0)

    def test_negative_time_rejected(self, mech):
        with pytest.raises(ValueError):
            mech.rotational_slot(-1.0)

    def test_wait_for_current_slot_is_zero(self, mech):
        assert mech.wait_for_slot(0.0, 0) == pytest.approx(0.0)

    def test_wait_wraps_around(self, mech):
        # Just past slot 10: must wait almost a full revolution for it.
        now = 10.5 * mech.sector_time
        wait = mech.wait_for_slot(now, 10)
        assert wait == pytest.approx(255.5 * mech.sector_time)

    def test_wait_bounded_by_revolution(self, mech):
        for slot in (0, 100, 255):
            wait = mech.wait_for_slot(0.00123, slot)
            assert 0.0 <= wait < mech.rotation_time

    def test_wait_bad_slot(self, mech):
        with pytest.raises(ValueError):
            mech.wait_for_slot(0.0, 256)


class TestRotationBoundaryNormalization:
    """Regression: times within one ulp of a rotation boundary must read
    as slot 0, not "a hair past it".

    ``k * rotation_time`` usually rounds to a float one ulp *above* the
    mathematical boundary; before the fix, the sub-ulp remainder made
    ``rotational_slot`` report a tiny positive position and
    ``wait_for_slot(now, 0)`` then charged a (near-)full spurious
    revolution -- measured at 1.000000 revolutions on the HP97560 -- for
    half an ulp of simulated time.
    """

    SPECS = (HP97560, ST19101)
    MULTIPLES = (1, 2, 3, 7, 1000, 123457)

    def _adversarial_times(self, rotation):
        for k in self.MULTIPLES:
            exact = k * rotation
            yield exact
            yield math.nextafter(exact, math.inf)   # k*rot*(1 + ulp)
            yield math.nextafter(exact, 0.0)        # k*rot*(1 - ulp)

    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
    def test_no_spurious_revolution_at_boundaries(self, spec):
        mech = DiskMechanics(spec)
        for now in self._adversarial_times(mech.rotation_time):
            wait = mech.wait_for_slot(now, 0)
            # At (or within one ulp of) a boundary, the correct wait for
            # slot 0 is essentially zero; a near-full revolution is the
            # bug this pins.
            assert wait < mech.sector_time, (
                f"{spec.name}: wait_for_slot({now!r}, 0) charged "
                f"{wait / mech.rotation_time:.6f} revolutions"
            )

    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
    def test_one_ulp_above_boundary_snaps_to_slot_zero(self, spec):
        # ``k * rotation_time`` rounds to within half an ulp of the true
        # boundary, so one float above it sits at most one ulp past the
        # boundary: pure rounding noise, and the position must read 0.
        # (``k * rotation_time`` itself may round *below* the boundary,
        # where a position just under ``n`` is the correct answer -- the
        # wait assertion above covers that side.)
        mech = DiskMechanics(spec)
        for k in self.MULTIPLES:
            above = math.nextafter(k * mech.rotation_time, math.inf)
            assert mech.rotational_slot(above) == 0.0

    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
    def test_slot_stays_in_range(self, spec):
        mech = DiskMechanics(spec)
        n = mech.sectors_per_track
        for now in self._adversarial_times(mech.rotation_time):
            assert 0.0 <= mech.rotational_slot(now) < n

    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
    def test_batch_path_reproduces_fix_bit_for_bit(self, spec):
        mech = DiskMechanics(spec)
        batch = BatchMechanics(spec, DiskGeometry(spec))
        for now in self._adversarial_times(mech.rotation_time):
            assert batch.rotational_slot(now) == mech.rotational_slot(now)

    def test_ordinary_times_unchanged(self, mech):
        # The normalization must not disturb positions away from
        # boundaries: mid-slot answers are the plain closed form.
        # (0.5 * rotation_time is an exact interior boundary for an even
        # sector count, so it already reads as an exact integer slot.)
        n = mech.sectors_per_track
        mid_slot = (0.5 + 0.37 / n) * mech.rotation_time
        for now in (0.00123, mid_slot, 3.0 * mech.rotation_time + mid_slot):
            rem = now % mech.rotation_time
            if rem > math.ulp(now):
                expected = (rem / mech.rotation_time) * mech.sectors_per_track
                assert mech.rotational_slot(now) == expected

    def test_interior_sector_boundaries_snap(self, mech):
        # Times that are mathematically a whole number of sector slots
        # past a rotation boundary read as exactly that integer slot,
        # even though the float product lands a few ulp off it -- the
        # same normalization as slot 0, applied to interior boundaries
        # (a chain of back-to-back transfers ends exactly on one, and a
        # hair-past reading would charge a spurious full revolution for
        # the physically adjacent sector).
        n = mech.sectors_per_track
        for k in (1, 3, 17, n - 1):
            for revs in (0, 2, 1000):
                now = (revs * n + k) * mech.sector_time
                assert mech.rotational_slot(now) == float(k), (revs, k)


class TestTransferAndPositioning:
    def test_transfer_scales_linearly(self, mech):
        assert mech.transfer_time(8) == pytest.approx(8 * mech.sector_time)

    def test_transfer_zero(self, mech):
        assert mech.transfer_time(0) == 0.0

    def test_transfer_negative_rejected(self, mech):
        with pytest.raises(ValueError):
            mech.transfer_time(-1)

    def test_seek_symmetry(self, mech):
        assert mech.seek_time(0, 5) == mech.seek_time(5, 0)

    def test_head_switch_only_when_heads_differ(self, mech):
        assert mech.head_switch_time(3, 3) == 0.0
        assert mech.head_switch_time(0, 1) == ST19101.head_switch_time

    def test_positioning_overlaps_seek_and_switch(self, mech):
        # Concurrent: max, not sum.
        seek = mech.seek_time(0, 5)
        switch = ST19101.head_switch_time
        combined = mech.positioning_time(0, 0, 5, 1)
        assert combined == pytest.approx(max(seek, switch))

    def test_positioning_same_track_free(self, mech):
        assert mech.positioning_time(2, 3, 2, 3) == 0.0

    def test_hp_rotation_slower(self):
        hp = DiskMechanics(HP97560)
        sg = DiskMechanics(ST19101)
        assert hp.rotation_time > 2 * sg.rotation_time
