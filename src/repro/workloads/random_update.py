"""Random synchronous small updates (Figures 8, 9; Table 2).

"We create a single file of a certain size.  Then we repeatedly choose a
random 4 KB block to update.  There is no idle time between writes.  For
UFS, the 'write' system call does not return until the block is written to
the disk surface.  For LFS, we assume that the 6.1 MB file buffer cache is
made of NVRAM and we do not flush to disk until the buffer cache is full."
(Section 5.3.)
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.fs.api import FileSystem
from repro.sim.stats import LatencyRecorder


def prepare_file(
    fs: FileSystem,
    path: str,
    file_bytes: int,
    io_bytes: int = 4096,
    chunk_blocks: int = 64,
) -> None:
    """Create and fully populate the update target file."""
    fs.create(path)
    chunk = bytes(io_bytes) * chunk_blocks
    offset = 0
    while offset < file_bytes:
        piece = min(len(chunk), file_bytes - offset)
        fs.write(path, offset, chunk[:piece])
        offset += piece
    fs.sync()
    fs.drop_caches()


def run_random_updates(
    fs: FileSystem,
    path: str,
    file_bytes: int,
    updates: int,
    io_bytes: int = 4096,
    sync: bool = True,
    warmup: int = 0,
    seed: int = 0xF168,
    on_measure_start: Optional[Callable[[], None]] = None,
) -> LatencyRecorder:
    """Steady-state random block updates; returns per-write latencies.

    ``on_measure_start`` fires once, after the warmup updates and before
    the first measured one -- the hook observability layers use to reset
    their accumulators to the measured window (e.g. a
    :class:`~repro.blockdev.interpose.MetricsDevice` feeding Figure 9).
    """
    rng = random.Random(seed)
    nblocks = file_bytes // io_bytes
    payload = b"\xA5" * io_bytes
    recorder = LatencyRecorder()
    for i in range(warmup + updates):
        if i == warmup and on_measure_start is not None:
            on_measure_start()
        block = rng.randrange(nblocks)
        breakdown = fs.write(path, block * io_bytes, payload, sync=sync)
        if i >= warmup:
            recorder.record(breakdown)
    return recorder
