"""Experiment harness: builds the paper's stacks and regenerates every
table and figure of the evaluation (Section 5)."""

from repro.harness.configs import StackConfig, build_stack, STACKS
from repro.harness import experiments
from repro.harness.cache import ResultCache
from repro.harness.report import format_table, series_to_csv
from repro.harness.sweep import SweepPoint, run_sweep

__all__ = [
    "StackConfig",
    "build_stack",
    "STACKS",
    "experiments",
    "format_table",
    "series_to_csv",
    "ResultCache",
    "SweepPoint",
    "run_sweep",
]
