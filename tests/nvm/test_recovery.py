"""Two-tier recovery: the NVM commit point in front of the VLD pipeline."""

import pytest

from repro.blockdev.interpose import DeviceCrashed
from repro.blockdev.nvm import NVM_SPECS
from repro.disk.disk import Disk
from repro.disk.specs import ST19101
from repro.nvm import NVWal, NVWalInjector
from repro.sim.clock import SimClock
from repro.vlog.vld import VirtualLogDisk
from repro.vlog.resilience import vlfsck


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def disk(clock):
    return Disk(ST19101, clock)


@pytest.fixture
def vld(disk):
    return VirtualLogDisk(disk)


@pytest.fixture
def wal(vld):
    return NVWal(vld)


def _blk(byte, size=4096):
    return bytes([byte]) * size


class TestCrashBetweenCommitAndDestage:
    def test_acked_writes_survive_crash_before_destage(self, wal, vld):
        for i in range(8):
            wal.write_block(i, _blk(0x10 + i))
        assert wal.dirty_blocks == 8  # nothing destaged yet
        wal.crash()
        outcome = wal.recover()
        assert outcome.replayed_records == 8
        assert outcome.replayed_blocks == 8
        assert not outcome.torn_tail
        for i in range(8):
            data, _ = wal.read_block(i)
            assert data == _blk(0x10 + i)
        # The replay landed in the backing store, not just the tier.
        for i in range(8):
            data, _ = vld.read_block(i)
            assert data == _blk(0x10 + i)
        assert not vlfsck(vld).violations

    def test_overwrite_chain_replays_newest(self, wal, vld):
        wal.write_block(3, _blk(0xAA))
        wal.write_block(3, _blk(0xBB))
        wal.write_block(3, _blk(0xCC))
        wal.crash()
        outcome = wal.recover()
        assert outcome.replayed_records == 3
        assert outcome.replayed_blocks == 1  # final state per block
        data, _ = vld.read_block(3)
        assert data == _blk(0xCC)

    def test_trim_record_replays_as_trim(self, wal, vld):
        vld.write_block(4, _blk(0x44))
        wal.trim(4, 1)
        wal.crash()
        outcome = wal.recover()
        assert outcome.replayed_trims == 1
        assert vld.imap.get(4) is None
        data, _ = wal.read_block(4)
        assert data == bytes(4096)

    def test_mixed_destaged_and_pending_state(self, wal, vld):
        # Half destaged before the crash, half still NVM-only.
        for i in range(4):
            wal.write_block(i, _blk(0x20 + i))
        wal.destage_all()
        for i in range(4, 8):
            wal.write_block(i, _blk(0x20 + i))
        wal.crash()
        wal.recover()
        for i in range(8):
            data, _ = vld.read_block(i)
            assert data == _blk(0x20 + i)
        assert not vlfsck(vld).violations

    def test_recovery_runs_inner_pipeline(self, wal, vld):
        wal.write_block(1, _blk(0x11))
        wal.crash()
        outcome = wal.recover()
        assert outcome.inner is not None
        # No orderly power-down: the VLD had to scan (or found an empty
        # log); either way its own machinery ran under the tier's replay.
        assert outcome.inner.elapsed >= 0.0

    def test_clean_restart_replays_nothing(self, wal, vld):
        wal.write_block(1, _blk(0x11))
        wal.power_down()
        outcome = wal.recover()
        assert outcome.replayed_records == 0
        assert outcome.used_power_down_record


class TestInjectedCrashes:
    def test_injector_crashes_on_nth_append(self, wal):
        wal.injector = NVWalInjector(crash_after_appends=3)
        wal.write_block(0, _blk(0x01))
        wal.write_block(1, _blk(0x02))
        with pytest.raises(DeviceCrashed):
            wal.write_block(2, _blk(0x03))

    def test_untorn_crash_keeps_fatal_record(self, wal, vld):
        wal.injector = NVWalInjector(crash_after_appends=2)
        wal.write_block(0, _blk(0x01))
        with pytest.raises(DeviceCrashed):
            wal.write_block(1, _blk(0x02))
        wal.injector = None
        wal.crash()
        outcome = wal.recover()
        # The record persisted before power dropped: both writes replay.
        assert outcome.replayed_records == 2
        assert not outcome.torn_tail
        data, _ = vld.read_block(1)
        assert data == _blk(0x02)

    def test_torn_crash_discards_fatal_record_only(self, wal, vld):
        wal.injector = NVWalInjector(crash_after_appends=2, torn=True)
        wal.write_block(0, _blk(0x01))
        with pytest.raises(DeviceCrashed):
            wal.write_block(1, _blk(0x02))
        wal.injector = None
        wal.crash()
        outcome = wal.recover()
        # The torn append never committed; the earlier acked write did.
        assert outcome.replayed_records == 1
        assert outcome.torn_tail
        data, _ = vld.read_block(0)
        assert data == _blk(0x01)
        # The torn block reads old (here: unwritten), never garbage.
        data, _ = vld.read_block(1)
        assert data == bytes(4096)

    def test_write_after_torn_recovery_works(self, wal, vld):
        wal.injector = NVWalInjector(crash_after_appends=1, torn=True)
        with pytest.raises(DeviceCrashed):
            wal.write_block(0, _blk(0x01))
        wal.injector = None
        wal.crash()
        wal.recover()
        wal.write_block(0, _blk(0x02))
        wal.destage_all()
        data, _ = vld.read_block(0)
        assert data == _blk(0x02)
        assert not vlfsck(vld).violations

    def test_double_crash_during_recovery_epoch(self, wal, vld):
        # Crash, recover, crash again immediately: the reset log must not
        # resurrect pre-reset records (epoch guard).
        wal.write_block(0, _blk(0x01))
        wal.crash()
        wal.recover()
        wal.write_block(0, _blk(0x02))
        wal.crash()
        outcome = wal.recover()
        assert outcome.replayed_records == 1
        data, _ = vld.read_block(0)
        assert data == _blk(0x02)


class TestBackpressureCrash:
    def test_crash_after_pressure_destage(self, disk):
        vld = VirtualLogDisk(disk)
        spec = NVM_SPECS["nvdimm"].with_overrides(capacity_bytes=96 << 10)
        wal = NVWal(vld, spec=spec)
        for i in range(40):
            wal.write_block(i % 16, _blk(i & 0xFF))
        assert wal.pressure_destages > 0
        wal.crash()
        wal.recover()
        # The newest version of every block survives, wherever the crash
        # left it (destaged epoch or live NVM records).
        for block in range(16):
            newest = max(i for i in range(40) if i % 16 == block)
            data, _ = wal.read_block(block)
            assert data == _blk(newest & 0xFF)
        assert not vlfsck(vld).violations


class TestTwoTierPowerDownDepth4:
    """Orderly shutdown through both tiers at queue depth 4: power_down
    on the NVWal destages every dirty NVM block into the VLD (whose own
    power_down then barriers the depth-4 scheduler queue and writes the
    power record), so a post-crash recovery finds a clean NVM log and a
    fast power-record restart underneath."""

    def _stack(self):
        disk = Disk(ST19101, num_cylinders=2)
        vld = VirtualLogDisk(disk, queue_depth=4, sched="satf")
        return NVWal(vld), vld

    def test_power_down_drains_both_tiers(self):
        wal, vld = self._stack()
        payloads = {lba: _blk(0x30 + lba) for lba in range(10)}
        for lba, data in payloads.items():
            wal.write_block(lba, data)
        assert wal.dirty_blocks > 0  # acked in NVM, not yet destaged
        wal.power_down()
        assert wal.dirty_blocks == 0  # tier 1 drained into tier 2
        assert vld.scheduler.outstanding == 0  # tier 2 queue barriered
        wal.crash()
        outcome = wal.recover()
        # Nothing to replay from NVM; the VLD restarted from its record.
        assert outcome.replayed_records == 0
        assert outcome.used_power_down_record
        for lba, data in payloads.items():
            assert wal.read_block(lba)[0] == data
        assert not vlfsck(vld).violations

    def test_crash_instead_of_power_down_replays_from_nvm(self):
        """Same depth-4 stack, no orderly shutdown: the acked writes
        never left NVM, the VLD recovers by scan, and the NVM replay
        restores every acked block on top of it."""
        wal, vld = self._stack()
        payloads = {lba: _blk(0x50 + lba) for lba in range(10)}
        for lba, data in payloads.items():
            wal.write_block(lba, data)
        wal.crash()
        outcome = wal.recover()
        assert outcome.replayed_blocks == len(payloads)
        assert not outcome.used_power_down_record
        for lba, data in payloads.items():
            assert wal.read_block(lba)[0] == data
        assert not vlfsck(vld).violations
