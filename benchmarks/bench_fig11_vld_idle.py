"""Figure 11: UFS on the VLD, latency vs idle-interval length.

The contrast with Figure 10: the compactor moves data at (sub-)track
granularity, so the VLD profits from a continuum of *short* idle intervals
and behaves predictably, where LFS needs segment-sized idle time.
"""

from repro.harness import experiments
from repro.harness.report import format_table

from .conftest import full_scale, run_once


def test_figure11(benchmark):
    if full_scale():
        burst_kbs = [128, 256, 512, 1024, 2048, 4096]
        idle_seconds = [0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6]
        bursts = 6
    else:
        burst_kbs = [128, 512, 2048]
        idle_seconds = [0.0, 0.1, 0.3, 0.6]
        bursts = 4

    result = run_once(
        benchmark,
        lambda: experiments.figure11(
            burst_kbs=burst_kbs,
            idle_seconds=idle_seconds,
            utilization=0.8,
            bursts=bursts,
        ),
    )

    print()
    for burst, series in result.items():
        rows = [
            [f"{idle * 1e3:.0f}ms", latency]
            for idle, latency in zip(
                series["idle_seconds"], series["latency_ms"]
            )
        ]
        print(
            format_table(
                ["idle interval", "latency (ms/4KB)"],
                rows,
                title=f"Figure 11 (UFS on VLD): burst {burst}",
            )
        )
        print()

    for burst, series in result.items():
        latencies = series["latency_ms"]
        # Latency never degrades with idle time and stays in a tight,
        # predictable band (the paper's contrast with LFS's variance).
        assert latencies[-1] <= latencies[0] * 1.1
        assert max(latencies) < 4 * min(latencies)
        # Sub-second idle intervals already suffice: these are *much*
        # shorter than the multi-second intervals Figure 10 sweeps.
        assert max(series["idle_seconds"]) <= 1.0
