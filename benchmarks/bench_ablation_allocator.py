"""Ablation: eager-allocation policy (Section 4.2's choices).

Compares NEAREST (Figure 1's idealised search), GREEDY_CYLINDER (one-way
sweep), and TRACK_FILL (the paper's compactor-assisted configuration) on
random synchronous updates at moderate utilization.
"""

import random

from repro.disk.cache import ReadAheadPolicy
from repro.disk.disk import Disk
from repro.disk.specs import ST19101
from repro.harness.report import format_table
from repro.hosts.specs import SPARCSTATION_10
from repro.ufs.ufs import UFS
from repro.vlog.allocator import AllocationPolicy
from repro.vlog.vld import VirtualLogDisk
from repro.workloads.random_update import prepare_file, run_random_updates

from .conftest import full_scale, run_once

_MB = 1 << 20


def _run(policy):
    disk = Disk(ST19101, readahead=ReadAheadPolicy.FULL_TRACK)
    vld = VirtualLogDisk(disk, policy=policy)
    fs = UFS(vld, SPARCSTATION_10)
    file_bytes = 12 * _MB
    prepare_file(fs, "/t", file_bytes)
    updates = 300 if full_scale() else 120
    recorder = run_random_updates(
        fs, "/t", file_bytes, updates, warmup=updates // 3
    )
    return recorder.mean() * 1e3


def test_ablation_allocator_policy(benchmark):
    def sweep():
        return {
            policy.value: _run(policy)
            for policy in (
                AllocationPolicy.NEAREST,
                AllocationPolicy.GREEDY_CYLINDER,
                AllocationPolicy.TRACK_FILL,
            )
        }

    results = run_once(benchmark, sweep)

    print()
    print(
        format_table(
            ["policy", "latency (ms/4KB)"],
            [[name, value] for name, value in results.items()],
            title="Ablation: eager allocation policy (UFS on VLD, "
            "random sync updates @ ~55% utilization)",
        )
    )

    # All eager policies must beat the update-in-place half-rotation floor.
    half_rotation_ms = ST19101.rotation_time / 2 * 1e3
    for name, latency in results.items():
        assert latency < 2 * half_rotation_ms + 2.0
    # The policies are within a small factor of each other at moderate
    # utilization (they diverge near full, which Table 2's setup shows).
    values = list(results.values())
    assert max(values) < 3 * min(values)
