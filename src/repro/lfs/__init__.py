"""A log-structured file system (the paper's "LFS").

Modeled on the MIT Log-structured Logical Disk configuration of Section 4.4:
4 KB blocks, 0.5 MB segments, a 6.1 MB file buffer cache (optionally treated
as NVRAM), a 75 % partial-segment threshold for ``sync``, a cleaner that can
run both on demand (out of free segments) and during idle periods, and no
read-ahead.  Checkpoints plus roll-forward provide recovery.
"""

from repro.lfs.layout import LFSLayout, LFSSuperblock
from repro.lfs.segment import SegmentSummary, SegmentWriter, BlockKind
from repro.lfs.inode_map import InodeMap, SegmentUsage
from repro.lfs.nvram import FileCache
from repro.lfs.cleaner import Cleaner, CleanerPolicy
from repro.lfs.lfs import LFS

__all__ = [
    "LFSLayout",
    "LFSSuperblock",
    "SegmentSummary",
    "SegmentWriter",
    "BlockKind",
    "InodeMap",
    "SegmentUsage",
    "FileCache",
    "Cleaner",
    "CleanerPolicy",
    "LFS",
]
