"""Bounded read-retry with deterministic simulated-time backoff.

Transient media faults (a marginal sector, vibration, a recoverable servo
error) often clear on a re-read after a short pause; firmware retries a
handful of times with growing delays before declaring the sector dead.
The backoff schedule here is a pure function of the attempt number, so
runs are bit-for-bit reproducible under the simulated clock.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.blockdev.interpose import DeviceFault


class MediaError(DeviceFault):
    """A sector remained unreadable (fault or checksum mismatch) after the
    retry policy was exhausted.  Carries the same structured context as
    other device faults (op, sector, attempt)."""


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try before giving a sector up.

    Args:
        max_attempts: Total read attempts (first try included).
        initial_backoff: Pause before the second attempt, in seconds.
        backoff_factor: Multiplier applied per further attempt.
    """

    max_attempts: int = 3
    initial_backoff: float = 0.002
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.initial_backoff < 0.0:
            raise ValueError("initial_backoff must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be at least 1")

    def backoff(self, attempt: int) -> float:
        """Pause to insert *after* failed attempt number ``attempt``."""
        if attempt < 1:
            raise ValueError("attempts are numbered from 1")
        return self.initial_backoff * self.backoff_factor ** (attempt - 1)
