"""Pluggable queue-ordering policies.

Each policy answers one question: of the requests currently pending,
which should the disk service next?  Policies never touch the clock or
the media -- they only *price* candidates, using the same closed-form
mechanics model the disk will charge when the chosen request is serviced.

* ``fifo`` -- submission order; the behaviour of the unscheduled seed
  code, and the ``queue_depth=1`` byte-identity baseline.
* ``scan`` -- the classic elevator: keep sweeping in one direction,
  service the nearest request at or ahead of the head, reverse when the
  direction is exhausted.
* ``satf`` -- shortest access time first: full positioning *plus*
  rotation, the policy a drive that knows its own rotational position can
  run (and the one eager writing's cost model already implements).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.disk.disk import Disk
    from repro.sched.scheduler import DiskRequest


class SchedulingPolicy:
    """Strategy interface: pick the next request to service."""

    name = "abstract"

    def pick(
        self, pending: Sequence["DiskRequest"], disk: "Disk"
    ) -> "DiskRequest":
        raise NotImplementedError


class FIFOPolicy(SchedulingPolicy):
    """Service in arrival order (the seed's implicit policy)."""

    name = "fifo"

    def pick(self, pending, disk):
        return pending[0]


class ElevatorPolicy(SchedulingPolicy):
    """SCAN: sweep the arm one way, reverse only when nothing lies ahead.

    Ties on the same cylinder break by arrival order, so equal-distance
    requests cannot reorder indefinitely.
    """

    name = "scan"

    def __init__(self) -> None:
        self.direction = 1

    def pick(self, pending, disk):
        here = disk.head_cylinder
        decompose = disk.geometry.decompose
        for direction in (self.direction, -self.direction):
            best = None
            for req in pending:
                delta = (decompose(req.sector)[0] - here) * direction
                if delta < 0:
                    continue
                key = (delta, req.seq)
                if best is None or key < best[0]:
                    best = (key, req)
            if best is not None:
                self.direction = direction
                return best[1]
        return pending[0]  # unreachable: some request always qualifies


class SATFPolicy(SchedulingPolicy):
    """Shortest access time first, priced by the mechanics model.

    The predicted cost mirrors ``Disk._position_and_transfer`` exactly:
    command overhead (when the request is host-issued), positioning as
    ``max(seek, head switch)``, then the rotational wait measured from
    the post-positioning instant *in service order* -- the clock advances
    by the SCSI overhead first, then by positioning, so the wait is
    priced at ``(now + scsi) + positioning``, not ``now + (scsi +
    positioning)`` (the two differ by an ulp often enough for the
    predicted cost to drift from the charged one).  Requests spanning
    several tracks are priced on their first track -- an estimate, but
    the error is the same for every candidate with the same first sector.

    The queue is priced in one ``BatchMechanics.price_candidates`` pass;
    :meth:`predicted_cost` keeps the one-request scalar composition as
    the oracle the property tests pin the batch path (and the disk's
    actual charges) against.
    """

    name = "satf"

    def pick(self, pending, disk):
        if len(pending) == 1:
            return pending[0]
        scsi = disk.spec.scsi_overhead
        sectors = []
        leads = None
        for i, req in enumerate(pending):
            sectors.append(req.sector)
            if req.charge_scsi:
                if leads is None:
                    leads = [0.0] * len(pending)
                leads[i] = scsi
        costs = disk.batch.price_candidates(
            disk.clock.now,
            disk.head_cylinder,
            disk.head_head,
            sectors,
            extra_lead=leads,
        )
        cheapest = min(costs)
        first = costs.index(cheapest)
        if cheapest not in costs[first + 1:]:
            return pending[first]
        # Cost tie: resolve by submission order (lowest seq), exactly as
        # a (cost, seq) scan would.
        best = None
        for req, cost in zip(pending, costs):
            if cost == cheapest and (best is None or req.seq < best.seq):
                best = req
        return best

    def predicted_cost(self, req, disk) -> float:
        """Scalar oracle: the access time ``pick`` attributes to ``req``,
        composed from the one-at-a-time mechanics calls in the exact
        order ``Disk._position_and_transfer`` will charge them."""
        mechanics = disk.mechanics
        geometry = disk.geometry
        now = disk.clock.now
        extra = disk.spec.scsi_overhead if req.charge_scsi else 0.0
        cylinder, head, sect = geometry.decompose(req.sector)
        positioning = mechanics.positioning_time(
            disk.head_cylinder, disk.head_head, cylinder, head
        )
        target = geometry.angle_of(cylinder, head, sect)
        wait = mechanics.wait_for_slot((now + extra) + positioning, target)
        return (extra + positioning) + wait


POLICIES = {
    "fifo": FIFOPolicy,
    "scan": ElevatorPolicy,
    "elevator": ElevatorPolicy,
    "satf": SATFPolicy,
}


def make_policy(name: str) -> SchedulingPolicy:
    """A fresh policy instance by name (policies may carry sweep state)."""
    try:
        return POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown scheduling policy {name!r}; "
            f"known: {', '.join(sorted(set(POLICIES)))}"
        ) from None
