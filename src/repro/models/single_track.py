"""The single-track model (Section 2.1, Appendix A.1).

With ``n`` sectors per track, free-space fraction ``p``, and randomly
distributed free space, the expected number of occupied sectors the head
skips before reaching a free one is::

    (1 - p) * n / (1 + p * n)                                   (1)

which is the closed form of the recurrence::

    E(n, k) = (n - k) / n * (1 + E(n - 1, k)),   E(n, n) = 0     (7)
    E(n, k) = (n - k) / (1 + k)                                  (8)

The paper's headline observation: this is roughly the ratio of occupied to
free sectors, so even at 80 % utilization only ~4 sector slots pass before a
free sector -- under 100 microseconds on a 1998 drive, versus the ~3 ms
half-rotation floor of update-in-place.
"""

from __future__ import annotations

from functools import lru_cache


def expected_skip_sectors(n: int, p: float) -> float:
    """Formula (1): expected sectors skipped before the first free sector.

    Args:
        n: Sectors per track.
        p: Free-space fraction in [0, 1].

    Returns:
        Expected number of occupied sectors passed (a rotational delay in
        units of sector slots).
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if not 0.0 <= p <= 1.0:
        raise ValueError("free-space fraction p must lie in [0, 1]")
    return (1.0 - p) * n / (1.0 + p * n)


@lru_cache(maxsize=None)
def expected_skip_recurrence(n: int, k: int) -> float:
    """Recurrence (7), solved exactly: expected skips with ``k`` free of ``n``.

    Provided both as an independent check of the closed form (8) and for
    exact small-track computations.  Raises when ``k`` is zero (a full track
    has no free sector to find).  Evaluated bottom-up from the ``E(k, k) = 0``
    base case -- the same floating-point operations, in the same order, as
    the naive recursion, without its O(n) stack depth (large-``n`` drive
    projections used to hit the recursion limit re-deriving free counts).
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if not 0 < k <= n:
        raise ValueError("k must satisfy 0 < k <= n")
    expectation = 0.0
    for m in range(k + 1, n + 1):
        expectation = (m - k) / m * (1.0 + expectation)
    return expectation


def expected_block_locate_sectors(n: int, p: float, logical: int, physical: int) -> float:
    """Formula (9): expected locate cost for a logical block, in sector slots.

    Args:
        n: Sectors per track.
        p: Free-space fraction.
        logical: File system logical block size ``B`` in sectors.
        physical: Disk physical block size ``b`` in sectors (``b <= B`` and
            ``b`` divides ``B``).

    Returns:
        Expected total slots skipped locating all free space for one logical
        block.  Minimised when ``physical == logical`` -- the reason the VLD
        uses 4 KB physical blocks (Section 4.2).
    """
    if logical <= 0 or physical <= 0:
        raise ValueError("block sizes must be positive")
    if physical > logical:
        raise ValueError("physical block cannot exceed the logical block")
    if logical % physical != 0:
        raise ValueError("physical block size must divide the logical size")
    if not 0.0 <= p <= 1.0:
        raise ValueError("free-space fraction p must lie in [0, 1]")
    return (1.0 - p) * n / (physical + p * n) * logical
