"""Logical block devices: the interface file systems program against.

Both the plain update-in-place disk and the Virtual Log Disk export this
same interface, which is how the paper runs an *unmodified* UFS on either
(Section 4: "Because both the regular disk and the VLD export the standard
device driver interface...").
"""

from repro.blockdev.interface import BlockDevice
from repro.blockdev.regular import RegularDisk

__all__ = ["BlockDevice", "RegularDisk"]
