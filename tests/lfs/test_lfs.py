"""End-to-end LFS behaviour: namespace, log mechanics, cleaning, recovery."""

import random

import pytest

from repro.fs.api import (
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    NoSpace,
)
from repro.lfs.lfs import LFS


class TestNamespace:
    def test_create_stat_exists(self, lfs):
        lfs.create("/f")
        st = lfs.stat("/f")
        assert st.size == 0 and not st.is_dir
        assert lfs.exists("/f")

    def test_duplicate_rejected(self, lfs):
        lfs.create("/f")
        with pytest.raises(FileExists):
            lfs.create("/f")

    def test_nested_directories(self, lfs):
        lfs.mkdir("/a")
        lfs.mkdir("/a/b")
        lfs.create("/a/b/c")
        assert lfs.listdir("/a/b") == ["c"]

    def test_unlink_and_rmdir(self, lfs):
        lfs.mkdir("/d")
        lfs.create("/d/f")
        with pytest.raises(DirectoryNotEmpty):
            lfs.rmdir("/d")
        lfs.unlink("/d/f")
        lfs.rmdir("/d")
        assert not lfs.exists("/d")

    def test_unlink_missing(self, lfs):
        with pytest.raises(FileNotFound):
            lfs.unlink("/ghost")

    def test_create_is_memory_speed(self, lfs):
        """LFS metadata is asynchronous: no disk I/O on create."""
        writes_before = lfs.device.disk.writes
        breakdown = lfs.create("/quick")
        assert lfs.device.disk.writes == writes_before
        assert breakdown.locate == 0.0

    def test_unlink_frees_log_space(self, lfs):
        lfs.create("/f")
        lfs.write("/f", 0, bytes(4096) * 64)
        lfs.sync()
        live_before = sum(lfs.segusage.live_bytes)
        lfs.unlink("/f")
        assert sum(lfs.segusage.live_bytes) < live_before


class TestDataPath:
    def test_write_read_roundtrip(self, lfs):
        lfs.create("/f")
        lfs.write("/f", 0, b"log structured")
        data, _ = lfs.read("/f", 0, 14)
        assert data == b"log structured"

    def test_roundtrip_through_disk(self, lfs):
        lfs.create("/f")
        lfs.write("/f", 0, b"x" * 9000)
        lfs.sync()
        lfs.drop_caches()
        data, _ = lfs.read("/f", 0, 9000)
        assert data == b"x" * 9000

    def test_partial_overwrite(self, lfs):
        lfs.create("/f")
        lfs.write("/f", 0, b"A" * 8192)
        lfs.write("/f", 100, b"B" * 200)
        data, _ = lfs.read("/f", 0, 8192)
        assert data[:100] == b"A" * 100
        assert data[100:300] == b"B" * 200

    def test_sparse_read_zeros(self, lfs):
        lfs.create("/f")
        lfs.write("/f", 10 * 4096, b"tail")
        data, _ = lfs.read("/f", 0, 4096)
        assert data == bytes(4096)

    def test_large_file_indirect_blocks(self, lfs):
        blob = bytes(range(256)) * 16 * 1100  # ~4.4 MB: needs double ind.
        lfs.create("/big")
        lfs.write("/big", 0, blob)
        lfs.sync()
        lfs.drop_caches()
        data, _ = lfs.read("/big", 0, len(blob))
        assert data == blob

    def test_overwrites_append_not_update_in_place(self, lfs):
        lfs.create("/f")
        lfs.write("/f", 0, b"1" * 4096)
        lfs.sync()
        inode = lfs._inodes[lfs.stat("/f").inum]
        first = inode.direct[0]
        lfs.write("/f", 0, b"2" * 4096)
        lfs.sync()
        assert inode.direct[0] != first

    def test_fuzz_against_reference(self, lfs):
        rng = random.Random(123)
        lfs.create("/fuzz")
        model = bytearray()
        for step in range(50):
            offset = rng.randrange(0, 50000)
            payload = bytes([rng.randrange(256)]) * rng.randrange(1, 9000)
            lfs.write("/fuzz", offset, payload)
            if len(model) < offset + len(payload):
                model.extend(bytes(offset + len(payload) - len(model)))
            model[offset : offset + len(payload)] = payload
            if step % 10 == 0:
                lfs.sync()
                lfs.drop_caches()
        data, _ = lfs.read("/fuzz", 0, len(model))
        assert data == bytes(model)


class TestSyncSemantics:
    def test_sync_write_flushes_without_nvram(self, lfs):
        lfs.create("/f")
        writes_before = lfs.device.disk.writes
        lfs.write("/f", 0, b"s" * 4096, sync=True)
        assert lfs.device.disk.writes > writes_before

    def test_sync_write_absorbed_by_nvram(self, lfs_nvram):
        lfs_nvram.create("/f")
        writes_before = lfs_nvram.device.disk.writes
        lfs_nvram.write("/f", 0, b"s" * 4096, sync=True)
        assert lfs_nvram.device.disk.writes == writes_before

    def test_fsync_applies_partial_segment_threshold(self, lfs):
        lfs.create("/f")
        lfs.write("/f", 0, b"d" * 4096)
        lfs.fsync("/f")
        assert lfs.writer.partial_flushes >= 1

    def test_nvram_flushes_when_full(self, lfs_nvram):
        capacity = lfs_nvram.cache.capacity_blocks
        lfs_nvram.create("/f")
        writes_before = lfs_nvram.device.disk.writes
        blob = bytes(4096)
        for i in range(capacity + 50):
            lfs_nvram.write("/f", i * 4096, blob, sync=True)
        assert lfs_nvram.device.disk.writes > writes_before


class TestCleaner:
    def _churn(self, fs, file_mb=10, updates=3000, seed=5):
        blob = bytes(4096) * 256  # 1 MB
        fs.create("/churn")
        for chunk in range(file_mb):
            fs.write("/churn", chunk * len(blob), blob)
        fs.sync()
        rng = random.Random(seed)
        nblocks = file_mb * 256
        for _ in range(updates):
            fs.write(
                "/churn", rng.randrange(nblocks) * 4096, b"u" * 4096,
                sync=True,
            )

    def test_cleaning_triggered_under_churn(self, lfs):
        self._churn(lfs, file_mb=12, updates=2500)
        assert lfs.cleaner.segments_cleaned > 0

    def test_content_survives_cleaning(self, lfs):
        lfs.create("/keep")
        lfs.write("/keep", 0, b"precious!" + bytes(4087))
        self._churn(lfs, file_mb=12, updates=2500)
        lfs.sync()
        lfs.drop_caches()
        data, _ = lfs.read("/keep", 0, 9)
        assert data == b"precious!"

    def test_free_segments_never_exhausted(self, lfs):
        self._churn(lfs, file_mb=14, updates=3000)
        assert lfs.free_segments() >= 1

    def test_idle_cleaning_creates_free_segments(self, lfs):
        self._churn(lfs, file_mb=12, updates=1500)
        before = lfs.free_segments()
        lfs.idle(5.0)
        assert lfs.free_segments() >= before

    def test_out_of_space_raises_cleanly(self, lfs):
        blob = bytes(4096) * 256
        lfs.create("/fill")
        with pytest.raises(NoSpace):
            for chunk in range(200):  # 200 MB into a ~21 MB log
                lfs.write("/fill", chunk * len(blob), blob)
                lfs.sync()


class TestCrashRecovery:
    def test_checkpoint_and_remount(self, lfs):
        lfs.mkdir("/d")
        lfs.create("/d/f")
        lfs.write("/d/f", 0, b"durable" + bytes(4089))
        lfs.checkpoint()
        lfs.crash()
        lfs.mount()
        data, _ = lfs.read("/d/f", 0, 7)
        assert data == b"durable"

    def test_roll_forward_past_checkpoint(self, lfs):
        lfs.create("/f")
        lfs.write("/f", 0, b"old" + bytes(4093))
        lfs.checkpoint()
        lfs.write("/f", 0, b"new" + bytes(4093))
        lfs.write("/f", 4096, b"more" + bytes(4092))
        lfs.sync()  # hits the log but no checkpoint
        lfs.crash()
        lfs.mount()
        data, _ = lfs.read("/f", 0, 3)
        assert data == b"new"
        data, _ = lfs.read("/f", 4096, 4)
        assert data == b"more"

    def test_unflushed_writes_lost_without_nvram(self, lfs):
        lfs.create("/f")
        lfs.write("/f", 0, b"committed" + bytes(4087))
        lfs.checkpoint()
        lfs.write("/f", 0, b"volatile!" + bytes(4087))
        lfs.crash()  # no sync: DRAM contents vanish
        lfs.mount()
        data, _ = lfs.read("/f", 0, 9)
        assert data == b"committed"

    def test_nvram_preserves_unflushed_writes(self, lfs_nvram):
        lfs_nvram.create("/f")
        lfs_nvram.write("/f", 0, b"committed" + bytes(4087))
        lfs_nvram.checkpoint()
        lfs_nvram.write("/f", 0, b"nv-safe!!" + bytes(4087))
        lfs_nvram.crash()
        lfs_nvram.mount()
        data, _ = lfs_nvram.read("/f", 0, 9)
        assert data == b"nv-safe!!"

    def test_fresh_device_mounts(self, regular_device, host):
        fs = LFS(regular_device, host)
        fs.crash()
        fs.mount()
        fs.create("/works")
        assert fs.exists("/works")

    def test_recovery_restores_usage_accounting(self, lfs):
        lfs.create("/f")
        lfs.write("/f", 0, bytes(4096) * 300)
        lfs.checkpoint()
        lfs.write("/f", 0, b"x" * 4096)
        lfs.sync()
        live_before = sum(lfs.segusage.live_bytes)
        lfs.crash()
        lfs.mount()
        assert sum(lfs.segusage.live_bytes) == pytest.approx(
            live_before, abs=3 * 4096
        )
