"""The fail-slow fault family: seeded latency-multiplier windows in
FaultDevice, their metrics/trace visibility, and the hedge cap."""

import io
import json

import pytest

from repro.blockdev.interpose import (
    FaultDevice,
    FaultPlan,
    MetricsDevice,
    TracingDevice,
)
from repro.blockdev.regular import RegularDisk
from repro.disk.disk import Disk
from repro.disk.specs import ST19101
from repro.sim.clock import SimClock

PAYLOAD = b"\x5C" * 4096


def slow_stack(plan, clock=None):
    disk = Disk(ST19101, clock=clock or SimClock(), num_cylinders=2)
    return disk, FaultDevice(RegularDisk(disk), plan)


class TestPlanValidation:
    def test_slow_factor_below_one_rejected(self):
        with pytest.raises(ValueError, match="slow_factor"):
            FaultPlan(slow_factor=0.5)

    def test_nonpositive_bounds_rejected(self):
        with pytest.raises(ValueError, match="slow_after_ops"):
            FaultPlan(slow_factor=2.0, slow_after_ops=0)
        with pytest.raises(ValueError, match="slow_duration_ops"):
            FaultPlan(slow_factor=2.0, slow_duration_ops=-3)

    def test_parse_slow_keys(self):
        plan = FaultPlan.parse("slow_factor=8,slow_after=20,slow_ops=60")
        assert plan.slow_factor == 8.0
        assert plan.slow_after_ops == 20
        assert plan.slow_duration_ops == 60
        assert plan.slow_window() == (20, 80)

    def test_parse_rejects_unknown_key(self):
        with pytest.raises(ValueError, match="slow_factor"):
            FaultPlan.parse("slowfactor=8")


class TestSlowWindow:
    def test_no_slowdown_means_no_window(self):
        assert FaultPlan().slow_window() is None
        assert FaultPlan(slow_after_ops=5).slow_window() is None

    def test_explicit_onset_open_ended(self):
        plan = FaultPlan(slow_factor=4.0, slow_after_ops=10)
        assert plan.slow_window() == (10, None)

    def test_seeded_window_is_deterministic(self):
        a = FaultPlan(seed=42, slow_factor=4.0).slow_window()
        b = FaultPlan(seed=42, slow_factor=4.0).slow_window()
        assert a == b
        first, end = a
        assert 1 <= first < 33
        assert 16 <= end - first < 129

    def test_different_seeds_draw_different_windows(self):
        windows = {
            FaultPlan(seed=s, slow_factor=4.0).slow_window()
            for s in range(12)
        }
        assert len(windows) > 1


class TestFaultDeviceSlowing:
    def test_only_window_ops_are_slowed(self):
        plan = FaultPlan(
            slow_factor=3.0, slow_after_ops=3, slow_duration_ops=2
        )
        _, device = slow_stack(plan)
        costs = []
        for i in range(6):
            device.write_block(i, PAYLOAD)
            data, cost = device.read_block(i)
            assert data == PAYLOAD
            costs.append(cost)
        # Ops are counted host-visibly: write1 read2 write3 read4 ...;
        # the window covers ordinals 3 and 4 -> one slowed read (op 4).
        assert device.ops_slowed == 2
        assert device.slow_extra_seconds > 0.0

    def test_clock_advances_by_the_surplus(self):
        plan = FaultPlan(slow_factor=5.0, slow_after_ops=1)
        disk, device = slow_stack(plan)
        device.write_block(0, PAYLOAD)
        before = disk.clock.now
        _, cost = device.read_block(0)
        elapsed = disk.clock.now - before
        # The caller's elapsed time and the breakdown agree: an honest,
        # if slow, operation.
        assert elapsed == pytest.approx(cost.total)
        assert device.ops_slowed >= 1

    def test_surplus_is_charged_to_locate(self):
        # Window opens at op 2: the write is normal on both devices, so
        # their disk states (and the read's base cost) stay identical.
        slow_plan = FaultPlan(slow_factor=4.0, slow_after_ops=2)
        _, slow_dev = slow_stack(slow_plan)
        _, fast_dev = slow_stack(FaultPlan())
        slow_dev.write_block(0, PAYLOAD)
        fast_dev.write_block(0, PAYLOAD)
        _, slow_cost = slow_dev.read_block(0)
        _, fast_cost = fast_dev.read_block(0)
        assert slow_cost.total == pytest.approx(fast_cost.total * 4.0)
        assert slow_cost.transfer == pytest.approx(fast_cost.transfer)
        assert slow_cost.locate > fast_cost.locate

    def test_hedge_cap_bounds_the_surplus(self):
        plan = FaultPlan(slow_factor=100.0, slow_after_ops=2)
        _, capped = slow_stack(plan)
        _, uncapped = slow_stack(plan)
        capped.write_block(0, PAYLOAD)
        uncapped.write_block(0, PAYLOAD)
        capped.hedge_cap = 0.001
        _, capped_cost = capped.read_block(0)
        _, uncapped_cost = uncapped.read_block(0)
        assert capped_cost.total < uncapped_cost.total
        assert capped.slow_extra_seconds == pytest.approx(0.001)


class TestObservability:
    def build(self, plan):
        disk = Disk(ST19101, clock=SimClock(), num_cylinders=2)
        sink = io.StringIO()
        metrics = MetricsDevice(FaultDevice(RegularDisk(disk), plan))
        traced = TracingDevice(metrics, sink=sink)
        return traced, metrics, sink

    def test_metrics_report_counts_slowed_ops(self):
        plan = FaultPlan(slow_factor=6.0, slow_after_ops=2)
        device, metrics, _ = self.build(plan)
        device.write_block(0, PAYLOAD)
        device.read_block(0)
        device.read_block(0)
        report = metrics.report()
        assert report["slowed"] == {"read": 2}
        assert report["slow_seconds"] > 0.0
        assert "slowed[read=2]" in metrics.summary()

    def test_trace_events_carry_slow_extra(self):
        plan = FaultPlan(slow_factor=6.0, slow_after_ops=2)
        device, _, sink = self.build(plan)
        device.write_block(0, PAYLOAD)
        device.read_block(0)
        records = [
            json.loads(line) for line in sink.getvalue().splitlines()
        ]
        assert "slow_extra" not in records[0]  # write, before the window
        assert records[1]["op"] == "read"
        assert records[1]["slow_extra"] > 0.0
