"""Stack configurations: the four file system / disk combinations of
Figure 5, on either drive and either host.

Every stack is built through
:func:`~repro.blockdev.interpose.build_device_stack`, so any
configuration can carry interposers -- tracing, metrics, fault
injection -- without the experiments knowing.  A process-wide default
(:func:`set_default_interpose`) lets the command-line harness switch
observability on for *every* stack an experiment builds.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from repro.blockdev.interface import BlockDevice
from repro.blockdev.interpose import (
    FaultPlan,
    InterposeOptions,
    MetricsDevice,
    build_device_stack,
    find_layer,
)
from repro.disk.cache import ReadAheadPolicy
from repro.disk.disk import Disk
from repro.disk.specs import DISKS, DiskSpec
from repro.fs.api import FileSystem
from repro.hosts.specs import HOSTS, HostSpec
from repro.lfs.lfs import LFS
from repro.ufs.ufs import UFS


@dataclass(frozen=True)
class StackConfig:
    """One experimental configuration."""

    name: str
    fs_type: str = "ufs"  # "ufs" | "lfs"
    device_type: str = "regular"  # "regular" | "vld"
    disk_name: str = "st19101"
    host_name: str = "sparc10"
    nvram: bool = False
    num_cylinders: int = 0  # 0 = the spec's simulated default
    # Request-queue settings for the core device's internal scheduler.
    # Depth 1 + FIFO is the unscheduled baseline (byte-identical figures);
    # the process-wide default (set_default_queue) overrides when a config
    # keeps these at their baseline values.
    queue_depth: int = 1
    sched: str = "fifo"
    # NVM write-ahead tier in front of the core device: False (off),
    # True (default NVDIMM part), or a part name from NVM_SPECS.  The
    # process-wide default (set_default_nvm) overrides when left False.
    nvm: object = False
    # Interposer flags (combined with the process-wide default).
    trace: bool = False
    metrics: bool = False
    faults: Optional[FaultPlan] = None

    def with_platform(self, disk_name: str, host_name: str) -> "StackConfig":
        return replace(self, disk_name=disk_name, host_name=host_name)


#: The paper's four standard stacks (Figure 5), on the default platform
#: (Seagate disk, SPARCstation-10 host -- Section 5's stated default).
STACKS = {
    "ufs-regular": StackConfig("ufs-regular", "ufs", "regular"),
    "ufs-vld": StackConfig("ufs-vld", "ufs", "vld"),
    "lfs-regular": StackConfig("lfs-regular", "lfs", "regular"),
    "lfs-vld": StackConfig("lfs-vld", "lfs", "vld"),
}

#: Process-wide interposer default, OR-combined with each config's own
#: flags (the harness CLI sets this for --trace/--metrics/--faults).
_DEFAULT_INTERPOSE: Optional[InterposeOptions] = None

#: Stacks built with metrics enabled, for post-run reporting by the CLI:
#: (config name, MetricsDevice) pairs, appended by :func:`build_stack`.
METRICS_STACKS: List[Tuple[str, MetricsDevice]] = []


def set_default_interpose(options: Optional[InterposeOptions]) -> None:
    """Set (or clear, with ``None``) the process-wide interposer default."""
    global _DEFAULT_INTERPOSE
    _DEFAULT_INTERPOSE = options


def default_interpose() -> Optional[InterposeOptions]:
    return _DEFAULT_INTERPOSE


#: Process-wide request-queue default (queue_depth, sched), applied to any
#: stack whose config keeps the baseline depth-1 FIFO (the harness CLI sets
#: this for --queue-depth/--sched).
_DEFAULT_QUEUE: Optional[Tuple[int, str]] = None


def set_default_queue(queue: Optional[Tuple[int, str]]) -> None:
    """Set (or clear, with ``None``) the process-wide queue default."""
    global _DEFAULT_QUEUE
    _DEFAULT_QUEUE = queue


def default_queue() -> Optional[Tuple[int, str]]:
    return _DEFAULT_QUEUE


#: Process-wide NVM-tier default, applied to any stack whose config keeps
#: the baseline ``nvm=False`` (the harness CLI sets this for --nvm).
#: ``None``/``False`` = off; ``True`` = default part; a string names a
#: part; an :class:`~repro.blockdev.nvm.NVMSpec` pins one exactly.
_DEFAULT_NVM: object = None


def set_default_nvm(nvm: object) -> None:
    """Set (or clear, with ``None``) the process-wide NVM-tier default."""
    global _DEFAULT_NVM
    _DEFAULT_NVM = nvm


def default_nvm() -> object:
    return _DEFAULT_NVM


def _effective_nvm(config: StackConfig) -> object:
    if config.nvm:
        return config.nvm
    if _DEFAULT_NVM is not None:
        return _DEFAULT_NVM
    return False


def _effective_queue(config: StackConfig) -> Tuple[int, str]:
    if (config.queue_depth, config.sched) != (1, "fifo"):
        return config.queue_depth, config.sched
    if _DEFAULT_QUEUE is not None:
        return _DEFAULT_QUEUE
    return 1, "fifo"


def _effective_interpose(
    config: StackConfig, override: Optional[InterposeOptions]
) -> Optional[InterposeOptions]:
    base = override if override is not None else _DEFAULT_INTERPOSE
    trace = config.trace or (base.trace if base else False)
    metrics = config.metrics or (base.metrics if base else False)
    faults = config.faults or (base.faults if base else None)
    if not (trace or metrics or faults):
        return None
    return InterposeOptions(
        trace=trace,
        trace_capacity=base.trace_capacity if base else 4096,
        trace_sink=base.trace_sink if base else None,
        metrics=metrics,
        faults=faults,
    )


def build_stack(
    config: StackConfig,
    interpose: Optional[InterposeOptions] = None,
) -> Tuple[FileSystem, Disk, BlockDevice]:
    """Instantiate (file system, disk, device) for a configuration.

    ``device`` is the *outermost* layer of the device stack; with
    interposers enabled that is a wrapper, and
    :func:`~repro.blockdev.interpose.find_layer` fishes out a specific
    layer (e.g. the :class:`MetricsDevice` feeding the Figure 9 report).
    """
    spec: DiskSpec = DISKS[config.disk_name]
    host: HostSpec = HOSTS[config.host_name]
    options = _effective_interpose(config, interpose)
    if config.device_type == "vld":
        # The paper's VLD read-ahead fix: prefetch whole tracks and retain.
        disk = Disk(
            spec,
            num_cylinders=config.num_cylinders,
            readahead=ReadAheadPolicy.FULL_TRACK,
        )
    elif config.device_type == "regular":
        disk = Disk(spec, num_cylinders=config.num_cylinders)
    else:
        raise ValueError(f"unknown device type {config.device_type!r}")
    queue_depth, sched = _effective_queue(config)
    device = build_device_stack(
        disk,
        config.device_type,
        options=options,
        nvm=_effective_nvm(config),
        queue_depth=queue_depth,
        sched=sched,
    )
    metrics_layer = find_layer(device, MetricsDevice)
    if metrics_layer is not None:
        METRICS_STACKS.append((config.name, metrics_layer))
    if config.fs_type == "ufs":
        fs: FileSystem = UFS(device, host)
    elif config.fs_type == "lfs":
        fs = LFS(device, host, nvram=config.nvram)
    else:
        raise ValueError(f"unknown fs type {config.fs_type!r}")
    return fs, disk, device


def build_sharded_volume(
    shards: int = 3,
    disk_name: str = "st19101",
    stripe_blocks: int = 8,
    num_cylinders: int = 6,
    queue_depth: int = 1,
    sched: str = "fifo",
    fault_plans: Optional[dict] = None,
    retry_policy: Optional[object] = None,
    hedge_reads: bool = True,
):
    """Instantiate a :class:`~repro.volume.ShardedVolume` over ``shards``
    complete VLD stacks.

    Encodes the construction discipline the volume requires: every
    shard's disk shares ONE :class:`~repro.sim.clock.SimClock`, so
    degraded-mode backoff, fail-slow surplus, and hedged reads all spend
    the same simulated time (per-disk clocks would let a limping shard
    fall out of sync with its siblings).  ``fault_plans`` maps shard
    index to a :class:`FaultPlan`; those shards get a
    :class:`~repro.blockdev.interpose.FaultDevice` wrapper (the layer
    ``crash()``/fail-slow windows act on).

    Returns ``(volume, devices, disks)`` -- ``devices[i]`` is shard
    ``i``'s outermost layer, ``disks[i]`` its raw disk (the place to
    hang a :class:`~repro.disk.faults.DiskFaultInjector`).
    """
    # Imported lazily: repro.volume sits above this module in the layer
    # order, and only volume experiments should pay for it.
    from repro.blockdev.interpose import FaultDevice
    from repro.sim.clock import SimClock
    from repro.vlog.vld import VirtualLogDisk
    from repro.volume import ShardedVolume

    if shards <= 0:
        raise ValueError("shard count must be positive")
    spec: DiskSpec = DISKS[disk_name]
    clock = SimClock()
    disks = [
        Disk(spec, clock=clock, num_cylinders=num_cylinders)
        for _ in range(shards)
    ]
    devices: List[BlockDevice] = []
    for index, disk in enumerate(disks):
        vld: BlockDevice = VirtualLogDisk(
            disk, queue_depth=queue_depth, sched=sched
        )
        plan = (fault_plans or {}).get(index)
        if plan is not None:
            vld = FaultDevice(vld, plan)
        devices.append(vld)
    volume = ShardedVolume(
        devices,
        stripe_blocks=stripe_blocks,
        retry_policy=retry_policy,
        hedge_reads=hedge_reads,
    )
    return volume, devices, disks


def drain_metrics_stacks() -> List[Tuple[str, MetricsDevice]]:
    """Return and clear the registry of metrics-enabled stacks."""
    drained = list(METRICS_STACKS)
    METRICS_STACKS.clear()
    return drained


def utilization_of(fs: FileSystem, device: BlockDevice) -> float:
    """Space utilization as the paper's ``df`` reading would report it."""
    if isinstance(fs, UFS):
        free_frags, _ = fs.alloc.free_space()
        total = (
            fs.layout.sb.num_groups
            * fs.layout.sb.blocks_per_group
            * fs.layout.frags_per_block
        )
        return (total - free_frags) / total
    if isinstance(fs, LFS):
        # Count NVRAM-resident dirty data as used space too -- it is live
        # file content that simply has not reached the log yet.
        live = sum(fs.segusage.live_bytes)
        buffered = fs.cache.dirty_blocks * fs.block_size
        total = fs.layout.sb.num_segments * fs.layout.segment_bytes
        return min(1.0, (live + buffered) / total)
    raise TypeError(f"unknown file system {type(fs)!r}")
