"""Idle-time read-locality reorganization for the Virtual Log Disk.

Eager writing destroys spatial locality: logically sequential data ends up
physically scattered, collapsing later sequential reads (Figure 7's
"sequential read after random write").  Section 3.4 points at the cure --
"reorganization techniques that can improve LFS performance [22] should be
equally applicable to VLFS" -- without building it.  This module does:

during idle time, logically consecutive block runs whose physical layout
is fragmented are rewritten into physically contiguous extents, using the
same indirection-map commit discipline as ordinary writes.  It composes
with the free-space compactor: compaction makes empty tracks, which are
exactly where contiguous extents fit.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.vlog.vld import VirtualLogDisk


class ReadReorganizer:
    """Restores logical-to-physical contiguity during idle periods."""

    def __init__(
        self,
        vld: VirtualLogDisk,
        window_blocks: int = 16,
        rng: Optional[random.Random] = None,
    ) -> None:
        if window_blocks < 2:
            raise ValueError("windows must span at least two blocks")
        self.vld = vld
        per_track = vld.disk.geometry.sectors_per_track
        self.window_blocks = min(
            window_blocks, per_track // vld.sectors_per_block
        )
        self.rng = rng if rng is not None else random.Random(0x5E0)
        self.windows_reorganized = 0
        self.blocks_moved = 0

    # ------------------------------------------------------------------

    def run_for(self, seconds: float) -> float:
        """Reorganize fragmented windows until the budget is spent."""
        if seconds < 0.0:
            raise ValueError("idle budget must be non-negative")
        clock = self.vld.disk.clock
        start = clock.now
        deadline = start + seconds
        cursor = 0
        total_windows = -(-self.vld.num_blocks // self.window_blocks)
        scanned = 0
        while clock.now < deadline and scanned < total_windows:
            window = cursor % total_windows
            cursor += 1
            scanned += 1
            lba = window * self.window_blocks
            if self._window_fragmentation(lba) >= 2:
                if self._reorganize_window(lba):
                    scanned = 0  # found work; keep the scan going
        return clock.now - start

    # ------------------------------------------------------------------

    def _window_physmap(self, lba: int) -> List[Optional[int]]:
        end = min(lba + self.window_blocks, self.vld.num_blocks)
        return [self.vld.imap.get(l) for l in range(lba, end)]

    def _track_of(self, physical_block: int) -> int:
        sector = physical_block * self.vld.sectors_per_block
        return sector // self.vld.disk.geometry.sectors_per_track

    def _window_fragmentation(self, lba: int) -> int:
        """Number of *track-level* discontinuities across the window.

        Blocks scattered within one track (the track-fill pattern wraps
        around reserve slots) read at full speed from the track buffer, so
        only jumps to non-adjacent tracks count as fragmentation."""
        physmap = [p for p in self._window_physmap(lba) if p is not None]
        if len(physmap) < 2:
            return 0
        breaks = 0
        for previous, current in zip(physmap, physmap[1:]):
            if abs(self._track_of(current) - self._track_of(previous)) > 1:
                breaks += 1
        return breaks

    def _find_contiguous_run(self, blocks: int) -> Optional[int]:
        """A free physical extent of ``blocks`` aligned blocks, preferring
        empty tracks (which the compactor regenerates).

        Candidate tracks come pre-ranked most-free-first from the free
        map's counters, so the scan prices only the best free-count tier
        actually holding a run instead of every track on the disk."""
        vld = self.vld
        spb = vld.sectors_per_block
        need = blocks * spb
        ranked = vld.freemap.tracks_by_free_count(minimum_free=need)
        i = 0
        while i < len(ranked):
            tier = ranked[i][0]
            best: Optional[int] = None
            while i < len(ranked) and ranked[i][0] == tier:
                _free, cylinder, head = ranked[i]
                i += 1
                found = vld.freemap.nearest_free_run(
                    cylinder, head, 0.0, need, align=spb
                )
                if found is not None and (best is None or found[1] < best):
                    best = found[1]
            if best is not None:
                return best
        return None

    def _reorganize_window(self, lba: int) -> bool:
        """Rewrite one window contiguously; returns True when work was
        done."""
        vld = self.vld
        spb = vld.sectors_per_block
        physmap = self._window_physmap(lba)
        mapped = [
            (lba + i, physical)
            for i, physical in enumerate(physmap)
            if physical is not None
        ]
        if len(mapped) < 2:
            return False
        destination = self._find_contiguous_run(len(mapped))
        if destination is None:
            return False
        # Gather current contents (one read per physically contiguous run).
        payload_parts: List[bytes] = []
        for _l, physical in mapped:
            data, _cost = vld.disk.read(
                physical * spb, spb, charge_scsi=False
            )
            payload_parts.append(data)
        # One sequential write lays the extent down.
        vld.freemap.mark_used(destination, len(mapped) * spb)
        vld.disk.write(
            destination,
            len(mapped) * spb,
            b"".join(payload_parts),
            charge_scsi=False,
        )
        # Commit: remap, append touched chunks, recycle the old copies.
        touched = {}
        old_blocks: List[int] = []
        for i, (logical, old_physical) in enumerate(mapped):
            new_block = destination // spb + i
            vld.imap.set(logical, new_block)
            vld.reverse[new_block] = logical
            touched[vld.imap.chunk_id_of(logical)] = None
            old_blocks.append(old_physical)
        for chunk_id in touched:
            vld.vlog.append(chunk_id, vld.imap.chunk_entries(chunk_id))
        for old_physical in old_blocks:
            vld.reverse.pop(old_physical, None)
            vld.allocator.free_block(old_physical)
        self.windows_reorganized += 1
        self.blocks_moved += len(mapped)
        return True
