"""Benchmark configuration.

Each benchmark regenerates one of the paper's tables or figures, prints the
rows/series the paper reports (simulated time), and asserts the figure's
qualitative shape.  ``pytest-benchmark`` wraps the run so wall-clock cost of
the reproduction itself is also tracked.

Set ``REPRO_BENCH_FULL=1`` for paper-scale workloads (slower); the default
scale preserves every shape at a fraction of the runtime.
"""

import os

import pytest


def full_scale() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "") == "1"


@pytest.fixture(scope="session")
def scale():
    return 1.0 if full_scale() else 0.25


def run_once(benchmark, fn):
    """Run a heavy experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
