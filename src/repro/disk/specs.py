"""Disk parameter sets (Table 1 of the paper).

Two drives are modeled:

* **HP97560** -- the well-validated Dartmouth/HP research model, roughly
  eight years old at the paper's publication (1991 vintage).
* **Seagate ST19101 (Cheetah 9LP)** -- the 1998 state of the art; like the
  paper's version, a single-zone coarse approximation of the real multi-zone
  drive.

Table 1 values reproduced exactly:

=====================  =========  =========
Parameter              HP97560    ST19101
=====================  =========  =========
Sectors per track (n)  72         256
Tracks per cylinder(t) 19         16
Head switch (s)        2.5 ms     0.5 ms
Minimum seek           3.6 ms     0.5 ms
Rotation speed         4002 RPM   10000 RPM
SCSI overhead (o)      2.3 ms     0.1 ms
=====================  =========  =========

The paper simulates 36 cylinders of the HP and 11 cylinders of the Seagate
(~24 MB either way, limited by kernel memory); those defaults are recorded
here as ``sim_cylinders``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


def _derived():
    """A non-init, non-compare field slot for a ``__post_init__``-computed
    value, so derived caches change neither the constructor signature nor
    ``repr``/``==`` (the harness result cache fingerprints specs by repr)."""
    return field(init=False, repr=False, compare=False, default=0)


@dataclass(frozen=True)
class DiskSpec:
    """Static parameters of one disk model.

    The seek curve follows the classic two-piece form used by the Dartmouth
    model (Ruemmler & Wilkes): ``a + b * sqrt(d)`` for short seeks of ``d``
    cylinders and ``c + e * d`` beyond ``seek_boundary`` cylinders.
    """

    name: str
    sectors_per_track: int
    tracks_per_cylinder: int
    num_cylinders: int
    sim_cylinders: int
    rpm: float
    head_switch_time: float
    scsi_overhead: float
    sector_bytes: int
    seek_short_a: float
    seek_short_b: float
    seek_long_c: float
    seek_long_e: float
    seek_boundary: int

    # Derived values, computed once in ``__post_init__``.  These used to
    # be properties recomputed per access (with a sqrt inside
    # ``min_seek_time``), which showed up measurably in the mechanics hot
    # path -- every rotational query touched ``sector_time``, and every
    # skew lookup re-derived both skew counts.  The values are identical;
    # only the cost moved to construction time.
    rotation_time: float = _derived()  #: One full revolution, in seconds.
    sector_time: float = _derived()  #: One sector under the head, in seconds.
    min_seek_time: float = _derived()  #: Single-cylinder seek (Table 1).
    track_bytes: int = _derived()
    cylinder_bytes: int = _derived()
    media_bandwidth: float = _derived()  #: Platter bandwidth, bytes/second.
    track_skew_sectors: int = _derived()  #: Track skew covering a head switch.
    cylinder_skew_sectors: int = _derived()  #: Skew covering a min seek.

    def __post_init__(self) -> None:
        if self.sectors_per_track <= 0:
            raise ValueError("sectors_per_track must be positive")
        if self.tracks_per_cylinder <= 0:
            raise ValueError("tracks_per_cylinder must be positive")
        if self.rpm <= 0:
            raise ValueError("rpm must be positive")
        if self.sim_cylinders > self.num_cylinders:
            raise ValueError("cannot simulate more cylinders than the drive has")
        set_ = object.__setattr__  # frozen dataclass
        set_(self, "rotation_time", 60.0 / self.rpm)
        set_(self, "sector_time", self.rotation_time / self.sectors_per_track)
        set_(self, "min_seek_time", self.seek_time(1))
        set_(self, "track_bytes", self.sectors_per_track * self.sector_bytes)
        set_(self, "cylinder_bytes", self.track_bytes * self.tracks_per_cylinder)
        set_(self, "media_bandwidth", self.track_bytes / self.rotation_time)
        set_(
            self,
            "track_skew_sectors",
            int(math.ceil(self.head_switch_time / self.sector_time)) + 1,
        )
        set_(
            self,
            "cylinder_skew_sectors",
            int(math.ceil(self.min_seek_time / self.sector_time)) + 1,
        )

    def seek_time(self, distance: int) -> float:
        """Seconds to seek ``distance`` cylinders (0 for a zero-distance seek)."""
        if distance < 0:
            raise ValueError("seek distance must be non-negative")
        if distance == 0:
            return 0.0
        if distance < self.seek_boundary:
            return self.seek_short_a + self.seek_short_b * math.sqrt(distance)
        return self.seek_long_c + self.seek_long_e * distance


#: The HP97560 drive, seek curve from the Dartmouth technical report:
#: 3.24 + 0.400 * sqrt(d) ms below 383 cylinders, 8.00 + 0.008 * d ms above.
HP97560 = DiskSpec(
    name="HP97560",
    sectors_per_track=72,
    tracks_per_cylinder=19,
    num_cylinders=1962,
    sim_cylinders=36,
    rpm=4002.0,
    head_switch_time=2.5e-3,
    scsi_overhead=2.3e-3,
    sector_bytes=512,
    seek_short_a=3.24e-3,
    seek_short_b=0.400e-3,
    seek_long_c=8.00e-3,
    seek_long_e=0.008e-3,
    seek_boundary=383,
)

#: The Seagate ST19101 (Cheetah 9LP), single-zone approximation as in the
#: paper.  Short-seek curve chosen so the single-cylinder seek matches the
#: 0.5 ms of Table 1 and the full-stroke seek lands near the ~10 ms of the
#: published Cheetah specifications.
ST19101 = DiskSpec(
    name="ST19101",
    sectors_per_track=256,
    tracks_per_cylinder=16,
    num_cylinders=6962,
    sim_cylinders=11,
    rpm=10000.0,
    head_switch_time=0.5e-3,
    scsi_overhead=0.1e-3,
    sector_bytes=512,
    seek_short_a=0.30e-3,
    seek_short_b=0.20e-3,
    seek_long_c=4.00e-3,
    seek_long_e=0.0008e-3,
    seek_boundary=400,
)

#: A projected ~2004 drive, extrapolating the trends the paper banks on
#: (Section 1): platter bandwidth +40 %/year, rotation to 15k RPM, seek
#: and head-switch improving ~10 %/year, command overhead shrinking with
#: controller CPUs.  Used by the trends-extension benchmark to test the
#: paper's closing prediction that eager writing's advantage keeps
#: growing.
FUTURE2004 = DiskSpec(
    name="FUTURE2004",
    sectors_per_track=512,
    tracks_per_cylinder=8,
    num_cylinders=30000,
    sim_cylinders=12,
    rpm=15000.0,
    head_switch_time=0.3e-3,
    scsi_overhead=0.04e-3,
    sector_bytes=512,
    seek_short_a=0.20e-3,
    seek_short_b=0.12e-3,
    seek_long_c=3.00e-3,
    seek_long_e=0.0002e-3,
    seek_boundary=500,
)

#: Registry by short name, used by the harness configuration layer.
DISKS = {
    "hp97560": HP97560,
    "st19101": ST19101,
    "future2004": FUTURE2004,
}
