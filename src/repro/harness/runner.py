"""Low-level simulation routines for the analytical-model validations
(Figures 1 and 2)."""

from __future__ import annotations

import random

from repro.disk.disk import Disk
from repro.disk.freemap import FreeSpaceMap, nearest_set_bit
from repro.disk.specs import DiskSpec
from repro.vlog.allocator import AllocationPolicy, EagerAllocator


def simulate_locate_free(
    spec: DiskSpec,
    free_fraction: float,
    trials: int = 300,
    seed: int = 1,
    num_cylinders: int = 0,
) -> float:
    """Mean time (seconds) to locate the nearest free sector (Figure 1).

    Free space is randomly distributed at the given fraction; between
    trials the head is flung to a random track and the platter phase
    randomised, then the eager-writing search (unrestricted, always the
    nearest sector -- the Figure 1 configuration) picks its sector.  The
    located sector is re-freed so utilization stays constant.
    """
    if not 0.0 < free_fraction <= 1.0:
        raise ValueError("free fraction must lie in (0, 1]")
    rng = random.Random(seed)
    disk = Disk(spec, num_cylinders=num_cylinders, store_data=False)
    freemap = FreeSpaceMap(disk.geometry)
    total = disk.geometry.total_sectors
    occupied = int(round((1.0 - free_fraction) * total))
    for sector in rng.sample(range(total), occupied):
        freemap.mark_used(sector)
    if freemap.free_sectors == 0:
        raise ValueError("no free sectors at this utilization")
    allocator = EagerAllocator(
        disk, freemap, block_sectors=1, policy=AllocationPolicy.NEAREST
    )
    total_locate = 0.0
    for _ in range(trials):
        # Random head position and rotational phase.
        disk.head_cylinder = rng.randrange(disk.geometry.num_cylinders)
        disk.head_head = rng.randrange(disk.geometry.tracks_per_cylinder)
        disk.clock.advance(rng.random() * disk.mechanics.rotation_time)
        # Align to the next slot boundary: the model counts whole sectors
        # skipped, with the head starting at a sector edge.
        slot = disk.mechanics.rotational_slot(disk.clock.now)
        partial = (1.0 - (slot % 1.0)) % 1.0
        disk.clock.advance(partial * disk.mechanics.sector_time)
        start = disk.clock.now
        block = allocator.allocate()
        cost = disk.write(block, 1, charge_scsi=False)
        # Positioning only: exclude the one-sector transfer.
        total_locate += cost.locate
        assert disk.clock.now >= start
        freemap.mark_free(block)
    return total_locate / trials


def simulate_track_fill(
    spec: DiskSpec,
    threshold_free_fraction: float,
    trials: int = 40,
    seed: int = 2,
) -> float:
    """Mean per-write latency filling empty tracks to a threshold (Fig. 2).

    Writes single sectors to an initially empty track, each write arriving
    at a random rotational phase (the model's random-arrival assumption),
    until only ``threshold_free_fraction`` of the track remains free; then
    pays one track switch and repeats.  Returns seconds per write including
    the amortised switch cost -- formula (11)'s quantity.
    """
    if not 0.0 <= threshold_free_fraction < 1.0:
        raise ValueError("threshold must lie in [0, 1)")
    rng = random.Random(seed)
    n = spec.sectors_per_track
    reserve = int(round(threshold_free_fraction * n))
    writes_per_track = n - reserve
    if writes_per_track <= 0:
        raise ValueError("threshold leaves no writable sectors")
    sector_time = spec.sector_time
    total = 0.0
    writes = 0
    for _ in range(trials):
        # One free-slot bitmask per track fill, searched with the same
        # bit-twiddling primitive the production free map uses.
        free_mask = (1 << n) - 1
        for _write in range(writes_per_track):
            # Arrivals are random but the head engages at a sector
            # boundary, matching the model's whole-sector accounting.
            phase = rng.randrange(n)
            chosen = nearest_set_bit(free_mask, n, phase)
            assert chosen is not None
            free_mask &= ~(1 << chosen)
            total += ((chosen - phase) % n) * sector_time
            writes += 1
        total += spec.head_switch_time  # switch to the next empty track
    return total / writes
