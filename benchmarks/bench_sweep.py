"""Sweep-engine benchmarks and the parallel/caching regression gate.

Measures the experiment harness's execution engine itself, on a fixed
mid-size grid (the Figure 1 locate-free sweep -- CPU-bound, uniform
points, no shared state):

* ``serial_seconds``    -- the grid inline, ``jobs=1``, no cache.
* ``parallel_seconds``  -- the same grid, ``jobs=min(4, cpus)``.
* ``speedup``           -- serial / parallel.  Gated by a floor that
  scales with the cores actually available (2x on a 4-core runner,
  parity on a single-core box -- process fan-out cannot beat physics).
* ``warm_seconds``      -- a rerun against the populated result cache.
* ``warm_fraction``     -- warm / cold (cold = cache-populating run).
  Gated hard at 10 %: a warm rerun must be near-instant regardless of
  machine speed.
* ``hit_latency_ms``    -- per-point cache-hit cost.

Ratios, not wall-clocks, are gated, so the committed baseline
(``benchmarks/BENCH_sweep.json``) stays meaningful across machines; the
raw timings ride along for the record.

Usage::

    python benchmarks/bench_sweep.py                      # print + emit
    python benchmarks/bench_sweep.py --json out.json
    python benchmarks/bench_sweep.py \
        --check benchmarks/BENCH_sweep.json --tolerance 0.25

Also collected by pytest (``pytest benchmarks/bench_sweep.py``) as a
smoke test asserting the warm-cache floor.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import sys
import tempfile
import time
from typing import Dict

from repro.harness import sweep
from repro.harness.cache import ResultCache
from repro.harness.sweep import SweepPoint

#: Bump when the metric set or workload shapes change incompatibly.
SCHEMA = 1

#: A warm-cache rerun must cost at most this fraction of the cold run.
WARM_FRACTION_CEILING = 0.10

#: The grid: every (disk, free-fraction) locate-free point of Figure 1,
#: at enough trials that each point dwarfs process fan-out overhead.
FRACTIONS = [0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]
TRIALS = 200


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def speedup_floor(cpus: int) -> float:
    """Minimum serial/parallel ratio the gate demands on this machine."""
    if cpus >= 4:
        return 2.0
    if cpus >= 2:
        return 1.25
    # Single core: only bound the engine's own overhead.  Points are
    # batched into a few tasks per worker, so the bound can sit near
    # parity (observed 0.84-1.04 across runs); per-point tasks used to
    # need 0.60 here.
    return 0.65


def _grid():
    return [
        SweepPoint(
            "repro.harness.experiments:_point_locate_free",
            {"disk_name": disk, "free_fraction": p, "trials": TRIALS},
            seed=1,
        )
        for disk in ("hp97560", "st19101")
        for p in FRACTIONS
    ]


def _timed_sweep(jobs: int, cache) -> float:
    points = _grid()
    start = time.perf_counter()
    sweep.run_sweep(points, jobs=jobs, cache=cache)
    return time.perf_counter() - start


def run_suite() -> Dict:
    """Run every metric; returns the BENCH_sweep.json payload."""
    cpus = usable_cpus()
    jobs = min(4, max(2, cpus)) if cpus > 1 else 2
    points = len(_grid())

    serial_seconds = min(_timed_sweep(jobs=1, cache=None) for _ in range(2))
    sweep.reset_stats()
    parallel_runs = 2
    parallel_seconds = min(
        _timed_sweep(jobs=jobs, cache=None) for _ in range(parallel_runs)
    )
    parallel_stats = sweep.reset_stats()

    cache_dir = tempfile.mkdtemp(prefix="bench-sweep-cache-")
    try:
        cache = ResultCache(cache_dir)
        cold_seconds = _timed_sweep(jobs=jobs, cache=cache)
        warm_seconds = min(
            _timed_sweep(jobs=jobs, cache=cache) for _ in range(3)
        )
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    return {
        "schema": SCHEMA,
        "grid_points": points,
        "jobs": jobs,
        "cpus": cpus,
        # Chunked submission: the whole grid rides in a few pool tasks
        # (several points each), not one task per point.
        "pool_tasks_per_run": parallel_stats.pool_tasks // parallel_runs,
        "seconds": {
            "serial": serial_seconds,
            "parallel": parallel_seconds,
            "cold_cached": cold_seconds,
            "warm_cached": warm_seconds,
        },
        "speedup": serial_seconds / parallel_seconds,
        "speedup_floor": speedup_floor(cpus),
        "warm_fraction": warm_seconds / cold_seconds,
        "hit_latency_ms": warm_seconds / points * 1e3,
        "environment": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
        },
    }


def compare_to_baseline(
    result: Dict, baseline: Dict, tolerance: float
) -> list:
    """Return a list of human-readable failures (empty == gate passes)."""
    failures = []
    if baseline.get("schema") != result["schema"]:
        failures.append(
            f"schema mismatch: baseline {baseline.get('schema')} vs "
            f"current {result['schema']} -- re-record the baseline"
        )
        return failures
    floor = speedup_floor(result["cpus"])
    if result["speedup"] < floor:
        failures.append(
            f"parallel speedup {result['speedup']:.2f}x fell below the "
            f"{floor:.2f}x floor for {result['cpus']} usable core(s)"
        )
    ceiling = WARM_FRACTION_CEILING
    baseline_fraction = baseline.get("warm_fraction")
    if baseline_fraction is not None:
        ceiling = max(ceiling, baseline_fraction * (1.0 + tolerance))
    if result["warm_fraction"] > ceiling:
        failures.append(
            f"warm-cache rerun took {result['warm_fraction']:.1%} of the "
            f"cold run (ceiling {ceiling:.1%})"
        )
    return failures


def _print_report(result: Dict) -> None:
    seconds = result["seconds"]
    print(
        f"grid: {result['grid_points']} locate-free points, "
        f"jobs={result['jobs']} on {result['cpus']} usable core(s)"
    )
    for name in ("serial", "parallel", "cold_cached", "warm_cached"):
        print(f"{name:<14} {seconds[name]:>8.3f}s")
    print(
        f"speedup {result['speedup']:.2f}x "
        f"(floor {result['speedup_floor']:.2f}x); "
        f"warm rerun {result['warm_fraction']:.1%} of cold "
        f"({result['hit_latency_ms']:.2f} ms/point hit latency)"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json",
        default="BENCH_sweep.json",
        help="where to write the results payload",
    )
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        help="compare against a committed baseline and exit nonzero on "
        "regression",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional regression on the warm-cache ratio",
    )
    args = parser.parse_args(argv)

    result = run_suite()
    _print_report(result)
    with open(args.json, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.json}")

    if args.check:
        with open(args.check) as fh:
            baseline = json.load(fh)
        failures = compare_to_baseline(result, baseline, args.tolerance)
        if failures:
            for failure in failures:
                print(f"PERF REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(
            f"perf gate passed (tolerance {args.tolerance:.0%} vs "
            f"{args.check})"
        )
    return 0


# ----------------------------------------------------------------------
# pytest entry point (collected when running `pytest benchmarks/`)
# ----------------------------------------------------------------------


def test_sweep_engine_gate(benchmark):
    """Warm-cache reruns must stay near-instant; parallel fan-out must
    clear the per-machine speedup floor."""
    from .conftest import run_once

    result = run_once(benchmark, run_suite)
    _print_report(result)
    assert result["warm_fraction"] <= WARM_FRACTION_CEILING
    assert result["speedup"] >= speedup_floor(result["cpus"])


if __name__ == "__main__":
    sys.exit(main())
