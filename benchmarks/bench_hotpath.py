"""Hot-path microbenchmarks and the perf-regression gate.

Measures the simulator's hottest paths -- the ones every eagerly-written
block pays for (Section 4.2's per-write free-space query):

* ``free_run_query``    -- ``FreeSpaceMap.nearest_free_run`` latency on a
  fragmented drive, measured for both the bitmap map and the seed's
  per-sector ``ReferenceFreeSpaceMap`` (their ratio is the PR's headline
  speedup).
* ``mark_roundtrip``    -- ``mark_used``/``mark_free`` accounting.
* ``allocator_throughput`` -- end-to-end ``EagerAllocator`` allocate/free
  cycles under the paper's TRACK_FILL policy.
* ``compactor_pass``    -- blocks moved per wall-second by the idle-time
  free-space compactor on a fragmented VLD.
* ``satf_pick_next``    -- SATF pick-next over a full queue: the per-service
  cost the request scheduler pays pricing every pending request with the
  mechanics model.
* ``vld_write_blocks``  -- logical blocks per wall-second through
  multi-block ``write_blocks`` on a standing VLD: the batched
  data-movement path end to end (run-granular allocation, coalesced
  media writes, one-pass map bookkeeping).
* ``compactor_data_move`` -- blocks relocated per wall-second by the
  compactor's data-movement pass, driven directly through ``run_for`` on
  a fragmented multi-cylinder VLD (the regime where the outward-walking
  hole search matters).

Wall-clock numbers are useless across machines, so every metric is also
recorded *normalized*: divided by the throughput of a fixed pure-Python
calibration loop re-measured immediately before that metric (a single
up-front calibration lets scheduler noise later in the run skew the
ratios; an adjacent one sees the same machine the metric saw).  The
committed baseline
(``benchmarks/BENCH_hotpath.json``) stores the normalized scores; CI
re-runs the suite and fails when any normalized score regresses by more
than the tolerance (25 %), when the bitmap-vs-reference speedup falls
below its 3x floor, or when a metric drops below one of the *absolute*
normalized floors that lock in the batch-mechanics speedups (>=2x
``allocator_throughput`` and ``compactor_pass``, >=3x ``satf_pick_next``
over the pre-batching schema-2 baseline; >=2x ``vld_write_blocks`` and
``compactor_data_move`` over the pre-batched-movement scalar path).  ``--check`` also surfaces
interpreter drift: the baseline records the CPython it was measured on,
and a mismatch with the running interpreter is reported (normalization
absorbs most of the skew, so it warns rather than fails).

Usage::

    python benchmarks/bench_hotpath.py                      # print + emit
    python benchmarks/bench_hotpath.py --json out.json      # choose output
    python benchmarks/bench_hotpath.py \
        --check benchmarks/BENCH_hotpath.json --tolerance 0.25

Also collected by pytest (``pytest benchmarks/bench_hotpath.py``) as a
smoke test asserting the speedup floor.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import statistics
import sys
import time
from typing import Callable, Dict

from repro.disk.disk import Disk
from repro.disk.freemap import FreeSpaceMap, ReferenceFreeSpaceMap
from repro.disk.geometry import DiskGeometry
from repro.disk.specs import ST19101
from repro.vlog.allocator import AllocationPolicy, EagerAllocator
from repro.vlog.vld import VirtualLogDisk

#: Bump when the metric set or workload shapes change incompatibly.
#: 3: baseline re-recorded from the CI perf interpreter (CPython 3.12)
#: after the batch-mechanics rework; absolute floors added.
#: 4: ``vld_write_blocks`` and ``compactor_data_move`` metrics added for
#: the batched data-movement path; baseline re-recorded (median of 5) on
#: the CI perf interpreter.
SCHEMA = 4

#: Metrics the regression gate compares (all normalized ops/sec,
#: higher is better).
GATED_METRICS = (
    "free_run_query",
    "mark_roundtrip",
    "allocator_throughput",
    "compactor_pass",
    "satf_pick_next",
    "vld_write_blocks",
    "compactor_data_move",
)

#: Minimum bitmap-vs-reference speedup on the free-run query (the PR's
#: acceptance floor).
SPEEDUP_FLOOR = 3.0

#: Absolute normalized floors locking in the batch-mechanics speedups.
#: The pre-batching (schema-2) code, re-measured on the CI perf
#: interpreter (CPython 3.12) under this file's per-metric
#: normalization, scores allocator_throughput 0.00192, compactor_pass
#: 0.00034, and satf_pick_next 0.00322; the batch pricing rework must
#: hold >=2x on the first two and >=2.5x on the third, on any machine
#: (the scores are calibration-normalized, so the floors travel).
#: Re-measured on the old code rather than read from the old committed
#: baseline because that baseline was recorded on CPython 3.11, whose
#: calibration-loop-to-workload ratio differs enough to skew a
#: cross-interpreter comparison -- the drift ``--check`` now warns on.
ABSOLUTE_FLOORS = {
    "allocator_throughput": 2.0 * 0.00192,
    "compactor_pass": 2.0 * 0.00034,
    # Was 3.0x before the interior-boundary snap landed: the snap adds
    # gated per-candidate work (a magic-constant nearest-integer check)
    # to the inlined pricing loops, a deliberate fidelity fix applied
    # identically in every rotational_slot path.  Measured on the CI
    # interpreter: 0.0124 pre-snap -> 0.0085-0.0101 across runs with
    # the gated snap (2.6-3.1x), so 2.5x keeps locking in the batch win
    # while sitting below the microbench's run-to-run spread.
    "satf_pick_next": 2.5 * 0.00322,
    # Batched data-movement floors: the pre-batching scalar movement
    # path (per-block allocate + per-block scheduler.write, per-sector
    # CRC recording, full-drive hole pricing), re-measured on the CI
    # perf interpreter (CPython 3.12) under these exact workload shapes,
    # scores vld_write_blocks 0.003287 and compactor_data_move 0.000522;
    # the batched path must hold >=2x on both.
    "vld_write_blocks": 2.0 * 0.003287,
    "compactor_data_move": 2.0 * 0.000522,
}


def _best_of(repeats: int, fn: Callable[[], float]) -> float:
    """Run ``fn`` (which returns ops/sec) ``repeats`` times, keep the best
    -- the standard noise-rejection for microbenchmarks."""
    return max(fn() for _ in range(repeats))


def calibration_ops_per_sec(loops: int = 300_000, repeats: int = 3) -> float:
    """Fixed pure-Python integer workload; the machine-speed yardstick all
    metrics are normalized against."""

    def once() -> float:
        start = time.perf_counter()
        acc = 0
        for i in range(loops):
            acc = (acc + i * i) & 0xFFFFFFFF
        elapsed = time.perf_counter() - start
        assert acc >= 0
        return loops / elapsed

    return _best_of(repeats, once)


def _fragmented_map(map_cls, utilization: float = 0.75, seed: int = 0xF5EE):
    """A freemap over the paper's simulated Cheetah slice with randomly
    scattered used 8-sector blocks -- the regime eager writing queries
    live in (occupancy is block-granular because the allocator is)."""
    geometry = DiskGeometry(ST19101)
    freemap = map_cls(geometry)
    rng = random.Random(seed)
    blocks = geometry.total_sectors // 8
    for block in rng.sample(range(blocks), int(blocks * utilization)):
        freemap.mark_used(block * 8, 8)
    return geometry, freemap


def bench_free_run_query(
    map_cls=FreeSpaceMap, queries: int = 4000, repeats: int = 5
) -> float:
    """ops/sec of ``nearest_free_run`` (count=8, align=8 -- the VLD's
    4 KB-block query) over random tracks and fractional arrival slots."""
    geometry, freemap = _fragmented_map(map_cls)
    rng = random.Random(0xA110C)
    tracks = [
        (cylinder, head)
        for cylinder in range(geometry.num_cylinders)
        for head in range(geometry.tracks_per_cylinder)
    ]
    plan = [
        (*rng.choice(tracks), rng.random() * geometry.sectors_per_track)
        for _ in range(queries)
    ]

    def once() -> float:
        start = time.perf_counter()
        hits = 0
        for cylinder, head, slot in plan:
            if freemap.nearest_free_run(cylinder, head, slot, 8, align=8):
                hits += 1
        elapsed = time.perf_counter() - start
        assert hits > 0
        return queries / elapsed

    return _best_of(repeats, once)


def bench_mark_roundtrip(rounds: int = 4000, repeats: int = 5) -> float:
    """ops/sec of mark_used+mark_free pairs on 8-sector runs."""
    geometry = DiskGeometry(ST19101)
    freemap = FreeSpaceMap(geometry)
    rng = random.Random(0x3A5C)
    starts = [
        rng.randrange(0, geometry.total_sectors - 8) for _ in range(rounds)
    ]

    def once() -> float:
        start = time.perf_counter()
        for s in starts:
            freemap.mark_used(s, 8)
            freemap.mark_free(s, 8)
        elapsed = time.perf_counter() - start
        return rounds / elapsed

    return _best_of(repeats, once)


def bench_allocator_throughput(cycles: int = 3000, repeats: int = 5) -> float:
    """ops/sec of allocate+free cycles through the TRACK_FILL eager
    allocator at ~70 % standing utilization."""
    disk = Disk(ST19101, store_data=False)
    freemap = FreeSpaceMap(disk.geometry)
    allocator = EagerAllocator(
        disk, freemap, block_sectors=8, policy=AllocationPolicy.TRACK_FILL
    )
    rng = random.Random(0xEA6E)
    standing = int(disk.total_sectors // 8 * 0.70)
    held = [allocator.allocate() for _ in range(standing)]

    def once() -> float:
        start = time.perf_counter()
        for _ in range(cycles):
            block = allocator.allocate()
            held.append(block)
            allocator.free_block(held.pop(rng.randrange(len(held))))
        elapsed = time.perf_counter() - start
        return cycles / elapsed

    return _best_of(repeats, once)


def bench_compactor_pass(repeats: int = 3) -> float:
    """Blocks moved per wall-second compacting a freshly fragmented VLD."""

    def once() -> float:
        disk = Disk(ST19101, num_cylinders=4)
        vld = VirtualLogDisk(disk)
        rng = random.Random(0xC0DE)
        population = rng.sample(range(vld.num_blocks), int(vld.num_blocks * 0.55))
        for lba in population:
            vld.write_blocks(lba, 1)
        # Punch holes: rewrite a third of them so old copies scatter frees.
        for lba in population[:: 3]:
            vld.write_blocks(lba, 1)
        before = vld.compactor.blocks_moved
        start = time.perf_counter()
        vld.idle(0.5)  # half a simulated second of compaction
        elapsed = time.perf_counter() - start
        moved = vld.compactor.blocks_moved - before
        assert moved > 0, "compactor found no work; workload shape broken"
        return moved / elapsed

    return _best_of(repeats, once)


def bench_satf_pick_next(
    depth: int = 16, picks: int = 4000, repeats: int = 5
) -> float:
    """ops/sec of ``SATFPolicy.pick`` over a ``depth``-deep queue of
    random pending requests (prices every candidate with the mechanics
    model -- the scheduler's per-service hot path)."""
    from repro.sched.policies import SATFPolicy
    from repro.sched.scheduler import DiskRequest

    disk = Disk(ST19101, store_data=False)
    rng = random.Random(0x5A7F)
    policy = SATFPolicy()
    queues = []
    for _ in range(64):
        queues.append([
            DiskRequest(
                "write",
                rng.randrange(disk.total_sectors - 8),
                8,
                None,
                False,
                seq,
                0.0,
            )
            for seq in range(depth)
        ])

    def once() -> float:
        start = time.perf_counter()
        for i in range(picks):
            policy.pick(queues[i % len(queues)], disk)
        elapsed = time.perf_counter() - start
        return picks / elapsed

    return _best_of(repeats, once)


def bench_vld_write_blocks(
    rounds: int = 40, run_blocks: int = 16, repeats: int = 5
) -> float:
    """Logical blocks written per wall-second through multi-block
    ``write_blocks`` runs on a standing VLD -- the batched data-movement
    path end to end."""
    disk = Disk(ST19101, num_cylinders=4)
    vld = VirtualLogDisk(disk)
    rng = random.Random(0xB10C)
    span = 192
    payload = bytes(run_blocks * vld.block_size)
    for lba in range(span):
        vld.write_block(lba)
    starts = [rng.randrange(span - run_blocks) for _ in range(rounds)]

    def once() -> float:
        start = time.perf_counter()
        for s in starts:
            vld.write_blocks(s, run_blocks, payload)
        elapsed = time.perf_counter() - start
        return rounds * run_blocks / elapsed

    return _best_of(repeats, once)


def bench_compactor_data_move(repeats: int = 3) -> float:
    """Blocks relocated per wall-second by the compactor's data-movement
    pass, driven directly through ``run_for`` on a fragmented VLD wide
    enough (12 cylinders) that pricing every partial track per move --
    what the outward-walking hole search avoids -- would dominate."""

    def once() -> float:
        disk = Disk(ST19101, num_cylinders=12)
        vld = VirtualLogDisk(disk)
        rng = random.Random(0xDA7A)
        population = rng.sample(
            range(vld.num_blocks), int(vld.num_blocks * 0.55)
        )
        for lba in population:
            vld.write_blocks(lba, 1)
        for lba in population[::3]:
            vld.write_blocks(lba, 1)
        compactor = vld.compactor
        before = compactor.blocks_moved
        start = time.perf_counter()
        compactor.run_for(0.5)
        elapsed = time.perf_counter() - start
        moved = compactor.blocks_moved - before
        assert moved > 0, "compactor found no work; workload shape broken"
        return moved / elapsed

    return _best_of(repeats, once)


def run_suite() -> Dict:
    """Run every metric; returns the BENCH_hotpath.json payload.

    The calibration loop runs again right before each metric and that
    *local* reading is what the metric is normalized by; the payload's
    ``calibration_ops_per_sec`` records the fastest reading (the
    machine's clean speed)."""
    benches = (
        ("free_run_query", lambda: bench_free_run_query(FreeSpaceMap)),
        ("mark_roundtrip", bench_mark_roundtrip),
        ("allocator_throughput", bench_allocator_throughput),
        ("compactor_pass", bench_compactor_pass),
        ("satf_pick_next", bench_satf_pick_next),
        ("vld_write_blocks", bench_vld_write_blocks),
        ("compactor_data_move", bench_compactor_data_move),
    )
    raw: Dict[str, float] = {}
    normalized: Dict[str, float] = {}
    calibrations = []
    for name, bench in benches:
        local = calibration_ops_per_sec()
        calibrations.append(local)
        raw[name] = bench()
        normalized[name] = raw[name] / local
    raw["free_run_query_reference"] = bench_free_run_query(
        ReferenceFreeSpaceMap, queries=400
    )
    return {
        "schema": SCHEMA,
        "calibration_ops_per_sec": max(calibrations),
        "raw_ops_per_sec": raw,
        "normalized": normalized,
        "speedup": {
            "free_run_query": raw["free_run_query"]
            / raw["free_run_query_reference"]
        },
        "environment": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
        },
    }


def run_suite_median(runs: int) -> Dict:
    """Per-metric median over ``runs`` suite passes.

    One pass can mix a lucky reading on one metric with an unlucky one
    on another; a committed baseline built from such a pass makes the
    relative gate flaky in both directions.  Medians keep every metric
    at its typical value (this is how ``BENCH_hotpath.json`` is
    recorded: ``--runs 5``)."""
    if runs <= 1:
        return run_suite()
    results = [run_suite() for _ in range(runs)]
    merged = results[0]
    for section in ("normalized", "raw_ops_per_sec", "speedup"):
        for key in merged[section]:
            merged[section][key] = statistics.median(
                r[section][key] for r in results
            )
    merged["calibration_ops_per_sec"] = statistics.median(
        r["calibration_ops_per_sec"] for r in results
    )
    return merged


def environment_warnings(result: Dict, baseline: Dict) -> list:
    """Non-fatal drift between the baseline's environment and ours --
    most importantly the interpreter the baseline was recorded on (the
    schema-2 baseline was committed from CPython 3.11.7 while CI ran
    3.10/3.12, and nothing said so)."""
    warnings = []
    base_env = baseline.get("environment", {})
    env = result["environment"]
    for field, label in (
        ("python", "interpreter"),
        ("implementation", "implementation"),
    ):
        recorded = base_env.get(field)
        if recorded is None:
            warnings.append(f"baseline does not record its {label}")
        elif recorded != env[field]:
            warnings.append(
                f"{label} drift: baseline was recorded on {recorded}, "
                f"this run is {env[field]} -- normalized scores absorb "
                "most of the skew, but re-record the baseline from the "
                "CI interpreter if the gap persists"
            )
    return warnings


def compare_to_baseline(
    result: Dict, baseline: Dict, tolerance: float
) -> list:
    """Return a list of human-readable failures (empty == gate passes)."""
    failures = []
    if baseline.get("schema") != result["schema"]:
        failures.append(
            f"schema mismatch: baseline {baseline.get('schema')} vs "
            f"current {result['schema']} -- re-record the baseline"
        )
        return failures
    for name, floor in ABSOLUTE_FLOORS.items():
        current = result["normalized"][name]
        if current < floor:
            failures.append(
                f"{name}: normalized {current:.4f} is below the "
                f"absolute floor {floor:.4f} locking in the "
                "batch-mechanics speedup"
            )
    for name in GATED_METRICS:
        base = baseline["normalized"].get(name)
        if base is None:
            failures.append(f"baseline missing metric {name!r}")
            continue
        current = result["normalized"][name]
        floor = base * (1.0 - tolerance)
        if current < floor:
            failures.append(
                f"{name}: normalized {current:.3f} is below "
                f"{floor:.3f} (baseline {base:.3f} - {tolerance:.0%})"
            )
    speedup = result["speedup"]["free_run_query"]
    if speedup < SPEEDUP_FLOOR:
        failures.append(
            f"free_run_query speedup {speedup:.2f}x fell below the "
            f"{SPEEDUP_FLOOR:.0f}x floor vs the reference free map"
        )
    return failures


def _print_report(result: Dict) -> None:
    print(f"calibration: {result['calibration_ops_per_sec']:,.0f} loop-ops/s")
    print(f"{'metric':<24} {'ops/sec':>14} {'normalized':>12}")
    for name in GATED_METRICS:
        print(
            f"{name:<24} {result['raw_ops_per_sec'][name]:>14,.1f} "
            f"{result['normalized'][name]:>12.3f}"
        )
    reference = result["raw_ops_per_sec"]["free_run_query_reference"]
    print(f"{'free_run_query (ref)':<24} {reference:>14,.1f}")
    print(
        "free_run_query speedup vs reference map: "
        f"{result['speedup']['free_run_query']:.1f}x"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json",
        default="BENCH_hotpath.json",
        help="where to write the results payload",
    )
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        help="compare against a committed baseline and exit nonzero on "
        "regression",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional regression per normalized metric",
    )
    parser.add_argument(
        "--runs",
        type=int,
        default=1,
        help="suite passes to take the per-metric median over (use >1 "
        "when recording a committed baseline)",
    )
    args = parser.parse_args(argv)

    result = run_suite_median(args.runs)
    _print_report(result)
    with open(args.json, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.json}")

    if args.check:
        with open(args.check) as fh:
            baseline = json.load(fh)
        for warning in environment_warnings(result, baseline):
            print(f"PERF WARNING: {warning}", file=sys.stderr)
        failures = compare_to_baseline(result, baseline, args.tolerance)
        if failures:
            for failure in failures:
                print(f"PERF REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(
            f"perf gate passed (tolerance {args.tolerance:.0%} vs "
            f"{args.check})"
        )
    return 0


# ----------------------------------------------------------------------
# pytest entry point (collected when running `pytest benchmarks/`)
# ----------------------------------------------------------------------


def test_hotpath_speedup_floor(benchmark):
    """The bitmap free map must hold its >=3x win over the per-sector map."""
    from .conftest import run_once

    fast = run_once(
        benchmark, lambda: bench_free_run_query(FreeSpaceMap, queries=1500)
    )
    reference = bench_free_run_query(ReferenceFreeSpaceMap, queries=200)
    speedup = fast / reference
    print(f"\nfree_run_query: {fast:,.0f} ops/s vs reference "
          f"{reference:,.0f} ops/s -> {speedup:.1f}x")
    assert speedup >= SPEEDUP_FLOOR


if __name__ == "__main__":
    sys.exit(main())
