import pytest

from repro.fs.dirfile import DirectoryBlock, iter_directory


class TestDirectoryBlock:
    def test_roundtrip(self):
        block = DirectoryBlock(4096, {"alpha": 3, "beta": 7})
        parsed = DirectoryBlock.unpack(block.pack())
        assert parsed.entries == {"alpha": 3, "beta": 7}

    def test_pack_pads_to_block_size(self):
        assert len(DirectoryBlock(4096, {"a": 1}).pack()) == 4096

    def test_empty_block(self):
        parsed = DirectoryBlock.unpack(DirectoryBlock(4096).pack())
        assert len(parsed) == 0

    def test_add_remove_lookup(self):
        block = DirectoryBlock(4096)
        block.add("f", 12)
        assert block.lookup("f") == 12
        assert block.remove("f") == 12
        assert block.lookup("f") is None

    def test_space_accounting(self):
        block = DirectoryBlock(256)
        name = "n" * 100
        assert block.space_for(name)
        block.add(name, 1)
        # 106 bytes used of 256: a second 100-char entry won't fit.
        assert not block.space_for("m" * 160)
        with pytest.raises(ValueError):
            block.add("m" * 160, 2)

    def test_unicode_names(self):
        block = DirectoryBlock(4096, {"fichier-é": 5})
        parsed = DirectoryBlock.unpack(block.pack())
        assert parsed.lookup("fichier-é") == 5

    def test_many_entries_roundtrip(self):
        entries = {f"file{i:03d}": i + 1 for i in range(200)}
        block = DirectoryBlock(4096, entries)
        parsed = DirectoryBlock.unpack(block.pack())
        assert parsed.entries == entries

    def test_iter_directory_across_blocks(self):
        a = DirectoryBlock(4096, {"x": 1}).pack()
        b = DirectoryBlock(4096, {"y": 2}).pack()
        assert dict(iter_directory([a, b], 4096)) == {"x": 1, "y": 2}
