"""The log-structured file system proper.

All writes accumulate in the file cache (optionally NVRAM) and reach disk
through the segment writer; reads go through the inode map and inode block
pointers with *no* read-ahead (the LLD port disabled it, Section 4.4).
Create and delete are pure memory operations until a flush -- the flip side
of UFS's synchronous metadata, and the reason Figure 6's comparison is
about virtual-logging's effect on each file system rather than UFS vs LFS.

Inodes are packed ~30 to a log block; the inode map records (block, slot).
The cleaner copies live blocks out of victim segments; segment usage is
tracked exactly (per-block for data, per-slot weights for inode blocks).
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.blockdev.interface import BlockDevice

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.blockdev.interpose import InterposeOptions
from repro.fs.api import (
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    FileStat,
    FileSystem,
    IsADirectory,
    NoSpace,
    NotADirectory,
)
from repro.fs.dirfile import DirectoryBlock
from repro.fs.inode import FileType, INODE_SIZE, Inode, NUM_DIRECT
from repro.fs.path import dirname_basename, split_path
from repro.hosts.specs import HostSpec
from repro.lfs.checkpoint import CheckpointStore
from repro.lfs.cleaner import Cleaner, CleanerPolicy
from repro.lfs.inode_map import InodeMap, SegmentUsage
from repro.lfs.layout import LFSLayout, LFSSuperblock
from repro.lfs.nvram import FileCache
from repro.lfs.segment import BlockKind, SegmentSummary, SegmentWriter
from repro.sched.idle import IdleManager
from repro.sim.stats import Breakdown

_IB_HEADER = struct.Struct("<II")

#: inodes per packed inode block: header + n * (inum + inode) must fit.
INODES_PER_LOG_BLOCK = 30

ROOT_INUM = 1


def _pack_inode_block(
    block_size: int, inodes: List[Tuple[int, Inode]]
) -> bytes:
    if len(inodes) > INODES_PER_LOG_BLOCK:
        raise ValueError("too many inodes for one block")
    body = b"".join(
        inum.to_bytes(4, "little") + inode.pack() for inum, inode in inodes
    )
    raw = _IB_HEADER.pack(len(inodes), 0) + body
    return raw + bytes(block_size - len(raw))


def _unpack_inode_block(raw: bytes) -> List[Tuple[int, Inode]]:
    count, _pad = _IB_HEADER.unpack(raw[: _IB_HEADER.size])
    result = []
    offset = _IB_HEADER.size
    for _ in range(count):
        inum = int.from_bytes(raw[offset : offset + 4], "little")
        inode = Inode.unpack(raw[offset + 4 : offset + 4 + INODE_SIZE])
        result.append((inum, inode))
        offset += 4 + INODE_SIZE
    return result


class LFS(FileSystem):
    """Log-structured file system over a block device."""

    def __init__(
        self,
        device: BlockDevice,
        host: HostSpec,
        cache_bytes: int = int(6.1 * 2**20),
        nvram: bool = False,
        segment_bytes: int = 512 << 10,
        partial_threshold: float = 0.75,
        cleaner_policy: CleanerPolicy = CleanerPolicy.COST_BENEFIT,
        host_factor: float = 1.8,
        reserve_segments: int = 3,
        format_device: bool = True,
        interpose: Optional["InterposeOptions"] = None,
    ) -> None:
        if interpose is not None:
            from repro.blockdev.interpose import wrap_device

            device = wrap_device(device, interpose)
        self.device = device
        self.host = host
        self.host_factor = host_factor
        self.clock = device.disk.clock
        self.block_size = device.block_size
        if format_device:
            self.layout = LFSLayout.design(
                device.num_blocks, device.block_size, segment_bytes
            )
        else:
            raw, _ = device.read_block(0)
            self.layout = LFSLayout(LFSSuperblock.unpack(raw))
        sb = self.layout.sb
        self.imap = InodeMap(sb.max_inodes)
        self.segusage = SegmentUsage(
            sb.num_segments, self.layout.segment_bytes
        )
        self.cache = FileCache(cache_bytes, self.block_size, nvram=nvram)
        self.writer = SegmentWriter(
            device,
            self.layout,
            self._pick_free_segment,
            partial_threshold,
            now=lambda: self.clock.now,
        )
        self.checkpoints = CheckpointStore(device, self.layout)
        self.cleaner = Cleaner(self, cleaner_policy)
        self.reserve_segments = max(1, reserve_segments)
        #: in-memory (active) inodes; authoritative between flushes
        self._inodes: Dict[int, Inode] = {}
        self._dirty_inodes: Set[int] = set()
        #: per-slot live-byte weights of on-disk inode blocks
        self._inode_block_weights: Dict[int, Dict[int, int]] = {}
        self._cleaning = False
        self._flushing = False
        if format_device:
            self._mkfs()
        else:
            self.mount()

    # ==================================================================
    # Setup and recovery
    # ==================================================================

    def _mkfs(self) -> None:
        self.device.write_block(0, self.layout.sb.pack())
        root = Inode(itype=FileType.DIRECTORY, nlink=2)
        self._inodes[ROOT_INUM] = root
        self._dirty_inodes.add(ROOT_INUM)
        breakdown = Breakdown()
        self._stage_dirty_inodes(breakdown)
        self.writer.sync()
        self.checkpoint()

    def checkpoint(self) -> Breakdown:
        """Flush everything and write a checkpoint region."""
        breakdown = Breakdown()
        self._flush_all(breakdown)
        breakdown.add(self.writer.sync())
        breakdown.add(
            self.checkpoints.write(
                self.imap,
                self.segusage,
                self.writer.flush_seqno,
                self.clock.now,
            )
        )
        return breakdown

    def crash(self) -> None:
        """Abrupt power loss: volatile state is dropped.

        With NVRAM, the file cache *and* the cached inode state survive --
        the paper's NVRAM assumption is that the buffer cache (which in
        MinixUFS holds metadata too) gives "a similar reliability
        guarantee as that of the synchronous systems".  Without NVRAM
        everything volatile is lost.  Call :meth:`mount` to recover.
        """
        self.cache.crash()
        if not self.cache.nvram:
            self._inodes.clear()
            self._dirty_inodes.clear()
        self._inode_block_weights.clear()

    def mount(self) -> Breakdown:
        """Recover: checkpoint load + roll-forward over segment summaries."""
        breakdown = Breakdown()
        header, cost = self.checkpoints.read_latest(self.imap, self.segusage)
        breakdown.add(cost)
        cp_flush_seqno = header.flush_seqno if header else 0
        self.writer.flush_seqno = cp_flush_seqno
        # Roll forward: apply summaries younger than the checkpoint.
        newer: List[Tuple[int, int, SegmentSummary]] = []
        for segment in range(self.layout.sb.num_segments):
            start = self.layout.segment_start(segment)
            raw, cost = self.device.read_block(start)
            breakdown.add(cost)
            summary = SegmentSummary.unpack(raw)
            if summary is not None and summary.seqno > cp_flush_seqno:
                newer.append((summary.seqno, segment, summary))
        for seqno, segment, summary in sorted(newer):
            self._roll_forward_segment(segment, summary, breakdown)
            self.writer.flush_seqno = max(self.writer.flush_seqno, seqno)
        if newer:
            self._recompute_usage(breakdown)
        return breakdown

    def _roll_forward_segment(
        self, segment: int, summary: SegmentSummary, breakdown: Breakdown
    ) -> None:
        start = self.layout.segment_start(segment)
        for i, entry in enumerate(summary.entries):
            if entry.kind != BlockKind.INODE_BLOCK:
                continue  # data pointers live inside the inodes that follow
            address = start + 1 + i
            raw, cost = self.device.read_block(address)
            breakdown.add(cost)
            for slot, (inum, _inode) in enumerate(_unpack_inode_block(raw)):
                self.imap.set(inum, address, slot)

    def _recompute_usage(self, breakdown: Breakdown) -> None:
        """Rebuild exact live-byte counts by scanning segment summaries."""
        for segment in range(self.layout.sb.num_segments):
            start = self.layout.segment_start(segment)
            raw, cost = self.device.read_block(start)
            breakdown.add(cost)
            summary = SegmentSummary.unpack(raw)
            if summary is None or not summary.entries:
                self.segusage.mark_clean(segment)
                continue
            live = 0
            for i, entry in enumerate(summary.entries):
                address = start + 1 + i
                if entry.kind == BlockKind.INODE_BLOCK:
                    iraw, cost = self.device.read_block(address)
                    breakdown.add(cost)
                    slots = _unpack_inode_block(iraw)
                    weights = self._block_weights(len(slots))
                    live_slots = {}
                    for slot, (inum, _inode) in enumerate(slots):
                        if self.imap.get(inum) == (address, slot):
                            live += weights[slot]
                            live_slots[slot] = weights[slot]
                    if live_slots:
                        self._inode_block_weights[address] = live_slots
                elif self._pointer_matches(
                    entry.inum, entry.fblk, address, breakdown
                ):
                    live += self.block_size
            self.segusage.live_bytes[segment] = live
            self.segusage.last_write[segment] = summary.timestamp
            self.segusage._clean[segment] = False
            if live == 0:
                self.segusage.mark_clean(segment)

    def _pointer_matches(
        self, inum: int, fblk: int, address: int, breakdown: Breakdown
    ) -> bool:
        """Does ``inum``'s pointer for ``fblk`` (or indirect code) still
        reference ``address``?  Used by usage recomputation."""
        if not self.imap.allocated(inum) and inum not in self._inodes:
            return False
        inode = self._live_inode_for(inum, breakdown)
        if inode is None:
            return False
        if fblk >= 0:
            return self._get_pointer(inode, inum, fblk, breakdown) == address
        return self._meta_address(inode, inum, fblk, breakdown) == address

    # ==================================================================
    # Host accounting
    # ==================================================================

    def _start_op(self, blocks: int = 1) -> Breakdown:
        cost = self.host.request_overhead(blocks) * self.host_factor
        self.clock.advance(cost)
        breakdown = Breakdown()
        breakdown.charge("other", cost)
        return breakdown

    # ==================================================================
    # Inode management
    # ==================================================================

    def _alloc_inum(self) -> int:
        for inum in range(1, self.imap.max_inodes):
            if inum not in self._inodes and not self.imap.allocated(inum):
                return inum
        raise NoSpace("out of inodes")

    def _load_inode(self, inum: int, breakdown: Breakdown) -> Inode:
        inode = self._inodes.get(inum)
        if inode is not None:
            return inode
        location = self.imap.get(inum)
        if location is None:
            raise FileNotFound(f"inode {inum} is not allocated")
        address, slot = location
        raw = self._read_log_block(address, breakdown)
        entries = _unpack_inode_block(raw)
        if slot >= len(entries) or entries[slot][0] != inum:
            raise FileNotFound(f"inode {inum} not found at its map address")
        inode = entries[slot][1]
        self._inodes[inum] = inode
        return inode

    def _mark_inode_dirty(self, inum: int) -> None:
        self._dirty_inodes.add(inum)

    @staticmethod
    def _block_weights(count: int) -> List[int]:
        """Per-slot live-byte weights summing exactly to the block size."""
        if count == 0:
            return []
        base = 4096 // count
        weights = [base] * count
        weights[0] += 4096 - base * count
        return weights

    # ==================================================================
    # Block pointers (direct / single / double indirect)
    # ==================================================================

    @property
    def _ppb(self) -> int:
        return self.block_size // 4

    def _read_log_block(self, address: int, breakdown: Breakdown) -> bytes:
        """Read a log block, honouring the writer's staging buffer."""
        staged = self.writer.staged_data(address)
        if staged is not None:
            return staged
        raw, cost = self.device.read_block(address)
        breakdown.add(cost)
        return raw

    def _meta_block(
        self, inum: int, code: int, disk_addr: int, breakdown: Breakdown
    ) -> bytearray:
        """Fetch an indirect block (cache first, then the log, else fresh)."""
        cached = self.cache.get((inum, code))
        if cached is not None:
            return bytearray(cached)
        if disk_addr:
            raw = self._read_log_block(disk_addr, breakdown)
            self.cache.put_clean((inum, code), bytes(raw))
            return bytearray(raw)
        return bytearray(self.block_size)

    def _get_pointer(
        self, inode: Inode, inum: int, fblk: int, breakdown: Breakdown
    ) -> int:
        if fblk < NUM_DIRECT:
            return inode.direct[fblk]
        f = fblk - NUM_DIRECT
        if f < self._ppb:
            if not inode.indirect and (inum, BlockKind.SINGLE_INDIRECT) not in self.cache:
                return 0
            table = self._meta_block(
                inum, BlockKind.SINGLE_INDIRECT, inode.indirect, breakdown
            )
            return int.from_bytes(table[f * 4 : f * 4 + 4], "little")
        f -= self._ppb
        index = f // self._ppb
        if not inode.double_indirect and (inum, BlockKind.DOUBLE_INDIRECT) not in self.cache:
            return 0
        root = self._meta_block(
            inum, BlockKind.DOUBLE_INDIRECT, inode.double_indirect, breakdown
        )
        l1_addr = int.from_bytes(root[index * 4 : index * 4 + 4], "little")
        code = BlockKind.level1(index)
        if not l1_addr and (inum, code) not in self.cache:
            return 0
        table = self._meta_block(inum, code, l1_addr, breakdown)
        return int.from_bytes(
            table[(f % self._ppb) * 4 : (f % self._ppb) * 4 + 4], "little"
        )

    def _set_pointer(
        self,
        inode: Inode,
        inum: int,
        fblk: int,
        address: int,
        breakdown: Breakdown,
    ) -> int:
        """Point ``fblk`` at ``address``; returns the displaced address."""
        if fblk < NUM_DIRECT:
            old = inode.direct[fblk]
            inode.direct[fblk] = address
            self._mark_inode_dirty(inum)
            return old
        f = fblk - NUM_DIRECT
        if f < self._ppb:
            table = self._meta_block(
                inum, BlockKind.SINGLE_INDIRECT, inode.indirect, breakdown
            )
            old = int.from_bytes(table[f * 4 : f * 4 + 4], "little")
            table[f * 4 : f * 4 + 4] = address.to_bytes(4, "little")
            self._put_meta_dirty(inum, BlockKind.SINGLE_INDIRECT, table, breakdown)
            return old
        f -= self._ppb
        index = f // self._ppb
        root = self._meta_block(
            inum, BlockKind.DOUBLE_INDIRECT, inode.double_indirect, breakdown
        )
        l1_addr = int.from_bytes(root[index * 4 : index * 4 + 4], "little")
        code = BlockKind.level1(index)
        table = self._meta_block(inum, code, l1_addr, breakdown)
        slot = f % self._ppb
        old = int.from_bytes(table[slot * 4 : slot * 4 + 4], "little")
        table[slot * 4 : slot * 4 + 4] = address.to_bytes(4, "little")
        self._put_meta_dirty(inum, code, table, breakdown)
        self._put_meta_dirty(inum, BlockKind.DOUBLE_INDIRECT, root, breakdown)
        return old

    def _put_meta_dirty(
        self, inum: int, code: int, table: bytearray, breakdown: Breakdown
    ) -> None:
        self._ensure_cache_room(breakdown)
        self.cache.put_dirty((inum, code), bytes(table))
        self._mark_inode_dirty(inum)

    # ==================================================================
    # The flush path (cache -> segments)
    # ==================================================================

    def _ensure_cache_room(self, breakdown: Breakdown) -> None:
        if self._flushing or self._cleaning:
            return  # flush/clean paths may dirty metadata re-entrantly
        if self.cache.would_overflow(1):
            self._flush_all(breakdown)
            breakdown.add(self.writer.sync())

    def _ensure_free_segments(self, target: int, breakdown: Breakdown) -> None:
        if self._cleaning:
            return
        usage = self.segusage
        current = self.writer.current_segment
        available = len(usage.clean_segments(exclude=current)) + len(
            usage.reclaimable(exclude=current)
        )
        if available >= target:
            return
        self._cleaning = True
        try:
            breakdown.add(self.cleaner.clean_until_free(target))
        finally:
            self._cleaning = False

    def _pick_free_segment(self) -> int:
        """Open a new segment for the writer.

        Ordinary writers may not consume the cleaning reserve: when the
        pool drops to ``reserve_segments``, the cleaner runs *first* (its
        own staging is allowed into the reserve -- that is what the
        reserve exists for).  This is the discipline that prevents the
        classic LFS live-lock where every segment is partially live and
        the cleaner has nowhere to put survivors.
        """
        usage = self.segusage
        if not self._cleaning:
            available = len(usage.clean_segments()) + len(
                usage.reclaimable()
            )
            if available <= self.reserve_segments:
                self._cleaning = True
                try:
                    self.cleaner.clean_until_free(self.reserve_segments + 2)
                finally:
                    self._cleaning = False
        clean = usage.clean_segments()
        if clean:
            return clean[0]
        reclaimable = usage.reclaimable()
        if reclaimable:
            segment = reclaimable[0]
            usage.mark_clean(segment)
            return segment
        raise NoSpace("log out of clean segments")

    def _flush_all(self, breakdown: Breakdown) -> None:
        """Drain every dirty cache block and dirty inode into the log."""
        if self._flushing:
            return
        dirty = self.cache.dirty_items()
        if not dirty and not self._dirty_inodes:
            return
        needed = 2 + len(dirty) // self.layout.data_blocks_per_segment
        self._ensure_free_segments(
            max(self.reserve_segments, needed), breakdown
        )
        self._flushing = True
        try:
            by_inode: Dict[int, List[Tuple[Tuple[int, int], bytes]]] = {}
            for key, data in dirty:
                by_inode.setdefault(key[0], []).append((key, data))
            for inum, items in by_inode.items():
                # Keep the reserve topped up as the flush consumes space.
                self._ensure_free_segments(self.reserve_segments, breakdown)
                self._stage_inode_blocks(inum, items, breakdown)
            # Indirect blocks dirtied while staging data above.
            remaining = self.cache.dirty_items()
            by_inode.clear()
            for key, data in remaining:
                by_inode.setdefault(key[0], []).append((key, data))
            for inum, items in by_inode.items():
                self._stage_inode_blocks(inum, items, breakdown)
            self._stage_dirty_inodes(breakdown)
        finally:
            self._flushing = False

    def _stage_inode_blocks(
        self,
        inum: int,
        items: List[Tuple[Tuple[int, int], bytes]],
        breakdown: Breakdown,
    ) -> None:
        """Stage one inode's dirty blocks: data, then indirect bottom-up."""
        inode = self._inodes.get(inum)
        if inode is None:
            # The inode vanished (deleted) after the blocks were dirtied.
            for key, _data in items:
                self.cache.forget(key)
            return
        data_items = [(k, d) for k, d in items if k[1] >= 0]
        meta_items = [(k, d) for k, d in items if k[1] < 0]
        for key, data in data_items:
            self._stage_one(
                BlockKind.DATA, inum, key[1], data, inode, breakdown
            )
            self.cache.mark_clean(key)
        # Indirect blocks: level-1 tables first, then the double root, then
        # the single indirect, so parents capture children's new addresses.
        def depth(code: int) -> int:
            if code <= -3:
                return 0
            if code == BlockKind.DOUBLE_INDIRECT:
                return 1
            return 2
        for key, _stale in sorted(meta_items, key=lambda kv: depth(kv[0][1])):
            code = key[1]
            current = self.cache.get(key)
            if current is None:
                continue
            self._stage_meta(inum, code, current, inode, breakdown)
            self.cache.mark_clean(key)

    def _stage_one(
        self,
        kind: int,
        inum: int,
        fblk: int,
        data: bytes,
        inode: Inode,
        breakdown: Breakdown,
    ) -> None:
        address, cost = self.writer.stage(kind, inum, fblk, data)
        breakdown.add(cost)
        old = self._set_pointer(inode, inum, fblk, address, breakdown)
        if old:
            self._note_dead_block(old)
        self._note_live_block(address)
        self._mark_inode_dirty(inum)

    def _stage_meta(
        self,
        inum: int,
        code: int,
        data: bytes,
        inode: Inode,
        breakdown: Breakdown,
    ) -> None:
        address, cost = self.writer.stage(
            BlockKind.INDIRECT, inum, code, data
        )
        breakdown.add(cost)
        old = 0
        if code == BlockKind.SINGLE_INDIRECT:
            old, inode.indirect = inode.indirect, address
        elif code == BlockKind.DOUBLE_INDIRECT:
            old, inode.double_indirect = inode.double_indirect, address
        else:
            index = -(code + 3)
            root = self._meta_block(
                inum, BlockKind.DOUBLE_INDIRECT, inode.double_indirect,
                breakdown,
            )
            old = int.from_bytes(root[index * 4 : index * 4 + 4], "little")
            root[index * 4 : index * 4 + 4] = address.to_bytes(4, "little")
            self._put_meta_dirty(
                inum, BlockKind.DOUBLE_INDIRECT, root, breakdown
            )
        if old:
            self._note_dead_block(old)
        self._note_live_block(address)
        self._mark_inode_dirty(inum)

    def _stage_dirty_inodes(self, breakdown: Breakdown) -> None:
        dirty = sorted(
            i for i in self._dirty_inodes if i in self._inodes
        )
        self._dirty_inodes.clear()
        for lo in range(0, len(dirty), INODES_PER_LOG_BLOCK):
            batch = dirty[lo : lo + INODES_PER_LOG_BLOCK]
            inodes = [(inum, self._inodes[inum]) for inum in batch]
            raw = _pack_inode_block(self.block_size, inodes)
            address, cost = self.writer.stage(
                BlockKind.INODE_BLOCK, batch[0], 0, raw
            )
            breakdown.add(cost)
            weights = self._block_weights(len(batch))
            slot_weights: Dict[int, int] = {}
            for slot, inum in enumerate(batch):
                self._note_dead_inode(inum)
                self.imap.set(inum, address, slot)
                slot_weights[slot] = weights[slot]
            self._inode_block_weights[address] = slot_weights
            self._note_live_block(address)

    def _note_live_block(self, address: int) -> None:
        """Space accounting hook: a block-sized write landed at
        ``address``.  (VLFS overrides the accounting hooks to use a
        free-space map instead of segment usage.)"""
        self.segusage.note_write(
            self.layout.segment_of_block(address),
            self.block_size,
            self.clock.now,
        )

    def _note_dead_block(self, address: int) -> None:
        self.segusage.note_dead(
            self.layout.segment_of_block(address), self.block_size
        )

    def _note_dead_inode(self, inum: int) -> None:
        location = self.imap.get(inum)
        if location is None:
            return
        address, slot = location
        weights = self._inode_block_weights.get(address)
        weight = 0
        if weights is not None:
            weight = weights.pop(slot, 0)
            if not weights:
                del self._inode_block_weights[address]
        if weight:
            self._note_dead_segment_bytes(address, weight)

    def _note_dead_segment_bytes(self, address: int, nbytes: int) -> None:
        self.segusage.note_dead(
            self.layout.segment_of_block(address), nbytes
        )

    # ==================================================================
    # Cleaning support (called by the Cleaner)
    # ==================================================================

    def copy_live_blocks(self, victim: int) -> Breakdown:
        """Read a victim segment and re-append everything still live."""
        breakdown = Breakdown()
        start = self.layout.segment_start(victim)
        raw, cost = self.device.read_blocks(start, self.layout.segment_blocks)
        breakdown.add(cost)
        summary = SegmentSummary.unpack(raw[: self.block_size])
        if summary is None:
            self.segusage.mark_clean(victim)
            return breakdown
        live_inodes: List[int] = []
        for i, entry in enumerate(summary.entries):
            address = start + 1 + i
            block = raw[(1 + i) * self.block_size : (2 + i) * self.block_size]
            if entry.kind == BlockKind.INODE_BLOCK:
                for slot, (inum, _ino) in enumerate(_unpack_inode_block(block)):
                    if self.imap.get(inum) == (address, slot):
                        self._load_inode(inum, breakdown)
                        live_inodes.append(inum)
                self._inode_block_weights.pop(address, None)
            elif entry.kind == BlockKind.DATA:
                inode = self._live_inode_for(entry.inum, breakdown)
                if inode is None:
                    continue
                if self._get_pointer(
                    inode, entry.inum, entry.fblk, breakdown
                ) != address:
                    continue
                cached = self.cache.get((entry.inum, entry.fblk))
                payload = cached if cached is not None else block
                self._stage_one(
                    BlockKind.DATA, entry.inum, entry.fblk, payload, inode,
                    breakdown,
                )
                self.cleaner.blocks_copied += 1
            else:  # INDIRECT
                inode = self._live_inode_for(entry.inum, breakdown)
                if inode is None:
                    continue
                if self._meta_address(inode, entry.inum, entry.fblk, breakdown) != address:
                    continue
                cached = self.cache.get((entry.inum, entry.fblk))
                payload = cached if cached is not None else block
                self._stage_meta(
                    entry.inum, entry.fblk, payload, inode, breakdown
                )
                self.cleaner.blocks_copied += 1
        for inum in live_inodes:
            self._mark_inode_dirty(inum)
        self._stage_dirty_inodes(breakdown)
        self.segusage.mark_clean(victim)
        return breakdown

    def _live_inode_for(
        self, inum: int, breakdown: Breakdown
    ) -> Optional[Inode]:
        if inum in self._inodes:
            return self._inodes[inum]
        if not self.imap.allocated(inum):
            return None
        return self._load_inode(inum, breakdown)

    def _meta_address(
        self, inode: Inode, inum: int, code: int, breakdown: Breakdown
    ) -> int:
        if code == BlockKind.SINGLE_INDIRECT:
            return inode.indirect
        if code == BlockKind.DOUBLE_INDIRECT:
            return inode.double_indirect
        index = -(code + 3)
        root = self._meta_block(
            inum, BlockKind.DOUBLE_INDIRECT, inode.double_indirect, breakdown
        )
        return int.from_bytes(root[index * 4 : index * 4 + 4], "little")

    # ==================================================================
    # File data access
    # ==================================================================

    def _read_file_block(
        self, inum: int, inode: Inode, fblk: int, breakdown: Breakdown
    ) -> bytes:
        cached = self.cache.get((inum, fblk))
        if cached is not None:
            return cached
        address = self._get_pointer(inode, inum, fblk, breakdown)
        if not address:
            return bytes(self.block_size)
        raw = self._read_log_block(address, breakdown)
        self.cache.put_clean((inum, fblk), bytes(raw))
        return bytes(raw)

    def _write_file_block(
        self, inum: int, fblk: int, data: bytes, breakdown: Breakdown
    ) -> None:
        self._ensure_cache_room(breakdown)
        self.cache.put_dirty((inum, fblk), data)
        self._mark_inode_dirty(inum)

    # ==================================================================
    # Path resolution and directories
    # ==================================================================

    def _namei(self, parts: List[str], breakdown: Breakdown) -> int:
        inum = ROOT_INUM
        for name in parts:
            inode = self._load_inode(inum, breakdown)
            if not inode.is_dir:
                raise NotADirectory(name)
            child = self._dir_lookup(inum, inode, name, breakdown)
            if child is None:
                raise FileNotFound(f"no such file or directory: {name!r}")
            inum = child
        return inum

    def _dir_blocks(self, inode: Inode) -> int:
        return -(-inode.size // self.block_size)

    def _dir_lookup(
        self, inum: int, inode: Inode, name: str, breakdown: Breakdown
    ) -> Optional[int]:
        for fblk in range(self._dir_blocks(inode)):
            raw = self._read_file_block(inum, inode, fblk, breakdown)
            child = DirectoryBlock.unpack(raw).lookup(name)
            if child is not None:
                return child
        return None

    def _dir_add(
        self,
        inum: int,
        inode: Inode,
        name: str,
        child: int,
        breakdown: Breakdown,
    ) -> None:
        for fblk in range(self._dir_blocks(inode)):
            raw = self._read_file_block(inum, inode, fblk, breakdown)
            block = DirectoryBlock.unpack(raw)
            if block.space_for(name):
                block.add(name, child)
                self._write_file_block(inum, fblk, block.pack(), breakdown)
                inode.mtime = self.clock.now
                self._mark_inode_dirty(inum)
                return
        fblk = self._dir_blocks(inode)
        block = DirectoryBlock(self.block_size, {name: child})
        self._write_file_block(inum, fblk, block.pack(), breakdown)
        inode.size = (fblk + 1) * self.block_size
        inode.mtime = self.clock.now
        self._mark_inode_dirty(inum)

    def _dir_remove(
        self, inum: int, inode: Inode, name: str, breakdown: Breakdown
    ) -> int:
        for fblk in range(self._dir_blocks(inode)):
            raw = self._read_file_block(inum, inode, fblk, breakdown)
            block = DirectoryBlock.unpack(raw)
            if block.lookup(name) is not None:
                child = block.remove(name)
                self._write_file_block(inum, fblk, block.pack(), breakdown)
                inode.mtime = self.clock.now
                self._mark_inode_dirty(inum)
                return child
        raise FileNotFound(f"no such entry: {name!r}")

    # ==================================================================
    # Public API
    # ==================================================================

    def create(self, path: str) -> Breakdown:
        breakdown = self._start_op()
        parents, name = dirname_basename(path)
        dir_inum = self._namei(parents, breakdown)
        dir_inode = self._load_inode(dir_inum, breakdown)
        if not dir_inode.is_dir:
            raise NotADirectory(path)
        if self._dir_lookup(dir_inum, dir_inode, name, breakdown) is not None:
            raise FileExists(path)
        inum = self._alloc_inum()
        self._inodes[inum] = Inode(
            itype=FileType.REGULAR, nlink=1, mtime=self.clock.now
        )
        self._mark_inode_dirty(inum)
        self._dir_add(dir_inum, dir_inode, name, inum, breakdown)
        return breakdown

    def mkdir(self, path: str) -> Breakdown:
        breakdown = self._start_op()
        parents, name = dirname_basename(path)
        dir_inum = self._namei(parents, breakdown)
        dir_inode = self._load_inode(dir_inum, breakdown)
        if not dir_inode.is_dir:
            raise NotADirectory(path)
        if self._dir_lookup(dir_inum, dir_inode, name, breakdown) is not None:
            raise FileExists(path)
        inum = self._alloc_inum()
        self._inodes[inum] = Inode(
            itype=FileType.DIRECTORY, nlink=2, mtime=self.clock.now
        )
        self._mark_inode_dirty(inum)
        self._dir_add(dir_inum, dir_inode, name, inum, breakdown)
        dir_inode.nlink += 1
        return breakdown

    def unlink(self, path: str) -> Breakdown:
        breakdown = self._start_op()
        parents, name = dirname_basename(path)
        dir_inum = self._namei(parents, breakdown)
        dir_inode = self._load_inode(dir_inum, breakdown)
        inum = self._dir_lookup(dir_inum, dir_inode, name, breakdown)
        if inum is None:
            raise FileNotFound(path)
        inode = self._load_inode(inum, breakdown)
        if inode.is_dir:
            raise IsADirectory(path)
        self._dir_remove(dir_inum, dir_inode, name, breakdown)
        self._free_inode_storage(inum, inode, breakdown)
        return breakdown

    def rmdir(self, path: str) -> Breakdown:
        breakdown = self._start_op()
        parents, name = dirname_basename(path)
        dir_inum = self._namei(parents, breakdown)
        dir_inode = self._load_inode(dir_inum, breakdown)
        inum = self._dir_lookup(dir_inum, dir_inode, name, breakdown)
        if inum is None:
            raise FileNotFound(path)
        inode = self._load_inode(inum, breakdown)
        if not inode.is_dir:
            raise NotADirectory(path)
        for fblk in range(self._dir_blocks(inode)):
            raw = self._read_file_block(inum, inode, fblk, breakdown)
            if len(DirectoryBlock.unpack(raw)):
                raise DirectoryNotEmpty(path)
        self._dir_remove(dir_inum, dir_inode, name, breakdown)
        self._free_inode_storage(inum, inode, breakdown)
        dir_inode.nlink = max(2, dir_inode.nlink - 1)
        return breakdown

    def rename(self, old_path: str, new_path: str) -> Breakdown:
        breakdown = self._start_op()
        old_parents, old_name = dirname_basename(old_path)
        new_parents, new_name = dirname_basename(new_path)
        old_dir = self._namei(old_parents, breakdown)
        old_dir_inode = self._load_inode(old_dir, breakdown)
        inum = self._dir_lookup(old_dir, old_dir_inode, old_name, breakdown)
        if inum is None:
            raise FileNotFound(old_path)
        new_dir = self._namei(new_parents, breakdown)
        new_dir_inode = self._load_inode(new_dir, breakdown)
        if not new_dir_inode.is_dir:
            raise NotADirectory(new_path)
        if self._dir_lookup(
            new_dir, new_dir_inode, new_name, breakdown
        ) is not None:
            raise FileExists(new_path)
        self._dir_add(new_dir, new_dir_inode, new_name, inum, breakdown)
        self._dir_remove(old_dir, old_dir_inode, old_name, breakdown)
        return breakdown

    def truncate(self, path: str, size: int) -> Breakdown:
        if size < 0:
            raise ValueError("size must be non-negative")
        breakdown = self._start_op()
        inum = self._namei(split_path(path), breakdown)
        inode = self._load_inode(inum, breakdown)
        if inode.is_dir:
            raise IsADirectory(path)
        if size < inode.size:
            first_dead = -(-size // self.block_size)
            old_blocks = -(-inode.size // self.block_size)
            for fblk in range(first_dead, old_blocks):
                old = self._set_pointer(inode, inum, fblk, 0, breakdown)
                if old:
                    self._note_dead_block(old)
                self.cache.forget((inum, fblk))
            # Zero the now-dead suffix of a kept partial block so sparse
            # re-extension reads zeros.
            if size % self.block_size and first_dead > 0:
                keep = size % self.block_size
                raw = bytearray(
                    self._read_file_block(inum, inode, first_dead - 1,
                                          breakdown)
                )
                raw[keep:] = bytes(self.block_size - keep)
                self._write_file_block(
                    inum, first_dead - 1, bytes(raw), breakdown
                )
        inode.size = size
        inode.mtime = self.clock.now
        self._mark_inode_dirty(inum)
        return breakdown

    def _free_inode_storage(
        self, inum: int, inode: Inode, breakdown: Breakdown
    ) -> None:
        nblocks = -(-inode.size // self.block_size)
        for fblk in range(nblocks):
            address = self._get_pointer(inode, inum, fblk, breakdown)
            if address:
                self._note_dead_block(address)
        for code in (BlockKind.SINGLE_INDIRECT, BlockKind.DOUBLE_INDIRECT):
            address = self._meta_address(inode, inum, code, breakdown)
            if address:
                self._note_dead_block(address)
        if inode.double_indirect:
            root = self._meta_block(
                inum, BlockKind.DOUBLE_INDIRECT, inode.double_indirect,
                breakdown,
            )
            for index in range(self._ppb):
                addr = int.from_bytes(root[index * 4 : index * 4 + 4], "little")
                if addr:
                    self._note_dead_block(addr)
        self._note_dead_inode(inum)
        self.imap.clear(inum)
        self._inodes.pop(inum, None)
        self._dirty_inodes.discard(inum)
        self.cache.forget_inode(inum)

    # ------------------------------------------------------------------

    def write(
        self, path: str, offset: int, data: bytes, sync: bool = False
    ) -> Breakdown:
        if offset < 0:
            raise ValueError("offset must be non-negative")
        nblocks = max(1, -(-len(data) // self.block_size))
        breakdown = self._start_op(nblocks)
        inum = self._namei(split_path(path), breakdown)
        inode = self._load_inode(inum, breakdown)
        if inode.is_dir:
            raise IsADirectory(path)
        position = offset
        end = offset + len(data)
        while position < end:
            fblk = position // self.block_size
            lo = position % self.block_size
            hi = min(self.block_size, lo + (end - position))
            piece = data[position - offset : position - offset + hi - lo]
            if lo == 0 and hi == self.block_size:
                block = piece
            else:
                base = bytearray(
                    self._read_file_block(inum, inode, fblk, breakdown)
                )
                base[lo:hi] = piece
                block = bytes(base)
            self._write_file_block(inum, fblk, block, breakdown)
            position += hi - lo
        inode.size = max(inode.size, end)
        inode.mtime = self.clock.now
        self._mark_inode_dirty(inum)
        if sync and not self.cache.nvram:
            breakdown.add(self._fsync_inum(inum, breakdown))
        return breakdown

    def read(self, path: str, offset: int, length: int):
        if offset < 0 or length < 0:
            raise ValueError("offset and length must be non-negative")
        nblocks = max(1, -(-length // self.block_size))
        breakdown = self._start_op(nblocks)
        inum = self._namei(split_path(path), breakdown)
        inode = self._load_inode(inum, breakdown)
        if inode.is_dir:
            raise IsADirectory(path)
        length = max(0, min(length, inode.size - offset))
        pieces: List[bytes] = []
        position = offset
        end = offset + length
        while position < end:
            fblk = position // self.block_size
            lo = position % self.block_size
            hi = min(self.block_size, lo + (end - position))
            raw = self._read_file_block(inum, inode, fblk, breakdown)
            pieces.append(raw[lo:hi])
            position += hi - lo
        return b"".join(pieces), breakdown

    # ------------------------------------------------------------------

    def _fsync_inum(self, inum: int, host_breakdown: Breakdown) -> Breakdown:
        """Stage one inode's dirty state and apply the partial-segment
        threshold policy."""
        breakdown = Breakdown()
        items = self.cache.dirty_items_for(inum)
        if items or inum in self._dirty_inodes:
            self._ensure_free_segments(self.reserve_segments, breakdown)
            self._stage_inode_blocks(inum, items, breakdown)
            self._stage_dirty_inodes(breakdown)
        breakdown.add(self.writer.sync())
        return breakdown

    def fsync(self, path: str) -> Breakdown:
        breakdown = self._start_op()
        inum = self._namei(split_path(path), breakdown)
        if self.cache.nvram:
            return breakdown  # NVRAM already provides stability
        breakdown.add(self._fsync_inum(inum, breakdown))
        return breakdown

    def sync(self) -> Breakdown:
        breakdown = self._start_op()
        if self.cache.nvram:
            return breakdown
        self._flush_all(breakdown)
        breakdown.add(self.writer.sync())
        return breakdown

    def _flush_batch(self, max_blocks: int) -> Breakdown:
        """Stage up to ``max_blocks`` dirty blocks (oldest first) into the
        log; used by idle-time background flushing."""
        breakdown = Breakdown()
        if self._flushing:
            return breakdown
        dirty = self.cache.dirty_items()[:max_blocks]
        self._ensure_free_segments(self.reserve_segments, breakdown)
        self._flushing = True
        try:
            by_inode: Dict[int, List[Tuple[Tuple[int, int], bytes]]] = {}
            for key, data in dirty:
                by_inode.setdefault(key[0], []).append((key, data))
            for inum, items in by_inode.items():
                self._stage_inode_blocks(inum, items, breakdown)
            self._stage_dirty_inodes(breakdown)
        finally:
            self._flushing = False
        breakdown.add(self.writer.sync())
        return breakdown

    def flush_nvram(self) -> Breakdown:
        """Force even an NVRAM-backed cache out to the log (used when the
        cache fills, and by idle-time flushing in Section 5.5)."""
        breakdown = Breakdown()
        self._flush_all(breakdown)
        breakdown.add(self.writer.sync())
        return breakdown

    def drop_caches(self) -> None:
        self.cache.drop_clean()

    def idle(self, seconds: float) -> Breakdown:
        """Idle time: flush buffered writes and clean, *within* the
        interval.

        Work proceeds in segment-sized steps (Section 5.5's point: LFS can
        only exploit idle intervals long enough for segment-granularity
        operations).  Whatever does not fit stays for the next interval --
        or stalls a foreground write when the NVRAM fills first.  Worker
        order (flush, then clean, then the device's own background work)
        is fixed at registration; see :class:`IdleManager`.
        """
        return self.idle_manager.grant(seconds)

    @property
    def idle_manager(self) -> IdleManager:
        """Idle-budget dispatch (workers registered on first use)."""
        mgr = getattr(self, "_idle_manager", None)
        if mgr is None:
            mgr = IdleManager(self.clock)
            self._register_idle_workers(mgr)
            self._idle_manager = mgr
        return mgr

    def _register_idle_workers(self, mgr: IdleManager) -> None:
        mgr.register("flush", self._idle_flush, gate=self._has_dirty)
        mgr.register("clean", self._idle_clean)
        mgr.register("device", self._idle_device)

    def _has_dirty(self) -> bool:
        return bool(self.cache.dirty_blocks or self._dirty_inodes)

    def _idle_flush_batch(self) -> int:
        return self.layout.data_blocks_per_segment

    def _idle_flush(self, remaining: float) -> Breakdown:
        breakdown = Breakdown()
        deadline = self.clock.now + remaining
        while self.clock.now < deadline and self._has_dirty():
            breakdown.add(self._flush_batch(self._idle_flush_batch()))
        return breakdown

    def _idle_clean(self, remaining: float) -> Breakdown:
        self._cleaning = True
        try:
            return self.cleaner.run_idle(self.clock.now + remaining)
        finally:
            self._cleaning = False

    def _idle_device(self, remaining: float) -> None:
        # Remaining idle time belongs to the device (VLD compaction).
        self.device.idle(remaining)

    # ------------------------------------------------------------------

    def stat(self, path: str) -> FileStat:
        breakdown = Breakdown()
        inum = self._namei(split_path(path), breakdown)
        inode = self._load_inode(inum, breakdown)
        return FileStat(
            inum=inum,
            size=inode.size,
            is_dir=inode.is_dir,
            nlink=inode.nlink,
            blocks=-(-inode.size // self.block_size),
        )

    def listdir(self, path: str):
        breakdown = Breakdown()
        inum = self._namei(split_path(path), breakdown)
        inode = self._load_inode(inum, breakdown)
        if not inode.is_dir:
            raise NotADirectory(path)
        names: List[str] = []
        for fblk in range(self._dir_blocks(inode)):
            raw = self._read_file_block(inum, inode, fblk, breakdown)
            names.extend(DirectoryBlock.unpack(raw).entries)
        return sorted(names)

    def exists(self, path: str) -> bool:
        try:
            self._namei(split_path(path), Breakdown())
            return True
        except (FileNotFound, NotADirectory):
            return False

    # ------------------------------------------------------------------

    def free_segments(self) -> int:
        current = self.writer.current_segment
        return len(self.segusage.clean_segments(exclude=current)) + len(
            self.segusage.reclaimable(exclude=current)
        )

    @property
    def utilization(self) -> float:
        """Live bytes as a fraction of log capacity."""
        live = sum(self.segusage.live_bytes)
        total = self.layout.sb.num_segments * self.layout.segment_bytes
        return live / total
