"""Brute-force cost oracle for the eager allocator's NEAREST policy.

``EagerAllocator._choose_nearest`` promises the *globally cheapest* free
run -- the same closed-form time the disk engine will recompute when the
write is issued.  The oracle here enumerates every aligned free run on the
whole disk, prices each exactly as ``Disk._position_and_transfer`` would
(``positioning = max(seek, head_switch)`` followed by the rotational wait
from the post-positioning slot), and asserts the allocator's pick is
cost-minimal.

Two seed bugs are pinned by deterministic regression cases:

* **Penalized-head run selection** -- ``nearest_free_in_cylinder`` queried
  each non-current track at the head's *arrival* slot and only afterwards
  added a full revolution when the angularly-nearest run fell inside the
  head-switch settle window.  The angularly-nearest run is the only one it
  ever saw, so a second run on the same track sitting just *after* the
  settle window (reachable this revolution, nearly a full revolution
  cheaper) was never considered.
* **Unsound seek prune** -- the cylinder sweep stopped at the first
  distance whose seek met the incumbent cost, but the two-piece seek curve
  (``a + b*sqrt(d)`` below the boundary, ``c + e*d`` at and beyond) need
  not be monotone in ``d``: a spec whose long piece undercuts the short
  piece at the boundary makes far cylinders cheaper than nearer ones, and
  the early ``break`` never reached them.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.disk.disk import Disk
from repro.disk.freemap import FreeSpaceMap, ReferenceFreeSpaceMap
from repro.disk.specs import DiskSpec
from repro.vlog.allocator import AllocationPolicy, DiskFullError, EagerAllocator

_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def oracle_spec(
    n: int,
    t: int,
    cylinders: int,
    head_switch_slots: float = 3.0,
    short=(0.30e-3, 0.20e-3),
    long=(4.00e-3, 0.0008e-3),
    boundary: int = 400,
) -> DiskSpec:
    """A small drive with an exact ``head_switch_slots`` settle window and a
    configurable two-piece seek curve."""
    rpm = 10000.0
    sector_time = (60.0 / rpm) / n
    return DiskSpec(
        name=f"ORACLE{n}x{t}x{cylinders}",
        sectors_per_track=n,
        tracks_per_cylinder=t,
        num_cylinders=cylinders,
        sim_cylinders=cylinders,
        rpm=rpm,
        head_switch_time=head_switch_slots * sector_time,
        scsi_overhead=1e-4,
        sector_bytes=512,
        seek_short_a=short[0],
        seek_short_b=short[1],
        seek_long_c=long[0],
        seek_long_e=long[1],
        seek_boundary=boundary,
    )


def price(disk: Disk, sector: int) -> float:
    """Seconds until a write landing at ``sector`` could begin, priced
    exactly as ``Disk._position_and_transfer`` will: positioning first
    (max of seek and head switch), then the rotational wait measured from
    the post-positioning instant."""
    geometry = disk.geometry
    cylinder, head, sect = geometry.decompose(sector)
    positioning = disk.mechanics.positioning_time(
        disk.head_cylinder, disk.head_head, cylinder, head
    )
    target = geometry.angle_of(cylinder, head, sect)
    rotation = disk.mechanics.wait_for_slot(disk.clock.now + positioning, target)
    return positioning + rotation


def cheapest_run(disk: Disk, freemap, count: int, align: int):
    """Independent oracle: price every aligned free run on the disk and
    return ``(cost, sector)`` for the cheapest, or ``None``."""
    geometry = disk.geometry
    n = geometry.sectors_per_track
    best = None
    for cylinder in range(geometry.num_cylinders):
        for head in range(geometry.tracks_per_cylinder):
            base = geometry.track_start(cylinder, head)
            for sect in range(0, n - count + 1, align):
                linear = base + sect
                if not all(freemap.is_free(linear + i) for i in range(count)):
                    continue
                cost = price(disk, linear)
                if best is None or cost < best[0]:
                    best = (cost, linear)
    return best


def make_stack(spec: DiskSpec, block_sectors: int):
    disk = Disk(spec, store_data=False)
    freemap = FreeSpaceMap(disk.geometry)
    allocator = EagerAllocator(
        disk,
        freemap,
        block_sectors=block_sectors,
        policy=AllocationPolicy.NEAREST,
    )
    return disk, freemap, allocator


def free_run_with_gap_at_least(freemap, disk, cylinder, head, slot, lo, align):
    """Free (only) the aligned run on one track whose angular gap from
    ``slot`` is the smallest value >= ``lo``; returns (gap, sector)."""
    geometry = disk.geometry
    n = geometry.sectors_per_track
    base = geometry.track_start(cylinder, head)
    best = None
    for sect in range(0, n - align + 1, align):
        gap = (geometry.angle_of(cylinder, head, sect) - slot) % n
        if gap >= lo and (best is None or gap < best[0]):
            best = (gap, base + sect)
    assert best is not None
    freemap.mark_free(best[1], align)
    return best


def free_run_with_gap_below(freemap, disk, cylinder, head, slot, hi, align):
    """Free (only) the aligned run on one track whose angular gap from
    ``slot`` is the smallest value < ``hi``; returns (gap, sector)."""
    geometry = disk.geometry
    n = geometry.sectors_per_track
    base = geometry.track_start(cylinder, head)
    best = None
    for sect in range(0, n - align + 1, align):
        gap = (geometry.angle_of(cylinder, head, sect) - slot) % n
        if gap < hi and (best is None or gap < best[0]):
            best = (gap, base + sect)
    assert best is not None
    freemap.mark_free(best[1], align)
    return best


class TestPenalizedHeadRegression:
    """The settle-window run-selection bug, on ST19101-like proportions
    (head switch ~20 sector slots)."""

    BLOCK = 8

    def _build(self):
        spec = oracle_spec(n=64, t=2, cylinders=2, head_switch_slots=20.0)
        disk, freemap, allocator = make_stack(spec, self.BLOCK)
        # Everything used; candidates only on (cyl 0, head 1), the
        # penalized track (the head sits on head 0).
        freemap.mark_used(0, disk.geometry.total_sectors)
        arrival = disk.slot_after(0.0)
        # One run inside the settle window (unreachable this revolution)
        # and one just after it (reachable, far cheaper).
        decoy = free_run_with_gap_below(
            freemap, disk, 0, 1, arrival, 20.0, self.BLOCK
        )
        winner = free_run_with_gap_at_least(
            freemap, disk, 0, 1, arrival, 20.0, self.BLOCK
        )
        assert decoy[0] < 20.0 <= winner[0]
        return disk, freemap, allocator, winner

    def test_nearest_picks_reachable_run(self):
        disk, freemap, allocator, winner = self._build()
        oracle = cheapest_run(disk, freemap, self.BLOCK, self.BLOCK)
        assert oracle is not None and oracle[1] == winner[1]
        chosen = allocator.allocate() * self.BLOCK
        assert price(disk, chosen) <= oracle[0] + 1e-12

    @pytest.mark.parametrize("cls", [FreeSpaceMap, ReferenceFreeSpaceMap])
    def test_nearest_free_in_cylinder_settle_window(self, cls):
        """Direct unit pin of the in-cylinder query on both map
        implementations: the post-settle run must win, and the reported
        cost must be the slots-from-start_slot delay the allocator prices."""
        spec = oracle_spec(n=64, t=2, cylinders=1, head_switch_slots=20.0)
        disk = Disk(spec, store_data=False)
        freemap = cls(disk.geometry)
        freemap.mark_used(0, disk.geometry.total_sectors)
        start = 0.0
        decoy = free_run_with_gap_below(freemap, disk, 0, 1, start, 20.0, 8)
        winner = free_run_with_gap_at_least(freemap, disk, 0, 1, start, 20.0, 8)
        found = freemap.nearest_free_in_cylinder(
            0, 0, start, 8, align=8, head_switch_slots=20.0
        )
        assert found is not None
        cost, linear, head = found
        assert (linear, head) == (winner[1], 1)
        assert math.isclose(cost, winner[0])
        # The decoy would only be reachable a revolution later.
        assert cost < decoy[0] + 64.0


class TestSeekPruneRegression:
    """The unsound ``seek >= best_cost`` break, on a legal two-piece curve
    whose long piece undercuts the short piece at the boundary."""

    BLOCK = 8

    def _build(self):
        # short(99) = 0.3 + 0.2*sqrt(99) ~ 2.29 ms; long(d) = 1.0 ms + 1 us/cyl,
        # so every cylinder at distance >= 100 is a cheaper seek than
        # distances in the 40s and beyond.
        spec = oracle_spec(
            n=256,
            t=1,
            cylinders=140,
            head_switch_slots=3.0,
            short=(0.30e-3, 0.20e-3),
            long=(1.00e-3, 1.0e-6),
            boundary=100,
        )
        disk, freemap, allocator = make_stack(spec, self.BLOCK)
        freemap.mark_used(0, disk.geometry.total_sectors)
        # Near decoy at distance 5 whose rotational delay prices it between
        # the far candidate and the short-piece seek ceiling -- so the
        # pre-fix sweep adopts it, then breaks inside the short piece and
        # never reaches distance >= 100.  Gap >= 28 slots puts the decoy at
        # ~1.4-1.6 ms: above the far winner (< 1.3 ms) yet below seeks from
        # distance ~45 onwards.
        seek5 = disk.mechanics.seek_time(0, 5)
        arrival5 = disk.slot_after(seek5)
        decoy = free_run_with_gap_at_least(
            freemap, disk, 5, 0, arrival5, 28.0, self.BLOCK
        )
        # Far winner: a whole free track at distance 110.
        base = disk.geometry.track_start(110, 0)
        freemap.mark_free(base, disk.geometry.sectors_per_track)
        return disk, freemap, allocator, decoy

    def test_scan_reaches_past_the_boundary(self):
        disk, freemap, allocator, decoy = self._build()
        decoy_sector = decoy[1]
        oracle = cheapest_run(disk, freemap, self.BLOCK, self.BLOCK)
        assert oracle is not None
        # Sanity: the scenario really does hide the winner beyond a
        # more-expensive short-piece region.
        far_cylinder = disk.geometry.decompose(oracle[1])[0]
        assert far_cylinder >= 100
        assert price(disk, decoy_sector) > oracle[0]
        chosen = allocator.allocate() * self.BLOCK
        assert price(disk, chosen) <= oracle[0] + 1e-12


@st.composite
def allocation_scenes(draw):
    """A random skewed geometry, head state, and free pattern."""
    n = 8 * draw(st.integers(min_value=2, max_value=6))
    t = draw(st.integers(min_value=1, max_value=3))
    cylinders = draw(st.integers(min_value=1, max_value=6))
    switch_slots = draw(st.floats(min_value=0.0, max_value=12.0))
    block = draw(st.sampled_from([1, 2, 4, 8]))
    spec = oracle_spec(n, t, cylinders, head_switch_slots=switch_slots)
    disk, freemap, allocator = make_stack(spec, block)
    total = disk.geometry.total_sectors
    used = draw(
        st.lists(
            st.integers(min_value=0, max_value=total - 1),
            min_size=total // 2,
            max_size=2 * total,
        )
    )
    for sector in used:
        if freemap.is_free(sector):
            freemap.mark_used(sector, 1)
    disk.head_cylinder = draw(st.integers(min_value=0, max_value=cylinders - 1))
    disk.head_head = draw(st.integers(min_value=0, max_value=t - 1))
    disk.clock.advance(draw(st.floats(min_value=0.0, max_value=0.05)))
    return disk, freemap, allocator, block


@_SETTINGS
@given(allocation_scenes())
def test_nearest_is_cost_minimal(scene):
    """NEAREST == the brute-force minimum over every aligned free run."""
    disk, freemap, allocator, block = scene
    oracle = cheapest_run(disk, freemap, block, block)
    try:
        chosen = allocator.allocate() * block
    except DiskFullError:
        assert oracle is None
        return
    assert oracle is not None
    assert price(disk, chosen) <= oracle[0] + 1e-9
