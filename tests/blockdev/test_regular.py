import pytest

from repro.blockdev.interface import split_blocks
from repro.blockdev.regular import RegularDisk
from repro.disk.disk import Disk
from repro.disk.specs import ST19101


@pytest.fixture
def device():
    return RegularDisk(Disk(ST19101))


class TestIdentityMapping:
    def test_block_count(self, device):
        assert device.num_blocks == device.disk.total_sectors // 8

    def test_capacity(self, device):
        assert device.capacity_bytes == device.disk.geometry.capacity_bytes

    def test_write_read_roundtrip(self, device):
        payload = b"\x42" * 4096
        device.write_block(17, payload)
        data, _ = device.read_block(17)
        assert data == payload

    def test_multi_block_roundtrip(self, device):
        payload = bytes(range(256)) * 48  # 3 blocks
        device.write_blocks(5, 3, payload)
        data, _ = device.read_blocks(5, 3)
        assert data == payload

    def test_blocks_land_at_identity_sectors(self, device):
        device.write_block(10, b"\x01" * 4096)
        assert device.disk.peek(80, 8) == b"\x01" * 4096

    def test_write_none_zero_fills(self, device):
        device.write_block(3, b"\xff" * 4096)
        device.write_block(3)
        data, _ = device.read_block(3)
        assert data == bytes(4096)

    def test_lba_bounds(self, device):
        with pytest.raises(ValueError):
            device.read_block(device.num_blocks)
        with pytest.raises(ValueError):
            device.read_blocks(device.num_blocks - 1, 2)
        with pytest.raises(ValueError):
            device.read_blocks(0, 0)

    def test_data_length_validation(self, device):
        with pytest.raises(ValueError):
            device.write_block(0, b"short")

    def test_unaligned_block_size_rejected(self):
        with pytest.raises(ValueError):
            RegularDisk(Disk(ST19101), block_size=1000)


class TestPartialWrites:
    def test_partial_write_touches_only_covered_sectors(self, device):
        device.write_block(7, b"\xaa" * 4096)
        device.write_partial(7, 1024, b"\xbb" * 1024)
        data, _ = device.read_block(7)
        assert data[:1024] == b"\xaa" * 1024
        assert data[1024:2048] == b"\xbb" * 1024
        assert data[2048:] == b"\xaa" * 2048

    def test_partial_write_cheaper_than_full(self, device):
        full = device.write_block(100, b"\x00" * 4096)
        partial = device.write_partial(100, 0, b"\x00" * 1024)
        assert partial.transfer < full.transfer

    def test_partial_alignment_enforced(self, device):
        with pytest.raises(ValueError):
            device.write_partial(0, 100, b"\x00" * 512)
        with pytest.raises(ValueError):
            device.write_partial(0, 0, b"\x00" * 100)

    def test_partial_overflow_rejected(self, device):
        with pytest.raises(ValueError):
            device.write_partial(0, 3584, b"\x00" * 1024)


class TestIdle:
    def test_idle_advances_clock(self, device):
        before = device.disk.clock.now
        device.idle(1.5)
        assert device.disk.clock.now == pytest.approx(before + 1.5)

    def test_negative_idle_rejected(self, device):
        with pytest.raises(ValueError):
            device.idle(-1.0)


def test_split_blocks_helper():
    data = b"a" * 10
    assert split_blocks(data, 4) == [b"aaaa", b"aaaa", b"aa"]
