"""Queued request scheduling for the programmable disk.

The paper's eager-writing drive has its own processor; this package gives
the simulator the matching concurrency story: a request queue with
pluggable scheduling policies (FIFO, elevator/SCAN, and SATF priced by the
closed-form :class:`~repro.disk.mechanics.DiskMechanics` model), an
overlapped host/disk pipeline that keeps up to ``queue_depth`` requests
outstanding, and queue-emptiness as the idle signal that triggers
background work (scrubbing, compaction, cleaning).

At ``queue_depth=1`` every request is serviced at submit time, so the
disk sees literally the same call sequence as the unscheduled code path
-- all existing figures are byte-identical by construction.
"""

from repro.sched.idle import IdleManager
from repro.sched.pipeline import HostPipeline
from repro.sched.policies import (
    POLICIES,
    ElevatorPolicy,
    FIFOPolicy,
    SATFPolicy,
    SchedulingPolicy,
    make_policy,
)
from repro.sched.scheduler import DiskRequest, DiskScheduler

__all__ = [
    "DiskRequest",
    "DiskScheduler",
    "ElevatorPolicy",
    "FIFOPolicy",
    "HostPipeline",
    "IdleManager",
    "POLICIES",
    "SATFPolicy",
    "SchedulingPolicy",
    "make_policy",
]
