"""Table 2: the update-in-place vs virtual-log gap across technology
generations (HP+SPARC -> Seagate+SPARC -> Seagate+UltraSPARC)."""

from repro.harness import experiments
from repro.harness.report import format_table

from .conftest import full_scale, run_once


def test_table2(benchmark):
    updates, warmup = (400, 150) if full_scale() else (150, 50)

    table = run_once(
        benchmark,
        lambda: experiments.table2(
            utilization=0.8, updates=updates, warmup=warmup
        ),
    )

    print()
    rows = [
        [
            platform,
            entry["update_in_place_ms"],
            entry["virtual_log_ms"],
            f"{entry['speedup']:.1f}x",
        ]
        for platform, entry in table.items()
    ]
    print(
        format_table(
            ["platform", "in-place (ms)", "virtual log (ms)", "speedup"],
            rows,
            title="Table 2: speedup across platforms (random sync 4 KB "
            "updates @ 80% utilization)",
        )
    )

    hp_sparc = table["hp97560+sparc10"]["speedup"]
    sg_sparc = table["st19101+sparc10"]["speedup"]
    sg_ultra = table["st19101+ultra170"]["speedup"]
    # The paper's progression: 2.6x -> 5.1x -> 9.9x.  We assert the
    # monotone widening and rough magnitudes.
    assert sg_ultra > sg_sparc >= hp_sparc * 0.8
    assert hp_sparc > 1.5
    assert sg_ultra > 4.0
