import pytest

from repro.vlog.imap import IndirectionMap


@pytest.fixture
def imap():
    return IndirectionMap(2500, block_size=4096)


class TestMapping:
    def test_starts_unmapped(self, imap):
        assert imap.get(0) is None
        assert imap.mapped_count() == 0

    def test_set_get(self, imap):
        assert imap.set(5, 123) is None
        assert imap.get(5) == 123

    def test_set_returns_displaced(self, imap):
        imap.set(5, 123)
        assert imap.set(5, 456) == 123
        assert imap.get(5) == 456

    def test_clear(self, imap):
        imap.set(7, 99)
        assert imap.clear(7) == 99
        assert imap.get(7) is None
        assert imap.clear(7) is None

    def test_bounds(self, imap):
        with pytest.raises(ValueError):
            imap.get(2500)
        with pytest.raises(ValueError):
            imap.set(-1, 0)

    def test_unencodable_physical_rejected(self, imap):
        with pytest.raises(ValueError):
            imap.set(0, 0xFFFFFFFF)

    def test_items_iterates_mapped_only(self, imap):
        imap.set(1, 10)
        imap.set(100, 20)
        assert sorted(imap.items()) == [(1, 10), (100, 20)]


class TestChunking:
    def test_chunk_count(self, imap):
        assert imap.num_chunks == -(-2500 // imap.chunk_capacity)

    def test_chunk_id_of(self, imap):
        cap = imap.chunk_capacity
        assert imap.chunk_id_of(0) == 0
        assert imap.chunk_id_of(cap - 1) == 0
        assert imap.chunk_id_of(cap) == 1

    def test_chunk_entries_length(self, imap):
        cap = imap.chunk_capacity
        assert len(imap.chunk_entries(0)) == cap
        # Last chunk may be short.
        last = imap.num_chunks - 1
        assert len(imap.chunk_entries(last)) == 2500 - last * cap

    def test_load_chunk_roundtrip(self, imap):
        imap.set(3, 42)
        entries = imap.chunk_entries(0)
        imap.clear(3)
        imap.load_chunk(0, entries)
        assert imap.get(3) == 42

    def test_load_chunk_length_validated(self, imap):
        with pytest.raises(ValueError):
            imap.load_chunk(0, [1, 2, 3])

    def test_load_chunks_resets_missing(self, imap):
        cap = imap.chunk_capacity
        imap.set(3, 42)
        imap.set(cap + 1, 43)
        chunk0 = imap.chunk_entries(0)
        imap.load_chunks({0: chunk0})
        assert imap.get(3) == 42
        assert imap.get(cap + 1) is None
