"""The standard block-device interface.

A device exposes ``num_blocks`` logical blocks of ``block_size`` bytes.
Reads return data plus a latency :class:`~repro.sim.stats.Breakdown`; writes
return the breakdown.  Multi-block variants exist so log-structured file
systems can hand whole segments to the device in one command, as the MIT
logical disk does.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Tuple

from repro.sim.stats import Breakdown


class BlockDevice(abc.ABC):
    """Abstract logical block device."""

    block_size: int
    num_blocks: int

    @abc.abstractmethod
    def read_block(self, lba: int) -> Tuple[bytes, Breakdown]:
        """Read one logical block."""

    @abc.abstractmethod
    def write_block(self, lba: int, data: Optional[bytes] = None) -> Breakdown:
        """Write one logical block (zeros when ``data`` is omitted)."""

    @abc.abstractmethod
    def read_blocks(self, lba: int, count: int) -> Tuple[bytes, Breakdown]:
        """Read ``count`` logically contiguous blocks in one command."""

    @abc.abstractmethod
    def write_blocks(
        self, lba: int, count: int, data: Optional[bytes] = None
    ) -> Breakdown:
        """Write ``count`` logically contiguous blocks in one command."""

    @abc.abstractmethod
    def write_partial(self, lba: int, offset: int, data: bytes) -> Breakdown:
        """Write a sector-aligned byte range inside one block.

        Used for UFS fragment writes (1 KB pieces of a 4 KB block).  An
        update-in-place disk writes just the covered sectors; a virtual log
        disk must read-modify-write the whole physical block -- the
        "internal fragmentation ... biases against the performance of UFS
        running on the VLD" of Section 4.2.
        """

    @abc.abstractmethod
    def idle(self, seconds: float) -> None:
        """Let idle time pass at the device.

        The regular disk just waits; the Virtual Log Disk spends the time
        compacting free space with the drive's internal bandwidth
        (Section 5.5).  Either way the clock ends up ``seconds`` later.
        Every device must implement this -- a concrete body that raised
        at call time let subclasses silently miss it.
        """

    def check_lba(self, lba: int, count: int = 1) -> None:
        if count <= 0:
            raise ValueError("count must be positive")
        if not (0 <= lba and lba + count <= self.num_blocks):
            raise ValueError(
                f"blocks [{lba}, {lba + count}) outside device of "
                f"{self.num_blocks} blocks"
            )

    def check_data(self, data: Optional[bytes], count: int) -> bytes:
        """Validate/normalise a data buffer for ``count`` blocks."""
        expected = count * self.block_size
        if data is None:
            return bytes(expected)
        if len(data) != expected:
            raise ValueError(f"data length {len(data)} != {expected}")
        return data

    @property
    def capacity_bytes(self) -> int:
        return self.num_blocks * self.block_size


def split_blocks(data: bytes, block_size: int) -> List[bytes]:
    """Split a buffer into block-size pieces (the last may be short)."""
    return [data[i : i + block_size] for i in range(0, len(data), block_size)]
