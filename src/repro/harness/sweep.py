"""Parallel sweep execution for the experiment harness.

Every table/figure of the paper's evaluation is an embarrassingly
parallel grid: independent (stack, workload-size) or (burst, idle)
points whose results are reassembled into curves.  Experiments declare
those grids as lists of :class:`SweepPoint` -- a *pure, picklable* spec
naming a module-level point function, its JSON-canonicalizable
parameters, and an explicit seed -- and :func:`run_sweep` executes them:

* **in parallel** across a ``concurrent.futures.ProcessPoolExecutor``
  (``fork`` start method, so the workers share the already-imported
  simulator) when ``jobs > 1`` -- points are *batched* into a few
  chunks per worker (round-robin, so curves with cost gradients stay
  balanced) because a typical point computes for well under the
  per-task fork/IPC overhead; one task per point made ``jobs=4``
  *slower* than serial,
* **inline** when ``jobs == 1``, only one point misses the cache, or
  the platform lacks ``fork``,
* **not at all** for points whose result is already in the
  content-addressed :class:`~repro.harness.cache.ResultCache`.

Results come back in point order regardless of completion order, each
carrying its compute time and whether it was a cache hit.  Values are
canonicalized through a JSON round-trip on every path, so ``jobs=1``,
``jobs=N``, and warm-cache runs return *exactly* equal structures.

Determinism contract: a point function must derive all randomness from
its ``seed`` keyword and its parameters -- never from process-global
state -- so that the same :class:`SweepPoint` yields the same value in
any process.  The test suite pins this by comparing ``jobs=4`` against
``jobs=1`` for every experiment.

The process-wide defaults (:func:`set_default_jobs`,
:func:`set_default_cache`) mirror the interposer defaults in
:mod:`repro.harness.configs`: the CLI sets them once and every
experiment picks them up without new parameters.
"""

from __future__ import annotations

import importlib
import multiprocessing
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.harness.cache import ResultCache, canonicalize


class DroppedPointWarning(UserWarning):
    """A sweep point produced no result (e.g. the workload ran out of
    space) and was dropped from its curve."""


def warn_dropped(experiment: str, **detail: Any) -> None:
    """Surface a dropped point so truncated curves are visible."""
    info = ", ".join(f"{k}={v!r}" for k, v in sorted(detail.items()))
    warnings.warn(
        f"{experiment}: dropped point ({info})",
        DroppedPointWarning,
        stacklevel=3,
    )


@dataclass(frozen=True)
class SweepPoint:
    """One independent grid point.

    ``fn_name`` is ``"package.module:function"``; the function must be
    module-level (picklable by reference) and accept ``seed`` plus the
    ``params`` keys as keyword arguments, returning a JSON-serializable
    value.  ``params`` values must themselves be JSON-canonicalizable
    (they feed the cache key).
    """

    fn_name: str
    params: Dict[str, Any]
    seed: int = 0


@dataclass
class SweepResult:
    """One point's outcome, in point order."""

    point: SweepPoint
    value: Any
    seconds: float  # compute time (0.0 for cache hits)
    cached: bool


@dataclass
class SweepStats:
    """Counters accumulated across :func:`run_sweep` calls."""

    points: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    submissions: int = 0  # points handed to the process pool
    pool_tasks: int = 0  # chunks actually submitted (several points each)
    inline_runs: int = 0  # points executed in this process
    compute_seconds: float = 0.0  # summed per-point compute time
    wall_seconds: float = 0.0

    def add(self, other: "SweepStats") -> None:
        self.points += other.points
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.submissions += other.submissions
        self.pool_tasks += other.pool_tasks
        self.inline_runs += other.inline_runs
        self.compute_seconds += other.compute_seconds
        self.wall_seconds += other.wall_seconds

    def summary(self) -> str:
        return (
            f"{self.points} points: {self.cache_hits} cached, "
            f"{self.submissions} parallel (in {self.pool_tasks} tasks), "
            f"{self.inline_runs} inline; "
            f"compute {self.compute_seconds:.1f}s in "
            f"{self.wall_seconds:.1f}s wall"
        )


#: Running totals since the last :func:`reset_stats` (the CLI's
#: ``--cache-stats`` report).
STATS = SweepStats()

_DEFAULT_JOBS = 1
_DEFAULT_CACHE: Optional[ResultCache] = None
_UNSET = object()


def set_default_jobs(jobs: int) -> None:
    global _DEFAULT_JOBS
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    _DEFAULT_JOBS = jobs


def default_jobs() -> int:
    return _DEFAULT_JOBS


def set_default_cache(cache: Optional[ResultCache]) -> None:
    global _DEFAULT_CACHE
    _DEFAULT_CACHE = cache


def default_cache() -> Optional[ResultCache]:
    return _DEFAULT_CACHE


@contextmanager
def configured(jobs: Optional[int] = None, cache: Any = _UNSET):
    """Temporarily override the process-wide sweep defaults."""
    saved = (_DEFAULT_JOBS, _DEFAULT_CACHE)
    try:
        if jobs is not None:
            set_default_jobs(jobs)
        if cache is not _UNSET:
            set_default_cache(cache)
        yield
    finally:
        set_default_jobs(saved[0])
        set_default_cache(saved[1])


def reset_stats() -> SweepStats:
    """Return the accumulated stats and start a fresh tally."""
    global STATS
    drained = STATS
    STATS = SweepStats()
    return drained


def fork_available() -> bool:
    """Whether the parallel path can run at all on this platform."""
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - defensive
        return False


def resolve_point_fn(fn_name: str) -> Callable[..., Any]:
    module_name, sep, attr = fn_name.partition(":")
    if not sep or not attr:
        raise ValueError(
            f"fn_name must look like 'pkg.module:function', got {fn_name!r}"
        )
    return getattr(importlib.import_module(module_name), attr)


def _execute_point(point: SweepPoint):
    """Worker body: run one point, timing it.  Top-level so the fork
    workers can unpickle it by reference."""
    start = time.perf_counter()
    value = resolve_point_fn(point.fn_name)(seed=point.seed, **point.params)
    return value, time.perf_counter() - start


def _execute_chunk(chunk: List[SweepPoint]):
    """Worker body for a batch of points: one task's fork/IPC overhead
    amortizes across the whole chunk."""
    return [_execute_point(point) for point in chunk]


def run_sweep(
    points: Sequence[SweepPoint],
    jobs: Optional[int] = None,
    cache: Any = _UNSET,
) -> List[SweepResult]:
    """Execute a grid of points; results come back in point order.

    ``jobs``/``cache`` default to the process-wide settings.  Cache hits
    are never submitted to the executor; if at most one point misses,
    the sweep runs inline (a pool would cost more than it saves).
    """
    jobs = _DEFAULT_JOBS if jobs is None else jobs
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    use_cache: Optional[ResultCache] = (
        _DEFAULT_CACHE if cache is _UNSET else cache
    )
    stats = SweepStats(points=len(points))
    wall_start = time.perf_counter()

    results: List[Optional[SweepResult]] = [None] * len(points)
    pending: List[int] = []
    for index, point in enumerate(points):
        if use_cache is not None:
            hit, value = use_cache.get(
                point.fn_name, point.params, point.seed
            )
            if hit:
                results[index] = SweepResult(point, value, 0.0, True)
                stats.cache_hits += 1
                continue
            stats.cache_misses += 1
        pending.append(index)

    def finish(index: int, value: Any, seconds: float) -> None:
        point = points[index]
        if use_cache is not None:
            value = use_cache.put(
                point.fn_name, point.params, point.seed, value
            )
        else:
            value = canonicalize(value)
        results[index] = SweepResult(point, value, seconds, False)
        stats.compute_seconds += seconds

    parallel = jobs > 1 and len(pending) > 1 and fork_available()
    if parallel:
        context = multiprocessing.get_context("fork")
        workers = min(jobs, len(pending))
        # Coarsen the work units: several grid points per submitted task.
        # Two chunks per worker amortizes the per-task overhead while
        # leaving enough slack to absorb uneven point costs; round-robin
        # assignment keeps chunks balanced when cost trends along the
        # grid (deeper queues, larger files).
        chunk_count = min(len(pending), workers * 2)
        chunks = [pending[offset::chunk_count] for offset in range(chunk_count)]
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=context
        ) as pool:
            futures = [
                (
                    chunk,
                    pool.submit(
                        _execute_chunk, [points[index] for index in chunk]
                    ),
                )
                for chunk in chunks
            ]
            stats.submissions += len(pending)
            stats.pool_tasks += len(futures)
            for chunk, future in futures:
                for index, (value, seconds) in zip(chunk, future.result()):
                    finish(index, value, seconds)
    else:
        for index in pending:
            value, seconds = _execute_point(points[index])
            stats.inline_runs += 1
            finish(index, value, seconds)

    stats.wall_seconds = time.perf_counter() - wall_start
    STATS.add(stats)
    assert all(result is not None for result in results)
    return results  # type: ignore[return-value]


def sweep_values(
    points: Sequence[SweepPoint],
    jobs: Optional[int] = None,
    cache: Any = _UNSET,
) -> List[Any]:
    """:func:`run_sweep`, keeping only the values (the common case)."""
    return [r.value for r in run_sweep(points, jobs=jobs, cache=cache)]
