"""The depth-1 identity pin: engine path == synchronous path, bytewise.

The event engine refactor is only allowed to *reorganize* time, not to
change it.  The proof obligation: one closed-loop host at queue depth 1
under fifo must replay the synchronous
:func:`~repro.harness.runner.simulate_queued_workload` run exactly --
the same disk calls, in the same order, at the same clock instants, and
therefore bit-identical figure outputs.  These tests diff both: the full
``(op, sector, count, start, end)`` disk call sequence via a recording
shim on :class:`~repro.disk.disk.Disk`, and every scalar the figure
pipeline consumes.

CI runs this file as the dedicated figure-identity gate.
"""

import pytest

from repro.disk.disk import Disk
from repro.disk.specs import DISKS
from repro.harness.experiments import _point_multihost, _point_qdepth
from repro.harness.runner import simulate_queued_workload
from repro.hosts.multihost import run_multihost

SPEC = DISKS["st19101"]
REQUESTS = 120
WORKLOADS = ["random-update", "sequential", "mixed"]

#: Scalars produced by both paths and consumed by the figures.
FIGURE_KEYS = [
    "elapsed_seconds",
    "mean_service_ms",
    "p50_service_ms",
    "p95_service_ms",
    "p99_service_ms",
    "p999_service_ms",
    "mean_response_ms",
    "p99_response_ms",
    "p999_response_ms",
    "requests_per_second",
    "max_outstanding",
]


@pytest.fixture
def record_disk_calls(monkeypatch):
    """Shim Disk.read/write to log (op, sector, count, start, end)."""
    calls = []
    real_read, real_write = Disk.read, Disk.write

    def read(self, sector, count=1, *args, **kwargs):
        start = self.clock.now
        result = real_read(self, sector, count, *args, **kwargs)
        calls.append(("read", sector, count, start, self.clock.now))
        return result

    def write(self, sector, count=1, *args, **kwargs):
        start = self.clock.now
        result = real_write(self, sector, count, *args, **kwargs)
        calls.append(("write", sector, count, start, self.clock.now))
        return result

    monkeypatch.setattr(Disk, "read", read)
    monkeypatch.setattr(Disk, "write", write)
    return calls


@pytest.mark.parametrize("workload", WORKLOADS)
def test_disk_call_sequence_identical(record_disk_calls, workload):
    """The strongest form: every disk call, in order, with its exact
    service interval, matches between the two paths."""
    simulate_queued_workload(
        SPEC,
        queue_depth=1,
        policy="fifo",
        workload=workload,
        requests=REQUESTS,
        seed=3,
    )
    synchronous = list(record_disk_calls)
    record_disk_calls.clear()
    run_multihost(
        SPEC,
        hosts=1,
        disks=1,
        requests_per_host=REQUESTS,
        workload=workload,
        policy="fifo",
        seed=3,
    )
    engine = list(record_disk_calls)
    assert len(synchronous) == REQUESTS
    assert engine == synchronous  # op, sector, count, start, end -- all of it


@pytest.mark.parametrize("workload", WORKLOADS)
def test_figure_scalars_identical(workload):
    """Everything the qdepth/multihost figures plot is byte-identical
    (plain ==, no tolerance) at the depth-1 fifo point."""
    synchronous = simulate_queued_workload(
        SPEC,
        queue_depth=1,
        policy="fifo",
        workload=workload,
        requests=REQUESTS,
        seed=3,
    )
    engine = run_multihost(
        SPEC,
        hosts=1,
        disks=1,
        requests_per_host=REQUESTS,
        workload=workload,
        policy="fifo",
        seed=3,
    )
    for key in FIGURE_KEYS:
        assert engine[key] == synchronous[key], key


def test_sweep_point_functions_agree():
    """The exact functions the figures sweep: the qdepth point at depth 1
    and the multihost point at one host report the same scalars."""
    qdepth = _point_qdepth(
        seed=3,
        disk_name="st19101",
        queue_depth=1,
        policy="fifo",
        workload="random-update",
        requests=REQUESTS,
        think_us=200.0,
    )
    multihost = _point_multihost(
        seed=3,
        disk_name="st19101",
        hosts=1,
        disks=1,
        requests_per_host=REQUESTS,
        workload="random-update",
        policy="fifo",
        think_us=200.0,
    )
    for key in set(FIGURE_KEYS) & set(qdepth):
        assert multihost[key] == qdepth[key], key


def test_nvm_disabled_builds_no_wal_layer():
    """NVM off must be *free*: with the default nvm setting, neither
    build_device_stack nor the harness config path constructs an NVWal
    anywhere in the device chain -- the existing figures cannot change
    because the tier's code never runs.  (The byte-identity of the full
    quick figure set is checked by CI regenerating the harness output;
    this pins the structural half locally.)"""
    from repro.blockdev.interpose import build_device_stack
    from repro.harness import configs
    from repro.nvm import NVWal

    assert configs.default_nvm() is None  # no process-global override

    def layers(device):
        seen = []
        while device is not None and len(seen) < 12:
            seen.append(device)
            device = getattr(device, "inner", None)
        return seen

    disk = Disk(DISKS["st19101"], num_cylinders=4)
    stack = build_device_stack(disk, "vld")
    assert not any(isinstance(layer, NVWal) for layer in layers(stack))

    # ... and the assertion has teeth: asking for the tier produces it.
    disk2 = Disk(DISKS["st19101"], num_cylinders=4)
    armed = build_device_stack(disk2, "vld", nvm="nvdimm")
    assert any(isinstance(layer, NVWal) for layer in layers(armed))
