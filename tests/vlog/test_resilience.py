"""The media-fault resilience layer: checksums, retries, quarantine,
the scrubber, vlfsck, and degraded recovery."""

import random

import pytest

from repro.blockdev.interpose import DeviceCrashed, DiskFaultInjector
from repro.disk.disk import Disk
from repro.disk.freemap import FreeSpaceMap, ReferenceFreeSpaceMap
from repro.disk.specs import ST19101
from repro.sim.stats import Breakdown
from repro.vlog.allocator import DiskFullError
from repro.vlog.resilience import (
    ChecksumStore,
    MediaError,
    RetryPolicy,
    silently_corrupt,
    vlfsck,
)
from repro.vlog.vld import VirtualLogDisk


@pytest.fixture
def disk():
    return Disk(ST19101, num_cylinders=2)


@pytest.fixture
def vld(disk):
    return VirtualLogDisk(disk)


def _payload(tag: int, size: int = 4096) -> bytes:
    return bytes([tag % 251]) * size


def _fill(vld, n=12):
    for lba in range(n):
        vld.write_block(lba, _payload(lba))


# ======================================================================
# ChecksumStore
# ======================================================================

class TestChecksumStore:
    def test_record_verify_roundtrip(self):
        store = ChecksumStore(512)
        data = bytes(range(256)) * 4  # two sectors
        store.record(40, data)
        assert len(store) == 2
        assert store.verify(40, 2, data) == []

    def test_mismatch_names_the_bad_sector(self):
        store = ChecksumStore(512)
        data = b"\x11" * 1024
        store.record(40, data)
        tampered = data[:512] + b"\x22" * 512
        assert store.verify(40, 2, tampered) == [41]

    def test_unrecorded_sectors_verify_clean(self):
        store = ChecksumStore(512)
        assert store.verify(0, 4, bytes(2048)) == []

    def test_forget(self):
        store = ChecksumStore(512)
        store.record(7, b"\x33" * 512)
        store.forget(7)
        assert not store.recorded(7)
        assert store.verify(7, 1, bytes(512)) == []

    def test_disk_write_records_checksums(self, vld, disk):
        vld.write_block(0, _payload(1))
        physical = vld.imap.get(0)
        sector = physical * vld.sectors_per_block
        assert disk.checksums.recorded(sector)
        raw = disk.peek(sector, vld.sectors_per_block)
        assert disk.checksums.verify(sector, vld.sectors_per_block, raw) == []

    def test_silent_corruption_is_detected(self, vld, disk):
        vld.write_block(0, _payload(1))
        sector = vld.imap.get(0) * vld.sectors_per_block
        silently_corrupt(disk, sector)
        raw = disk.peek(sector, 1)
        assert disk.checksums.verify(sector, 1, raw) == [sector]


# ======================================================================
# RetryPolicy + the retried read path
# ======================================================================

class TestRetryPolicy:
    def test_backoff_schedule_is_geometric(self):
        policy = RetryPolicy(max_attempts=4, initial_backoff=0.002,
                             backoff_factor=2.0)
        assert policy.backoff(1) == pytest.approx(0.002)
        assert policy.backoff(2) == pytest.approx(0.004)
        assert policy.backoff(3) == pytest.approx(0.008)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(initial_backoff=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)


class TestRetriedReads:
    def test_transient_error_is_retried_to_success(self, vld, disk):
        _fill(vld, 4)
        sector = vld.imap.get(2) * vld.sectors_per_block
        injector = DiskFaultInjector(
            flaky_sectors={sector: 1.0}, seed=3
        ).install(disk)
        with pytest.raises(MediaError):
            vld.read_block(2)
        res = vld.resilience
        assert res.retries == res.policy.max_attempts - 1
        assert res.media_errors == 1
        assert res.suspects == [sector]
        # The fault clears (it was transient): the next read succeeds.
        injector.flaky_sectors[sector] = 0.0
        data, _ = vld.read_block(2)
        assert data == _payload(2)

    def test_media_error_carries_structured_fields(self, vld, disk):
        _fill(vld, 4)
        sector = vld.imap.get(1) * vld.sectors_per_block
        DiskFaultInjector(bad_sectors={sector}).install(disk)
        with pytest.raises(MediaError) as excinfo:
            vld.read_block(1)
        error = excinfo.value
        assert error.op == "read"
        assert error.sector == sector
        assert error.attempt == vld.resilience.policy.max_attempts
        assert error.__cause__ is not None  # chained injected fault

    def test_backoff_charged_as_locate_time(self, vld, disk):
        _fill(vld, 4)
        sector = vld.imap.get(0) * vld.sectors_per_block
        DiskFaultInjector(bad_sectors={sector}).install(disk)
        breakdown = Breakdown()
        before = disk.clock.now
        policy = vld.resilience.policy
        with pytest.raises(MediaError):
            vld.resilience.read_sectors(sector, 1, breakdown)
        expected_backoff = sum(
            policy.backoff(a) for a in range(1, policy.max_attempts)
        )
        assert breakdown.locate == pytest.approx(expected_backoff)
        assert disk.clock.now >= before + expected_backoff

    def test_checksum_failure_counts_and_raises(self, vld, disk):
        _fill(vld, 4)
        sector = vld.imap.get(3) * vld.sectors_per_block
        silently_corrupt(disk, sector)
        with pytest.raises(MediaError):
            vld.read_block(3)
        res = vld.resilience
        assert res.checksum_failures >= 1
        assert res.media_errors == 1

    def test_device_crash_is_never_retried(self, vld, disk):
        _fill(vld, 2)
        DiskFaultInjector(crash_after_writes=1).install(disk)
        disk.fault_injector.crashed = True
        with pytest.raises(DeviceCrashed):
            vld.read_block(0)
        assert vld.resilience.retries == 0

    def test_untimed_reads_cost_no_simulated_time(self, vld, disk):
        _fill(vld, 2)
        sector = vld.imap.get(0) * vld.sectors_per_block
        before = disk.clock.now
        data = vld.resilience.read_sectors(
            sector, vld.sectors_per_block, timed=False
        )
        assert data == _payload(0)
        assert disk.clock.now == before


# ======================================================================
# Quarantine: free map + table + persistence
# ======================================================================

class TestFreemapQuarantine:
    def test_quarantined_sector_reads_used(self, disk):
        freemap = FreeSpaceMap(disk.geometry)
        freemap.mark_free(0, disk.total_sectors)
        freemap.quarantine(100)
        assert not freemap.is_free(100)
        assert freemap.is_quarantined(100)
        assert freemap.quarantined_sectors() == [100]

    def test_blanket_mark_free_preserves_quarantine(self, disk):
        freemap = FreeSpaceMap(disk.geometry)
        freemap.quarantine(100)
        freemap.quarantine(5000)
        freemap.mark_free(0, disk.total_sectors)
        assert not freemap.is_free(100)
        assert not freemap.is_free(5000)
        assert freemap.is_free(101)

    def test_set_quarantined_replaces(self, disk):
        freemap = FreeSpaceMap(disk.geometry)
        freemap.mark_free(0, disk.total_sectors)
        freemap.quarantine(7)
        freemap.set_quarantined([9, 11])
        assert freemap.quarantined_sectors() == [9, 11]
        # Sector 7 is no longer quarantined (though still marked used
        # until the caller's space rebuild frees it).
        assert not freemap.is_quarantined(7)
        freemap.mark_free(7, 1)
        assert freemap.is_free(7)

    def test_reference_implementation_agrees(self, disk):
        rng = random.Random(11)
        fast = FreeSpaceMap(disk.geometry)
        slow = ReferenceFreeSpaceMap(disk.geometry)
        for fm in (fast, slow):
            fm.mark_free(0, disk.total_sectors)
        for _ in range(200):
            sector = rng.randrange(disk.total_sectors - 16)
            count = rng.randrange(1, 16)
            action = rng.random()
            for fm in (fast, slow):
                if action < 0.4:
                    fm.mark_used(sector, count)
                elif action < 0.8:
                    fm.mark_free(sector, count)
                else:
                    fm.quarantine(sector)
        assert fast.quarantined_sectors() == slow.quarantined_sectors()
        for sector in range(disk.total_sectors):
            assert fast.is_free(sector) == slow.is_free(sector)
            assert fast.is_quarantined(sector) == slow.is_quarantined(sector)

    def test_allocator_never_hands_out_quarantined_blocks(self):
        disk = Disk(ST19101, num_cylinders=1)
        vld = VirtualLogDisk(disk)
        block = vld.allocator.allocate()
        vld.allocator.free_block(block)
        for i in range(vld.sectors_per_block):
            vld.resilience.quarantine_sector(block * vld.sectors_per_block + i)
        allocated = []
        try:
            while True:
                allocated.append(vld.allocator.allocate())
        except DiskFullError:
            pass
        assert block not in allocated
        assert len(allocated) > 0


class TestQuarantinePersistence:
    def test_quarantine_survives_crash_and_recovery(self, vld, disk):
        _fill(vld, 8)
        victim = disk.total_sectors - 5  # a free sector far from the data
        assert vld.resilience.quarantine_sector(victim)
        vld.resilience.persist_quarantine()
        vld.crash()
        outcome = vld.recover()
        assert victim in vld.resilience.quarantine
        assert vld.freemap.is_quarantined(victim)
        assert outcome.quarantined_sectors == 1
        for lba in range(8):
            data, _ = vld.read_block(lba)
            assert data == _payload(lba)
        assert vlfsck(vld, deep=True).ok

    def test_unpersisted_quarantine_is_volatile(self, vld):
        _fill(vld, 4)
        victim = vld.disk.total_sectors - 5
        vld.resilience.quarantine_sector(victim)
        vld.crash()
        vld.recover()
        assert victim not in vld.resilience.quarantine
        assert not vld.freemap.is_quarantined(victim)

    def test_persist_is_noop_when_clean(self, vld):
        _fill(vld, 2)
        tail_before = vld.vlog.tail
        cost = vld.resilience.persist_quarantine()
        assert cost.total == 0.0
        assert vld.vlog.tail == tail_before


# ======================================================================
# The scrubber
# ======================================================================

class TestScrubber:
    def test_migrates_live_data_off_flaky_sector(self, vld, disk):
        _fill(vld, 10)
        old_block = vld.imap.get(3)
        sector = old_block * vld.sectors_per_block
        injector = DiskFaultInjector(
            flaky_sectors={sector: 1.0}, seed=5
        ).install(disk)
        with pytest.raises(MediaError):
            vld.read_block(3)
        injector.flaky_sectors[sector] = 0.0  # transient fault clears
        vld.idle(0.5)
        scrubber = vld.resilience.scrubber
        assert scrubber.blocks_migrated == 1
        assert vld.imap.get(3) != old_block
        assert sector in vld.resilience.quarantine
        data, _ = vld.read_block(3)
        assert data == _payload(3)
        assert vlfsck(vld, deep=True).ok

    def test_salvage_retries_through_marginal_sector(self, vld, disk):
        """A sector that fails most -- but not all -- read attempts is
        still salvaged: the scrubber spends several retry rounds."""
        _fill(vld, 10)
        old_block = vld.imap.get(5)
        sector = old_block * vld.sectors_per_block
        DiskFaultInjector(flaky_sectors={sector: 0.8}, seed=9).install(disk)
        vld.resilience.note_suspect(sector)
        vld.idle(1.0)
        assert vld.resilience.scrubber.blocks_migrated == 1
        assert vld.imap.get(5) != old_block
        data, _ = vld.read_block(5)
        assert data == _payload(5)

    def test_unreadable_block_is_reported_lost_not_zeroed(self, vld, disk):
        _fill(vld, 10)
        old_block = vld.imap.get(4)
        sector = old_block * vld.sectors_per_block
        DiskFaultInjector(bad_sectors={sector}).install(disk)
        with pytest.raises(MediaError):
            vld.read_block(4)
        vld.idle(1.0)
        scrubber = vld.resilience.scrubber
        assert scrubber.lost_sectors == [sector]
        # The mapping stays: the host keeps seeing the error, never zeros.
        assert vld.imap.get(4) == old_block
        with pytest.raises(MediaError):
            vld.read_block(4)

    def test_relocates_live_map_record(self, vld, disk):
        _fill(vld, 4)
        record_block = vld.vlog.tail
        map_spb = vld.vlog.sectors_per_block
        sector = record_block * map_spb
        vld.resilience.note_suspect(sector)
        relocations_before = vld.vlog.relocations
        vld.idle(0.5)
        assert vld.resilience.scrubber.records_relocated == 1
        assert vld.vlog.relocations > relocations_before
        assert sector in vld.resilience.quarantine
        assert vlfsck(vld, deep=True).ok

    def test_free_suspect_is_just_quarantined(self, vld):
        _fill(vld, 2)
        victim = vld.disk.total_sectors - 3
        vld.resilience.note_suspect(victim)
        vld.idle(0.5)
        assert victim in vld.resilience.quarantine
        assert vld.resilience.scrubber.sectors_quarantined == 1
        assert vlfsck(vld).ok

    def test_idle_without_suspects_never_pays_for_scrubbing(self, vld):
        _fill(vld, 2)
        assert not vld.resilience.scrubber.pending
        vld.idle(0.1)
        assert vld.resilience.scrubber.sectors_scrubbed == 0


# ======================================================================
# vlfsck
# ======================================================================

class TestVlfsck:
    def test_clean_on_healthy_device(self, vld):
        _fill(vld, 16)
        vld.trim(3)
        vld.idle(0.2)
        report = vlfsck(vld, deep=True)
        assert report.ok, report.summary()
        assert report.checked_blocks == 15
        assert report.checked_records > 0

    def test_detects_freemap_drift(self, vld):
        _fill(vld, 6)
        physical = vld.imap.get(2)
        vld.freemap.mark_free(
            physical * vld.sectors_per_block, vld.sectors_per_block
        )
        report = vlfsck(vld)
        assert any(v.kind == "freemap" for v in report.violations)

    def test_detects_aliased_mapping(self, vld):
        _fill(vld, 6)
        vld.imap.set(0, vld.imap.get(1))
        report = vlfsck(vld)
        assert any(v.kind == "map-aliased" for v in report.violations)

    def test_detects_desynchronised_reverse_map(self, vld):
        _fill(vld, 6)
        vld.reverse.pop(vld.imap.get(5))
        report = vlfsck(vld)
        assert any(v.kind == "reverse-map" for v in report.violations)

    def test_deep_mode_catches_silent_corruption(self, vld, disk):
        _fill(vld, 6)
        sector = vld.imap.get(1) * vld.sectors_per_block
        silently_corrupt(disk, sector)
        assert vlfsck(vld).ok  # shallow pass cannot see it
        report = vlfsck(vld, deep=True)
        assert any(v.kind == "data-checksum" for v in report.violations)

    def test_deep_mode_catches_stale_live_record(self, vld, disk):
        _fill(vld, 6)
        # Mutate the map behind the log's back: the live record on disk
        # no longer carries the chunk's current contents.
        vld.imap._entries[0] ^= 1
        report = vlfsck(vld, deep=True)
        assert not report.ok


# ======================================================================
# Degraded recovery: reconstruction from all valid records
# ======================================================================

class TestDegradedRecovery:
    def test_unreadable_interior_record_escalates_to_reconstruction(
        self, vld, disk
    ):
        # One write into a *second* map chunk: its (only) record stays
        # interior in the traversal once chunk-0 appends pile on top.
        other_chunk_lba = 120  # chunk 1 (112 entries per 512 B chunk)
        vld.write_block(other_chunk_lba, _payload(99))
        interior = vld.vlog.tail
        _fill(vld, 8)
        bad = interior * vld.vlog.sectors_per_block
        vld.crash()
        DiskFaultInjector(bad_sectors={bad}).install(disk)
        outcome = vld.recover()
        assert outcome.degraded
        assert outcome.reconstructed
        # Chunk 0 has younger readable records: fully intact.
        for lba in range(8):
            data, _ = vld.read_block(lba)
            assert data == _payload(lba)
        # Chunk 1's only record died with the sector: exactly that one
        # chunk's latest update is lost (reads as never written) -- the
        # paper's bound, never the tree behind it.
        data, _ = vld.read_block(other_chunk_lba)
        assert data == bytes(vld.block_size)
        assert vlfsck(vld).ok

    def test_resilient_scan_survives_flaky_media(self, vld, disk):
        _fill(vld, 8)
        vld.crash()
        rng = random.Random(2)
        flaky = {
            rng.randrange(disk.total_sectors): 0.4 for _ in range(20)
        }
        DiskFaultInjector(flaky_sectors=flaky, seed=2).install(disk)
        outcome = vld.recover()
        assert outcome.scanned
        for lba in range(8):
            data, _ = vld.read_block(lba)
            assert data == _payload(lba)


# ======================================================================
# Figure identity: resilience on == resilience off, absent faults
# ======================================================================

class TestFigureIdentity:
    @staticmethod
    def _drive(resilience: bool):
        disk = Disk(ST19101, num_cylinders=2)
        vld = VirtualLogDisk(disk, resilience=resilience)
        rng = random.Random(7)
        total = 0.0
        reads = []
        for _ in range(60):
            action = rng.random()
            lba = rng.randrange(64)
            if action < 0.55:
                total += vld.write_block(lba, _payload(lba)).total
            elif action < 0.8:
                data, cost = vld.read_block(lba)
                reads.append(data)
                total += cost.total
            elif action < 0.9:
                total += vld.trim(lba).total
            else:
                vld.idle(0.05)
        vld.power_down()
        vld.crash()
        outcome = vld.recover()
        total += outcome.breakdown.total
        return disk.clock.now, total, reads, list(vld.imap.items())

    def test_timing_and_state_identical_with_no_faults(self):
        with_layer = self._drive(True)
        without = self._drive(False)
        assert with_layer[0] == without[0]  # simulated clock, bit-for-bit
        assert with_layer[1] == without[1]  # summed breakdowns
        assert with_layer[2] == without[2]  # every byte read
        assert with_layer[3] == without[3]  # final mapping
