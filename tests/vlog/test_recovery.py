"""Power-down record and scan-fallback recovery (Section 3.2)."""

import pytest

from repro.disk.disk import Disk
from repro.disk.specs import ST19101
from repro.vlog.recovery import PowerDownStore, scan_for_tail
from repro.vlog.entries import MapRecord


@pytest.fixture
def disk():
    return Disk(ST19101, num_cylinders=2)


@pytest.fixture
def store(disk):
    return PowerDownStore(disk, block=0, block_size=4096)


class TestPowerDownStore:
    def test_write_read_roundtrip(self, store):
        store.write(tail_block=123, seqno=77)
        record, _cost = store.read()
        assert record == (123, 77)

    def test_untimed_mode_does_not_advance_clock(self, store, disk):
        before = disk.clock.now
        store.write(5, 1, timed=False)
        record, _ = store.read(timed=False)
        assert record == (5, 1)
        assert disk.clock.now == before

    def test_blank_disk_reads_none(self, store):
        record, _ = store.read(timed=False)
        assert record is None

    def test_clear_erases(self, store):
        store.write(9, 2, timed=False)
        store.clear(timed=False)
        record, _ = store.read(timed=False)
        assert record is None

    def test_corrupt_record_detected_by_checksum(self, store):
        """The 'extremely rare case when this power down sequence fails'
        must be detected, not trusted."""
        store.write(9, 2, timed=False)
        store.corrupt()
        record, _ = store.read(timed=False)
        assert record is None

    def test_bitflip_detected(self, store, disk):
        store.write(1000, 50, timed=False)
        raw = bytearray(disk.peek(store._sector, store.sectors_per_block))
        raw[9] ^= 0x40  # flip a bit inside the tail field
        disk.poke(store._sector, bytes(raw))
        record, _ = store.read(timed=False)
        assert record is None


class TestScanFallback:
    def _plant(self, disk, block, chunk_id, seqno):
        record = MapRecord(chunk_id=chunk_id, seqno=seqno, entries=[seqno])
        disk.poke(block * 8, record.pack(4096))

    def test_finds_youngest_record(self, disk):
        self._plant(disk, 10, 0, 5)
        self._plant(disk, 200, 1, 9)
        self._plant(disk, 400, 0, 7)
        tail, _cost, examined = scan_for_tail(disk, timed=False)
        assert tail == 200
        assert examined == disk.total_sectors // 8

    def test_empty_disk_finds_nothing(self, disk):
        tail, _cost, _n = scan_for_tail(disk, timed=False)
        assert tail is None

    def test_skip_block_excluded(self, disk):
        self._plant(disk, 0, 0, 99)
        tail, _, _ = scan_for_tail(disk, skip_block=0, timed=False)
        assert tail is None

    def test_data_blocks_ignored(self, disk):
        disk.poke(80, b"Z" * 4096)
        self._plant(disk, 50, 0, 3)
        tail, _, _ = scan_for_tail(disk, timed=False)
        assert tail == 50

    def test_timed_scan_costs_whole_disk_reads(self, disk):
        """The scan is the slow path: it must cost on the order of reading
        every track once (why the power-down record matters)."""
        self._plant(disk, 3, 0, 1)
        _tail, cost, _n = scan_for_tail(disk, timed=True)
        tracks = disk.geometry.num_cylinders * disk.geometry.tracks_per_cylinder
        min_transfer = tracks * disk.geometry.sectors_per_track * (
            disk.mechanics.sector_time
        )
        assert cost.total >= min_transfer * 0.9


def _tiny_unaligned_spec():
    """12 sectors/track with 4 KB (8-sector) blocks: track starts are not
    block-aligned, so map records straddle track boundaries and each track
    carries a 4-sector remainder."""
    from repro.disk.specs import DiskSpec

    rpm = 10000.0
    sector_time = (60.0 / rpm) / 12
    return DiskSpec(
        name="TINY12",
        sectors_per_track=12,
        tracks_per_cylinder=2,
        num_cylinders=4,
        sim_cylinders=4,
        rpm=rpm,
        head_switch_time=2 * sector_time,
        scsi_overhead=1e-4,
        sector_bytes=512,
        seek_short_a=3e-4,
        seek_short_b=2e-4,
        seek_long_c=4e-3,
        seek_long_e=8e-7,
        seek_boundary=400,
    )


class TestScanUnalignedGeometry:
    """scan_for_tail when sectors_per_track % sectors_per_block != 0.

    The seed implementation numbered blocks per track as
    ``track_start // spb + i`` (only valid for block-aligned track starts)
    and never parsed each track's remainder sectors, so records straddling
    a track boundary or sitting in the remainder were invisible.
    """

    def _plant(self, disk, block, seqno):
        record = MapRecord(chunk_id=0, seqno=seqno, entries=[seqno])
        disk.poke(block * 8, record.pack(4096))

    def test_examines_every_whole_block(self):
        disk = Disk(_tiny_unaligned_spec())
        assert disk.total_sectors == 96
        _tail, _cost, examined = scan_for_tail(disk, timed=False)
        assert examined == disk.total_sectors // 8  # 12, not the seed's 8

    def test_finds_record_straddling_a_track_boundary(self):
        disk = Disk(_tiny_unaligned_spec())
        # Block 4 = sectors 32..39; tracks are 12 sectors, so it straddles
        # the boundary at sector 36.
        self._plant(disk, 4, seqno=10)
        tail, _cost, _n = scan_for_tail(disk, timed=False)
        assert tail == 4

    def test_finds_youngest_across_remainder_regions(self):
        disk = Disk(_tiny_unaligned_spec())
        self._plant(disk, 4, seqno=10)
        # Block 11 = sectors 88..95, inside the last track (84..95) but
        # past the last old per-track parse window (84..91).
        self._plant(disk, 11, seqno=20)
        tail, _cost, _n = scan_for_tail(disk, timed=False)
        assert tail == 11

    def test_skip_block_and_skip_sectors_still_honoured(self):
        disk = Disk(_tiny_unaligned_spec())
        self._plant(disk, 0, seqno=99)
        self._plant(disk, 4, seqno=5)
        tail, _cost, examined = scan_for_tail(
            disk, skip_block=0, skip_sectors=8, timed=False
        )
        assert tail == 4
        assert examined == disk.total_sectors // 8 - 1

    def test_timed_scan_matches_untimed_answer(self):
        disk = Disk(_tiny_unaligned_spec())
        self._plant(disk, 4, seqno=10)
        self._plant(disk, 11, seqno=20)
        tail, cost, _n = scan_for_tail(disk, timed=True)
        assert tail == 11
        assert cost.total > 0.0


class TestTailGeometryValidation:
    """A CRC-valid power-down record must still name a tail on the disk."""

    def test_tail_beyond_disk_rejected(self, disk):
        store = PowerDownStore(disk, 0, 4096, tail_block_sectors=1)
        store.write(disk.total_sectors, 3, timed=False)
        record, _ = store.read(timed=False)
        assert record is None

    def test_boundary_tail_blocks(self, disk):
        store = PowerDownStore(disk, 0, 4096, tail_block_sectors=8)
        last_valid = disk.total_sectors // 8 - 1
        store.write(last_valid, 3, timed=False)
        assert store.read(timed=False)[0] == (last_valid, 3)
        store.write(last_valid + 1, 3, timed=False)
        assert store.read(timed=False)[0] is None

    def test_vld_falls_back_to_scan_on_bogus_tail(self):
        """End to end: a planted out-of-range (but checksummed) record must
        route recovery through the scan path, not crash the traversal."""
        from repro.vlog.vld import VirtualLogDisk

        disk = Disk(ST19101, num_cylinders=2)
        vld = VirtualLogDisk(disk)
        payload = b"\x5a" * vld.block_size
        vld.write_block(0, payload)
        vld.write_block(1, b"\xa5" * vld.block_size)
        # Firmware scribble: CRC-valid record pointing far past the disk.
        vld.power_store.write(10**9, 999, timed=False)
        vld.crash()
        outcome = vld.recover(timed=False)
        assert outcome.scanned
        assert not outcome.used_power_down_record
        assert vld.read_block(0)[0] == payload


class TestUnreadableTailMediaError:
    """A *valid* power-down record whose named tail block then fails with
    a media error (not CRC corruption) must fall back to the scan."""

    def test_valid_record_dead_tail_block_recovers_by_scan(self):
        from repro.blockdev.interpose import DiskFaultInjector
        from repro.vlog.vld import VirtualLogDisk

        disk = Disk(ST19101, num_cylinders=2)
        vld = VirtualLogDisk(disk)
        for lba in range(6):
            vld.write_block(lba, bytes([lba + 1]) * vld.block_size)
        vld.power_down()
        tail_sector = vld.vlog.tail * vld.vlog.sectors_per_block
        vld.crash()
        # The record is intact; only the tail block's media has died.
        DiskFaultInjector(bad_sectors={tail_sector}).install(disk)
        outcome = vld.recover()
        assert outcome.used_power_down_record  # the record itself parsed
        assert outcome.scanned  # ... but the traversal had to re-seed
        assert outcome.degraded
        assert outcome.media_errors > 0
        # The dead record held the youngest chunk-0 state; the scan
        # recovers the youngest *readable* records, so at most that one
        # chunk's final update is stale -- and the device serves reads.
        for lba in range(6):
            data, _ = vld.read_block(lba)
            assert len(data) == vld.block_size

    def test_nonresilient_vld_scan_fallback_still_works(self):
        """Without the resilience layer the same situation (tail block
        corrupt rather than erroring) routes through the scan too."""
        from repro.vlog.vld import VirtualLogDisk

        disk = Disk(ST19101, num_cylinders=2)
        vld = VirtualLogDisk(disk, resilience=False)
        for lba in range(4):
            vld.write_block(lba, bytes([lba + 1]) * vld.block_size)
        vld.power_down()
        tail_sector = vld.vlog.tail * vld.vlog.sectors_per_block
        vld.crash()
        raw = bytearray(disk.peek(tail_sector, 1))
        raw[20] ^= 0xFF  # corrupt the record body: CRC now fails
        disk.poke(tail_sector, bytes(raw))
        outcome = vld.recover()
        assert outcome.used_power_down_record
        assert outcome.scanned
        for lba in range(4):
            data, _ = vld.read_block(lba)
            assert len(data) == vld.block_size


class TestPowerDownWithPendingQueue:
    """power_down() at queue depth > 1: the barrier at the top of
    power_down ("nothing may outlive the queue") must push every request
    still sitting in the scheduler to the media *before* the power-down
    record is written.  Without it, an orderly shutdown would silently
    drop queued writes -- crash() discards pending requests, and the
    power record would bless a state the media never reached."""

    def _vld_depth4(self):
        from repro.vlog.vld import VirtualLogDisk

        disk = Disk(ST19101, num_cylinders=2)
        return VirtualLogDisk(disk, queue_depth=4, sched="satf")

    def test_depth4_pending_writes_land_before_power_record(self):
        vld = self._vld_depth4()
        spb = vld.sectors_per_block
        # Establish mappings the normal way (each write_block barriers
        # internally before its map commit, so the queue is empty now).
        for lba in range(6):
            vld.write_block(lba, bytes([0x10 + lba]) * vld.block_size)
        assert vld.scheduler.outstanding == 0
        # Overwrite three mapped physical blocks in place, straight
        # through the scheduler, staying below the queue depth: these
        # requests are genuinely *pending* -- nothing has serviced them.
        updated = {}
        for lba in (1, 3, 5):
            physical = vld.imap.get(lba)
            assert physical is not None
            payload = bytes([0xA0 + lba]) * vld.block_size
            vld.scheduler.write(
                physical * spb, spb, payload, charge_scsi=False
            )
            updated[lba] = payload
        assert vld.scheduler.outstanding == len(updated)
        vld.power_down()
        # The barrier drained the queue before the power record went out.
        assert vld.scheduler.outstanding == 0
        vld.crash()
        outcome = vld.recover(timed=False)
        assert outcome.used_power_down_record
        assert not outcome.scanned
        # The in-place overwrites reached the media under the existing
        # mappings; a dropped queue would read back the 0x10-series data.
        for lba, payload in updated.items():
            assert vld.read_block(lba)[0] == payload

    def test_depth4_crash_without_power_down_drops_pending(self):
        """The inverse: a *crash* with requests pending loses exactly
        those requests -- pinning that the power_down test above is
        actually exercising the barrier, not a scheduler that flushes
        eagerly on its own."""
        vld = self._vld_depth4()
        spb = vld.sectors_per_block
        for lba in range(6):
            vld.write_block(lba, bytes([0x10 + lba]) * vld.block_size)
        physical = vld.imap.get(3)
        vld.scheduler.write(
            physical * spb, spb, b"\xEE" * vld.block_size, charge_scsi=False
        )
        assert vld.scheduler.outstanding == 1
        vld.crash()  # discards the pending overwrite
        outcome = vld.recover(timed=False)
        assert outcome.scanned
        assert vld.read_block(3)[0] == bytes([0x13]) * vld.block_size
