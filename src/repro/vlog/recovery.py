"""Recovery bootstrap: the power-down record and the scan fallback.

Section 3.2: modern drives park the actuator using residual power when the
supply drops; the firmware can first record the current log-tail location
at a fixed disk location, protected by a checksum and cleared after
recovery.  Normal recovery reads that record and traverses the virtual log
from the tail.  In the "extremely rare case" the power-down write failed,
the checksum exposes it and recovery falls back to scanning the disk for
(cryptographically signed, here CRC-tagged) map records, taking the one
with the highest sequence number as the tail.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.disk.disk import Disk
from repro.sim.stats import Breakdown
from repro.vlog.entries import MapRecord

_MAGIC = b"VLOGPWDN"
_RECORD = struct.Struct("<8sqqI")


class PowerDownStore:
    """The fixed-location record written by the firmware at power-down.

    Args:
        disk: The drive the record lives on.
        block: Which ``block_size`` unit houses the record.
        block_size: Size of the record's home block in bytes.
        tail_block_sectors: Sectors per *tail* block (the unit ``tail_block``
            counts in -- the virtual log's map-record size, which may differ
            from ``block_size``).  Used to bounds-check recovered tails
            against the geometry; defaults to 1, the loosest sound bound.
    """

    def __init__(
        self,
        disk: Disk,
        block: int = 0,
        block_size: int = 4096,
        tail_block_sectors: int = 1,
    ) -> None:
        if tail_block_sectors <= 0:
            raise ValueError("tail_block_sectors must be positive")
        self.disk = disk
        self.block = block
        self.block_size = block_size
        self.sectors_per_block = block_size // disk.sector_bytes
        self.tail_block_sectors = tail_block_sectors
        self._sector = block * self.sectors_per_block

    def write(self, tail_block: int, seqno: int, timed: bool = True) -> Breakdown:
        """Persist the log tail (part of the firmware power-down sequence)."""
        body = _RECORD.pack(_MAGIC, tail_block, seqno, 0)[: -4]
        crc = zlib.crc32(body) & 0xFFFFFFFF
        payload = _RECORD.pack(_MAGIC, tail_block, seqno, crc)
        padded = payload + bytes(self.block_size - len(payload))
        if timed:
            return self.disk.write(
                self._sector, self.sectors_per_block, padded, charge_scsi=False
            )
        self.disk.poke(self._sector, padded)
        return Breakdown()

    def read(self, timed: bool = True) -> Tuple[Optional[Tuple[int, int]], Breakdown]:
        """Read and validate the record; ``None`` when absent or corrupt."""
        if timed:
            raw, breakdown = self.disk.read(
                self._sector, self.sectors_per_block, charge_scsi=False
            )
        else:
            raw = self.disk.peek(self._sector, self.sectors_per_block)
            breakdown = Breakdown()
        return self.parse(raw), breakdown

    def parse(self, raw: bytes) -> Optional[Tuple[int, int]]:
        """Validate raw record bytes; ``None`` when absent or corrupt.

        Split from :meth:`read` so resilient callers can fetch the bytes
        through their own retried/verified path and still share the
        validation logic.
        """
        if len(raw) < _RECORD.size:
            return None
        magic, tail, seqno, stored_crc = _RECORD.unpack(raw[: _RECORD.size])
        if magic != _MAGIC:
            return None
        body = raw[: _RECORD.size - 4]
        if zlib.crc32(body) & 0xFFFFFFFF != stored_crc:
            return None
        if tail < 0 or seqno < 0:
            return None
        if (tail + 1) * self.tail_block_sectors > self.disk.total_sectors:
            # A CRC-valid record naming a tail beyond the end of the disk
            # (e.g. written for a larger device, or firmware scribble that
            # happened to checksum) must not be trusted: reject it so
            # recovery falls back to the scan path instead of chasing an
            # unreadable block.
            return None
        return (tail, seqno)

    def clear(self, timed: bool = True) -> Breakdown:
        """Erase the record (done after successful recovery, per the paper)."""
        blank = bytes(self.block_size)
        if timed:
            return self.disk.write(
                self._sector, self.sectors_per_block, blank, charge_scsi=False
            )
        self.disk.poke(self._sector, blank)
        return Breakdown()

    def corrupt(self) -> None:
        """Fault injection: damage the record as a failed power-down would."""
        garbage = b"\xde\xad\xbe\xef" * (self.block_size // 4)
        self.disk.poke(self._sector, garbage)


def scan_records(
    disk: Disk,
    block_size: int = 4096,
    skip_block: Optional[int] = None,
    skip_sectors: int = 0,
    timed: bool = True,
    reader=None,
) -> Tuple[Dict[int, MapRecord], Breakdown, int]:
    """Full-disk scan for *every* valid map record.

    Reads the disk track by track (the cheapest sequential pattern) and
    parses every aligned record-sized unit for a valid map record.
    ``block_size`` is the *record* size (the VLD uses 512-byte map
    sectors); ``skip_block`` excludes one record position and
    ``skip_sectors`` excludes the first N sectors of the disk (the
    power-down record's home).

    ``reader`` (optional) is a fault-tolerant callable
    ``reader(sector, count, breakdown) -> Optional[bytes]``; when it
    returns ``None`` the track is treated as unreadable and its records
    are skipped (a resilient reader typically retries per record first and
    zero-fills only what stays dead).

    Returns ``(records_by_block, breakdown, records_examined)``.
    """
    breakdown = Breakdown()
    geometry = disk.geometry
    sectors_per_block = max(1, block_size // disk.sector_bytes)
    total_blocks = geometry.total_sectors // sectors_per_block
    found: Dict[int, MapRecord] = {}
    examined = 0
    # Record positions are absolute: record ``b`` occupies sectors
    # ``b*spb .. (b+1)*spb - 1``.  When the block size does not divide the
    # track size, records straddle track boundaries, so track reads are
    # stitched through a rolling buffer and every whole block on the disk
    # is parsed from it.  (The seed implementation numbered blocks per
    # track as ``track_start // spb + i`` -- only correct when track starts
    # are block-aligned -- and silently never looked at each track's
    # remainder sectors.)
    track_bytes = geometry.sectors_per_track * disk.sector_bytes
    pending = bytearray()
    pending_base = 0  # byte offset of pending[0] from the start of the disk
    next_block = 0
    for cylinder in range(geometry.num_cylinders):
        for head in range(geometry.tracks_per_cylinder):
            start = geometry.track_start(cylinder, head)
            if reader is not None:
                raw = reader(start, geometry.sectors_per_track, breakdown)
                if raw is None:
                    raw = bytes(track_bytes)
            elif timed:
                raw, cost = disk.read(
                    start, geometry.sectors_per_track, charge_scsi=False
                )
                breakdown.add(cost)
            else:
                raw = disk.peek(start, geometry.sectors_per_track)
            pending += raw
            while (
                next_block < total_blocks
                and (next_block + 1) * block_size - pending_base <= len(pending)
            ):
                block = next_block
                next_block += 1
                if block == skip_block:
                    continue
                if (block + 1) * sectors_per_block <= skip_sectors:
                    continue
                examined += 1
                lo = block * block_size - pending_base
                record = MapRecord.unpack(bytes(pending[lo : lo + block_size]))
                if record is not None:
                    found[block] = record
            consumed = next_block * block_size - pending_base
            if consumed > 0:
                del pending[:consumed]
                pending_base += consumed
    return found, breakdown, examined


def scan_for_tail(
    disk: Disk,
    block_size: int = 4096,
    skip_block: Optional[int] = None,
    skip_sectors: int = 0,
    timed: bool = True,
    reader=None,
) -> Tuple[Optional[int], Breakdown, int]:
    """Full-disk scan for the youngest map record (the slow path).

    A thin selection over :func:`scan_records`: the record with the
    highest sequence number is the log tail.  Returns
    ``(tail_block, breakdown, records_examined)``.
    """
    found, breakdown, examined = scan_records(
        disk,
        block_size,
        skip_block=skip_block,
        skip_sectors=skip_sectors,
        timed=timed,
        reader=reader,
    )
    best_block: Optional[int] = None
    best_seqno = -1
    for block, record in found.items():
        if record.seqno > best_seqno:
            best_seqno = record.seqno
            best_block = block
    return best_block, breakdown, examined


@dataclass
class RecoveryOutcome:
    """What happened during a :meth:`VirtualLogDisk.recover` call."""

    used_power_down_record: bool
    scanned: bool
    records_read: int
    blocks_scanned: int = 0
    breakdown: Breakdown = field(default_factory=Breakdown)
    #: True when media faults forced pruning or fallback during recovery.
    degraded: bool = False
    #: True when the youngest-wins full-disk reconstruction ran (the
    #: escalation beyond the tail traversal).
    reconstructed: bool = False
    #: Sectors that stayed unreadable after retries during this recovery.
    media_errors: int = 0
    #: Quarantined sectors restored from the recovered table.
    quarantined_sectors: int = 0
    #: Stale (free) sectors retired *conservatively* because they stayed
    #: unreadable during recovery -- the defence against silently losing
    #: the quarantine when its youngest on-disk record is itself dead.
    conservatively_quarantined: int = 0

    @property
    def elapsed(self) -> float:
        return self.breakdown.total
