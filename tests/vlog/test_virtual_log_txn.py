"""VirtualLog-level transaction mechanics (below the VLD facade)."""

import pytest

from repro.disk.disk import Disk
from repro.disk.freemap import FreeSpaceMap
from repro.disk.specs import ST19101
from repro.vlog.allocator import AllocationPolicy, EagerAllocator
from repro.vlog.entries import COMMIT_CHUNK_BASE
from repro.vlog.virtual_log import VirtualLog


class Harness:
    def __init__(self):
        self.disk = Disk(ST19101, num_cylinders=3)
        self.freemap = FreeSpaceMap(self.disk.geometry)
        self.allocator = EagerAllocator(
            self.disk, self.freemap, 8, AllocationPolicy.NEAREST
        )
        self.chunks = {}
        self.vlog = VirtualLog(
            self.disk, self.allocator, lambda c: self.chunks[c], 4096
        )

    def put(self, chunk, entries):
        self.chunks[chunk] = list(entries)
        return self.vlog.append(chunk, self.chunks[chunk])

    def txn_put(self, chunk, entries, txn):
        self.chunks[chunk] = list(entries)
        return self.vlog.append_txn_member(chunk, self.chunks[chunk], txn)

    def recover(self):
        result, _cost, _n = self.vlog.recover_from_tail(
            self.vlog.tail, timed=False
        )
        return result


@pytest.fixture
def h():
    return Harness()


class TestMemberSemantics:
    def test_member_keeps_predecessor_until_commit(self, h):
        h.put(0, [1])
        old_block = h.vlog.location_of(0)
        _, superseded = h.txn_put(0, [2], txn=h.vlog.begin_txn())
        assert superseded == old_block
        # The predecessor's block is still occupied (not recycled).
        assert not h.freemap.run_is_free(old_block * 8, 8)

    def test_commit_recycles_predecessors(self, h):
        h.put(0, [1])
        old_block = h.vlog.location_of(0)
        txn = h.vlog.begin_txn()
        _, superseded = h.txn_put(0, [2], txn)
        h.vlog.commit_txn(txn, [superseded])
        assert h.freemap.run_is_free(old_block * 8, 8)
        h.vlog.check_invariants()

    def test_uncommitted_members_invisible_to_recovery(self, h):
        h.put(0, [1])
        h.put(1, [10])
        txn = h.vlog.begin_txn()
        h.txn_put(0, [2], txn)
        h.txn_put(1, [20], txn)
        # no commit record
        recovered = h.recover()
        assert recovered[0] == [1]
        assert recovered[1] == [10]

    def test_committed_members_visible_to_recovery(self, h):
        h.put(0, [1])
        txn = h.vlog.begin_txn()
        _, superseded = h.txn_put(0, [2], txn)
        h.vlog.commit_txn(txn, [superseded])
        recovered = h.recover()
        assert recovered[0] == [2]

    def test_invalid_txn_id_rejected(self, h):
        with pytest.raises(ValueError):
            h.vlog.append_txn_member(0, [1], 0)
        with pytest.raises(ValueError):
            h.vlog.commit_txn(-1, [])


class TestAbort:
    def test_abort_restores_and_recycles(self, h):
        h.put(0, [1])
        h.put(1, [10])
        txn = h.vlog.begin_txn()
        h.txn_put(0, [2], txn)
        before = {0: [1], 1: [10]}

        def restore(chunk_id):
            h.chunks[chunk_id] = list(before[chunk_id])
            return h.chunks[chunk_id]

        h.vlog.abort_txn(txn, restore)
        h.vlog.check_invariants()
        recovered = h.recover()
        assert recovered[0] == [1]
        assert recovered[1] == [10]

    def test_log_usable_after_abort(self, h):
        h.put(0, [1])
        txn = h.vlog.begin_txn()
        h.txn_put(0, [2], txn)
        h.vlog.abort_txn(txn, lambda c: [1])
        h.chunks[0] = [1]
        h.put(0, [3])
        assert h.recover()[0] == [3]


class TestCommitSlots:
    def test_slots_recycle_after_members_superseded(self, h):
        h.put(0, [0])
        for round_number in range(1, 20):
            txn = h.vlog.begin_txn()
            _, superseded = h.txn_put(0, [round_number], txn)
            h.vlog.commit_txn(
                txn, [] if superseded is None else [superseded]
            )
        live_commits = [
            c
            for c in h.vlog._chunk_location
            if c >= COMMIT_CHUNK_BASE
        ]
        assert len(live_commits) <= 3
        h.vlog.check_invariants()

    def test_recovery_rebuilds_slot_bookkeeping(self, h):
        h.put(0, [0])
        txn = h.vlog.begin_txn()
        _, superseded = h.txn_put(0, [7], txn)
        h.vlog.commit_txn(txn, [superseded])
        h.recover()
        # The committed txn is visible and ids keep increasing.
        assert txn in h.vlog.recovered_committed_txns
        assert h.vlog.begin_txn() > txn
        # Normal operation continues.
        h.put(0, [99])
        assert h.recover()[0] == [99]


class TestCommitSlotInverseMap:
    """``_slot_txn`` is the exact inverse of ``_txn_slot`` at every
    mutation -- the append path answers commit-slot payloads from it
    instead of rebuilding a reversed dict per record, so any drift
    between the two would silently corrupt relocated commit records."""

    def _assert_inverse(self, vlog):
        assert vlog._slot_txn == {
            slot: txn for txn, slot in vlog._txn_slot.items()
        }

    def test_commit_populates_both_directions(self, h):
        h.put(0, [1])
        txn = h.vlog.begin_txn()
        _, superseded = h.txn_put(0, [2], txn)
        h.vlog.commit_txn(txn, [superseded])
        self._assert_inverse(h.vlog)
        slot = h.vlog._txn_slot[txn]
        # The append path resolves the slot's payload to the txn id.
        assert h.vlog._chunk_payload(slot) == [txn]

    def test_slot_retirement_clears_inverse(self, h):
        h.put(0, [1])
        txn = h.vlog.begin_txn()
        _, superseded = h.txn_put(0, [2], txn)
        h.vlog.commit_txn(txn, [superseded])
        slot = h.vlog._txn_slot[txn]
        # A plain append supersedes the member record, retiring the txn
        # and its slot.
        h.put(0, [3])
        self._assert_inverse(h.vlog)
        assert slot not in h.vlog._slot_txn
        assert h.vlog._chunk_payload(slot) == [0]

    def test_reused_slot_answers_new_txn(self, h):
        h.put(0, [1])
        first = h.vlog.begin_txn()
        _, superseded = h.txn_put(0, [2], first)
        h.vlog.commit_txn(first, [superseded])
        slot = h.vlog._txn_slot[first]
        h.put(0, [3])  # retire the first txn, freeing its slot
        second = h.vlog.begin_txn()
        _, superseded = h.txn_put(0, [4], second)
        h.vlog.commit_txn(second, [superseded])
        self._assert_inverse(h.vlog)
        assert h.vlog._txn_slot[second] == slot
        assert h.vlog._chunk_payload(slot) == [second]

    def test_abort_keeps_maps_agreeing(self, h):
        h.put(0, [1])
        h.put(1, [5])
        txn = h.vlog.begin_txn()
        h.txn_put(0, [2], txn)
        h.txn_put(1, [6], txn)
        h.vlog.abort_txn(txn, lambda c: {0: [1], 1: [5]}[c])
        self._assert_inverse(h.vlog)
        assert txn not in h.vlog._txn_slot
        h.vlog.check_invariants()

    def test_recovery_rebuilds_inverse(self, h):
        h.put(0, [1])
        for value in (2, 3, 4):
            txn = h.vlog.begin_txn()
            _, superseded = h.txn_put(0, [value], txn)
            h.vlog.commit_txn(
                txn, [] if superseded is None else [superseded]
            )
        h.recover()
        self._assert_inverse(h.vlog)
        for txn, slot in h.vlog._txn_slot.items():
            assert h.vlog._chunk_payload(slot) == [txn]
