"""Command-line experiment runner: ``python -m repro.harness [names...]``.

Regenerates the requested tables/figures (default: the quick set) and
prints the paper-style rows.  ``--full`` uses paper-scale workloads.

Interposer flags thread observability through every device stack the
experiments build: ``--trace PATH`` appends one JSONL record per device
operation, ``--metrics`` prints a per-stack op/latency summary after each
experiment, and ``--faults SPEC`` injects deterministic device faults
(``SPEC`` like ``crash_after=40,torn=0.05,seed=7``).

Sweep flags control how each experiment's grid of independent points is
executed: ``--jobs N`` fans the points out across ``N`` worker
processes, ``--cache DIR`` (default ``.sweep-cache``) memoizes each
point's result under a content-addressed key so re-running an unchanged
figure is near-instant (any source edit invalidates transparently),
``--no-cache`` disables the cache, and ``--cache-stats`` prints
hit/miss/submission counts after each experiment.

Queue flags apply to every device stack the experiments build:
``--queue-depth N`` lets each core device keep ``N`` requests
outstanding in its internal scheduler, and ``--sched POLICY`` picks the
service order (``fifo``, ``scan``, ``satf``).  The defaults (depth 1,
FIFO) reproduce the unscheduled baseline byte-for-byte; anything else
changes timings, so these flags force inline, uncached execution.

Multi-host flags apply to ``figure_multihost`` (the event-engine
scale-out sweep): ``--hosts N`` runs exactly ``N`` closed-loop host
processes instead of the default host-count curve, and ``--disks M``
stripes their requests across ``M`` independent device stacks.
``--shards M`` runs the grid in sharded-volume mode instead -- the M
stacks are fault domains, and every row carries per-shard response
tails; ``--shard-slow SPEC`` (``shard=1,factor=8,after=20,ops=60``)
makes one shard fail-slow for a window of requests so the report also
measures degraded-window throughput.

Resilience flags: ``--torture`` runs the composed-fault torture matrix
(crash/torn/flaky/read-error plans over every workload; ``--full``
widens it to the weekly multi-seed grid) instead of the experiments,
minimizing and writing a ``torture-repro/`` artifact for any failing
plan; with ``--volume`` the matrix is the multi-shard one instead
(shard crash / fail-slow / flaky-media fault domains composed over a
sharded volume, checked by the volume-level fsck and the differential
oracle); ``--scrub`` prints a short flaky-media story showing retries,
quarantine, and the idle-time scrubber migrating live data;
``--volume-demo`` prints a degraded-mode tour of the sharded volume
(one shard crashes, healthy I/O keeps flowing, bounded retries, hedged
reads against a limping shard, per-shard recovery).

Examples::

    python -m repro.harness table1 figure1
    python -m repro.harness --full --jobs 4 figure8
    python -m repro.harness --jobs 2 --cache-stats
    python -m repro.harness --metrics table2
    python -m repro.harness --trace /tmp/ops.jsonl figure6
    python -m repro.harness --faults crash_after=500 figure6
    python -m repro.harness --torture --jobs 2
    python -m repro.harness --scrub
    python -m repro.harness --list
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.blockdev.interpose import DeviceCrashed, FaultPlan, InterposeOptions
from repro.harness import configs, experiments, sweep
from repro.harness.cache import ResultCache
from repro.harness.report import format_table
from repro.sim.stats import COMPONENTS

_QUICK = {
    "figure1": dict(trials=150),
    "figure2": dict(trials=20),
    "figure6": dict(num_files=400),
    "figure7": dict(file_mb=4),
    "figure8": dict(
        file_mbs=[2, 6, 10, 14, 17], updates=150, warmup=50,
        lfs_updates=2500, lfs_warmup=1500,
    ),
    "table2": dict(updates=150, warmup=50),
    "figure10": dict(
        burst_kbs=[128, 504, 2016], idle_seconds=[0.0, 0.25, 1.0, 4.0],
        bursts=4,
    ),
    "figure11": dict(
        burst_kbs=[128, 512, 2048], idle_seconds=[0.0, 0.1, 0.3, 0.6],
        bursts=4,
    ),
    "figure_qdepth": dict(depths=[1, 2, 4], requests=150),
    "figure_multihost": dict(host_counts=[1, 2, 4], requests_per_host=80),
    "figure_nvm": dict(requests=80),
}

_FULL = {
    "figure1": dict(trials=500),
    "figure2": dict(trials=80),
    "figure6": dict(num_files=1500),
    "figure7": dict(file_mb=10),
    "figure8": dict(),
    "table2": dict(),
    "figure10": dict(),
    "figure11": dict(),
    "figure_qdepth": dict(),
    "figure_multihost": dict(),
    "figure_nvm": dict(),
}

_ALL = ["table1", "figure1", "figure2", "figure6", "figure7", "figure8",
        "table2", "figure9", "figure10", "figure11", "figure_qdepth",
        "figure_multihost", "figure_nvm"]


def _print_result(name: str, result) -> None:
    if name == "table1":
        rows = [
            [param, result["HP97560"][param], result["ST19101"][param]]
            for param in result["HP97560"]
        ]
        print(format_table(["parameter", "HP97560", "ST19101"], rows,
                           title="Table 1"))
    elif name in ("figure1", "figure2"):
        x_key = "free_fraction" if name == "figure1" else "threshold"
        for disk, series in result.items():
            rows = [
                [x, m * 1e3, s * 1e3]
                for x, m, s in zip(
                    series[x_key],
                    series["model_seconds"],
                    series["simulated_seconds"],
                )
            ]
            print(format_table(
                [x_key, "model (ms)", "simulated (ms)"], rows,
                title=f"{name} ({disk})",
            ))
            print()
    elif name == "figure6":
        rows = [
            [stack, p["create"], p["read"], p["delete"]]
            for stack, p in result["normalized"].items()
        ]
        print(format_table(
            ["stack", "create", "read", "delete"], rows,
            title="Figure 6 (normalized to ufs-regular)",
        ))
    elif name == "figure7":
        phases = sorted({p for d in result.values() for p in d})
        rows = [
            [stack] + [bw.get(p, float("nan")) for p in phases]
            for stack, bw in result.items()
        ]
        print(format_table(["stack", *phases], rows,
                           title="Figure 7 (MB/s)"))
    elif name == "figure8":
        for system, series in result.items():
            rows = list(zip(series["utilization"], series["latency_ms"]))
            print(format_table(
                ["utilization", "latency (ms)"], rows,
                title=f"Figure 8: {system}",
            ))
            print()
    elif name == "table2":
        rows = [
            [platform, e["update_in_place_ms"], e["virtual_log_ms"],
             e["speedup"]]
            for platform, e in result.items()
        ]
        print(format_table(
            ["platform", "in-place (ms)", "vlog (ms)", "speedup"], rows,
            title="Table 2",
        ))
    elif name == "figure9":
        rows = [
            [key, *(f"{e[c] * 100:.0f}%" for c in COMPONENTS),
             e["total_ms"]]
            for key, e in result.items()
        ]
        print(format_table(
            ["platform/system", *COMPONENTS, "total (ms)"], rows,
            title="Figure 9",
        ))
    elif name in ("figure10", "figure11"):
        for burst, series in result.items():
            rows = list(zip(series["idle_seconds"], series["latency_ms"]))
            print(format_table(
                ["idle (s)", "latency (ms)"], rows,
                title=f"{name}: burst {burst}",
            ))
            print()
    elif name == "figure_qdepth":
        for workload, per_policy in result.items():
            depths = next(iter(per_policy.values()))["queue_depth"]
            rows = [
                [int(d)] + [
                    per_policy[p]["mean_service_ms"][i] for p in per_policy
                ]
                for i, d in enumerate(depths)
            ]
            print(format_table(
                ["depth", *(f"{p} (ms)" for p in per_policy)], rows,
                title=f"figure_qdepth: {workload} (mean service)",
            ))
            print()
    elif name == "figure_multihost":
        for workload, series in result.items():
            rows = [
                [
                    int(series["hosts"][i]),
                    series["requests_per_second"][i],
                    series["mean_response_ms"][i],
                    series["p99_response_ms"][i],
                    series["p999_response_ms"][i],
                    series["hidden_think_seconds"][i],
                ]
                for i in range(len(series["hosts"]))
            ]
            print(format_table(
                ["hosts", "req/s", "mean resp (ms)", "p99 (ms)",
                 "p999 (ms)", "hidden think (s)"],
                rows, title=f"figure_multihost: {workload}",
            ))
            for i, per in enumerate(series.get("per_shard", [])):
                hosts_n = int(series["hosts"][i])
                for row in per["shards"]:
                    line = (
                        f"  [{hosts_n} host(s)] {row['shard']}: "
                        f"{row['requests']} reqs, response "
                        f"p50={row['p50_response_ms']:.3f} "
                        f"p99={row['p99_response_ms']:.3f} "
                        f"p999={row['p999_response_ms']:.3f}ms"
                    )
                    if row["ops_slowed"]:
                        line += (
                            f", slowed={row['ops_slowed']} "
                            f"(+{row['slow_extra_seconds']:.4f}s)"
                        )
                    print(line)
                window = per.get("degraded_window")
                if window is not None:
                    print(
                        f"  [{hosts_n} host(s)] degraded window: "
                        f"{window['seconds']:.4f}s, "
                        f"{window['completed']} completed "
                        f"({window['requests_per_second']:.0f} req/s)"
                    )
            print()
    elif name == "figure_nvm":
        for workload, per_mode in result.items():
            rows = [
                [
                    mode,
                    m["mean_write_ms"],
                    m["p99_write_ms"],
                    m["max_write_ms"],
                    int(m.get("destaged_blocks", 0)),
                    int(m.get("pressure_destages", 0)),
                ]
                for mode, m in per_mode.items()
            ]
            print(format_table(
                ["mode", "mean write (ms)", "p99 (ms)", "max (ms)",
                 "destaged", "pressure"],
                rows, title=f"figure_nvm: {workload}",
            ))
            print()
    else:  # pragma: no cover - defensive
        print(result)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("names", nargs="*", default=[],
                        help="experiments to run (default: all)")
    parser.add_argument("--full", action="store_true",
                        help="paper-scale workloads (slower)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="append a JSONL record per device op to PATH")
    parser.add_argument("--metrics", action="store_true",
                        help="print per-stack device metrics summaries")
    parser.add_argument("--faults", metavar="SPEC", default=None,
                        help="inject device faults, e.g. "
                             "'crash_after=40,torn=0.05,seed=7'")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes per experiment sweep "
                             "(default: 1, inline)")
    parser.add_argument("--cache", metavar="DIR", default=".sweep-cache",
                        help="content-addressed result cache directory "
                             "(default: .sweep-cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="recompute every point, bypassing the cache")
    parser.add_argument("--cache-stats", action="store_true",
                        help="print sweep cache/executor statistics after "
                             "each experiment")
    parser.add_argument("--hosts", type=int, default=None, metavar="N",
                        help="run figure_multihost with exactly N "
                             "closed-loop host processes")
    parser.add_argument("--disks", type=int, default=None, metavar="M",
                        help="stripe figure_multihost requests across M "
                             "independent device stacks (default: 1)")
    parser.add_argument("--shards", type=int, default=None, metavar="M",
                        help="run figure_multihost in sharded-volume mode "
                             "across M fault domains (per-shard tails)")
    parser.add_argument("--shard-slow", metavar="SPEC", default=None,
                        help="make one shard fail-slow, e.g. "
                             "'shard=1,factor=8,after=20,ops=60' "
                             "(requires --shards)")
    parser.add_argument("--queue-depth", type=int, default=None, metavar="N",
                        help="request-queue depth for every device stack "
                             "(default: 1, the unscheduled baseline)")
    parser.add_argument("--sched", default=None, metavar="POLICY",
                        choices=("fifo", "scan", "elevator", "satf"),
                        help="request scheduling policy: fifo, scan, satf "
                             "(default: fifo)")
    parser.add_argument("--nvm", nargs="?", const="nvdimm", default=None,
                        metavar="PART",
                        help="thread an NVM write-ahead tier into every "
                             "device stack (PART: nvdimm, battery-sram, "
                             "slow-pcm; default nvdimm)")
    parser.add_argument("--nvm-lat", type=float, default=None,
                        metavar="SECONDS",
                        help="override the NVM store latency (requires "
                             "--nvm), e.g. 3e-6")
    parser.add_argument("--nvm-cap", type=int, default=None,
                        metavar="BYTES",
                        help="override the NVM log capacity in bytes "
                             "(requires --nvm), e.g. 1048576")
    parser.add_argument("--torture", action="store_true",
                        help="run the composed-fault torture matrix "
                             "(with --full: the weekly multi-seed grid)")
    parser.add_argument("--families", nargs="+", default=None,
                        metavar="FAMILY",
                        help="with --torture: restrict the matrix to these "
                             "fault families (e.g. nvm-crash "
                             "nvm-crash+torn@depth4)")
    parser.add_argument("--volume", action="store_true",
                        help="with --torture: run the multi-shard volume "
                             "matrix (shard crash/slow/flaky fault domains)")
    parser.add_argument("--scrub", action="store_true",
                        help="print a flaky-media scrubbing demo")
    parser.add_argument("--volume-demo", action="store_true",
                        help="print a sharded-volume degraded-mode demo")
    args = parser.parse_args(argv)

    if args.list:
        print("\n".join(_ALL))
        return 0
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.scrub:
        return _run_scrub_demo()
    if args.volume_demo:
        return _run_volume_demo()
    if args.volume and not args.torture:
        parser.error("--volume requires --torture")
    if args.shards is not None and args.shards < 1:
        parser.error("--shards must be >= 1")
    if args.shard_slow is not None and args.shards is None:
        parser.error("--shard-slow requires --shards")
    if (args.nvm_lat is not None or args.nvm_cap is not None) \
            and args.nvm is None:
        parser.error("--nvm-lat/--nvm-cap require --nvm")
    if args.families is not None and not args.torture:
        parser.error("--families requires --torture")
    if args.nvm is not None:
        from repro.blockdev.nvm import NVM_SPECS

        if args.nvm not in NVM_SPECS:
            parser.error(f"--nvm: unknown part {args.nvm!r}; known: "
                         + ", ".join(sorted(NVM_SPECS)))
        spec = NVM_SPECS[args.nvm].with_overrides(
            store_latency=args.nvm_lat, capacity_bytes=args.nvm_cap
        )
        configs.set_default_nvm(spec)
        # The NVM default is process-global state the cache key and the
        # worker processes do not see -- run inline and uncached.
        if args.jobs > 1:
            print("[sweep: --nvm forces --jobs 1]", file=sys.stderr)
            args.jobs = 1
        if not args.no_cache:
            print("[sweep: --nvm disables the result cache]",
                  file=sys.stderr)
            args.no_cache = True
    if args.queue_depth is not None or args.sched is not None:
        depth = args.queue_depth if args.queue_depth is not None else 1
        if depth < 1:
            parser.error("--queue-depth must be >= 1")
        configs.set_default_queue((depth, args.sched or "fifo"))
        # The queue default is process-global state the cache key and the
        # worker processes do not see -- run inline and uncached.
        if args.jobs > 1:
            print("[sweep: --queue-depth/--sched force --jobs 1]",
                  file=sys.stderr)
            args.jobs = 1
        if not args.no_cache:
            print("[sweep: queue flags disable the result cache]",
                  file=sys.stderr)
            args.no_cache = True
    if args.torture:
        cache = None if args.no_cache else ResultCache(args.cache)
        with sweep.configured(jobs=args.jobs, cache=cache):
            status = _run_torture(args)
        _report_sweep_stats(args, "torture")
        return status
    if args.trace or args.metrics or args.faults:
        try:
            faults = FaultPlan.parse(args.faults) if args.faults else None
        except ValueError as exc:
            parser.error(f"--faults: {exc}")
        configs.set_default_interpose(InterposeOptions(
            trace=bool(args.trace),
            trace_sink=args.trace,
            metrics=args.metrics,
            faults=faults,
        ))
        # Per-process observability (trace files, the metrics registry)
        # does not survive the worker boundary, and injected faults make
        # results configuration-dependent in ways the cache key does not
        # see -- fall back to inline, uncached execution.
        if args.jobs > 1:
            print("[sweep: --trace/--metrics/--faults force --jobs 1]",
                  file=sys.stderr)
            args.jobs = 1
        if not args.no_cache:
            print("[sweep: interposer flags disable the result cache]",
                  file=sys.stderr)
            args.no_cache = True
    if args.hosts is not None and args.hosts < 1:
        parser.error("--hosts must be >= 1")
    if args.disks is not None and args.disks < 1:
        parser.error("--disks must be >= 1")
    cache = None if args.no_cache else ResultCache(args.cache)
    names = args.names or _ALL
    overrides = _FULL if args.full else _QUICK
    with sweep.configured(jobs=args.jobs, cache=cache):
        for name in names:
            if name not in _ALL:
                print(f"unknown experiment {name!r}; try --list",
                      file=sys.stderr)
                return 2
            fn = getattr(experiments, name)
            kwargs = dict(overrides.get(name, {}))
            if name == "figure_nvm":
                if args.nvm is not None:
                    kwargs["nvm_part"] = args.nvm
                if args.nvm_lat is not None:
                    kwargs["nvm_store_latency"] = args.nvm_lat
                if args.nvm_cap is not None:
                    kwargs["nvm_capacity"] = args.nvm_cap
            if name == "figure_multihost":
                if args.hosts is not None:
                    kwargs["host_counts"] = [args.hosts]
                if args.disks is not None:
                    kwargs["disks"] = args.disks
                if args.shards is not None:
                    kwargs["shards"] = args.shards
                    if args.shard_slow is not None:
                        try:
                            kwargs["shard_slow"] = _parse_shard_slow(
                                args.shard_slow
                            )
                        except ValueError as exc:
                            parser.error(f"--shard-slow: {exc}")
            start = time.time()
            try:
                result = fn(**kwargs)
            except DeviceCrashed as crash:
                print(f"[{name} aborted: injected device crash: {crash}]\n",
                      file=sys.stderr)
                _report_metrics(args)
                return 3
            _print_result(name, result)
            print(f"[{name} regenerated in "
                  f"{time.time() - start:.1f}s wall]\n")
            _report_sweep_stats(args, name)
            _report_metrics(args)
    return 0


def _parse_shard_slow(spec: str) -> dict:
    """Parse ``shard=1,factor=8,after=20,ops=60`` into the multihost
    ``shard_slow`` dict (``after``/``ops`` optional)."""
    known = {"shard": int, "factor": float, "after": int, "ops": int}
    out: dict = {}
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        key, _, value = item.partition("=")
        key = key.strip()
        if key not in known:
            raise ValueError(
                f"unknown key {key!r}; known: " + ", ".join(known)
            )
        out[key] = known[key](value.strip())
    for required in ("shard", "factor"):
        if required not in out:
            raise ValueError(f"missing required key {required!r}")
    return out


def _run_torture(args) -> int:
    """The composed-fault matrix; exit 1 (plus a minimized repro
    artifact) if any plan fails."""
    from repro.harness import torture

    if args.volume:
        return _run_volume_torture(args)
    families = args.families
    if families is not None:
        unknown = [f for f in families if f not in torture.FAMILIES]
        if unknown:
            print(f"unknown torture families: {', '.join(unknown)}; "
                  f"known: {', '.join(sorted(torture.FAMILIES))}",
                  file=sys.stderr)
            return 2
    points = (
        torture.long_set(families) if args.full
        else torture.quick_set(families)
    )
    print(f"torture matrix: {len(points)} plans "
          f"({'weekly' if args.full else 'quick'} set, "
          f"jobs={args.jobs})")
    verdicts = torture.run_matrix(points)
    rows = []
    failing = None
    for verdict in verdicts:
        params = verdict["params"]
        fault = ",".join(
            f"{k}={params[k]}" for k in
            ("crash_after", "torn", "flaky", "read_error_rate",
             "nvm_crash_after", "nvm_torn")
            if params.get(k)
        ) or "none"
        counters = verdict["counters"]
        rows.append([
            params["workload"], fault, verdict["seed"],
            "ok" if verdict["ok"] else "FAIL",
            verdict["crashed_at"] if verdict["crashed_at"] is not None
            else "-",
            counters["retries"], counters["quarantined"],
            counters["sectors_scrubbed"],
        ])
        if failing is None and not verdict["ok"]:
            failing = verdict
    print(format_table(
        ["workload", "faults", "seed", "verdict", "crash op",
         "retries", "quarantined", "scrubbed"],
        rows, title="Torture matrix",
    ))
    if failing is None:
        print(f"\nall {len(verdicts)} plans survived: recovery clean, "
              f"vlfsck silent, oracle satisfied")
        return 0
    print(f"\nminimizing failing plan {failing['params']} "
          f"seed={failing['seed']} ...", file=sys.stderr)
    minimized = torture.minimize(failing["params"], failing["seed"])
    path = torture.write_repro(failing, minimized)
    print(f"failure minimized to {minimized['params']} "
          f"({minimized['runs']} runs); repro written to {path}",
          file=sys.stderr)
    for line in failing["failures"][:10]:
        print(f"  {line}", file=sys.stderr)
    return 1


def _run_volume_torture(args) -> int:
    """The multi-shard volume matrix; exit 1 (plus a minimized repro
    artifact) if any plan fails."""
    from repro.harness import torture

    points = (
        torture.volume_long_set() if args.full
        else torture.volume_quick_set()
    )
    print(f"volume torture matrix: {len(points)} plans "
          f"({'weekly' if args.full else 'quick'} set, "
          f"jobs={args.jobs})")
    verdicts = torture.run_matrix(points)
    rows = []
    failing = None
    for verdict in verdicts:
        params = verdict["params"]
        faults = []
        if params.get("crash_after"):
            faults.append(f"crash@{params.get('crash_shard')}")
        if params.get("slow_factor", 1.0) != 1.0:
            faults.append(
                f"slow@{params.get('slow_shard')}"
                f"x{params.get('slow_factor'):g}"
            )
        if params.get("flaky"):
            faults.append(f"flaky@{params.get('flaky_shard')}")
        degraded = verdict["degraded_window"]
        window = (
            f"{degraded.get('healthy_ok', 0)}ok/"
            f"{degraded.get('unavailable', 0)}unavail"
            if degraded else "-"
        )
        rows.append([
            params["workload"], params["shards"],
            ",".join(faults) or "none", verdict["seed"],
            "ok" if verdict["ok"] else "FAIL",
            verdict["crashed_at"] if verdict["crashed_at"] is not None
            else "-",
            window,
            verdict["recovery"]["quarantined_sectors"],
        ])
        if failing is None and not verdict["ok"]:
            failing = verdict
    print(format_table(
        ["workload", "shards", "faults", "seed", "verdict", "crash op",
         "degraded", "quarantined"],
        rows, title="Volume torture matrix",
    ))
    if failing is None:
        print(f"\nall {len(verdicts)} plans survived: fault domains held, "
              f"volume-fsck clean, oracle satisfied")
        return 0
    print(f"\nminimizing failing plan {failing['params']} "
          f"seed={failing['seed']} ...", file=sys.stderr)
    minimized = torture.minimize(
        failing["params"], failing["seed"],
        fn=torture.volume_torture_point,
    )
    path = torture.write_repro(failing, minimized)
    print(f"failure minimized to {minimized['params']} "
          f"({minimized['runs']} runs); repro written to {path}",
          file=sys.stderr)
    for line in failing["failures"][:10]:
        print(f"  {line}", file=sys.stderr)
    return 1


def _run_scrub_demo() -> int:
    """A watchable tour of the resilience layer: flaky sectors under
    live data, retries, quarantine, and idle-time migration."""
    from repro.disk.disk import Disk
    from repro.disk.specs import ST19101
    from repro.blockdev.interpose import DiskFaultInjector
    from repro.vlog.vld import VirtualLogDisk

    disk = Disk(ST19101, num_cylinders=4)
    vld = VirtualLogDisk(disk)
    for lba in range(32):
        vld.write_block(lba, bytes([lba % 251]) * vld.block_size)
    from repro.vlog.resilience import MediaError

    victim = vld.imap.get(5)
    sector = victim * vld.sectors_per_block
    DiskFaultInjector(
        flaky_sectors={sector: 0.75}, seed=42
    ).install(disk)
    print(f"32 blocks written; lba 5 lives on physical block {victim}; "
          f"sector {sector} now fails ~75% of read attempts")

    def read5() -> bytes:
        while True:  # the host's own retry loop, as a file system would
            try:
                return vld.read_block(5)[0]
            except MediaError:
                continue

    data = read5()
    res = vld.resilience
    print(f"read lba 5: {res.retries} drive retries, "
          f"{res.media_errors} escalated to the host, data "
          f"{'intact' if data == bytes([5]) * vld.block_size else 'LOST'}; "
          f"suspects queued: {len(res.suspects)}")
    vld.idle(0.5)
    moved = vld.imap.get(5)
    print(f"idle 0.5s: scrubber migrated "
          f"{res.scrubber.blocks_migrated} block(s); lba 5 now on "
          f"physical block {moved}; quarantined sectors: "
          f"{sorted(res.quarantine.sectors)}")
    before = res.retries
    data = read5()
    print(f"re-read lba 5: {res.retries - before} new retries (the "
          f"flaky sector is quarantined and vacated), data "
          f"{'intact' if data == bytes([5]) * vld.block_size else 'LOST'}")
    return 0


def _run_volume_demo() -> int:
    """A watchable tour of the sharded volume's partial-failure story:
    one shard crashes, healthy shards keep serving, down-shard requests
    fail fast after a bounded backoff, a limping shard draws hedged
    reads, and recovery is per-shard."""
    from repro.blockdev.interpose import FaultPlan
    from repro.harness.configs import build_sharded_volume
    from repro.volume import ShardUnavailable, volume_fsck

    volume, _devices, disks = build_sharded_volume(
        shards=3,
        fault_plans={2: FaultPlan(seed=7, slow_factor=8.0,
                                  slow_after_ops=120,
                                  slow_duration_ops=260)},
    )

    def payload(lba: int) -> bytes:
        return bytes([lba % 251]) * volume.block_size

    total = 48
    for lba in range(total):
        volume.write_block(lba, payload(lba))
    print(f"{volume.num_shards}-shard volume, stripe "
          f"{volume.stripe_blocks} blocks: {total} blocks written "
          f"(stripes round-robin across shards)")

    volume.crash_shard(0)
    clock = disks[0].clock
    before = clock.now
    served = failed = 0
    for lba in range(total):
        try:
            data, _ = volume.read_block(lba)
            assert data == payload(lba)
            served += 1
        except ShardUnavailable as fault:
            assert fault.shard == 0
            failed += 1
    print(f"shard 0 crashed; reading all {total} blocks: {served} served "
          f"by healthy shards, {failed} failed fast with ShardUnavailable "
          f"after {clock.now - before:.4f}s of bounded retry backoff")

    limping = [
        lba for lba in range(total) if volume.shard_of(lba)[0] == 2
    ]
    for _ in range(30):
        for lba in limping:
            volume.read_block(lba)
    monitor = volume.monitors[2]
    print(f"shard 2 limps through an 8x fail-slow window: health monitor "
          f"tripped={monitor.tripped} (baseline p99 "
          f"{(monitor.baseline_p99 or 0) * 1e3:.3f}ms, rolling p99 "
          f"{(monitor.rolling_p99() or 0) * 1e3:.3f}ms); "
          f"{volume.hedged_reads[2]} reads hedged")

    outcome = volume.recover_shard(0)
    report = volume_fsck(volume, deep=True)
    intact = sum(
        1 for lba in range(total)
        if volume.read_block(lba)[0] == payload(lba)
    )
    print(f"shard 0 recovered independently "
          f"(power record: {outcome.used_power_down_record}, scanned: "
          f"{outcome.scanned}); {report.summary()}; "
          f"{intact}/{total} blocks intact")
    return 0 if (report.ok and intact == total) else 1


def _report_sweep_stats(args, name: str) -> None:
    stats = sweep.reset_stats()
    if args.cache_stats and stats.points:
        print(f"  [sweep {name}] {stats.summary()}\n")


def _report_metrics(args) -> None:
    """Print and clear the metrics of every stack built so far."""
    stacks = configs.drain_metrics_stacks()
    if not args.metrics:
        return
    for stack_name, metrics in stacks:
        print(f"  [metrics {stack_name}] {metrics.summary()}")
    if stacks:
        print()


if __name__ == "__main__":
    sys.exit(main())
