"""VLFS: the Section 3.3 design, built and behaving as the paper
speculates."""

import random

import pytest

from repro.blockdev.regular import RegularDisk
from repro.disk.cache import ReadAheadPolicy
from repro.disk.disk import Disk
from repro.disk.specs import ST19101
from repro.fs.api import FileExists, FileNotFound
from repro.hosts.specs import SPARCSTATION_10
from repro.lfs.lfs import LFS
from repro.ufs.ufs import UFS
from repro.vlfs.vlfs import VLFS
from repro.vlog.vld import VirtualLogDisk


@pytest.fixture
def vlfs():
    return VLFS(Disk(ST19101), SPARCSTATION_10)


class TestFileSystemSemantics:
    def test_namespace_operations(self, vlfs):
        vlfs.mkdir("/d")
        vlfs.create("/d/f")
        assert vlfs.exists("/d/f")
        with pytest.raises(FileExists):
            vlfs.create("/d/f")
        vlfs.unlink("/d/f")
        with pytest.raises(FileNotFound):
            vlfs.unlink("/d/f")
        vlfs.rmdir("/d")
        assert not vlfs.exists("/d")

    def test_write_read_roundtrip(self, vlfs):
        vlfs.create("/f")
        vlfs.write("/f", 0, b"virtual log fs" * 100)
        vlfs.sync()
        vlfs.drop_caches()
        data, _ = vlfs.read("/f", 0, 1400)
        assert data == (b"virtual log fs" * 100)[:1400]

    def test_large_file_with_indirects(self, vlfs):
        blob = bytes(range(256)) * 16 * 1100  # ~4.4 MB
        vlfs.create("/big")
        vlfs.write("/big", 0, blob)
        vlfs.sync()
        vlfs.drop_caches()
        data, _ = vlfs.read("/big", 0, len(blob))
        assert data == blob

    def test_fuzz_against_reference(self, vlfs):
        rng = random.Random(99)
        vlfs.create("/fuzz")
        model = bytearray()
        for step in range(40):
            offset = rng.randrange(0, 40000)
            payload = bytes([rng.randrange(256)]) * rng.randrange(1, 8000)
            vlfs.write("/fuzz", offset, payload, sync=bool(step % 3))
            if len(model) < offset + len(payload):
                model.extend(bytes(offset + len(payload) - len(model)))
            model[offset : offset + len(payload)] = payload
        vlfs.sync()
        vlfs.drop_caches()
        data, _ = vlfs.read("/fuzz", 0, len(model))
        assert data == bytes(model)

    def test_unlink_returns_space(self, vlfs):
        before = vlfs.utilization
        vlfs.create("/f")
        vlfs.write("/f", 0, bytes(4096) * 200)
        vlfs.sync()
        assert vlfs.utilization > before
        vlfs.unlink("/f")
        vlfs.sync()
        assert vlfs.utilization == pytest.approx(before, abs=0.01)


class TestEagerWriting:
    def test_no_cleaner_ever_runs(self, vlfs):
        rng = random.Random(3)
        vlfs.create("/churn")
        blob = bytes(4096) * 256
        for chunk in range(10):
            vlfs.write("/churn", chunk * len(blob), blob)
        vlfs.sync()
        for _ in range(600):
            vlfs.write(
                "/churn", rng.randrange(2560) * 4096, b"u" * 4096, sync=True
            )
        assert vlfs.cleaner.segments_cleaned == 0

    def test_overwrites_relocate_blocks(self, vlfs):
        vlfs.create("/f")
        vlfs.write("/f", 0, b"1" * 4096, sync=True)
        inode = vlfs._inodes[vlfs.stat("/f").inum]
        first = inode.direct[0]
        vlfs.write("/f", 0, b"2" * 4096, sync=True)
        assert inode.direct[0] != first
        # The old block returned to the free pool.
        assert vlfs.freemap.run_is_free(first * 8, 8)

    def test_sync_writes_hit_disk_async_do_not(self, vlfs):
        vlfs.create("/f")
        writes = vlfs.disk.writes
        vlfs.write("/f", 0, b"a" * 4096)
        assert vlfs.disk.writes == writes
        vlfs.write("/f", 4096, b"b" * 4096, sync=True)
        assert vlfs.disk.writes > writes


class TestRecovery:
    def _populate(self, vlfs, seed=4, files=8):
        rng = random.Random(seed)
        contents = {}
        for i in range(files):
            name = f"/file{i}"
            vlfs.create(name)
            payload = bytes([rng.randrange(256)]) * rng.randrange(100, 30000)
            vlfs.write(name, 0, payload)
            contents[name] = payload
        return contents

    def test_power_down_recovery(self, vlfs):
        contents = self._populate(vlfs)
        vlfs.power_down()
        vlfs.crash()
        outcome = vlfs.recover()
        assert outcome.used_power_down_record
        for name, payload in contents.items():
            data, _ = vlfs.read(name, 0, len(payload))
            assert data == payload
        vlfs.vlog.check_invariants()

    def test_scan_fallback_recovery(self, vlfs):
        contents = self._populate(vlfs)
        vlfs.power_down()
        vlfs.power_store.corrupt()
        vlfs.crash()
        outcome = vlfs.recover()
        assert outcome.scanned
        for name, payload in contents.items():
            data, _ = vlfs.read(name, 0, len(payload))
            assert data == payload

    def test_recovery_restores_space_accounting(self, vlfs):
        self._populate(vlfs)
        vlfs.power_down()
        used_before = vlfs.freemap.free_sectors
        vlfs.crash()
        vlfs.recover()
        assert vlfs.freemap.free_sectors == used_before
        # And service continues.
        vlfs.create("/after")
        vlfs.write("/after", 0, b"works", sync=True)
        data, _ = vlfs.read("/after", 0, 5)
        assert data == b"works"

    def test_unsynced_data_lost_without_nvram(self, vlfs):
        vlfs.create("/f")
        vlfs.write("/f", 0, b"committed", sync=True)
        vlfs.sync()  # the *directory entry* needs its own flush (POSIX)
        vlfs.write("/f", 0, b"volatile!")  # buffered only
        vlfs.crash()  # no orderly power-down: buffer lost
        vlfs.recover()
        data, _ = vlfs.read("/f", 0, 9)
        assert data == b"committed"

    def test_nvram_preserves_buffered_writes(self):
        vlfs = VLFS(Disk(ST19101), SPARCSTATION_10, nvram=True)
        vlfs.create("/f")
        vlfs.write("/f", 0, b"committed", sync=True)
        vlfs.write("/f", 0, b"nv-safe!!")
        vlfs.crash()
        vlfs.recover()
        data, _ = vlfs.read("/f", 0, 9)
        assert data == b"nv-safe!!"


class TestPaperSpeculation:
    """Section 5.1: "by integrating LFS with the virtual log, the VLFS
    should approximate the performance of UFS on the VLD when we must
    write synchronously, while retaining the benefits of LFS when
    asynchronous buffering is acceptable."
    """

    @staticmethod
    def _sync_update_latency(fs, file_bytes=6 << 20, updates=150, seed=6):
        rng = random.Random(seed)
        fs.create("/t")
        chunk = bytes(4096) * 128
        for offset in range(0, file_bytes, len(chunk)):
            fs.write("/t", offset, chunk)
        fs.sync()
        nblocks = file_bytes // 4096
        total = 0.0
        for _ in range(updates):
            offset = rng.randrange(nblocks) * 4096
            total += fs.write("/t", offset, b"u" * 4096, sync=True).total
        return total / updates

    def test_sync_writes_approximate_ufs_on_vld(self):
        vlfs = VLFS(Disk(ST19101), SPARCSTATION_10)
        vld_disk = Disk(ST19101, readahead=ReadAheadPolicy.FULL_TRACK)
        ufs_vld = UFS(VirtualLogDisk(vld_disk), SPARCSTATION_10)
        ufs_reg = UFS(RegularDisk(Disk(ST19101)), SPARCSTATION_10)
        vlfs_lat = self._sync_update_latency(vlfs)
        vld_lat = self._sync_update_latency(ufs_vld)
        reg_lat = self._sync_update_latency(ufs_reg)
        # Same ballpark as UFS-on-VLD; far below update-in-place.
        assert vlfs_lat < 2.5 * vld_lat
        assert vlfs_lat < reg_lat / 2

    def test_async_writes_retain_lfs_benefits(self):
        vlfs = VLFS(Disk(ST19101), SPARCSTATION_10)
        lfs = LFS(RegularDisk(Disk(ST19101)), SPARCSTATION_10)
        results = {}
        for name, fs in (("vlfs", vlfs), ("lfs", lfs)):
            fs.create("/burst")
            total = 0.0
            for i in range(200):
                total += fs.write("/burst", i * 4096, b"a" * 4096).total
            results[name] = total / 200
        # Buffered writes run at memory speed on both.
        assert results["vlfs"] < 2 * results["lfs"] + 1e-3
