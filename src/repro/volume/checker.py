"""Volume-level consistency checking: stripe map vs. shard maps.

Each shard's internal invariants are checked by the existing
:func:`~repro.vlog.resilience.checker.vlfsck`; this layer adds the
checks only the volume can make:

* **layout bijection** -- ``shard_of``/``volume_lba`` must round-trip
  for every volume block and land inside the shard capacity the volume
  claims to use (a broken stripe map silently aliases blocks);
* **capacity agreement** -- the volume's advertised size must equal the
  stripes it can actually place on its shards;
* **orphaned shard mappings** -- a shard block mapped in a shard's
  indirection map but *outside* the volume's stripe range was never
  written by the volume: stripe-map / shard-map disagreement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.vlog.resilience.checker import FsckReport, Violation, vlfsck
from repro.volume.sharded import ShardedVolume


@dataclass
class VolumeFsckReport:
    """Everything one volume fsck pass found."""

    violations: List[Violation] = field(default_factory=list)
    shard_reports: List[FsckReport] = field(default_factory=list)
    checked_lbas: int = 0
    deep: bool = False

    @property
    def ok(self) -> bool:
        return not self.violations and all(
            report.ok for report in self.shard_reports
        )

    def add(self, kind: str, detail: str) -> None:
        self.violations.append(Violation(kind, detail))

    def summary(self) -> str:
        shard_bad = sum(
            len(report.violations) for report in self.shard_reports
        )
        total = len(self.violations) + shard_bad
        if self.ok:
            return (
                f"volume-fsck clean ({len(self.shard_reports)} shard(s), "
                f"{self.checked_lbas} lbas checked"
                f"{', deep' if self.deep else ''})"
            )
        head = "; ".join(
            str(v) for v in self.violations[:3]
        ) or "shard-level violations only"
        return (
            f"volume-fsck: {total} violation(s) "
            f"({shard_bad} inside shards): {head}"
        )


def volume_fsck(
    volume: ShardedVolume, deep: bool = False, sample: int = 4096
) -> VolumeFsckReport:
    """Check a quiescent :class:`ShardedVolume`; returns the report.

    ``sample`` bounds the layout round-trip to an evenly spaced subset
    of volume blocks (every block when the volume is small enough).
    """
    report = VolumeFsckReport(deep=deep)
    _check_layout(volume, report, sample)
    _check_capacity(volume, report)
    for index, shard in enumerate(volume.shards):
        shard_report = vlfsck(shard, deep=deep)
        report.shard_reports.append(shard_report)
        for violation in shard_report.violations:
            report.add(
                f"shard{index}-{violation.kind}", violation.detail
            )
    _check_orphans(volume, report)
    return report


def _check_layout(
    volume: ShardedVolume, report: VolumeFsckReport, sample: int
) -> None:
    step = max(1, volume.num_blocks // max(1, sample))
    capacity = volume.shard_capacity
    for lba in range(0, volume.num_blocks, step):
        shard, s_lba = volume.shard_of(lba)
        report.checked_lbas += 1
        if not 0 <= shard < volume.num_shards:
            report.add(
                "stripe-map",
                f"lba {lba} maps to nonexistent shard {shard}",
            )
            continue
        if not 0 <= s_lba < capacity:
            report.add(
                "stripe-map",
                f"lba {lba} maps outside shard capacity: "
                f"shard {shard} block {s_lba} (capacity {capacity})",
            )
        back = volume.volume_lba(shard, s_lba)
        if back != lba:
            report.add(
                "stripe-map",
                f"layout does not round-trip: lba {lba} -> "
                f"({shard}, {s_lba}) -> {back}",
            )


def _check_capacity(volume: ShardedVolume, report: VolumeFsckReport) -> None:
    if volume.num_shards == 1:
        if volume.num_blocks != volume.shards[0].num_blocks:
            report.add(
                "capacity",
                f"single-shard volume advertises {volume.num_blocks} "
                f"blocks but its shard has {volume.shards[0].num_blocks}",
            )
        return
    expected = (
        volume.shard_rows * volume.stripe_blocks * volume.num_shards
    )
    if volume.num_blocks != expected:
        report.add(
            "capacity",
            f"volume advertises {volume.num_blocks} blocks; layout "
            f"provides {expected}",
        )
    for index, shard in enumerate(volume.shards):
        if volume.shard_capacity > shard.num_blocks:
            report.add(
                "capacity",
                f"shard {index} capacity {shard.num_blocks} below the "
                f"volume's per-shard use of {volume.shard_capacity}",
            )


def _check_orphans(volume: ShardedVolume, report: VolumeFsckReport) -> None:
    capacity = volume.shard_capacity
    for index, shard in enumerate(volume.shards):
        imap = getattr(shard, "imap", None)
        if imap is None:  # not a VLD stack; nothing to cross-check
            continue
        for s_lba, _physical in imap.items():
            if s_lba >= capacity:
                report.add(
                    "shard-map",
                    f"shard {index} maps block {s_lba} beyond the "
                    f"volume's stripe range ({capacity}); the volume "
                    f"never wrote it",
                )
