"""Directory file contents: the variable-length entry format.

A directory is an ordinary file whose blocks hold a sequence of entries::

    <inum:u32> <name_len:u16> <name bytes> ... padding ...

Entries never cross block boundaries (as in FFS); deletion compacts the
block in place.  This module only handles one block's worth of entries --
file systems iterate their directory blocks through their normal data path,
so directory reads and writes cost exactly what file I/O costs.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterable, List, Optional, Tuple

_ENTRY_HEADER = struct.Struct("<IH")


class DirectoryBlock:
    """Parsed contents of one directory block."""

    def __init__(self, block_size: int, entries: Optional[Dict[str, int]] = None):
        self.block_size = block_size
        self.entries: Dict[str, int] = dict(entries or {})

    # -- serialisation ----------------------------------------------------

    def pack(self) -> bytes:
        pieces: List[bytes] = []
        used = 0
        for name, inum in self.entries.items():
            encoded = name.encode()
            piece = _ENTRY_HEADER.pack(inum, len(encoded)) + encoded
            used += len(piece)
            pieces.append(piece)
        if used > self.block_size:
            raise ValueError("directory entries exceed one block")
        pieces.append(bytes(self.block_size - used))
        return b"".join(pieces)

    @classmethod
    def unpack(cls, raw: bytes) -> "DirectoryBlock":
        block = cls(len(raw))
        offset = 0
        while offset + _ENTRY_HEADER.size <= len(raw):
            inum, name_len = _ENTRY_HEADER.unpack(
                raw[offset : offset + _ENTRY_HEADER.size]
            )
            if name_len == 0:
                break  # padding reached
            offset += _ENTRY_HEADER.size
            name = raw[offset : offset + name_len].decode()
            offset += name_len
            block.entries[name] = inum
        return block

    # -- editing ----------------------------------------------------------

    def space_for(self, name: str) -> bool:
        needed = _ENTRY_HEADER.size + len(name.encode())
        return self.used_bytes() + needed <= self.block_size

    def used_bytes(self) -> int:
        return sum(
            _ENTRY_HEADER.size + len(n.encode()) for n in self.entries
        )

    def add(self, name: str, inum: int) -> None:
        if not self.space_for(name):
            raise ValueError("directory block full")
        self.entries[name] = inum

    def remove(self, name: str) -> int:
        return self.entries.pop(name)

    def lookup(self, name: str) -> Optional[int]:
        return self.entries.get(name)

    def __len__(self) -> int:
        return len(self.entries)


def iter_directory(blocks: Iterable[bytes], block_size: int) -> Iterable[Tuple[str, int]]:
    """Yield (name, inum) across a directory's blocks."""
    for raw in blocks:
        for name, inum in DirectoryBlock.unpack(raw[:block_size]).entries.items():
            yield name, inum
