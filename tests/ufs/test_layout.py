import pytest

from repro.ufs.layout import FRAG_SIZE, Superblock, UFSLayout


@pytest.fixture
def layout():
    return UFSLayout.design(total_blocks=5632, blocks_per_group=512)


class TestDesign:
    def test_paper_configuration(self, layout):
        assert layout.block_size == 4096
        assert layout.frag_size == FRAG_SIZE == 1024
        assert layout.frags_per_block == 4

    def test_group_count(self, layout):
        assert layout.sb.num_groups == (5632 - 1) // 512

    def test_inode_sizing(self, layout):
        assert layout.sb.inodes_per_group % layout.inodes_per_block == 0
        assert layout.total_inodes >= 1500  # the Figure 6 workload fits

    def test_metadata_fits(self, layout):
        assert layout.meta_blocks_per_group < layout.sb.blocks_per_group

    def test_tiny_device_rejected(self):
        with pytest.raises(ValueError):
            UFSLayout.design(total_blocks=4)


class TestAddressing:
    def test_group_start_sequence(self, layout):
        assert layout.group_start(0) == 1
        assert layout.group_start(1) == 1 + 512

    def test_region_order(self, layout):
        g = 2
        assert layout.bitmap_block(g) == layout.group_start(g)
        assert layout.itable_start(g) == layout.group_start(g) + 1
        assert layout.data_start(g) == (
            layout.group_start(g) + 1 + layout.itable_blocks
        )

    def test_group_of_block(self, layout):
        assert layout.group_of_block(1) == 0
        assert layout.group_of_block(512) == 0
        assert layout.group_of_block(513) == 1

    def test_superblock_has_no_group(self, layout):
        with pytest.raises(ValueError):
            layout.group_of_block(0)

    def test_inode_position_roundtrip(self, layout):
        for inum in (1, 31, 32, 100, layout.total_inodes - 1):
            block, offset = layout.inode_position(inum)
            group = layout.group_of_inum(inum)
            assert layout.itable_start(group) <= block < layout.data_start(group)
            assert offset % 128 == 0

    def test_inode_zero_invalid(self, layout):
        with pytest.raises(ValueError):
            layout.inode_position(0)

    def test_frag_block_roundtrip(self, layout):
        frag = 4 * 1000 + 3
        lba, offset = layout.frag_to_block(frag)
        assert lba == 1000
        assert offset == 3 * 1024
        assert layout.block_to_frag(lba) + 3 == frag

    def test_bitmap_layout_fits_one_block(self, layout):
        offsets = layout.bitmap_layout()
        assert offsets[2] <= layout.block_size


class TestSuperblockSerialisation:
    def test_roundtrip(self, layout):
        raw = layout.sb.pack()
        assert len(raw) == 4096
        parsed = Superblock.unpack(raw)
        assert parsed == layout.sb

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            Superblock.unpack(b"\x00" * 4096)
