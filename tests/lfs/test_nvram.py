import pytest

from repro.lfs.nvram import FileCache


@pytest.fixture
def cache():
    return FileCache(capacity_bytes=16 * 4096, block_size=4096)


class TestBasics:
    def test_miss_returns_none(self, cache):
        assert cache.get((1, 0)) is None
        assert cache.misses == 1

    def test_put_get(self, cache):
        cache.put_clean((1, 0), b"a" * 4096)
        assert cache.get((1, 0)) == b"a" * 4096
        assert cache.hits == 1

    def test_dirty_tracking(self, cache):
        cache.put_dirty((1, 0), b"d" * 4096)
        assert cache.dirty_blocks == 1
        cache.mark_clean((1, 0))
        assert cache.dirty_blocks == 0

    def test_clean_put_never_clobbers_dirty(self, cache):
        cache.put_dirty((1, 0), b"new" + bytes(4093))
        cache.put_clean((1, 0), b"old" + bytes(4093))
        assert cache.get((1, 0)).startswith(b"new")

    def test_dirty_put_overwrites(self, cache):
        cache.put_clean((1, 0), b"old" + bytes(4093))
        cache.put_dirty((1, 0), b"new" + bytes(4093))
        assert cache.get((1, 0)).startswith(b"new")

    def test_forget(self, cache):
        cache.put_dirty((1, 0), bytes(4096))
        cache.forget((1, 0))
        assert (1, 0) not in cache

    def test_forget_inode(self, cache):
        cache.put_dirty((1, 0), bytes(4096))
        cache.put_dirty((1, 5), bytes(4096))
        cache.put_dirty((2, 0), bytes(4096))
        cache.forget_inode(1)
        assert (1, 0) not in cache
        assert (2, 0) in cache

    def test_dirty_items_for(self, cache):
        cache.put_dirty((1, 0), bytes(4096))
        cache.put_dirty((2, 0), bytes(4096))
        items = cache.dirty_items_for(1)
        assert [key for key, _ in items] == [(1, 0)]


class TestCapacity:
    def test_clean_evicted_under_pressure(self, cache):
        for i in range(20):
            cache.put_clean((1, i), bytes(4096))
        assert cache.total_blocks <= cache.capacity_blocks

    def test_would_overflow_counts_dirty_only(self, cache):
        for i in range(10):
            cache.put_clean((1, i), bytes(4096))
        assert not cache.would_overflow(1)
        for i in range(16):
            cache.put_dirty((2, i), bytes(4096))
        assert cache.would_overflow(1)

    def test_dirty_never_evicted_by_clean_pressure(self, cache):
        cache.put_dirty((9, 9), b"keep" + bytes(4092))
        for i in range(40):
            cache.put_clean((1, i), bytes(4096))
        assert cache.get((9, 9)).startswith(b"keep")


class TestCrashSemantics:
    def test_dram_loses_everything(self):
        cache = FileCache(nvram=False)
        cache.put_dirty((1, 0), bytes(4096))
        cache.crash()
        assert cache.total_blocks == 0

    def test_nvram_survives(self):
        cache = FileCache(nvram=True)
        cache.put_dirty((1, 0), b"safe" + bytes(4092))
        cache.crash()
        assert cache.get((1, 0)).startswith(b"safe")

    def test_drop_clean_spares_dirty(self, cache):
        cache.put_clean((1, 0), bytes(4096))
        cache.put_dirty((1, 1), bytes(4096))
        cache.drop_clean()
        assert (1, 0) not in cache
        assert (1, 1) in cache

    def test_paper_capacity(self):
        cache = FileCache()  # defaults: 6.1 MB of 4 KB blocks
        assert cache.capacity_blocks == int(6.1 * 2**20) // 4096
