"""Figure 1: time to locate the first free sector vs disk utilization,
analytical model vs eager-writing simulation, for both drives."""

from repro.harness import experiments
from repro.harness.report import format_table

from .conftest import full_scale, run_once


def test_figure1(benchmark):
    trials = 500 if full_scale() else 200
    fractions = [0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]

    result = run_once(
        benchmark,
        lambda: experiments.figure1(fractions=fractions, trials=trials),
    )

    print()
    for disk in ("HP97560", "ST19101"):
        series = result[disk]
        rows = [
            [
                f"{1 - p:.0%}",
                model * 1e3,
                sim * 1e3,
            ]
            for p, model, sim in zip(
                series["free_fraction"],
                series["model_seconds"],
                series["simulated_seconds"],
            )
        ]
        print(
            format_table(
                ["utilization", "model (ms)", "simulated (ms)"],
                rows,
                title=f"Figure 1 ({disk}): locate-free-sector latency",
            )
        )
        print()

    # Shape assertions: model tracks simulation; latency monotone in
    # utilization; Seagate ~an order of magnitude below HP.
    for disk in ("HP97560", "ST19101"):
        sims = result[disk]["simulated_seconds"]
        models = result[disk]["model_seconds"]
        assert sims[0] > sims[-1]
        for model, sim in zip(models, sims):
            assert sim < 4 * model + 5e-4
    mid = len(fractions) // 2
    assert (
        result["HP97560"]["model_seconds"][mid]
        > 5 * result["ST19101"]["model_seconds"][mid]
    )
