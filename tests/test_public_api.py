"""The README's front-door code paths, kept honest."""

import repro


class TestReadmeSnippets:
    def test_quickstart_block_device(self):
        vld = repro.VirtualLogDisk(repro.Disk(repro.ST19101))
        breakdown = vld.write_block(1234, b"payload" + bytes(4089))
        assert breakdown.total > 0
        vld.power_down()
        vld.crash()
        outcome = vld.recover()
        assert outcome.used_power_down_record
        data, _ = vld.read_block(1234)
        assert data.startswith(b"payload")

    def test_quickstart_file_system(self):
        fs = repro.UFS(
            repro.VirtualLogDisk(repro.Disk(repro.ST19101)),
            repro.SPARCSTATION_10,
        )
        fs.mkdir("/mail")
        fs.create("/mail/inbox")
        fs.write("/mail/inbox", 0, b"hello", sync=True)
        data, latency = fs.read("/mail/inbox", 0, 5)
        assert data == b"hello"
        assert latency.total > 0

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_every_public_module_has_docstring(self):
        import importlib
        import pkgutil

        for module_info in pkgutil.walk_packages(
            repro.__path__, prefix="repro."
        ):
            module = importlib.import_module(module_info.name)
            assert module.__doc__, f"{module_info.name} lacks a docstring"


class TestCrossLayerSmoke:
    def test_all_three_filesystems_share_the_api(self):
        from repro.blockdev import RegularDisk

        stacks = [
            repro.UFS(
                RegularDisk(repro.Disk(repro.ST19101)),
                repro.SPARCSTATION_10,
            ),
            repro.LFS(
                RegularDisk(repro.Disk(repro.ST19101)),
                repro.SPARCSTATION_10,
            ),
            repro.VLFS(repro.Disk(repro.ST19101), repro.SPARCSTATION_10),
        ]
        for fs in stacks:
            fs.mkdir("/d")
            fs.create("/d/f")
            fs.write("/d/f", 0, b"shared api", sync=True)
            fs.rename("/d/f", "/d/g")
            fs.truncate("/d/g", 6)
            fs.sync()
            fs.drop_caches()
            data, _ = fs.read("/d/g", 0, 10)
            assert data == b"shared"
            fs.unlink("/d/g")
            fs.rmdir("/d")
            assert fs.listdir("/") == []

    def test_vld_read_blocks_with_holes(self):
        vld = repro.VirtualLogDisk(repro.Disk(repro.ST19101))
        vld.write_block(10, b"\x01" * 4096)
        vld.write_block(12, b"\x03" * 4096)
        data, _ = vld.read_blocks(9, 5)  # hole, mapped, hole, mapped, hole
        assert data[0:4096] == bytes(4096)
        assert data[4096:8192] == b"\x01" * 4096
        assert data[8192:12288] == bytes(4096)
        assert data[12288:16384] == b"\x03" * 4096
        assert data[16384:] == bytes(4096)

    def test_disk_transfer_across_cylinder_boundary(self):
        disk = repro.Disk(repro.ST19101)
        per_cyl = disk.geometry.sectors_per_cylinder
        start = per_cyl - 16  # last 16 sectors of cylinder 0
        payload = bytes(range(256)) * (32 * 512 // 256)
        disk.write(start, 32, payload)
        data, _ = disk.read(start, 32)
        assert data == payload
        assert disk.head_cylinder == 1
