import pytest

from repro.ufs.bitmap import Bitmap


class TestBasics:
    def test_starts_all_free(self):
        bitmap = Bitmap(100)
        assert bitmap.free_count == 100
        assert not bitmap.test(0)

    def test_set_clear(self):
        bitmap = Bitmap(10)
        bitmap.set(3)
        assert bitmap.test(3)
        assert bitmap.free_count == 9
        bitmap.clear(3)
        assert not bitmap.test(3)
        assert bitmap.free_count == 10

    def test_idempotent(self):
        bitmap = Bitmap(10)
        bitmap.set(3)
        bitmap.set(3)
        assert bitmap.free_count == 9
        bitmap.clear(3)
        bitmap.clear(3)
        assert bitmap.free_count == 10

    def test_bounds(self):
        bitmap = Bitmap(10)
        with pytest.raises(IndexError):
            bitmap.test(10)
        with pytest.raises(IndexError):
            bitmap.set(-1)

    def test_pack_load_roundtrip(self):
        bitmap = Bitmap(77)
        for i in (0, 13, 76):
            bitmap.set(i)
        reloaded = Bitmap(77, bitmap.pack())
        assert reloaded.free_count == 74
        for i in (0, 13, 76):
            assert reloaded.test(i)


class TestFindFree:
    def test_finds_from_goal(self):
        bitmap = Bitmap(16)
        bitmap.set(5)
        assert bitmap.find_free(5) == 6

    def test_wraps(self):
        bitmap = Bitmap(8)
        for i in range(4, 8):
            bitmap.set(i)
        assert bitmap.find_free(6) == 0

    def test_full_returns_none(self):
        bitmap = Bitmap(4)
        for i in range(4):
            bitmap.set(i)
        assert bitmap.find_free() is None


class TestFindFreeRun:
    def test_aligned_run(self):
        bitmap = Bitmap(32)
        bitmap.set(0)  # blocks run at 0
        assert bitmap.find_free_run(4, align=4) == 4

    def test_run_needs_contiguity(self):
        bitmap = Bitmap(16)
        bitmap.set(2)
        bitmap.set(6)
        bitmap.set(10)
        bitmap.set(14)
        assert bitmap.find_free_run(4, align=4) is None
        assert bitmap.find_free_run(2, align=1) is not None

    def test_goal_rounds_to_alignment(self):
        bitmap = Bitmap(32)
        assert bitmap.find_free_run(4, align=4, goal=5) == 4

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            Bitmap(8).find_free_run(0)


class TestFragRun:
    def test_prefers_partially_used_blocks(self):
        """Classic FFS: keep fragments together so whole blocks survive."""
        bitmap = Bitmap(16)  # 4 blocks x 4 frags
        bitmap.set(4)  # block 1 partially used
        assert bitmap.find_frag_run(2, 4) in (5, 6)

    def test_falls_back_to_fresh_block(self):
        bitmap = Bitmap(16)
        assert bitmap.find_frag_run(3, 4) == 0

    def test_never_spans_blocks(self):
        bitmap = Bitmap(8)  # 2 blocks x 4 frags
        # Block 0: frags 0,1 used; block 1: frags 6,7 used.
        for i in (0, 1, 6, 7):
            bitmap.set(i)
        # A 3-frag run exists only spanning 3..5, which crosses blocks.
        assert bitmap.find_frag_run(3, 4) is None
        assert bitmap.find_frag_run(2, 4) in (2, 4)

    def test_run_too_big_rejected(self):
        with pytest.raises(ValueError):
            Bitmap(16).find_frag_run(5, 4)
