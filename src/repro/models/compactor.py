"""The model assuming a compactor (Section 2.3, Appendix A.2).

With an idle-time compactor regenerating empty tracks, the allocator can
fill an empty track until only ``m`` of its ``n`` sectors remain free, then
switch tracks.  Between switches, writes follow the single-track model with
a shrinking number of free sectors, so the total slots skipped per track
fill is::

    sum_{i=m+1}^{n} (n - i) / (1 + i)                            (10)

Charging one track switch (cost ``s``) per ``n - m`` writes gives the
average latency (11), and approximating the sum by an integral plus an
empirical correction ``epsilon(n, m)`` (12) for the *non-randomness* of the
free-space distribution yields the closed form::

    ( s + r * [ (n+1) ln((n+2)/(m+2)) - (n-m) + eps(n,m) ] ) / (n-m)   (13)

where ``r`` is the rotational delay per sector.  The model exhibits the
U-shape of Figure 2: switching too often pays too many switch costs,
switching too rarely crowds the track.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.disk.specs import DiskSpec


def total_skip_exact(n: int, m: int) -> float:
    """Formula (10): exact total slots skipped filling a track from empty
    down to ``m`` free sectors."""
    _validate(n, m)
    return sum((n - i) / (1.0 + i) for i in range(m + 1, n + 1))


def nonrandomness_correction(n: int, m: int) -> float:
    """Formula (12): the empirical correction ``epsilon(n, m)``.

    Accounts for free space *not* being randomly distributed when a track is
    filled to a threshold (a free sector right after used ones is likelier
    to be picked than one after free ones).  The paper found this form to
    work well across a wide range of disk parameters.
    """
    _validate(n, m)
    rho = 1.0 + n / 36.0
    numerator = max(n - m - 0.5, 0.0) ** (rho + 2.0)
    denominator = (8.0 - n / 96.0) * (rho + 2.0) * n**rho
    if denominator <= 0.0:
        raise ValueError(
            f"correction undefined for n={n}: denominator non-positive "
            "(the empirical form was fit for n < 768)"
        )
    return numerator / denominator


def average_latency_exact(
    n: int, m: int, switch_time: float, sector_time: float, corrected: bool = True
) -> float:
    """Formula (11) (+ optional (12) correction): average seconds per write."""
    _validate(n, m)
    if n == m:
        raise ValueError("threshold m must leave at least one writable sector")
    skips = total_skip_exact(n, m)
    if corrected:
        skips += nonrandomness_correction(n, m)
    return (switch_time + sector_time * skips) / (n - m)


def average_latency_closed_form(
    n: int, m: int, switch_time: float, sector_time: float, corrected: bool = True
) -> float:
    """Formula (13): the paper's closed-form average latency in seconds."""
    _validate(n, m)
    if n == m:
        raise ValueError("threshold m must leave at least one writable sector")
    skips = (n + 1.0) * math.log((n + 2.0) / (m + 2.0)) - (n - m)
    if corrected:
        skips += nonrandomness_correction(n, m)
    return (switch_time + sector_time * skips) / (n - m)


def optimal_threshold(
    spec: DiskSpec, switch_time: float = 0.0
) -> Tuple[int, float]:
    """Minimise (13) over the switch threshold ``m`` for a drive.

    Args:
        spec: The disk whose ``n`` and rotational speed to use.
        switch_time: Track-switch cost; defaults to the drive's head-switch
            time when 0.0 is passed.

    Returns:
        ``(m, latency_seconds)`` at the optimum.  This is the "judicious
        selection of an optimal threshold" Section 2.3 describes -- the VLD
        implementation uses a 75 % fill (m = n/4) which the model shows to
        be near-optimal for both drives.
    """
    n = spec.sectors_per_track
    s = switch_time if switch_time > 0.0 else spec.head_switch_time
    r = spec.sector_time
    best_m, best_latency = 1, float("inf")
    for m in range(1, n):
        latency = average_latency_closed_form(n, m, s, r)
        if latency < best_latency:
            best_m, best_latency = m, latency
    return best_m, best_latency


def _validate(n: int, m: int) -> None:
    if n <= 0:
        raise ValueError("n must be positive")
    if not 0 <= m <= n:
        raise ValueError("m must satisfy 0 <= m <= n")
