"""The on-disk inode, shared by the UFS, LFS, and VLFS implementations.

Classic FFS shape: 12 direct block pointers, one single-indirect and one
double-indirect pointer.  With 4 KB blocks and 4-byte pointers an indirect
block holds 1024 pointers, so files up to 12 + 1024 + 1024**2 blocks
(~4 GB) are addressable -- far beyond the 24 MB simulated disks.

Pointer values are *block addresses in the owning file system's space*:
logical device blocks for UFS, log addresses for LFS.  The value 0 is
"no block" (a hole); real FFS does the same, which is why block 0 is never
a file data block in any of our layouts.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List

#: Number of direct block pointers.
NUM_DIRECT = 12

#: Serialized inode size in bytes; 32 inodes per 4 KB block.
INODE_SIZE = 128

_FIXED = struct.Struct("<IIQQddII")  # type,nlink,size,frag,atime,mtime,gen,pad
_PTRS = struct.Struct(f"<{NUM_DIRECT + 2}I")


class FileType:
    FREE = 0
    REGULAR = 1
    DIRECTORY = 2


@dataclass
class Inode:
    """In-memory inode; (de)serialises to :data:`INODE_SIZE` bytes."""

    itype: int = FileType.FREE
    nlink: int = 0
    size: int = 0
    #: UFS only: address (in fragments) of the tail-fragment run, and its
    #: length in fragments, packed as (addr << 8) | count.  0 = none.
    frag_info: int = 0
    atime: float = 0.0
    mtime: float = 0.0
    generation: int = 0
    direct: List[int] = field(default_factory=lambda: [0] * NUM_DIRECT)
    indirect: int = 0
    double_indirect: int = 0

    @property
    def is_dir(self) -> bool:
        return self.itype == FileType.DIRECTORY

    @property
    def is_free(self) -> bool:
        return self.itype == FileType.FREE

    def pack(self) -> bytes:
        fixed = _FIXED.pack(
            self.itype,
            self.nlink,
            self.size,
            self.frag_info,
            self.atime,
            self.mtime,
            self.generation,
            0,
        )
        ptrs = _PTRS.pack(*self.direct, self.indirect, self.double_indirect)
        raw = fixed + ptrs
        return raw + bytes(INODE_SIZE - len(raw))

    @classmethod
    def unpack(cls, raw: bytes) -> "Inode":
        if len(raw) < INODE_SIZE:
            raise ValueError(f"inode requires {INODE_SIZE} bytes")
        itype, nlink, size, frag, atime, mtime, gen, _pad = _FIXED.unpack(
            raw[: _FIXED.size]
        )
        values = _PTRS.unpack(
            raw[_FIXED.size : _FIXED.size + _PTRS.size]
        )
        return cls(
            itype=itype,
            nlink=nlink,
            size=size,
            frag_info=frag,
            atime=atime,
            mtime=mtime,
            generation=gen,
            direct=list(values[:NUM_DIRECT]),
            indirect=values[NUM_DIRECT],
            double_indirect=values[NUM_DIRECT + 1],
        )

    # -- tail fragment helpers (UFS) -------------------------------------

    def set_tail_frags(self, frag_addr: int, frag_count: int) -> None:
        """Record the tail-fragment run (UFS small-file tails)."""
        if frag_count == 0:
            self.frag_info = 0
        else:
            self.frag_info = (frag_addr << 8) | (frag_count & 0xFF)

    def tail_frags(self):
        """Return (frag_addr, frag_count); count 0 when no tail run."""
        if self.frag_info == 0:
            return 0, 0
        return self.frag_info >> 8, self.frag_info & 0xFF

    def reset(self) -> None:
        """Return the inode to its freshly-freed state."""
        self.itype = FileType.FREE
        self.nlink = 0
        self.size = 0
        self.frag_info = 0
        self.direct = [0] * NUM_DIRECT
        self.indirect = 0
        self.double_indirect = 0


def pointers_per_block(block_size: int) -> int:
    """How many 4-byte block pointers fit in one indirect block."""
    return block_size // 4


def max_file_blocks(block_size: int) -> int:
    """Largest file (in blocks) the inode geometry can address."""
    ppb = pointers_per_block(block_size)
    return NUM_DIRECT + ppb + ppb * ppb
