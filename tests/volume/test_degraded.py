"""Degraded-mode operation: bounded unavailability, no hangs, and
hedged reads against a fail-slow shard."""

import pytest

from repro.blockdev.interpose import FaultPlan
from repro.harness.configs import build_sharded_volume
from repro.vlog.resilience import RetryPolicy
from repro.volume import ShardUnavailable


def payload(lba, size):
    return bytes([lba % 251]) * size


def fill(volume, n=24):
    for lba in range(n):
        volume.write_block(lba, payload(lba, volume.block_size))


class TestBoundedUnavailability:
    def test_down_shard_requests_fail_within_the_retry_budget(self):
        policy = RetryPolicy(
            max_attempts=3, initial_backoff=0.002, backoff_factor=2.0
        )
        volume, _, disks = build_sharded_volume(
            shards=3, num_cylinders=2, retry_policy=policy
        )
        fill(volume)
        volume.crash_shard(1)
        budget = policy.backoff(1) + policy.backoff(2)
        clock = disks[0].clock
        victim = next(
            lba for lba in range(24) if volume.shard_of(lba)[0] == 1
        )
        before = clock.now
        with pytest.raises(ShardUnavailable):
            volume.read_block(victim)
        # The request paid exactly the bounded budget -- deterministic
        # simulated time, not a hang, not a free instant failure.
        assert clock.now - before == pytest.approx(budget)
        assert volume.backoff_seconds[1] == pytest.approx(budget)
        assert volume.unavailable_errors[1] == 1

    def test_down_shard_is_never_called(self):
        volume, _, _ = build_sharded_volume(shards=3, num_cylinders=2)
        fill(volume)
        volume.crash_shard(0)
        calls_before = volume.shard_calls[0]
        victim = next(
            lba for lba in range(24) if volume.shard_of(lba)[0] == 0
        )
        for _ in range(3):
            with pytest.raises(ShardUnavailable):
                volume.write_block(victim, payload(9, volume.block_size))
        assert volume.shard_calls[0] == calls_before
        assert volume.unavailable_errors[0] == 3

    def test_healthy_io_flows_while_one_shard_is_down(self):
        volume, _, _ = build_sharded_volume(shards=3, num_cylinders=2)
        fill(volume)
        volume.crash_shard(2)
        size = volume.block_size
        healthy = [
            lba for lba in range(24) if volume.shard_of(lba)[0] != 2
        ]
        for lba in healthy:
            volume.write_block(lba, payload(lba + 100, size))
        for lba in healthy:
            data, _ = volume.read_block(lba)
            assert data == payload(lba + 100, size)

    def test_unavailable_carries_shard_and_cause(self):
        volume, _, _ = build_sharded_volume(shards=3, num_cylinders=2)
        fill(volume)
        volume.crash_shard(1)
        victim = next(
            lba for lba in range(24) if volume.shard_of(lba)[0] == 1
        )
        with pytest.raises(ShardUnavailable) as err:
            volume.read_block(victim)
        assert err.value.shard == 1
        assert "backoff" in str(err.value)


class TestHedgedReads:
    def hedging_volume(self, factor=16.0):
        # The slow onset sits past the monitor's 32-sample baseline so
        # "normal" is learned from genuinely normal operations.
        plan = FaultPlan(
            seed=5, slow_factor=factor, slow_after_ops=64,
            slow_duration_ops=4000,
        )
        return build_sharded_volume(
            shards=3, num_cylinders=2, fault_plans={1: plan}
        )

    def read_until_tripped(self, volume, rounds=60):
        limping = [
            lba for lba in range(24) if volume.shard_of(lba)[0] == 1
        ]
        for _ in range(rounds):
            for lba in limping:
                volume.read_block(lba)
            if volume.monitors[1].tripped:
                return True
        return volume.monitors[1].tripped

    def test_monitor_trips_and_reads_get_hedged(self):
        volume, _, _ = self.hedging_volume()
        fill(volume)
        assert self.read_until_tripped(volume)
        before = volume.hedged_reads[1]
        limping = [
            lba for lba in range(24) if volume.shard_of(lba)[0] == 1
        ]
        for lba in limping:
            volume.read_block(lba)
        assert volume.hedged_reads[1] > before

    def test_hedged_read_is_cheaper_than_unhedged(self):
        # 64x surplus dwarfs the monitor's hedge delay, so the cap binds.
        hedged_vol, _, _ = self.hedging_volume(factor=64.0)
        fill(hedged_vol)
        assert self.read_until_tripped(hedged_vol)
        lba = next(
            l for l in range(24) if hedged_vol.shard_of(l)[0] == 1
        )
        _, hedged_cost = hedged_vol.read_block(lba)

        plain_vol, _, _ = build_sharded_volume(
            shards=3, num_cylinders=2,
            fault_plans={1: FaultPlan(
                seed=5, slow_factor=64.0, slow_after_ops=64,
                slow_duration_ops=4000,
            )},
            hedge_reads=False,
        )
        fill(plain_vol)
        self.read_until_tripped(plain_vol)  # same op sequence, no trip use
        _, raw_cost = plain_vol.read_block(lba)
        # The hedge caps the fail-slow surplus at the monitor's delay;
        # the unhedged read pays the full 16x factor.
        assert hedged_cost.total < raw_cost.total

    def test_hedge_cap_is_restored_after_the_read(self):
        volume, devices, _ = self.hedging_volume()
        fill(volume)
        assert self.read_until_tripped(volume)
        layer = volume._fault_layers[1]
        lba = next(
            l for l in range(24) if volume.shard_of(l)[0] == 1
        )
        volume.read_block(lba)
        assert layer.hedge_cap is None

    def test_recovered_shard_relearns_its_baseline(self):
        volume, _, _ = self.hedging_volume()
        fill(volume)
        assert self.read_until_tripped(volume)
        volume.recover_shard(1)
        monitor = volume.monitors[1]
        assert not monitor.tripped
        assert monitor.baseline_p99 is None
        assert monitor.samples == 0
