"""LFS on-disk layout.

::

    block 0                       superblock
    blocks 1 .. 2*cp_blocks       two alternating checkpoint slots
    seg_start ..                  segments (summary block + data blocks)

Segments are 0.5 MB (128 blocks) as in the paper's LLD port; the first
block of each segment is its summary.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

_SB = struct.Struct("<8sIIIIII")
_MAGIC = b"REPROLFS"


@dataclass
class LFSSuperblock:
    block_size: int
    total_blocks: int
    segment_blocks: int
    num_segments: int
    seg_start: int
    max_inodes: int

    def pack(self) -> bytes:
        raw = _SB.pack(
            _MAGIC,
            self.block_size,
            self.total_blocks,
            self.segment_blocks,
            self.num_segments,
            self.seg_start,
            self.max_inodes,
        )
        return raw + bytes(self.block_size - len(raw))

    @classmethod
    def unpack(cls, raw: bytes) -> "LFSSuperblock":
        magic, bs, total, segb, nseg, start, maxi = _SB.unpack(raw[: _SB.size])
        if magic != _MAGIC:
            raise ValueError("not an LFS superblock")
        return cls(bs, total, segb, nseg, start, maxi)


class LFSLayout:
    """Derived layout facts."""

    #: Checkpoint slots (alternating).
    CHECKPOINT_SLOTS = 2

    def __init__(self, sb: LFSSuperblock) -> None:
        self.sb = sb
        self.block_size = sb.block_size
        self.segment_blocks = sb.segment_blocks
        #: data blocks per segment (one block is the summary)
        self.data_blocks_per_segment = sb.segment_blocks - 1
        self.segment_bytes = sb.segment_blocks * sb.block_size

    @classmethod
    def design(
        cls,
        total_blocks: int,
        block_size: int = 4096,
        segment_bytes: int = 512 << 10,
        max_inodes: int = 4096,
    ) -> "LFSLayout":
        segment_blocks = segment_bytes // block_size
        if segment_blocks < 2:
            raise ValueError("segments must hold a summary plus data")
        cp_blocks = cls.checkpoint_slot_blocks(
            block_size, max_inodes, total_blocks
        )
        seg_start = 1 + cls.CHECKPOINT_SLOTS * cp_blocks
        num_segments = (total_blocks - seg_start) // segment_blocks
        if num_segments < 4:
            raise ValueError("device too small for a useful log")
        sb = LFSSuperblock(
            block_size=block_size,
            total_blocks=total_blocks,
            segment_blocks=segment_blocks,
            num_segments=num_segments,
            seg_start=seg_start,
            max_inodes=max_inodes,
        )
        return cls(sb)

    @staticmethod
    def checkpoint_slot_blocks(
        block_size: int, max_inodes: int, total_blocks: int
    ) -> int:
        """Blocks per checkpoint slot: header + imap + segment usage."""
        imap_bytes = max_inodes * 4
        # worst-case segment count if the whole device were segments
        max_segments = total_blocks // 2 + 1
        usage_bytes = max_segments * 12
        payload = imap_bytes + usage_bytes
        return 1 + -(-payload // block_size)

    # -- addressing -------------------------------------------------------

    def checkpoint_slot_start(self, slot: int) -> int:
        if not 0 <= slot < self.CHECKPOINT_SLOTS:
            raise ValueError("bad checkpoint slot")
        cp_blocks = (self.sb.seg_start - 1) // self.CHECKPOINT_SLOTS
        return 1 + slot * cp_blocks

    def segment_start(self, segment: int) -> int:
        self._check_segment(segment)
        return self.sb.seg_start + segment * self.segment_blocks

    def segment_of_block(self, lba: int) -> int:
        if lba < self.sb.seg_start:
            raise ValueError(f"block {lba} is not in the log area")
        segment = (lba - self.sb.seg_start) // self.segment_blocks
        self._check_segment(segment)
        return segment

    def _check_segment(self, segment: int) -> None:
        if not 0 <= segment < self.sb.num_segments:
            raise ValueError(f"segment {segment} out of range")
