"""Figure 2: average latency to locate free sectors while filling empty
tracks, as a function of the track-switch threshold; model vs simulation."""

from repro.harness import experiments
from repro.harness.report import format_table

from .conftest import full_scale, run_once


def test_figure2(benchmark):
    trials = 80 if full_scale() else 25
    thresholds = [0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]

    result = run_once(
        benchmark,
        lambda: experiments.figure2(thresholds=thresholds, trials=trials),
    )

    print()
    for disk in ("HP97560", "ST19101"):
        series = result[disk]
        rows = [
            [f"{t:.0%}", model * 1e3, sim * 1e3]
            for t, model, sim in zip(
                series["threshold"],
                series["model_seconds"],
                series["simulated_seconds"],
            )
        ]
        print(
            format_table(
                ["reserved free", "model (ms)", "simulated (ms)"],
                rows,
                title=f"Figure 2 ({disk}): track-fill latency vs threshold",
            )
        )
        print()

    # U-shape: the middle beats both extremes, in model and simulation.
    for disk in ("HP97560", "ST19101"):
        for key in ("model_seconds", "simulated_seconds"):
            series = result[disk][key]
            middle = min(series[3:7])
            assert middle < series[0]
            assert middle <= series[-1]
