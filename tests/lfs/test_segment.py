import pytest

from repro.blockdev.regular import RegularDisk
from repro.disk.disk import Disk
from repro.disk.specs import ST19101
from repro.lfs.layout import LFSLayout
from repro.lfs.segment import (
    BlockKind,
    SegmentSummary,
    SegmentWriter,
    SummaryEntry,
)


@pytest.fixture
def setup():
    device = RegularDisk(Disk(ST19101))
    layout = LFSLayout.design(device.num_blocks)
    free = list(range(layout.sb.num_segments))
    writer = SegmentWriter(
        device, layout, pick_free_segment=lambda: free.pop(0),
        partial_threshold=0.75,
    )
    return device, layout, writer


class TestSummary:
    def test_roundtrip(self):
        summary = SegmentSummary(
            seqno=5,
            timestamp=1.25,
            entries=[
                SummaryEntry(BlockKind.DATA, 2, 7),
                SummaryEntry(BlockKind.INODE_BLOCK, 1, 0),
                SummaryEntry(BlockKind.INDIRECT, 2, BlockKind.SINGLE_INDIRECT),
            ],
        )
        parsed = SegmentSummary.unpack(summary.pack(4096))
        assert parsed == summary

    def test_garbage_rejected(self):
        assert SegmentSummary.unpack(bytes(4096)) is None

    def test_negative_fblk_codes(self):
        assert BlockKind.level1(0) == -3
        assert BlockKind.level1(5) == -8


class TestWriter:
    def test_stage_assigns_monotonic_addresses(self, setup):
        _device, layout, writer = setup
        addresses = [
            writer.stage(BlockKind.DATA, 2, i, bytes(4096))[0]
            for i in range(5)
        ]
        start = layout.segment_start(0)
        assert addresses == [start + 1 + i for i in range(5)]

    def test_staged_data_visible_before_write(self, setup):
        _device, _layout, writer = setup
        payload = b"peekaboo" + bytes(4088)
        address, _ = writer.stage(BlockKind.DATA, 2, 0, payload)
        assert writer.staged_data(address) == payload
        assert writer.staged_data(address + 1) is None

    def test_full_segment_auto_writes(self, setup):
        device, layout, writer = setup
        for i in range(layout.data_blocks_per_segment):
            writer.stage(BlockKind.DATA, 2, i, bytes([i % 256]) * 4096)
        assert writer.segments_written == 1
        assert writer.staged_blocks == 0
        # Summary landed at the segment start.
        raw, _ = device.read_block(layout.segment_start(0))
        summary = SegmentSummary.unpack(raw)
        assert len(summary.entries) == layout.data_blocks_per_segment

    def test_wrong_block_size_rejected(self, setup):
        _device, _layout, writer = setup
        with pytest.raises(ValueError):
            writer.stage(BlockKind.DATA, 2, 0, b"small")

    def test_sync_below_threshold_is_partial(self, setup):
        device, layout, writer = setup
        for i in range(10):  # well below 75 % of 127
            writer.stage(BlockKind.DATA, 2, i, bytes(4096))
        writer.sync()
        assert writer.partial_flushes == 1
        assert writer.staged_blocks == 10  # memory copy retained
        assert writer.current_segment == 0

    def test_sync_above_threshold_retires_segment(self, setup):
        _device, layout, writer = setup
        for i in range(100):  # above 75 % of 127
            writer.stage(BlockKind.DATA, 2, i, bytes(4096))
        writer.sync()
        assert writer.segments_written == 1
        assert writer.current_segment is None

    def test_second_partial_sync_writes_only_delta(self, setup):
        device, _layout, writer = setup
        for i in range(10):
            writer.stage(BlockKind.DATA, 2, i, bytes(4096))
        writer.sync()
        written = device.disk.sectors_written
        writer.stage(BlockKind.DATA, 2, 10, bytes(4096))
        writer.sync()
        delta_sectors = device.disk.sectors_written - written
        # summary (8 sectors) + one new block (8 sectors)
        assert delta_sectors == 16

    def test_sync_with_nothing_staged_is_noop(self, setup):
        device, _layout, writer = setup
        before = device.disk.writes
        writer.sync()
        assert device.disk.writes == before

    def test_partial_then_fill_writes_whole_segment_consistently(self, setup):
        device, layout, writer = setup
        for i in range(10):
            writer.stage(BlockKind.DATA, 2, i, bytes([i]) * 4096)
        writer.sync()
        for i in range(10, layout.data_blocks_per_segment):
            writer.stage(BlockKind.DATA, 2, i, bytes([i % 256]) * 4096)
        start = layout.segment_start(0)
        for i in range(layout.data_blocks_per_segment):
            data, _ = device.read_block(start + 1 + i)
            assert data == bytes([i % 256]) * 4096

    def test_invalid_threshold_rejected(self, setup):
        device, layout, _writer = setup
        with pytest.raises(ValueError):
            SegmentWriter(device, layout, lambda: 0, partial_threshold=0.0)
