"""Simulation plumbing: the simulated clock and latency accounting.

Everything in this reproduction runs against a :class:`~repro.sim.clock.SimClock`
instead of wall-clock time.  The paper's experimental platform made the Solaris
kernel sleep for the durations reported by the Dartmouth disk model; we keep
the same information content (service times, broken down by component) while
running deterministically and fast.
"""

from repro.sim.clock import SimClock
from repro.sim.engine import (
    Event,
    EventEngine,
    EventTrace,
    IntervalRecorder,
    Process,
    Resource,
    Signal,
    Timer,
    Until,
)
from repro.sim.metrics import LatencyHistogram, OpCounters
from repro.sim.stats import (
    COMPONENTS,
    Breakdown,
    LatencyRecorder,
)

__all__ = [
    "SimClock",
    "COMPONENTS",
    "Breakdown",
    "LatencyRecorder",
    "LatencyHistogram",
    "OpCounters",
    "Event",
    "EventEngine",
    "EventTrace",
    "IntervalRecorder",
    "Process",
    "Resource",
    "Signal",
    "Timer",
    "Until",
]
