"""Free-space map with rotational-position-aware queries.

The eager-writing allocator (Section 4.2) needs to answer: *starting from
this angular position on this track, how many sector slots pass before an
aligned run of free sectors starts?*  :class:`FreeSpaceMap` keeps one
integer bitmask per track (bit ``s`` set means sector-in-track ``s`` is
free) plus per-track and per-cylinder free counts, so those queries run as
a handful of big-int bit operations rather than a Python loop over
sectors -- this is the hottest path of the whole simulator, exercised once
(or more) per eagerly-written block.

The run-finding trick: folding ``mask &= mask >> k`` with doubling shifts
leaves bit ``s`` set exactly when sectors ``s .. s+count-1`` are all free,
and because the shift feeds zeros in from the top, starts whose run would
cross the end of the track drop out automatically (runs never wrap a track
boundary, matching the allocator's no-straddle rule).  Counters are kept
incrementally with popcounts of the changed bits.

:class:`ReferenceFreeSpaceMap` is the original straightforward per-sector
implementation, preserved as the oracle for the property tests and as the
"before" side of the ``bench_hotpath`` speedup measurement.  (The one
deliberate behaviour change from the seed implementation: the old
``gap < align`` early exit in ``nearest_free_run`` was *wrong* whenever
``align`` does not divide ``sectors_per_track`` -- candidate gaps are then
not all congruent modulo ``align``, so a sub-``align`` gap need not be the
minimum.  Both classes now return the true angular minimum; the property
tests pin them to a brute-force oracle.)
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.disk.geometry import DiskGeometry

try:  # int.bit_count is Python >= 3.10; keep the 3.9 floor working.
    (0).bit_count

    def _popcount(x: int) -> int:
        return x.bit_count()

except AttributeError:  # pragma: no cover - exercised only on 3.9

    def _popcount(x: int) -> int:
        return bin(x).count("1")


def fold_free_runs(mask: int, count: int) -> int:
    """Bit ``s`` of the result is set iff bits ``s .. s+count-1`` of
    ``mask`` are all set (doubling-shift fold; zeros shifted in from the
    top kill starts whose run would overrun the mask's width)."""
    if count <= 0:
        raise ValueError("count must be positive")
    have = 1
    while have < count and mask:
        step = min(have, count - have)
        mask &= mask >> step
        have += step
    return mask


def lowest_set_bit(mask: int) -> int:
    """Index of the least-significant set bit (``mask`` must be nonzero)."""
    return (mask & -mask).bit_length() - 1


def nearest_set_bit(mask: int, n: int, phase: int) -> Optional[int]:
    """The cyclically nearest set bit of an ``n``-bit mask at or after
    ``phase`` (an integer slot); ``None`` when the mask is empty."""
    if mask == 0:
        return None
    ahead = mask >> phase
    if ahead:
        return phase + lowest_set_bit(ahead)
    return lowest_set_bit(mask)


#: ``(n, align) -> int with bits at 0, align, 2*align, ... < n`` cache.
_ALIGN_MASKS: dict = {}


def _aligned_starts_mask(n: int, align: int) -> int:
    key = (n, align)
    mask = _ALIGN_MASKS.get(key)
    if mask is None:
        mask = 0
        for s in range(0, n, align):
            mask |= 1 << s
        _ALIGN_MASKS[key] = mask
    return mask


class FreeSpaceMap:
    """Tracks which physical sectors are free.

    All sectors start *free*; callers mark regions used as they allocate.
    """

    def __init__(self, geometry: DiskGeometry) -> None:
        self.geometry = geometry
        n = geometry.sectors_per_track
        self._n = n
        self._track_full_mask = (1 << n) - 1
        n_tracks = geometry.num_cylinders * geometry.tracks_per_cylinder
        #: One bitmask per track; bit ``s`` set == sector-in-track ``s`` free.
        self._masks: List[int] = [self._track_full_mask] * n_tracks
        self._track_free: List[int] = [n] * n_tracks
        #: How many tracks are completely free -- lets the track-fill
        #: allocator's empty-track scan answer "none" in O(1), which is
        #: the steady state at realistic utilizations.
        self._empty_tracks = n_tracks
        # Geometry is immutable, so the per-track skew and first-sector
        # tables can be burned in once; ``nearest_free_run`` is hot enough
        # that recomputing them per query shows up in profiles.
        tracks_per_cyl = geometry.tracks_per_cylinder
        self._skews: List[int] = [
            geometry.skew_offset(idx // tracks_per_cyl, idx % tracks_per_cyl)
            for idx in range(n_tracks)
        ]
        self._bases: List[int] = [idx * n for idx in range(n_tracks)]
        #: Lazily-built ``track index -> (cylinder, head)`` table (the
        #: compactor's ``partial_tracks`` sweep is hot enough that the
        #: per-track divmod shows up).
        self._coords: Optional[List[Tuple[int, int]]] = None
        #: Per-track memo of the last angle-space run-starts mask:
        #: ``(source_mask, count, align, rotated_starts)``.  An entry is
        #: valid only while the track's occupancy mask still equals the
        #: stored source (checked by value, so no invalidation hooks and
        #: no way to go stale); allocator sweeps re-probe mostly
        #: unchanged tracks with one (count, align) shape, so the
        #: fold/align/rotate pipeline usually short-circuits to a
        #: big-int compare.
        self._run_memo: List[Optional[Tuple[int, int, int, int]]] = (
            [None] * n_tracks
        )
        self._cyl_free: List[int] = [
            geometry.sectors_per_cylinder
        ] * geometry.num_cylinders
        self.free_sectors = geometry.total_sectors
        #: One bitmask per track of *quarantined* sectors (bad media the
        #: resilience layer has retired), or ``None`` while nothing is
        #: quarantined -- the common case pays one ``is None`` test on the
        #: mark_free path and nothing anywhere else.  Quarantined sectors
        #: read as used and ``mark_free`` silently skips them, so bulk
        #: rebuilds (``mark_free(0, total_sectors)`` during recovery)
        #: preserve the quarantine without the caller special-casing it.
        self._quarantined: Optional[List[int]] = None

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------

    def _track_index(self, cylinder: int, head: int) -> int:
        return cylinder * self.geometry.tracks_per_cylinder + head

    def is_free(self, sector: int) -> bool:
        self.geometry.check_sector(sector)
        track, offset = divmod(sector, self._n)
        return bool((self._masks[track] >> offset) & 1)

    def run_is_free(self, sector: int, count: int) -> bool:
        """True when all of ``sector .. sector+count-1`` are free."""
        if count <= 0:
            raise ValueError("count must be positive")
        self.geometry.check_sector(sector)
        self.geometry.check_sector(sector + count - 1)
        n = self._n
        while count > 0:
            track, offset = divmod(sector, n)
            span = min(n - offset, count)
            segment = ((1 << span) - 1) << offset
            if self._masks[track] & segment != segment:
                return False
            sector += span
            count -= span
        return True

    def _set(self, sector: int, count: int, free: bool) -> None:
        if count <= 0:
            raise ValueError("count must be positive")
        self.geometry.check_sector(sector)
        self.geometry.check_sector(sector + count - 1)
        n = self._n
        tracks_per_cyl = self.geometry.tracks_per_cylinder
        quarantined = self._quarantined
        track, offset = divmod(sector, n)
        if offset + count <= n:
            # Single-track fast path: the allocator's unit never straddles
            # a track, so nearly every mark lands here.
            segment = ((1 << count) - 1) << offset
            if free and quarantined is not None:
                segment &= ~quarantined[track]
                if segment == 0:
                    return
            old = self._masks[track]
            new = (old | segment) if free else (old & ~segment)
            if new != old:
                delta = _popcount(new ^ old)
                if not free:
                    delta = -delta
                self._masks[track] = new
                before = self._track_free[track]
                self._track_free[track] = before + delta
                if (before == n) != (before + delta == n):
                    self._empty_tracks += 1 if before + delta == n else -1
                self._cyl_free[track // tracks_per_cyl] += delta
                self.free_sectors += delta
            return
        while count > 0:
            track, offset = divmod(sector, n)
            span = min(n - offset, count)
            segment = ((1 << span) - 1) << offset
            if free and quarantined is not None:
                segment &= ~quarantined[track]
                if segment == 0:
                    sector += span
                    count -= span
                    continue
            old = self._masks[track]
            new = (old | segment) if free else (old & ~segment)
            if new != old:
                delta = _popcount(new ^ old)
                if not free:
                    delta = -delta
                self._masks[track] = new
                before = self._track_free[track]
                self._track_free[track] = before + delta
                if (before == n) != (before + delta == n):
                    self._empty_tracks += 1 if before + delta == n else -1
                self._cyl_free[track // tracks_per_cyl] += delta
                self.free_sectors += delta
            sector += span
            count -= span

    def mark_used(self, sector: int, count: int = 1) -> None:
        """Mark a run of sectors as occupied."""
        self._set(sector, count, free=False)

    def mark_free(self, sector: int, count: int = 1) -> None:
        """Mark a run of sectors as free (reusable).

        Quarantined sectors inside the run stay used: bad media never
        re-enters the allocation pool, even via the recovery rebuild's
        blanket ``mark_free`` over the whole disk.
        """
        self._set(sector, count, free=True)

    # ------------------------------------------------------------------
    # Quarantine (resilience layer)
    # ------------------------------------------------------------------

    def quarantine(self, sector: int, count: int = 1) -> None:
        """Permanently retire a run of sectors from allocation."""
        if count <= 0:
            raise ValueError("count must be positive")
        self.geometry.check_sector(sector)
        self.geometry.check_sector(sector + count - 1)
        if self._quarantined is None:
            self._quarantined = [0] * len(self._masks)
        n = self._n
        cursor, remaining = sector, count
        while remaining > 0:
            track, offset = divmod(cursor, n)
            span = min(n - offset, remaining)
            self._quarantined[track] |= ((1 << span) - 1) << offset
            cursor += span
            remaining -= span
        self._set(sector, count, free=False)

    def set_quarantined(self, sectors) -> None:
        """Replace the quarantine set wholesale (recovery-time load)."""
        self._quarantined = None
        for sector in sectors:
            self.quarantine(sector)

    def quarantined_sectors(self) -> List[int]:
        """Linear sector numbers currently quarantined, ascending."""
        if self._quarantined is None:
            return []
        out: List[int] = []
        n = self._n
        for track, mask in enumerate(self._quarantined):
            base = track * n
            while mask:
                low = mask & -mask
                out.append(base + low.bit_length() - 1)
                mask &= mask - 1
        return out

    def is_quarantined(self, sector: int) -> bool:
        self.geometry.check_sector(sector)
        if self._quarantined is None:
            return False
        track, offset = divmod(sector, self._n)
        return bool((self._quarantined[track] >> offset) & 1)

    def track_free_count(self, cylinder: int, head: int) -> int:
        self.geometry.check_track(cylinder, head)
        return self._track_free[self._track_index(cylinder, head)]

    def cylinder_free_count(self, cylinder: int) -> int:
        if not 0 <= cylinder < self.geometry.num_cylinders:
            raise ValueError(f"cylinder {cylinder} out of range")
        return self._cyl_free[cylinder]

    @property
    def utilization(self) -> float:
        """Fraction of sectors occupied, in [0, 1]."""
        total = self.geometry.total_sectors
        return (total - self.free_sectors) / total

    # ------------------------------------------------------------------
    # Rotational queries (the heart of eager writing)
    # ------------------------------------------------------------------

    def _run_starts(self, track_idx: int, count: int, align: int) -> int:
        """Bitmask of sector-in-track positions where an aligned free run of
        ``count`` sectors starts (no wrap past the end of the track)."""
        starts = fold_free_runs(self._masks[track_idx], count)
        if align > 1 and starts:
            starts &= _aligned_starts_mask(self._n, align)
        return starts

    def nearest_free_run(
        self,
        cylinder: int,
        head: int,
        start_slot: float,
        count: int,
        align: int = 1,
    ) -> Optional[Tuple[float, int]]:
        """Find the angularly nearest free aligned run on one track.

        Args:
            cylinder, head: The track to search.
            start_slot: Angular position (in sector slots, possibly
                fractional) the head will occupy when it is ready to write.
            count: Number of contiguous sectors needed.
            align: Run start must satisfy ``sector_in_track % align == 0``.

        Returns:
            ``(gap_slots, linear_sector)`` where ``gap_slots`` is the angular
            distance (in sector slots) from ``start_slot`` to the start of
            the run, or ``None`` if the track has no such run.
        """
        if count <= 0 or align <= 0:
            raise ValueError("count and align must be positive")
        self.geometry.check_track(cylinder, head)
        n = self._n
        if count > n:
            return None
        track_idx = cylinder * self.geometry.tracks_per_cylinder + head
        if self._track_free[track_idx] < count:
            return None
        # Inlined fold / align-filter / rotate / nearest-bit sequence --
        # this method is the simulator's hottest, and in CPython the helper
        # calls cost more than the big-int ops they wrap.
        source = self._masks[track_idx]
        skew = self._skews[track_idx]
        entry = self._run_memo[track_idx]
        if (
            entry is not None
            and entry[0] == source
            and entry[1] == count
            and entry[2] == align
        ):
            mask = entry[3]
        else:
            mask = source
            have = 1
            while have < count and mask:
                step = have if have < count - have else count - have
                mask &= mask >> step
                have += step
            if align > 1 and mask:
                amask = _ALIGN_MASKS.get((n, align))
                if amask is None:
                    amask = _aligned_starts_mask(n, align)
                mask &= amask
            # Rotate the start set into angle space; the memo stores the
            # rotated form so a hit skips the whole pipeline.
            if skew and mask:
                mask = (
                    (mask << skew) | (mask >> (n - skew))
                ) & self._track_full_mask
            self._run_memo[track_idx] = (source, count, align, mask)
        if mask == 0:
            return None
        slot = start_slot % n
        phase = int(slot)
        if phase != slot:
            phase += 1
            if phase == n:
                phase = 0
        ahead = mask >> phase
        if ahead:
            angle = phase + ((ahead & -ahead).bit_length() - 1)
        else:
            angle = (mask & -mask).bit_length() - 1
        gap = (angle - start_slot) % n
        sect = angle - skew
        if sect < 0:
            sect += n
        return gap, self._bases[track_idx] + sect

    def segment_free(self, sector: int, count: int) -> bool:
        """True when the ``count`` sectors starting at linear ``sector``
        are all free.  The segment must not cross a track boundary --
        this is the O(1) probe the batched allocator's run extension
        uses on block-aligned, track-local candidates."""
        if count <= 0:
            raise ValueError("count must be positive")
        n = self._n
        track_idx, offset = divmod(sector, n)
        if offset + count > n:
            raise ValueError("segment must not cross a track boundary")
        self.geometry.check_sector(sector)
        segment = ((1 << count) - 1) << offset
        return self._masks[track_idx] & segment == segment

    def has_aligned_run(
        self, cylinder: int, head: int, count: int, align: int = 1
    ) -> bool:
        """Cheap existence test: would :meth:`nearest_free_run` succeed?"""
        if count <= 0 or align <= 0:
            raise ValueError("count and align must be positive")
        self.geometry.check_track(cylinder, head)
        if count > self._n:
            return False
        track_idx = self._track_index(cylinder, head)
        if self._track_free[track_idx] < count:
            return False
        return self._run_starts(track_idx, count, align) != 0

    def cylinder_has_run(self, cylinder: int, count: int, align: int = 1) -> bool:
        """True when any track of the cylinder holds an aligned free run --
        the batch pre-check the allocator's cylinder sweep uses to skip
        fragmented cylinders without pricing every track."""
        if self.cylinder_free_count(cylinder) < count:
            return False
        return any(
            self.has_aligned_run(cylinder, head, count, align)
            for head in range(self.geometry.tracks_per_cylinder)
        )

    def nearest_free_in_cylinder(
        self,
        cylinder: int,
        current_head: int,
        start_slot: float,
        count: int,
        align: int = 1,
        head_switch_slots: float = 0.0,
    ) -> Optional[Tuple[float, int, int]]:
        """Find the best free run across all tracks of one cylinder.

        This is the two-way comparison of the paper's single-cylinder model
        (Section 2.2): the current track competes against the other tracks,
        whose candidates are penalised by the head-switch time expressed in
        sector slots.

        Returns ``(cost_slots, linear_sector, head)`` or ``None``, where
        ``cost_slots`` is the angular delay from ``start_slot`` until the
        write could begin.  Non-current tracks are queried from the
        *post-settle* slot (``start_slot + head_switch_slots``): a run
        inside the settle window is reachable only a revolution later, so
        the nearest run *after* the window -- which a query from
        ``start_slot`` would never surface -- is the one that competes.
        """
        if count <= 0 or align <= 0:
            raise ValueError("count and align must be positive")
        self.geometry.check_track(cylinder, 0)
        n = self._n
        if count > n:
            return None
        tracks_per_cyl = self.geometry.tracks_per_cylinder
        if self._cyl_free[cylinder] < count:
            # Track free counts never exceed the cylinder's, so no track
            # can hold a run either -- skip the whole per-head sweep.
            return None
        # Fused per-head sweep: one ``nearest_free_run`` equivalent per
        # track with the validation, table lookups, and call overhead
        # hoisted out of the loop.  This is the allocator's hottest call
        # (every greedy/nearest allocation pays it per candidate
        # cylinder), and the 16-19 inner calls dominated it.
        base_idx = cylinder * tracks_per_cyl
        track_free = self._track_free
        masks = self._masks
        skews = self._skews
        bases = self._bases
        memo = self._run_memo
        full = self._track_full_mask
        amask = _aligned_starts_mask(n, align) if align > 1 else 0
        # Only two query slots exist across the sweep -- the current
        # track's and the penalised one every other track shares -- so
        # the slot -> phase reduction is hoisted out of the head loop.
        penalised_slot = start_slot + head_switch_slots
        phases = []
        for query_slot in (start_slot, penalised_slot):
            slot = query_slot % n
            phase = int(slot)
            if phase != slot:
                phase += 1
                if phase == n:
                    phase = 0
            phases.append(phase)
        current_phase, penalised_phase = phases
        best: Optional[Tuple[float, int, int]] = None
        best_cost = 0.0
        for head in range(tracks_per_cyl):
            track_idx = base_idx + head
            if track_free[track_idx] < count:
                continue
            source = masks[track_idx]
            skew = skews[track_idx]
            entry = memo[track_idx]
            if (
                entry is not None
                and entry[0] == source
                and entry[1] == count
                and entry[2] == align
            ):
                mask = entry[3]
            else:
                mask = source
                have = 1
                while have < count and mask:
                    step = have if have < count - have else count - have
                    mask &= mask >> step
                    have += step
                if align > 1 and mask:
                    mask &= amask
                if skew and mask:
                    mask = ((mask << skew) | (mask >> (n - skew))) & full
                memo[track_idx] = (source, count, align, mask)
            if mask == 0:
                continue
            if head == current_head:
                penalty = 0.0
                query_slot = start_slot
                phase = current_phase
            else:
                penalty = head_switch_slots
                query_slot = penalised_slot
                phase = penalised_phase
            ahead = mask >> phase
            if ahead:
                angle = phase + ((ahead & -ahead).bit_length() - 1)
            else:
                angle = (mask & -mask).bit_length() - 1
            cost = penalty + ((angle - query_slot) % n)
            if best is None or cost < best_cost:
                sect = angle - skew
                if sect < 0:
                    sect += n
                best = (cost, bases[track_idx] + sect, head)
                best_cost = cost
        return best

    def partial_tracks(self, minimum_free: int) -> List[Tuple[int, int]]:
        """``(cylinder, head)`` of every *partially used* track holding at
        least ``minimum_free`` free sectors (``minimum_free <= free <
        sectors_per_track``), in track order -- the compactor's
        hole-plugging candidate set, answered from the counters alone."""
        if minimum_free <= 0:
            raise ValueError("minimum_free must be positive")
        n = self._n
        coords = self._coords
        if coords is None:
            tracks_per_cyl = self.geometry.tracks_per_cylinder
            coords = self._coords = [
                divmod(idx, tracks_per_cyl)
                for idx in range(len(self._track_free))
            ]
        return [
            coords[idx]
            for idx, free in enumerate(self._track_free)
            if minimum_free <= free < n
        ]

    # ------------------------------------------------------------------
    # Track scans (compactor / reorganizer helpers)
    # ------------------------------------------------------------------

    def free_sector_iter(self, cylinder: int, head: int) -> Iterator[int]:
        """Yield linear sector numbers of the sectors currently free on one
        track (a snapshot: mutations during iteration are not reflected)."""
        base = self.geometry.track_start(cylinder, head)
        mask = self._masks[self._track_index(cylinder, head)]
        while mask:
            low = mask & -mask
            yield base + low.bit_length() - 1
            mask &= mask - 1

    def next_used_on_track(
        self, cylinder: int, head: int, start_offset: int = 0
    ) -> Optional[int]:
        """Linear sector number of the first *used* sector at or after
        ``start_offset`` on the track, or ``None`` when the rest of the
        track is free.  Reads live state, so a scan that frees or fills
        sectors as it goes (the compactor) sees its own effects."""
        self.geometry.check_track(cylinder, head)
        if not 0 <= start_offset <= self._n:
            raise ValueError(f"start offset {start_offset} out of range")
        track_idx = self._track_index(cylinder, head)
        used = (~self._masks[track_idx] & self._track_full_mask) >> start_offset
        if used == 0:
            return None
        return (
            self.geometry.track_start(cylinder, head)
            + start_offset
            + lowest_set_bit(used)
        )

    def find_empty_track(self, start_cylinder: int = 0) -> Optional[Tuple[int, int]]:
        """Nearest completely empty track, sweeping cylinders upward from
        ``start_cylinder`` (wrapping) -- the track-fill allocator's scan,
        answered from the counters alone."""
        if self._empty_tracks == 0:
            return None
        geometry = self.geometry
        per_track = self._n
        total = geometry.num_cylinders
        for offset in range(total):
            cylinder = (start_cylinder + offset) % total
            if self._cyl_free[cylinder] < per_track:
                continue
            base = cylinder * geometry.tracks_per_cylinder
            for head in range(geometry.tracks_per_cylinder):
                if self._track_free[base + head] == per_track:
                    return cylinder, head
        return None

    def tracks_by_free_count(
        self, minimum_free: int = 1
    ) -> List[Tuple[int, int, int]]:
        """``(free_count, cylinder, head)`` for every track holding at least
        ``minimum_free`` free sectors, sorted most-free first (ties in track
        order).  Lets callers visit candidate tracks best-first and stop at
        the first success instead of pricing every track on the disk."""
        tracks_per_cyl = self.geometry.tracks_per_cylinder
        ranked = [
            (free, idx // tracks_per_cyl, idx % tracks_per_cyl)
            for idx, free in enumerate(self._track_free)
            if free >= minimum_free
        ]
        ranked.sort(key=lambda item: (-item[0], item[1], item[2]))
        return ranked


class ReferenceFreeSpaceMap:
    """Per-sector brute-force free map: the seed implementation, kept as
    the property-test oracle and the baseline :mod:`bench_hotpath` measures
    the bitmap implementation against.

    Identical public API and answers to :class:`FreeSpaceMap` (the buggy
    ``gap < align`` early exit of the original was removed -- see the
    module docstring), at the original O(sectors) cost per query.
    """

    def __init__(self, geometry: DiskGeometry) -> None:
        self.geometry = geometry
        self._free = bytearray(b"\x01" * geometry.total_sectors)
        n_tracks = geometry.num_cylinders * geometry.tracks_per_cylinder
        per_track = geometry.sectors_per_track
        self._track_free: List[int] = [per_track] * n_tracks
        self._cyl_free: List[int] = [
            geometry.sectors_per_cylinder
        ] * geometry.num_cylinders
        self.free_sectors = geometry.total_sectors
        self._quarantined_set: set = set()

    def _track_index(self, cylinder: int, head: int) -> int:
        return cylinder * self.geometry.tracks_per_cylinder + head

    def is_free(self, sector: int) -> bool:
        self.geometry.check_sector(sector)
        return bool(self._free[sector])

    def run_is_free(self, sector: int, count: int) -> bool:
        if count <= 0:
            raise ValueError("count must be positive")
        self.geometry.check_sector(sector)
        self.geometry.check_sector(sector + count - 1)
        return all(self._free[sector : sector + count])

    def _set(self, sector: int, count: int, free: bool) -> None:
        if count <= 0:
            raise ValueError("count must be positive")
        self.geometry.check_sector(sector)
        self.geometry.check_sector(sector + count - 1)
        per_cyl = self.geometry.sectors_per_cylinder
        per_track = self.geometry.sectors_per_track
        value = 1 if free else 0
        for s in range(sector, sector + count):
            if free and s in self._quarantined_set:
                continue
            if self._free[s] == value:
                continue
            self._free[s] = value
            delta = 1 if free else -1
            self._track_free[s // per_track] += delta
            self._cyl_free[s // per_cyl] += delta
            self.free_sectors += delta

    def mark_used(self, sector: int, count: int = 1) -> None:
        self._set(sector, count, free=False)

    def mark_free(self, sector: int, count: int = 1) -> None:
        self._set(sector, count, free=True)

    def quarantine(self, sector: int, count: int = 1) -> None:
        if count <= 0:
            raise ValueError("count must be positive")
        self.geometry.check_sector(sector)
        self.geometry.check_sector(sector + count - 1)
        self._quarantined_set.update(range(sector, sector + count))
        self._set(sector, count, free=False)

    def set_quarantined(self, sectors) -> None:
        self._quarantined_set = set()
        for sector in sectors:
            self.quarantine(sector)

    def quarantined_sectors(self) -> List[int]:
        return sorted(self._quarantined_set)

    def is_quarantined(self, sector: int) -> bool:
        self.geometry.check_sector(sector)
        return sector in self._quarantined_set

    def track_free_count(self, cylinder: int, head: int) -> int:
        self.geometry.check_track(cylinder, head)
        return self._track_free[self._track_index(cylinder, head)]

    def cylinder_free_count(self, cylinder: int) -> int:
        if not 0 <= cylinder < self.geometry.num_cylinders:
            raise ValueError(f"cylinder {cylinder} out of range")
        return self._cyl_free[cylinder]

    @property
    def utilization(self) -> float:
        total = self.geometry.total_sectors
        return (total - self.free_sectors) / total

    def nearest_free_run(
        self,
        cylinder: int,
        head: int,
        start_slot: float,
        count: int,
        align: int = 1,
    ) -> Optional[Tuple[float, int]]:
        if count <= 0 or align <= 0:
            raise ValueError("count and align must be positive")
        geometry = self.geometry
        n = geometry.sectors_per_track
        if count > n:
            return None
        geometry.check_track(cylinder, head)
        track_idx = self._track_index(cylinder, head)
        if self._track_free[track_idx] < count:
            return None
        base = geometry.track_start(cylinder, head)
        skew = geometry.skew_offset(cylinder, head)
        best: Optional[Tuple[float, int]] = None
        for sect in range(0, n - count + 1, align):
            linear = base + sect
            if not all(self._free[linear : linear + count]):
                continue
            angle = (sect + skew) % n
            gap = (angle - start_slot) % n
            if best is None or gap < best[0]:
                best = (gap, linear)
        return best

    def has_aligned_run(
        self, cylinder: int, head: int, count: int, align: int = 1
    ) -> bool:
        if count <= 0 or align <= 0:
            raise ValueError("count and align must be positive")
        return self.nearest_free_run(cylinder, head, 0.0, count, align) is not None

    def cylinder_has_run(self, cylinder: int, count: int, align: int = 1) -> bool:
        if self.cylinder_free_count(cylinder) < count:
            return False
        return any(
            self.has_aligned_run(cylinder, head, count, align)
            for head in range(self.geometry.tracks_per_cylinder)
        )

    def nearest_free_in_cylinder(
        self,
        cylinder: int,
        current_head: int,
        start_slot: float,
        count: int,
        align: int = 1,
        head_switch_slots: float = 0.0,
    ) -> Optional[Tuple[float, int, int]]:
        best: Optional[Tuple[float, int, int]] = None
        for head in range(self.geometry.tracks_per_cylinder):
            penalty = 0.0 if head == current_head else head_switch_slots
            found = self.nearest_free_run(
                cylinder, head, start_slot + penalty, count, align
            )
            if found is None:
                continue
            gap, linear = found
            cost = penalty + gap
            if best is None or cost < best[0]:
                best = (cost, linear, head)
        return best

    def free_sector_iter(self, cylinder: int, head: int) -> Iterator[int]:
        base = self.geometry.track_start(cylinder, head)
        for offset in range(self.geometry.sectors_per_track):
            if self._free[base + offset]:
                yield base + offset

    def next_used_on_track(
        self, cylinder: int, head: int, start_offset: int = 0
    ) -> Optional[int]:
        self.geometry.check_track(cylinder, head)
        if not 0 <= start_offset <= self.geometry.sectors_per_track:
            raise ValueError(f"start offset {start_offset} out of range")
        base = self.geometry.track_start(cylinder, head)
        for offset in range(start_offset, self.geometry.sectors_per_track):
            if not self._free[base + offset]:
                return base + offset
        return None

    def find_empty_track(self, start_cylinder: int = 0) -> Optional[Tuple[int, int]]:
        geometry = self.geometry
        per_track = geometry.sectors_per_track
        total = geometry.num_cylinders
        for offset in range(total):
            cylinder = (start_cylinder + offset) % total
            if self.cylinder_free_count(cylinder) < per_track:
                continue
            for head in range(geometry.tracks_per_cylinder):
                if self.track_free_count(cylinder, head) == per_track:
                    return cylinder, head
        return None

    def tracks_by_free_count(
        self, minimum_free: int = 1
    ) -> List[Tuple[int, int, int]]:
        tracks_per_cyl = self.geometry.tracks_per_cylinder
        ranked = [
            (free, idx // tracks_per_cyl, idx % tracks_per_cyl)
            for idx, free in enumerate(self._track_free)
            if free >= minimum_free
        ]
        ranked.sort(key=lambda item: (-item[0], item[1], item[2]))
        return ranked

    def partial_tracks(self, minimum_free: int) -> List[Tuple[int, int]]:
        if minimum_free <= 0:
            raise ValueError("minimum_free must be positive")
        n = self.geometry.sectors_per_track
        tracks_per_cyl = self.geometry.tracks_per_cylinder
        return [
            divmod(idx, tracks_per_cyl)
            for idx, free in enumerate(self._track_free)
            if minimum_free <= free < n
        ]
