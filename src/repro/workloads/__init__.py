"""Benchmark workloads matching the paper's Section 5 micro-benchmarks."""

from repro.workloads.smallfile import SmallFileResult, run_small_file
from repro.workloads.largefile import LargeFileResult, run_large_file
from repro.workloads.random_update import (
    prepare_file,
    run_random_updates,
)
from repro.workloads.bursts import run_bursts

__all__ = [
    "SmallFileResult",
    "run_small_file",
    "LargeFileResult",
    "run_large_file",
    "prepare_file",
    "run_random_updates",
    "run_bursts",
]
