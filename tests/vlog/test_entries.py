import pytest

from repro.vlog.entries import MapRecord, UNMAPPED, entries_per_chunk


class TestCapacity:
    def test_4k_block_capacity(self):
        cap = entries_per_chunk(4096)
        assert cap % 8 == 0
        assert 900 <= cap <= 1012  # header + CRC leave ~1008 entries

    def test_too_small_block_rejected(self):
        with pytest.raises(ValueError):
            entries_per_chunk(48)


class TestPackUnpack:
    def test_roundtrip(self):
        record = MapRecord(
            chunk_id=3,
            seqno=42,
            entries=[1, 2, UNMAPPED, 99],
            prev_root=17,
            bypass1=None,
            bypass2=5,
        )
        raw = record.pack(4096)
        assert len(raw) == 4096
        parsed = MapRecord.unpack(raw)
        assert parsed == record

    def test_none_pointers_roundtrip(self):
        record = MapRecord(chunk_id=0, seqno=1, entries=[])
        parsed = MapRecord.unpack(record.pack(4096))
        assert parsed.prev_root is None
        assert parsed.bypass1 is None
        assert parsed.bypass2 is None

    def test_pointers_helper_filters_none(self):
        record = MapRecord(
            chunk_id=0, seqno=1, entries=[], prev_root=9, bypass2=4
        )
        assert record.pointers() == [9, 4]

    def test_full_capacity_roundtrip(self):
        cap = entries_per_chunk(4096)
        record = MapRecord(chunk_id=1, seqno=2, entries=list(range(cap)))
        parsed = MapRecord.unpack(record.pack(4096))
        assert parsed.entries == list(range(cap))

    def test_over_capacity_rejected(self):
        cap = entries_per_chunk(4096)
        record = MapRecord(chunk_id=1, seqno=2, entries=[0] * (cap + 1))
        with pytest.raises(ValueError):
            record.pack(4096)


class TestValidation:
    """The CRC/magic validation is what lets recovery prune edges into
    recycled blocks and lets the scan fallback find records at all."""

    def test_garbage_rejected(self):
        assert MapRecord.unpack(b"\xde\xad" * 2048) is None

    def test_zeros_rejected(self):
        assert MapRecord.unpack(bytes(4096)) is None

    def test_short_buffer_rejected(self):
        assert MapRecord.unpack(b"tiny") is None

    def test_single_flipped_bit_rejected(self):
        raw = bytearray(
            MapRecord(chunk_id=1, seqno=7, entries=[4, 5]).pack(4096)
        )
        raw[100] ^= 0x01
        assert MapRecord.unpack(bytes(raw)) is None

    def test_wrong_magic_rejected(self):
        raw = bytearray(MapRecord(chunk_id=1, seqno=7).pack(4096))
        raw[0:8] = b"NOTAMAGI"
        assert MapRecord.unpack(bytes(raw)) is None

    def test_data_block_never_parses(self):
        # Typical file payloads must not masquerade as map records.
        for fill in (b"x", b"\x00", b"\xff", b"ab"):
            block = (fill * 4096)[:4096]
            assert MapRecord.unpack(block) is None
