"""The disk service-time engine.

A :class:`Disk` owns the geometry, mechanics, head state, track buffer, and
(optionally) the actual sector contents.  Each ``read``/``write`` advances
the simulated clock by the request's service time and returns a
:class:`~repro.sim.stats.Breakdown` separating SCSI command overhead,
positioning ("locate"), and media transfer -- the components Figure 9 of the
paper stacks.

Because every layer in the paper's experiments issues requests synchronously,
no event queue is needed: service times are computed closed-form from the
head position and the platter's rotational position (a pure function of the
simulated time).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.disk.batch_mechanics import BatchMechanics
from repro.disk.cache import ReadAheadPolicy, TrackBuffer
from repro.disk.geometry import DiskGeometry
from repro.disk.mechanics import DiskMechanics
from repro.disk.specs import DiskSpec
from repro.sim.clock import SimClock
from repro.sim.metrics import OpCounters
from repro.sim.stats import Breakdown

#: Shared all-zero page for data-less writes, grown on demand.  Slicing
#: a memoryview of it costs O(1); materializing ``bytes(n)`` per write
#: does not.
_ZERO_PAGE = bytes(1 << 16)


def _zeros(n: int) -> memoryview:
    """A read-only view of ``n`` zero bytes, without allocating per call."""
    global _ZERO_PAGE
    if len(_ZERO_PAGE) < n:
        _ZERO_PAGE = bytes(max(n, 2 * len(_ZERO_PAGE)))
    return memoryview(_ZERO_PAGE)[:n]


class Disk:
    """A simulated rotating disk.

    Args:
        spec: Drive parameter set (e.g. :data:`~repro.disk.specs.HP97560`).
        clock: Simulated clock; a fresh one is created when omitted.
        num_cylinders: Cylinders to expose (defaults to the paper's
            simulated slice, ``spec.sim_cylinders``).
        readahead: Track-buffer policy.
        store_data: Keep actual sector contents in memory.  Disable for
            timing-only studies (e.g. the analytical-model validations).
    """

    def __init__(
        self,
        spec: DiskSpec,
        clock: Optional[SimClock] = None,
        num_cylinders: int = 0,
        readahead: ReadAheadPolicy = ReadAheadPolicy.DARTMOUTH,
        store_data: bool = True,
    ) -> None:
        self.spec = spec
        self.clock = clock if clock is not None else SimClock()
        self.geometry = DiskGeometry(spec, num_cylinders)
        self.mechanics = DiskMechanics(spec)
        #: Table-driven batch pricing over the same spec/geometry; the
        #: eager allocator, SATF, and the compactor price candidate sets
        #: through this, and the service path below shares its tables.
        self.batch = BatchMechanics(spec, self.geometry)
        self.cache = TrackBuffer(readahead)
        self.head_cylinder = 0
        self.head_head = 0
        self._data: Optional[bytearray] = (
            bytearray(self.geometry.capacity_bytes) if store_data else None
        )
        # Statistics (request counts, sectors moved, busy time).
        self.counters = OpCounters()
        #: Optional duck-typed fault hook with ``before_read(disk, sector,
        #: count)`` / ``before_write(disk, sector, count, data)`` methods
        #: that may raise -- see ``repro.blockdev.interpose``.
        self.fault_injector = None
        #: Optional sidecar checksum store with a ``record(sector, data)``
        #: method, modelling the per-sector out-of-band ECC bytes real
        #: drives write alongside every sector.  Attached by the VLD's
        #: resilience layer; recording costs zero simulated time (the
        #: head writes the ECC in the same pass as the data), and
        #: verification happens in the *reader's* path, never here, so
        #: non-resilient consumers are untouched.
        self.checksums = None

    # Back-compatible views of the counters (these were plain attributes
    # before the accounting moved into OpCounters).

    @property
    def reads(self) -> int:
        return self.counters.reads

    @property
    def writes(self) -> int:
        return self.counters.writes

    @property
    def sectors_read(self) -> int:
        return self.counters.sectors_read

    @property
    def sectors_written(self) -> int:
        return self.counters.sectors_written

    @property
    def busy_time(self) -> float:
        return self.counters.busy_time

    # ------------------------------------------------------------------
    # Introspection used by the eager-writing machinery
    # ------------------------------------------------------------------

    @property
    def sector_bytes(self) -> int:
        return self.spec.sector_bytes

    @property
    def total_sectors(self) -> int:
        return self.geometry.total_sectors

    def current_slot(self) -> float:
        """The platter's angular position (sector slots) right now."""
        return self.mechanics.rotational_slot(self.clock.now)

    def slot_after(self, seconds: float) -> float:
        """Angular position ``seconds`` from now."""
        return self.mechanics.rotational_slot(self.clock.now + seconds)

    # ------------------------------------------------------------------
    # Data plumbing
    # ------------------------------------------------------------------

    def peek(self, sector: int, count: int = 1) -> bytes:
        """Read sector contents *without* advancing time (for tests/recovery
        tooling that models out-of-band firmware access)."""
        self._check_run(sector, count)
        if self._data is None:
            raise RuntimeError("disk was created with store_data=False")
        lo = sector * self.sector_bytes
        return bytes(self._data[lo : lo + count * self.sector_bytes])

    def poke(self, sector: int, data: bytes) -> None:
        """Write sector contents without advancing time (test helper)."""
        if len(data) % self.sector_bytes != 0:
            raise ValueError("data must be a whole number of sectors")
        count = len(data) // self.sector_bytes
        self._check_run(sector, count)
        if self._data is None:
            raise RuntimeError("disk was created with store_data=False")
        lo = sector * self.sector_bytes
        self._data[lo : lo + len(data)] = data
        if self.checksums is not None:
            self.checksums.record(sector, data)
        self.cache.note_write(sector, count)

    def _check_run(self, sector: int, count: int) -> None:
        if count <= 0:
            raise ValueError("count must be positive")
        self.geometry.check_sector(sector)
        self.geometry.check_sector(sector + count - 1)

    # ------------------------------------------------------------------
    # The service-time engine
    # ------------------------------------------------------------------

    def read(
        self, sector: int, count: int = 1, charge_scsi: bool = True
    ) -> Tuple[bytes, Breakdown]:
        """Service a read request; returns (data, latency breakdown).

        ``charge_scsi=False`` models an access issued *by the drive's own
        processor* (the virtual log machinery), which pays mechanics but not
        host-visible command overhead.
        """
        self._check_run(sector, count)
        if self.fault_injector is not None:
            self.fault_injector.before_read(self, sector, count)
        breakdown = Breakdown()
        start = self.clock.now
        if charge_scsi:
            breakdown.charge("scsi", self.spec.scsi_overhead)
            self.clock.advance(self.spec.scsi_overhead)
        chunks = []
        remaining = count
        cursor = sector
        while remaining > 0:
            chunk = self._chunk_within_track(cursor, remaining)
            chunks.append((cursor, chunk))
            cursor += chunk
            remaining -= chunk
        if len(chunks) == 1:
            self._service_read_chunk(sector, count, breakdown)
        else:
            self._service_read_span(chunks, breakdown)
        self.counters.note_read(count, self.clock.now - start)
        if self._data is None:
            data = b""
        else:
            lo = sector * self.sector_bytes
            data = bytes(self._data[lo : lo + count * self.sector_bytes])
        return data, breakdown

    def write(
        self,
        sector: int,
        count: int = 1,
        data: Optional[bytes] = None,
        charge_scsi: bool = True,
    ) -> Breakdown:
        """Service a write request; returns the latency breakdown.

        ``data`` must be ``count`` sectors long when given; when omitted,
        zeros are written (timing studies don't care about contents).
        """
        self._check_run(sector, count)
        if data is not None and len(data) != count * self.sector_bytes:
            raise ValueError(
                f"data length {len(data)} != {count} sectors "
                f"({count * self.sector_bytes} bytes)"
            )
        if self.fault_injector is not None:
            self.fault_injector.before_write(self, sector, count, data)
        breakdown = Breakdown()
        start = self.clock.now
        if charge_scsi:
            breakdown.charge("scsi", self.spec.scsi_overhead)
            self.clock.advance(self.spec.scsi_overhead)
        per_track = self.geometry.sectors_per_track
        if count <= per_track - sector % per_track:
            # Single-chunk fast path: the request fits on one track, so
            # the chunk loop degenerates to one positioning pass.
            self._position_and_transfer(sector, count, breakdown)
        else:
            remaining = count
            cursor = sector
            while remaining > 0:
                chunk = self._chunk_within_track(cursor, remaining)
                self._service_write_chunk(cursor, chunk, breakdown)
                cursor += chunk
                remaining -= chunk
        if self._data is not None:
            lo = sector * self.sector_bytes
            payload = (
                data if data is not None else _zeros(count * self.sector_bytes)
            )
            self._data[lo : lo + len(payload)] = payload
            if self.checksums is not None:
                if data is None:
                    # The payload is the shared zero page: record the
                    # constant zero-sector CRC without hashing anything.
                    self.checksums.record_zeros(sector, count)
                else:
                    self.checksums.record(sector, payload)
        self.cache.note_write(sector, count)
        self.counters.note_write(count, self.clock.now - start)
        return breakdown

    def write_run(
        self,
        sector: int,
        count: int,
        block_sectors: int,
        data: Optional[bytes] = None,
        charge_scsi: bool = True,
        accumulate: Optional[Breakdown] = None,
    ) -> Breakdown:
        """Service a physically contiguous run of block-granular writes.

        Bit-identical to issuing ``count // block_sectors`` consecutive
        ``write(sector + i * block_sectors, block_sectors, ...)`` calls --
        same clock trajectory, same per-block counter and breakdown
        arithmetic, same final head/cache/data state -- but with the
        per-call bookkeeping (Breakdown objects, payload slicing, data
        splice, checksum recording) batched over the whole run.  This is
        the media half of the VLD's batched data-movement path.

        ``accumulate``, when given, receives each block's charges as a
        separate component-wise addition, exactly as a caller folding the
        per-block breakdowns one at a time would accumulate them.  Float
        addition is not associative, so callers that split a logical run
        across several ``write_run`` calls (or mix them with scalar
        writes) must pass the same accumulator to every call to keep the
        folded totals bit-identical to the scalar path; the returned
        breakdown holds this run's own totals.

        With a fault injector installed the per-block oracle path runs
        instead: hooks must observe every block write at its exact issue
        time (and may crash between blocks), which is incompatible with
        deferring the clock/state writes.
        """
        if block_sectors <= 0:
            raise ValueError("block_sectors must be positive")
        if count % block_sectors != 0:
            raise ValueError("count must be a whole number of blocks")
        self._check_run(sector, count)
        sector_bytes = self.sector_bytes
        if data is not None and len(data) != count * sector_bytes:
            raise ValueError(
                f"data length {len(data)} != {count} sectors "
                f"({count * sector_bytes} bytes)"
            )
        blocks = count // block_sectors
        per_track = self.geometry.sectors_per_track
        if (
            blocks == 1
            or self.fault_injector is not None
            or per_track % block_sectors != 0
            or sector % block_sectors != 0
        ):
            # Oracle path: one ordinary write per block (exact scalar
            # behaviour, including per-block fault hooks and writes that
            # straddle track boundaries).
            breakdown = Breakdown()
            block_bytes = block_sectors * sector_bytes
            view = memoryview(data) if data is not None else None
            cursor = sector
            for i in range(blocks):
                payload = (
                    None
                    if view is None
                    else view[i * block_bytes : (i + 1) * block_bytes]
                )
                piece = self.write(cursor, block_sectors, payload, charge_scsi)
                breakdown.add(piece)
                if accumulate is not None:
                    accumulate.add(piece)
                cursor += block_sectors
            return breakdown
        # Fast path: replay the per-block service arithmetic against a
        # local clock/head, writing state back once.  Every float op is
        # kept in scalar order (per-block locate = (pos + rot), per-block
        # busy-time add), so totals are bit-for-bit what the per-block
        # loop produces.
        clock = self.clock
        geometry = self.geometry
        batch = self.batch
        counters = self.counters
        scsi = self.spec.scsi_overhead if charge_scsi else 0.0
        tpc = geometry.tracks_per_cylinder
        seeks = batch.seek_by_distance
        skews = batch.skew_by_track
        switch = batch.head_switch_time
        sector_time = batch.sector_time
        rotational_slot = batch.rotational_slot
        transfer = block_sectors * sector_time
        t = clock.now
        hc = self.head_cylinder
        hh = self.head_head
        busy = counters.busy_time
        scsi_total = 0.0
        locate_total = 0.0
        transfer_total = 0.0
        if accumulate is not None:
            acc_scsi = accumulate.scsi
            acc_locate = accumulate.locate
            acc_transfer = accumulate.transfer
        cursor = sector
        for _ in range(blocks):
            t0 = t
            if scsi:
                scsi_total += scsi
                t += scsi
            track = cursor // per_track
            sect = cursor - track * per_track
            cylinder = track // tpc
            head = track - cylinder * tpc
            distance = cylinder - hc
            if distance < 0:
                distance = -distance
            positioning = seeks[distance]
            if head != hh and switch > positioning:
                positioning = switch
            locate = 0.0
            if positioning > 0.0:
                locate = positioning
                t += positioning
            hc = cylinder
            hh = head
            angle = sect + skews[track]
            if angle >= per_track:
                angle -= per_track
            rotational = ((angle - rotational_slot(t)) % per_track) * sector_time
            if rotational > 0.0:
                locate += rotational
                t += rotational
            t += transfer
            locate_total += locate
            transfer_total += transfer
            if accumulate is not None:
                if scsi:
                    acc_scsi += scsi
                acc_locate += locate
                acc_transfer += transfer
            busy += t - t0
            cursor += block_sectors
        clock.advance_to(t)
        self.head_cylinder = hc
        self.head_head = hh
        counters.writes += blocks
        counters.sectors_written += count
        counters.busy_time = busy
        if accumulate is not None:
            if scsi:
                accumulate.scsi = acc_scsi
            accumulate.locate = acc_locate
            accumulate.transfer = acc_transfer
        breakdown = Breakdown(
            scsi=scsi_total, transfer=transfer_total, locate=locate_total
        )
        if self._data is not None:
            lo = sector * sector_bytes
            payload = data if data is not None else _zeros(count * sector_bytes)
            self._data[lo : lo + count * sector_bytes] = payload
            if self.checksums is not None:
                if data is None:
                    self.checksums.record_zeros(sector, count)
                else:
                    self.checksums.record(sector, payload)
        self.cache.note_write(sector, count)
        return breakdown

    def _chunk_within_track(self, sector: int, remaining: int) -> int:
        """Largest prefix of the request that stays on one track."""
        per_track = self.geometry.sectors_per_track
        room = per_track - (sector % per_track)
        return min(remaining, room)

    def _service_read_chunk(
        self, sector: int, count: int, breakdown: Breakdown
    ) -> None:
        cylinder, head, _sect = self.geometry.decompose(sector)
        track_lo = self.geometry.track_start(cylinder, head)
        track_hi = track_lo + self.geometry.sectors_per_track
        hit = self.cache.note_read(
            (cylinder, head), track_lo, track_hi, sector, count
        )
        if hit:
            # Served from the track buffer at (approximately) media rate;
            # no arm or rotational involvement.
            transfer = self.mechanics.transfer_time(count)
            breakdown.charge("transfer", transfer)
            self.clock.advance(transfer)
            return
        self._position_and_transfer(sector, count, breakdown)

    def _service_read_span(self, chunks, breakdown: Breakdown) -> None:
        """Service a read that crosses track boundaries: the buffer judges
        the whole request at once (see ``TrackBuffer.note_read_span``),
        then each per-track piece is either delivered from the buffer or
        read from the media."""
        per_track = self.geometry.sectors_per_track
        spans = []
        for cursor, chunk in chunks:
            cylinder, head, _sect = self.geometry.decompose(cursor)
            track_lo = self.geometry.track_start(cylinder, head)
            spans.append(
                ((cylinder, head), track_lo, track_lo + per_track, cursor, chunk)
            )
        hits = self.cache.note_read_span(spans)
        for (cursor, chunk), hit in zip(chunks, hits):
            if hit:
                transfer = self.mechanics.transfer_time(chunk)
                breakdown.charge("transfer", transfer)
                self.clock.advance(transfer)
            else:
                self._position_and_transfer(cursor, chunk, breakdown)

    def _service_write_chunk(
        self, sector: int, count: int, breakdown: Breakdown
    ) -> None:
        self._position_and_transfer(sector, count, breakdown)

    def _position_and_transfer(
        self, sector: int, count: int, breakdown: Breakdown
    ) -> None:
        """Move the arm, wait for rotation, and transfer ``count`` sectors."""
        cylinder, head, sect = self.geometry.decompose(sector)
        batch = self.batch
        positioning = batch.positioning_time(
            self.head_cylinder, self.head_head, cylinder, head
        )
        if positioning > 0.0:
            breakdown.charge("locate", positioning)
            self.clock.advance(positioning)
        self.head_cylinder = cylinder
        self.head_head = head
        target_slot = batch.angle_of(cylinder, head, sect)
        rotational = self.mechanics.wait_for_slot(self.clock.now, target_slot)
        if rotational > 0.0:
            breakdown.charge("locate", rotational)
            self.clock.advance(rotational)
        transfer = self.mechanics.transfer_time(count)
        breakdown.charge("transfer", transfer)
        self.clock.advance(transfer)

    def __repr__(self) -> str:
        return (
            f"Disk({self.spec.name}, head=({self.head_cylinder},"
            f"{self.head_head}), t={self.clock.now:.6f}s)"
        )
