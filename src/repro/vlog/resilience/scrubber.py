"""Idle-time media scrubber: migrate live data off failing sectors.

The read path reports every sector that needed a retry (or failed outright)
as a *suspect*; during idle periods -- before the compactor gets the
remaining budget -- the scrubber works through the suspect queue:

* a suspect holding a live **data block** is migrated: quarantine first
  (so the allocator can never hand the sector back), eagerly rewrite the
  block elsewhere, commit the map chunk through the log, free the old copy
  (the quarantined sector stays used forever);
* a suspect holding a live **log record** is relocated through the log
  itself (append a fresh copy, recycle the old block);
* a **free** suspect is simply quarantined.

After a pass the quarantine table is persisted through the log, so a crash
immediately after scrubbing still recovers the full quarantine.  The
power-down record's block is immovable and is skipped (and counted).
"""

from __future__ import annotations

from typing import List

from repro.vlog.resilience.retry import MediaError

#: Drive-retry *rounds* the scrubber spends salvaging one block before
#: declaring its data lost.  Scrubbing is a background salvage
#: operation: it can afford to try much harder than a foreground read,
#: and a transiently flaky sector usually yields within a few rounds.
SALVAGE_ROUNDS = 5


class MediaScrubber:
    """Works the resilience controller's suspect queue during idle time."""

    def __init__(self, controller) -> None:
        self.controller = controller
        self.vld = controller.vld
        self.sectors_scrubbed = 0
        self.blocks_migrated = 0
        self.records_relocated = 0
        self.sectors_quarantined = 0
        self.skipped_immovable = 0
        #: Suspects whose data could not be read back even with retries --
        #: genuine media loss; the mapping is left in place so the host
        #: keeps seeing the error rather than silent zeros.
        self.lost_sectors: List[int] = []

    @property
    def pending(self) -> bool:
        """True when suspects are queued (the idle loop's gate: a VLD with
        no observed degradation never pays a cycle of scrubbing)."""
        return bool(self.controller.suspects)

    def run_for(self, seconds: float) -> float:
        """Scrub until the suspect queue drains or the idle budget is
        spent; returns the simulated time actually used."""
        if seconds < 0.0:
            raise ValueError("idle budget must be non-negative")
        clock = self.vld.disk.clock
        start = clock.now
        deadline = start + seconds
        controller = self.controller
        progressed = False
        while controller.suspects and clock.now < deadline:
            sector = controller.suspects.pop(0)
            self._scrub_sector(sector)
            progressed = True
        if progressed:
            controller.persist_quarantine(timed=True)
        return clock.now - start

    # ------------------------------------------------------------------

    def _scrub_sector(self, sector: int) -> None:
        vld = self.vld
        controller = self.controller
        if sector in controller.quarantine:
            return
        self.sectors_scrubbed += 1
        spb = vld.sectors_per_block
        if sector // spb == vld.POWER_DOWN_BLOCK:
            # The fixed-location record cannot move; leave the sector be.
            self.skipped_immovable += 1
            return
        block = sector // spb
        if block in vld.reverse:
            self._migrate_data_block(block, sector)
            return
        map_spb = vld.vlog.sectors_per_block
        record_block = sector // map_spb
        chunk_id = vld.vlog.chunk_of_block(record_block)
        if chunk_id is not None:
            # Quarantine first: the relocation append must not be offered
            # the very sector it is fleeing.
            controller.quarantine_sector(sector)
            self.sectors_quarantined += 1
            vld.vlog.relocate(chunk_id)
            self.records_relocated += 1
            return
        # Nothing lives there: retire the sector and move on.
        controller.quarantine_sector(sector)
        self.sectors_quarantined += 1

    def _migrate_data_block(self, block: int, sector: int) -> None:
        vld = self.vld
        controller = self.controller
        spb = vld.sectors_per_block
        lba = vld.reverse[block]
        controller.quarantine_sector(sector)
        self.sectors_quarantined += 1
        data = None
        for _ in range(SALVAGE_ROUNDS):
            try:
                data = controller.read_sectors(block * spb, spb)
                break
            except MediaError:
                continue
        if data is None:
            # Genuine media loss: the mapping is left in place so the
            # host keeps seeing the error rather than silent zeros.
            self.lost_sectors.append(sector)
            return
        new_block = vld.allocator.allocate()
        chunk_id = vld.move_block(lba, block, new_block, data)
        vld.vlog.append(chunk_id, vld.imap.chunk_entries(chunk_id))
        # Free the old copy; the quarantined sector inside it stays used.
        vld.allocator.free_block(block)
        self.blocks_migrated += 1
