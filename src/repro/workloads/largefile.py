"""The large-file benchmark (Figure 7).

"...write a 10 MB file sequentially, read it back sequentially, write 10 MB
of data randomly to the same file, read it back sequentially again, and
finally read 10 MB of random data from the file."  Writes are asynchronous
except for an additional synchronous random-write phase run on the UFS
configurations.  Results are bandwidths in MB/s per phase.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict

from repro.fs.api import FileSystem

_MB = 1 << 20


@dataclass
class LargeFileResult:
    bandwidths: Dict[str, float] = field(default_factory=dict)

    PHASES = (
        "seq_write",
        "seq_read",
        "rand_write_async",
        "rand_write_sync",
        "seq_read_again",
        "rand_read",
    )


def run_large_file(
    fs: FileSystem,
    file_bytes: int = 10 * _MB,
    io_bytes: int = 4096,
    include_sync_phase: bool = True,
    seed: int = 0x10C5,
    verify: bool = False,
) -> LargeFileResult:
    """Run all phases against a fresh ``/large`` file."""
    clock = fs.clock
    rng = random.Random(seed)
    result = LargeFileResult()
    nblocks = file_bytes // io_bytes
    path = "/large"
    fs.create(path)

    def bandwidth(elapsed: float) -> float:
        return (file_bytes / _MB) / elapsed if elapsed > 0 else float("inf")

    # Phase 1: sequential write (async), settled with a sync so the phase
    # reflects actual disk bandwidth rather than buffer absorption.
    start = clock.now
    for i in range(nblocks):
        fs.write(path, i * io_bytes, _pattern(i, io_bytes))
    fs.sync()
    result.bandwidths["seq_write"] = bandwidth(clock.now - start)

    # Phase 2: sequential read after a cache flush.
    fs.drop_caches()
    start = clock.now
    for i in range(nblocks):
        data, _ = fs.read(path, i * io_bytes, io_bytes)
        if verify and data != _pattern(i, io_bytes):
            raise AssertionError(f"sequential read mismatch at block {i}")
    result.bandwidths["seq_read"] = bandwidth(clock.now - start)

    # Phase 3: random write, asynchronous.
    start = clock.now
    for _ in range(nblocks):
        block = rng.randrange(nblocks)
        fs.write(path, block * io_bytes, _pattern(block + 1, io_bytes))
    fs.sync()
    result.bandwidths["rand_write_async"] = bandwidth(clock.now - start)

    # Phase 3b: random write, synchronous (the paper runs this on UFS).
    if include_sync_phase:
        start = clock.now
        for _ in range(nblocks):
            block = rng.randrange(nblocks)
            fs.write(
                path, block * io_bytes, _pattern(block + 2, io_bytes),
                sync=True,
            )
        result.bandwidths["rand_write_sync"] = bandwidth(clock.now - start)

    # Phase 4: sequential read again (spatial locality destroyed by the
    # random writes on log-structured/eager layouts).
    fs.drop_caches()
    start = clock.now
    for i in range(nblocks):
        fs.read(path, i * io_bytes, io_bytes)
    result.bandwidths["seq_read_again"] = bandwidth(clock.now - start)

    # Phase 5: random read.
    fs.drop_caches()
    start = clock.now
    for _ in range(nblocks):
        fs.read(path, rng.randrange(nblocks) * io_bytes, io_bytes)
    result.bandwidths["rand_read"] = bandwidth(clock.now - start)

    return result


def _pattern(tag: int, nbytes: int) -> bytes:
    return bytes([tag % 251]) * nbytes
