"""Plain-text table and CSV formatting for experiment results."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned text table."""
    rendered: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        rendered.append([
            f"{v:.3f}" if isinstance(v, float) else str(v) for v in row
        ])
    widths = [
        max(len(r[i]) for r in rendered) for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        rendered[0][i].ljust(widths[i]) for i in range(len(headers))
    )
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered[1:]:
        lines.append(
            "  ".join(row[i].rjust(widths[i]) for i in range(len(headers)))
        )
    return "\n".join(lines)


def series_to_csv(series: Dict[str, Sequence[float]]) -> str:
    """Columns keyed by name -> CSV text (column per key)."""
    keys = list(series)
    length = max(len(v) for v in series.values()) if series else 0
    lines = [",".join(keys)]
    for i in range(length):
        cells = []
        for key in keys:
            values = series[key]
            cells.append(f"{values[i]:.6g}" if i < len(values) else "")
        lines.append(",".join(cells))
    return "\n".join(lines)
