"""Table 1: parameters of the HP97560 and Seagate ST19101 disks."""

from repro.harness import experiments
from repro.harness.report import format_table

from .conftest import run_once


def test_table1(benchmark):
    table = run_once(benchmark, experiments.table1)

    rows = []
    for param in (
        "sectors_per_track",
        "tracks_per_cylinder",
        "head_switch_ms",
        "min_seek_ms",
        "rpm",
        "scsi_overhead_ms",
    ):
        rows.append(
            [param, table["HP97560"][param], table["ST19101"][param]]
        )
    print()
    print(format_table(["parameter", "HP97560", "ST19101"], rows,
                       title="Table 1: disk parameters"))

    assert table["HP97560"]["sectors_per_track"] == 72
    assert table["ST19101"]["sectors_per_track"] == 256
    assert table["ST19101"]["rpm"] == 10000
