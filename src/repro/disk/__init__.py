"""Rotational disk simulator.

This package is the substrate the whole reproduction stands on: a
sector-accurate model of a rotating disk with seek, rotation, head-switch,
track skew, SCSI command overhead, and a track buffer with read-ahead --
the mechanism set of the Dartmouth HP97560 model the paper embedded in the
Solaris kernel (Section 4.1), re-parameterisable for the Seagate ST19101.
"""

from repro.disk.specs import DiskSpec, HP97560, ST19101, DISKS
from repro.disk.geometry import DiskGeometry
from repro.disk.mechanics import DiskMechanics
from repro.disk.batch_mechanics import BatchMechanics
from repro.disk.freemap import FreeSpaceMap
from repro.disk.cache import TrackBuffer, ReadAheadPolicy
from repro.disk.disk import Disk

__all__ = [
    "DiskSpec",
    "HP97560",
    "ST19101",
    "DISKS",
    "DiskGeometry",
    "DiskMechanics",
    "BatchMechanics",
    "FreeSpaceMap",
    "TrackBuffer",
    "ReadAheadPolicy",
    "Disk",
]
