"""Oracle tests for the batched mechanics pricing.

:class:`BatchMechanics` promises *bit-for-bit* the same answers as
composing the scalar :class:`DiskMechanics` / :class:`DiskGeometry`
calls one candidate at a time, so every comparison here is exact ``==``
on floats -- the same discipline as the ``FreeSpaceMap`` vs
``ReferenceFreeSpaceMap`` oracle suite.  Geometries are generated with
random skews, head positions, times (including rotation-boundary
adversaries), and candidate sets covering empty, single, and
multi-track-straddling shapes.
"""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.disk.batch_mechanics import BatchMechanics
from repro.disk.geometry import DiskGeometry
from repro.disk.mechanics import DiskMechanics
from repro.disk.specs import DiskSpec, HP97560, ST19101

_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def tiny_spec(n: int, t: int, cylinders: int, head_switch_slots: int = 3) -> DiskSpec:
    """A small drive with nonzero track and cylinder skew."""
    rpm = 10000.0
    sector_time = (60.0 / rpm) / n
    return DiskSpec(
        name=f"TINY{n}x{t}x{cylinders}",
        sectors_per_track=n,
        tracks_per_cylinder=t,
        num_cylinders=cylinders,
        sim_cylinders=cylinders,
        rpm=rpm,
        head_switch_time=head_switch_slots * sector_time * 0.999,
        scsi_overhead=1e-4,
        sector_bytes=512,
        seek_short_a=3e-4,
        seek_short_b=2e-4,
        seek_long_c=4e-3,
        seek_long_e=8e-7,
        seek_boundary=400,
    )


@st.composite
def rigs(draw):
    """(spec, geometry, mechanics, batch, head_cyl, head_head, now,
    candidate sectors)."""
    n = draw(st.integers(min_value=4, max_value=48))
    t = draw(st.integers(min_value=1, max_value=5))
    cylinders = draw(st.integers(min_value=1, max_value=6))
    switch_slots = draw(st.integers(min_value=0, max_value=5))
    spec = tiny_spec(n, t, cylinders, switch_slots)
    geometry = DiskGeometry(spec, cylinders)
    mechanics = DiskMechanics(spec)
    batch = BatchMechanics(spec, geometry)
    head_cyl = draw(st.integers(min_value=0, max_value=cylinders - 1))
    head_head = draw(st.integers(min_value=0, max_value=t - 1))
    # Times: ordinary values plus rotation-boundary adversaries.
    rotation = spec.rotation_time
    now = draw(
        st.one_of(
            st.floats(min_value=0.0, max_value=50.0,
                      allow_nan=False, allow_infinity=False),
            st.integers(min_value=0, max_value=100_000).map(
                lambda k: k * rotation
            ),
            st.integers(min_value=1, max_value=100_000).map(
                lambda k: math.nextafter(k * rotation, math.inf)
            ),
        )
    )
    # Candidate sets: empty, single, clustered on one track, and wild
    # multi-track-straddling mixes (any linear sector is a legal start).
    candidates = draw(
        st.lists(
            st.integers(min_value=0, max_value=geometry.total_sectors - 1),
            min_size=0,
            max_size=24,
        )
    )
    return spec, geometry, mechanics, batch, head_cyl, head_head, now, candidates


def scalar_price(
    geometry, mechanics, now, head_cyl, head_head, sector,
    extra=None, transfer_sectors=0,
):
    """The one-candidate scalar composition, in service order."""
    cylinder, head, sect = geometry.decompose(sector)
    positioning = mechanics.positioning_time(head_cyl, head_head, cylinder, head)
    target = geometry.angle_of(cylinder, head, sect)
    if extra is None:
        lead = positioning
        t = now + positioning
    else:
        lead = extra + positioning
        t = (now + extra) + positioning
    cost = lead + mechanics.wait_for_slot(t, target)
    if transfer_sectors:
        cost += mechanics.transfer_time(transfer_sectors)
    return cost


class TestPriceCandidatesOracle:
    @given(rigs())
    @_SETTINGS
    def test_matches_scalar_loop_bit_for_bit(self, rig):
        spec, geometry, mechanics, batch, head_cyl, head_head, now, cands = rig
        costs = batch.price_candidates(now, head_cyl, head_head, cands)
        assert len(costs) == len(cands)
        for sector, cost in zip(cands, costs):
            assert cost == scalar_price(
                geometry, mechanics, now, head_cyl, head_head, sector
            )

    @given(rigs(), st.booleans())
    @_SETTINGS
    def test_extra_lead_matches_service_order(self, rig, uniform):
        spec, geometry, mechanics, batch, head_cyl, head_head, now, cands = rig
        scsi = spec.scsi_overhead
        extras = [
            scsi if (uniform or i % 2 == 0) else 0.0
            for i in range(len(cands))
        ]
        costs = batch.price_candidates(
            now, head_cyl, head_head, cands, extra_lead=extras
        )
        for sector, extra, cost in zip(cands, extras, costs):
            assert cost == scalar_price(
                geometry, mechanics, now, head_cyl, head_head, sector,
                extra=extra,
            )

    @given(rigs(), st.integers(min_value=1, max_value=16))
    @_SETTINGS
    def test_transfer_term_matches(self, rig, transfer_sectors):
        spec, geometry, mechanics, batch, head_cyl, head_head, now, cands = rig
        costs = batch.price_candidates(
            now, head_cyl, head_head, cands, transfer_sectors=transfer_sectors
        )
        for sector, cost in zip(cands, costs):
            assert cost == scalar_price(
                geometry, mechanics, now, head_cyl, head_head, sector,
                transfer_sectors=transfer_sectors,
            )

    @given(rigs())
    @_SETTINGS
    def test_empty_candidates(self, rig):
        _, _, _, batch, head_cyl, head_head, now, _ = rig
        assert batch.price_candidates(now, head_cyl, head_head, []) == []


class TestTableBackedPrimitives:
    @given(rigs())
    @_SETTINGS
    def test_positioning_table_matches_mechanics(self, rig):
        spec, geometry, mechanics, batch, head_cyl, head_head, _, _ = rig
        for cylinder in range(geometry.num_cylinders):
            for head in range(geometry.tracks_per_cylinder):
                assert batch.positioning_time(
                    head_cyl, head_head, cylinder, head
                ) == mechanics.positioning_time(
                    head_cyl, head_head, cylinder, head
                )

    @given(rigs())
    @_SETTINGS
    def test_skew_table_matches_geometry(self, rig):
        _, geometry, _, batch, _, _, _, _ = rig
        for cylinder in range(geometry.num_cylinders):
            for head in range(geometry.tracks_per_cylinder):
                for sect in (0, geometry.sectors_per_track - 1):
                    assert batch.angle_of(cylinder, head, sect) == (
                        geometry.angle_of(cylinder, head, sect)
                    )

    @given(rigs())
    @_SETTINGS
    def test_rotational_slot_matches_mechanics(self, rig):
        _, _, mechanics, batch, _, _, now, _ = rig
        assert batch.rotational_slot(now) == mechanics.rotational_slot(now)

    @given(rigs())
    @_SETTINGS
    def test_position_and_arrival_matches_composition(self, rig):
        _, geometry, mechanics, batch, head_cyl, head_head, now, _ = rig
        for cylinder in range(geometry.num_cylinders):
            for head in range(geometry.tracks_per_cylinder):
                positioning, arrival = batch.position_and_arrival(
                    now, head_cyl, head_head, cylinder, head
                )
                expect = mechanics.positioning_time(
                    head_cyl, head_head, cylinder, head
                )
                assert positioning == expect
                assert arrival == mechanics.rotational_slot(now + expect)

    @given(rigs())
    @_SETTINGS
    def test_price_track_arrivals_matches_composition(self, rig):
        _, geometry, mechanics, batch, head_cyl, head_head, now, _ = rig
        tracks = [
            (cylinder, head)
            for cylinder in range(geometry.num_cylinders)
            for head in range(geometry.tracks_per_cylinder)
        ]
        priced = batch.price_track_arrivals(now, head_cyl, head_head, tracks)
        assert len(priced) == len(tracks)
        for (cylinder, head), (positioning, arrival) in zip(tracks, priced):
            expect = mechanics.positioning_time(
                head_cyl, head_head, cylinder, head
            )
            assert positioning == expect
            assert arrival == mechanics.rotational_slot(now + expect)


class TestRealSpecs:
    """Directed spot checks on the two paper drives (the Hypothesis rigs
    stay tiny for speed; the tables must also be right at full size)."""

    def test_tables_on_paper_drives(self):
        for spec in (HP97560, ST19101):
            geometry = DiskGeometry(spec)
            mechanics = DiskMechanics(spec)
            batch = BatchMechanics(spec, geometry)
            for d in range(geometry.num_cylinders):
                assert batch.seek_by_distance[d] == spec.seek_time(d)
            sectors = [0, 7, geometry.sectors_per_track,
                       geometry.total_sectors - 1,
                       geometry.total_sectors // 2]
            now = 0.0123
            costs = batch.price_candidates(now, 1, 1, sectors)
            for sector, cost in zip(sectors, costs):
                assert cost == scalar_price(
                    geometry, mechanics, now, 1, 1, sector
                )

    def test_mismatched_spec_rejected(self):
        geometry = DiskGeometry(ST19101)
        try:
            BatchMechanics(HP97560, geometry)
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("mismatched spec/geometry accepted")
