"""File system consistency checking for the UFS substrate (fsck).

The classic phases, adapted to this FFS layout:

1. **Inodes and block claims** — every allocated inode has a sane type and
   size; every block/fragment it references is in range, inside a data
   area, and claimed exactly once.
2. **Namespace** — every directory entry points to an allocated inode;
   every allocated inode is reachable from the root; directory link
   counts are consistent.
3. **Allocation bitmaps** — the fragment and inode bitmaps agree exactly
   with the claims discovered in phases 1-2.

Returns a report instead of raising so callers (and tests injecting
corruption) can inspect everything that is wrong at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.fs.dirfile import DirectoryBlock
from repro.fs.inode import FileType, NUM_DIRECT
from repro.sim.stats import Breakdown
from repro.ufs.ufs import UFS


@dataclass
class FsckReport:
    """Outcome of a consistency check."""

    errors: List[str] = field(default_factory=list)
    inodes_checked: int = 0
    blocks_claimed: int = 0
    frags_claimed: int = 0
    files: int = 0
    directories: int = 0

    @property
    def ok(self) -> bool:
        return not self.errors

    def complain(self, message: str) -> None:
        self.errors.append(message)

    def summary(self) -> str:
        status = "clean" if self.ok else f"{len(self.errors)} error(s)"
        return (
            f"fsck: {status}; {self.inodes_checked} inodes "
            f"({self.files} files, {self.directories} dirs), "
            f"{self.blocks_claimed} blocks, {self.frags_claimed} tail frags"
        )


def fsck(fs: UFS) -> FsckReport:
    """Check a (quiesced) UFS instance for structural consistency."""
    report = FsckReport()
    breakdown = Breakdown()
    layout = fs.layout
    claimed_frags: Dict[int, int] = {}  # absolute frag -> claiming inum
    allocated_inums: Set[int] = set()

    def claim_block(lba: int, inum: int, what: str) -> None:
        if not 1 <= lba < layout.sb.total_blocks:
            report.complain(f"inode {inum}: {what} block {lba} out of range")
            return
        group = layout.group_of_block(lba)
        if lba < layout.data_start(group):
            report.complain(
                f"inode {inum}: {what} block {lba} inside metadata area"
            )
            return
        base = layout.block_to_frag(lba)
        for k in range(layout.frags_per_block):
            _claim_frag(base + k, inum, what)
        report.blocks_claimed += 1

    def _claim_frag(frag: int, inum: int, what: str) -> None:
        other = claimed_frags.get(frag)
        if other is not None:
            report.complain(
                f"fragment {frag} claimed by both inode {other} and "
                f"inode {inum} ({what})"
            )
        claimed_frags[frag] = inum

    # ---- phase 1: inodes and their claims -----------------------------
    for group_index, group in enumerate(fs.alloc.groups):
        for index in range(layout.sb.inodes_per_group):
            inum = group_index * layout.sb.inodes_per_group + index
            if inum == 0:
                continue
            if not group.inodes.test(index):
                continue
            allocated_inums.add(inum)
            inode = fs._read_inode(inum, breakdown)
            report.inodes_checked += 1
            if inode.is_free:
                report.complain(
                    f"inode {inum} allocated in bitmap but marked free"
                )
                continue
            if inode.itype not in (FileType.REGULAR, FileType.DIRECTORY):
                report.complain(f"inode {inum}: unknown type {inode.itype}")
                continue
            if inode.is_dir:
                report.directories += 1
            else:
                report.files += 1
            _check_inode_claims(fs, inum, inode, claim_block, _claim_frag,
                                report, breakdown)

    # ---- phase 2: namespace -------------------------------------------
    reachable = _check_namespace(fs, allocated_inums, report, breakdown)
    for inum in sorted(allocated_inums - reachable):
        report.complain(f"inode {inum} allocated but unreachable (orphan)")

    # ---- phase 3: bitmaps ----------------------------------------------
    _check_bitmaps(fs, claimed_frags, report)
    return report


def _check_inode_claims(fs, inum, inode, claim_block, claim_frag, report,
                        breakdown) -> None:
    layout = fs.layout
    size = inode.size
    uses_frags = fs._uses_tail_frags(size)
    nblocks = size // layout.block_size if uses_frags else (
        -(-size // layout.block_size)
    )
    for fblk in range(min(nblocks, NUM_DIRECT)):
        lba = inode.direct[fblk]
        if lba:
            claim_block(lba, inum, f"direct[{fblk}]")
    if inode.indirect:
        claim_block(inode.indirect, inum, "indirect")
        _claim_indirect(fs, inum, inode.indirect, claim_block, report,
                        breakdown, "single")
    if inode.double_indirect:
        claim_block(inode.double_indirect, inum, "double-indirect")
        raw, cost = fs.cache.read(inode.double_indirect)
        breakdown.add(cost)
        for i in range(fs._ppb):
            level1 = int.from_bytes(raw[i * 4 : i * 4 + 4], "little")
            if level1:
                claim_block(level1, inum, f"double[{i}]")
                _claim_indirect(fs, inum, level1, claim_block, report,
                                breakdown, f"double[{i}]")
    frag_addr, frag_count = inode.tail_frags()
    if frag_count:
        if not uses_frags:
            report.complain(
                f"inode {inum}: tail fragments present but size {size} "
                "does not use them"
            )
        expected = -(-(size % layout.block_size) // layout.frag_size)
        if uses_frags and frag_count != expected:
            report.complain(
                f"inode {inum}: tail has {frag_count} frags, size implies "
                f"{expected}"
            )
        for k in range(frag_count):
            claim_frag(frag_addr + k, inum, "tail")
        report.frags_claimed += frag_count
    elif uses_frags and size % layout.block_size:
        report.complain(f"inode {inum}: missing tail fragments")


def _claim_indirect(fs, inum, table_lba, claim_block, report, breakdown,
                    label) -> None:
    raw, cost = fs.cache.read(table_lba)
    breakdown.add(cost)
    for i in range(fs._ppb):
        lba = int.from_bytes(raw[i * 4 : i * 4 + 4], "little")
        if lba:
            claim_block(lba, inum, f"{label}[{i}]")


def _check_namespace(fs, allocated, report, breakdown) -> Set[int]:
    layout = fs.layout
    root = layout.sb.root_inum
    reachable: Set[int] = set()
    if root not in allocated:
        report.complain("root inode not allocated")
        return reachable
    stack: List[Tuple[int, str]] = [(root, "/")]
    reachable.add(root)
    while stack:
        inum, path = stack.pop()
        inode = fs._read_inode(inum, breakdown)
        if not inode.is_dir:
            continue
        for _fblk, lba in fs._dir_blocks(inode, breakdown):
            raw, cost = fs.cache.read(lba)
            breakdown.add(cost)
            for name, child in DirectoryBlock.unpack(raw).entries.items():
                child_path = f"{path.rstrip('/')}/{name}"
                if child not in allocated:
                    report.complain(
                        f"{child_path}: entry references unallocated "
                        f"inode {child}"
                    )
                    continue
                if child in reachable:
                    child_inode = fs._read_inode(child, breakdown)
                    if child_inode.is_dir:
                        report.complain(
                            f"{child_path}: directory hard link (inode "
                            f"{child} already reachable)"
                        )
                    continue
                reachable.add(child)
                stack.append((child, child_path))
    return reachable


def _check_bitmaps(fs, claimed_frags, report) -> None:
    layout = fs.layout
    fpb = layout.frags_per_block
    for group_index, group in enumerate(fs.alloc.groups):
        start = layout.group_start(group_index)
        for bit in range(layout.sb.blocks_per_group * fpb):
            frag = start * fpb + bit
            lba = frag // fpb
            in_metadata = lba < layout.data_start(group_index)
            marked = group.frags.test(bit)
            claimed = frag in claimed_frags or in_metadata
            if claimed and not marked:
                report.complain(
                    f"fragment {frag} in use but free in the bitmap"
                )
            elif marked and not claimed:
                report.complain(
                    f"fragment {frag} marked used but unclaimed (leak)"
                )
