"""Cross-platform sanity: every stack works on both paper drives and the
projected one (the disk model is a parameter, not an assumption)."""

import random

import pytest

from repro.blockdev.regular import RegularDisk
from repro.disk.disk import Disk
from repro.disk.specs import DISKS
from repro.hosts.specs import SPARCSTATION_10, ULTRASPARC_170
from repro.lfs.lfs import LFS
from repro.ufs.ufs import UFS
from repro.vlfs.vlfs import VLFS
from repro.vlog.vld import VirtualLogDisk


@pytest.mark.parametrize("disk_name", ["hp97560", "st19101", "future2004"])
class TestEveryDrive:
    def test_vld_roundtrip_and_recovery(self, disk_name):
        vld = VirtualLogDisk(Disk(DISKS[disk_name]))
        rng = random.Random(1)
        expected = {}
        for _ in range(60):
            lba = rng.randrange(vld.num_blocks)
            payload = bytes([rng.randrange(256)]) * 4096
            vld.write_block(lba, payload)
            expected[lba] = payload
        vld.power_down()
        vld.crash()
        vld.recover(timed=False)
        for lba, payload in expected.items():
            assert vld.read_block(lba)[0] == payload
        vld.vlog.check_invariants()

    def test_ufs_small_files(self, disk_name):
        fs = UFS(RegularDisk(Disk(DISKS[disk_name])), SPARCSTATION_10)
        for i in range(20):
            fs.create(f"/f{i}")
            fs.write(f"/f{i}", 0, bytes([i]) * 1500, sync=True)
        fs.sync()
        fs.drop_caches()
        for i in range(20):
            data, _ = fs.read(f"/f{i}", 0, 1500)
            assert data == bytes([i]) * 1500

    def test_lfs_log_roundtrip(self, disk_name):
        fs = LFS(RegularDisk(Disk(DISKS[disk_name])), ULTRASPARC_170)
        fs.create("/f")
        fs.write("/f", 0, b"log" * 5000)
        fs.checkpoint()
        fs.crash()
        fs.mount()
        data, _ = fs.read("/f", 0, 15000)
        assert data == b"log" * 5000

    def test_vlfs_sync_write_beats_half_rotation_budget(self, disk_name):
        spec = DISKS[disk_name]
        fs = VLFS(Disk(spec), ULTRASPARC_170)
        fs.create("/t")
        fs.write("/t", 0, bytes(4096) * 200)
        fs.sync()
        rng = random.Random(2)
        total = 0.0
        trials = 40
        for _ in range(trials):
            offset = rng.randrange(200) * 4096
            total += fs.write("/t", offset, b"u" * 4096, sync=True).total
        mean = total / trials
        # An update-in-place write pays >= seek + half rotation for data
        # plus the same again for the inode; eager writing must beat one
        # half-rotation + command overheads even on the slow drive.
        budget = spec.rotation_time / 2 + 4 * spec.scsi_overhead + 2e-3
        assert mean < budget
