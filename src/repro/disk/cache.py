"""The drive's track buffer and its read-ahead policies.

Section 4.2 of the paper describes an interaction between eager writing and
the stock read-ahead algorithm of the Dartmouth simulator: the simulator
keeps only the sectors from the start of the current request through the
read-ahead point and *discards data whose addresses are lower than the
current request* -- sensible when sequential data has monotonically
increasing physical addresses, but wrong under a VLD where logically
sequential blocks land at arbitrary physical addresses.  The paper's fix is
to prefetch the whole track and retain it until delivered.  Both policies
are implemented here so the difference can be measured (see the track-buffer
ablation benchmark).
"""

from __future__ import annotations

import enum
from typing import List, Optional, Sequence, Tuple


class ReadAheadPolicy(enum.Enum):
    """How the track buffer populates and evicts."""

    #: Stock Dartmouth behaviour: cache [request start, end of track),
    #: discard cached sectors below a new request's address.
    DARTMOUTH = "dartmouth"

    #: The paper's VLD fix: cache the whole track on first touch and keep
    #: it regardless of the addresses of subsequent requests.
    FULL_TRACK = "full_track"

    #: No track buffer at all (every read goes to the media).
    DISABLED = "disabled"


class TrackBuffer:
    """A single-segment track buffer.

    Real drives of the era had a handful of cache segments; a single segment
    is what the Dartmouth model simulates and is enough to reproduce the
    read-ahead phenomena the paper discusses.
    """

    def __init__(self, policy: ReadAheadPolicy = ReadAheadPolicy.DARTMOUTH) -> None:
        self.policy = policy
        # Cached range as (track_key, lo_sector, hi_sector) half-open in
        # linear sector numbers, or None when empty.
        self._segment: Optional[Tuple[Tuple[int, int], int, int]] = None
        self.hits = 0
        self.misses = 0

    def invalidate(self) -> None:
        self._segment = None

    def contains(self, sector: int, count: int) -> bool:
        """True when the whole request can be served from the buffer."""
        if self.policy is ReadAheadPolicy.DISABLED or self._segment is None:
            return False
        _key, lo, hi = self._segment
        return lo <= sector and sector + count <= hi

    def note_read(
        self,
        track_key: Tuple[int, int],
        track_lo: int,
        track_hi: int,
        request_start: int,
        request_count: int,
    ) -> bool:
        """Record a read request; returns True on a buffer hit.

        On a miss the buffer is refilled according to policy.  ``track_lo``
        and ``track_hi`` delimit the linear sector numbers of the track
        holding the request's first sector.
        """
        if self.policy is ReadAheadPolicy.DISABLED:
            self.misses += 1
            return False
        if self.contains(request_start, request_count):
            self.hits += 1
            if self.policy is ReadAheadPolicy.DARTMOUTH:
                # Discard data whose addresses are lower than this request.
                _key, _lo, hi = self._segment  # type: ignore[misc]
                self._segment = (track_key, request_start, hi)
            return True
        self.misses += 1
        if self.policy is ReadAheadPolicy.FULL_TRACK:
            self._segment = (track_key, track_lo, track_hi)
        else:
            # Read-ahead from the request start to the end of the track.
            self._segment = (track_key, request_start, track_hi)
        return False

    def note_read_span(
        self, spans: Sequence[Tuple[Tuple[int, int], int, int, int, int]]
    ) -> List[bool]:
        """Record one request that spans several tracks; returns per-track
        hit flags.

        ``spans`` lists ``(track_key, track_lo, track_hi, start, count)``
        per touched track, in ascending linear order (adjacent entries are
        linearly contiguous, as produced by the disk's chunking).  Every
        span is judged against the segment as it stood *before* this
        request -- feeding the tracks through :meth:`note_read` one at a
        time would let the first track's refill evict the data the later
        tracks were about to hit, so a boundary-spanning request could
        never be served from the buffer twice running.  On any miss the
        refill covers the whole request: the read-ahead point is the end of
        the *last* track touched.
        """
        if self.policy is ReadAheadPolicy.DISABLED:
            self.misses += len(spans)
            return [False] * len(spans)
        segment = self._segment
        hits: List[bool] = []
        for _key, _track_lo, _track_hi, start, count in spans:
            hit = (
                segment is not None
                and segment[1] <= start
                and start + count <= segment[2]
            )
            hits.append(hit)
            if hit:
                self.hits += 1
            else:
                self.misses += 1
        request_start = spans[0][3]
        last_key, _, last_hi, _, _ = spans[-1]
        if all(hits):
            if self.policy is ReadAheadPolicy.DARTMOUTH:
                # Discard data whose addresses are lower than this request.
                key, _lo, hi = segment  # type: ignore[misc]
                self._segment = (key, request_start, hi)
            return hits
        if self.policy is ReadAheadPolicy.FULL_TRACK:
            self._segment = (last_key, spans[0][1], last_hi)
        else:
            self._segment = (last_key, request_start, last_hi)
        return hits

    def note_write(self, sector: int, count: int) -> None:
        """Writes invalidate any overlapping cached range."""
        if self._segment is None:
            return
        _key, lo, hi = self._segment
        if sector < hi and sector + count > lo:
            self._segment = None

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
