"""Per-sector checksum sidecar: the "CRC envelope" on every written sector.

Real drives lay down out-of-band ECC bytes alongside each sector in the
same head pass; the host never sees them, pays nothing for them, and the
firmware verifies them on every read.  :class:`ChecksumStore` models that:
:meth:`record` is invoked from inside :meth:`Disk.write`/:meth:`Disk.poke`
(zero simulated time -- the ECC rides the data transfer) and
:meth:`verify` is called only by the resilience layer's read path, so a
VLD without the layer behaves bit-for-bit as before.

The store survives crashes (real ECC is retained on the media with its
sector, so recovery reads are verified too).  Sectors with no recorded
checksum verify clean (an unwritten sector has no integrity claim), which
is also what makes attaching the store to an already-used disk sound.
"""

from __future__ import annotations

import zlib
from typing import Dict, List


class ChecksumStore:
    """CRC32 per physical sector, maintained out-of-band."""

    def __init__(self, sector_bytes: int) -> None:
        if sector_bytes <= 0:
            raise ValueError("sector_bytes must be positive")
        self.sector_bytes = sector_bytes
        self._crcs: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._crcs)

    def record(self, sector: int, data: bytes) -> None:
        """Recompute checksums for the sectors ``data`` just overwrote.

        Called from inside every ``Disk.write``, so the common shapes are
        fast-pathed: a single sector skips the slicing machinery, and
        multi-sector runs land in one batched dict update instead of one
        store per sector.
        """
        sb = self.sector_bytes
        count = len(data) // sb
        crc32 = zlib.crc32
        if count == 1 and len(data) == sb:
            self._crcs[sector] = crc32(data) & 0xFFFFFFFF
            return
        view = memoryview(data)
        self._crcs.update(
            (sector + i, crc32(view[i * sb : (i + 1) * sb]) & 0xFFFFFFFF)
            for i in range(count)
        )

    def recorded(self, sector: int) -> bool:
        return sector in self._crcs

    def forget(self, sector: int, count: int = 1) -> None:
        """Drop checksums (e.g. when a sector is quarantined for good)."""
        for s in range(sector, sector + count):
            self._crcs.pop(s, None)

    def verify(self, sector: int, count: int, data: bytes) -> List[int]:
        """Sectors of ``data`` whose contents contradict their checksum."""
        sb = self.sector_bytes
        if len(data) < count * sb:
            raise ValueError("data shorter than the claimed sector run")
        bad: List[int] = []
        view = memoryview(data)
        for i in range(count):
            stored = self._crcs.get(sector + i)
            if stored is None:
                continue
            if zlib.crc32(view[i * sb : (i + 1) * sb]) & 0xFFFFFFFF != stored:
                bad.append(sector + i)
        return bad


def silently_corrupt(disk, sector: int, count: int = 1) -> None:
    """Fault injection: flip every bit of a sector run *behind the drive's
    back* -- the raw image changes but the recorded checksums do not, so the
    next verified read must notice.  (Writing via :meth:`Disk.poke` would
    dutifully update the checksums, hiding the damage.)"""
    if disk._data is None:
        raise RuntimeError("disk was created with store_data=False")
    sb = disk.sector_bytes
    lo = sector * sb
    hi = lo + count * sb
    disk._data[lo:hi] = bytes(b ^ 0xFF for b in disk._data[lo:hi])
