"""The virtual log: the paper's core contribution (Section 3).

A *virtual log* is a log whose entries are not physically contiguous: each
entry is eagerly written to a free block near the disk head and threaded
backwards into a tree so that

* overwritten entries' space can be recycled without recopying live entries
  (Figure 3b), and
* recovery bootstraps from a single log-tail pointer persisted by the drive
  firmware at power-down, falling back to a full-disk scan for checksummed
  entries when that record is damaged.

:class:`~repro.vlog.vld.VirtualLogDisk` packages the log, the indirection
map, the eager-writing allocator, and the idle-time free-space compactor
behind the standard block-device interface.
"""

from repro.vlog.entries import (
    MapRecord,
    entries_per_chunk,
    QUARANTINE_CHUNK_BASE,
    UNMAPPED,
)
from repro.vlog.virtual_log import VirtualLog
from repro.vlog.imap import IndirectionMap
from repro.vlog.allocator import EagerAllocator, AllocationPolicy
from repro.vlog.compactor import FreeSpaceCompactor
from repro.vlog.recovery import (
    PowerDownStore,
    RecoveryOutcome,
    scan_for_tail,
    scan_records,
)
from repro.vlog.resilience import (
    ChecksumStore,
    FsckReport,
    MediaError,
    MediaScrubber,
    QuarantineTable,
    ResilienceController,
    RetryPolicy,
    silently_corrupt,
    vlfsck,
)
from repro.vlog.vld import VirtualLogDisk
from repro.vlog.transactions import (
    CrashInjected,
    Transaction,
    TransactionalVLD,
)
from repro.vlog.reorganizer import ReadReorganizer

__all__ = [
    "MapRecord",
    "entries_per_chunk",
    "QUARANTINE_CHUNK_BASE",
    "UNMAPPED",
    "VirtualLog",
    "IndirectionMap",
    "EagerAllocator",
    "AllocationPolicy",
    "FreeSpaceCompactor",
    "PowerDownStore",
    "RecoveryOutcome",
    "scan_for_tail",
    "scan_records",
    "ChecksumStore",
    "FsckReport",
    "MediaError",
    "MediaScrubber",
    "QuarantineTable",
    "ResilienceController",
    "RetryPolicy",
    "silently_corrupt",
    "vlfsck",
    "VirtualLogDisk",
    "Transaction",
    "TransactionalVLD",
    "CrashInjected",
    "ReadReorganizer",
]
