import pytest

from repro.hosts.specs import HOSTS, SPARCSTATION_10, ULTRASPARC_170


class TestHostSpecs:
    def test_registry(self):
        assert HOSTS["sparc10"] is SPARCSTATION_10
        assert HOSTS["ultra170"] is ULTRASPARC_170

    def test_clock_rates_match_paper(self):
        assert SPARCSTATION_10.clock_mhz == 50.0
        assert ULTRASPARC_170.clock_mhz == 167.0

    def test_ultra_scales_inversely_with_clock(self):
        ratio = 50.0 / 167.0
        assert ULTRASPARC_170.syscall_overhead == pytest.approx(
            SPARCSTATION_10.syscall_overhead * ratio
        )
        assert ULTRASPARC_170.per_block_overhead == pytest.approx(
            SPARCSTATION_10.per_block_overhead * ratio
        )

    def test_request_overhead_composition(self):
        spec = SPARCSTATION_10
        assert spec.request_overhead(0) == pytest.approx(
            spec.syscall_overhead + spec.interrupt_overhead
        )
        assert spec.request_overhead(3) == pytest.approx(
            spec.syscall_overhead
            + 3 * spec.per_block_overhead
            + spec.interrupt_overhead
        )

    def test_negative_blocks_rejected(self):
        with pytest.raises(ValueError):
            SPARCSTATION_10.request_overhead(-1)

    def test_faster_host_means_less_other_time(self):
        """Section 5.4: the host upgrade shrinks the 'other' component."""
        assert (
            ULTRASPARC_170.request_overhead(1)
            < SPARCSTATION_10.request_overhead(1) / 3
        )
