"""End-to-end UFS behaviour: namespace, data paths, sync semantics."""

import random

import pytest

from repro.fs.api import (
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    IsADirectory,
    NotADirectory,
)
from repro.ufs.ufs import UFS


class TestNamespace:
    def test_create_and_stat(self, ufs):
        ufs.create("/hello")
        st = ufs.stat("/hello")
        assert st.size == 0
        assert not st.is_dir
        assert ufs.exists("/hello")

    def test_duplicate_create_rejected(self, ufs):
        ufs.create("/a")
        with pytest.raises(FileExists):
            ufs.create("/a")

    def test_nested_directories(self, ufs):
        ufs.mkdir("/d1")
        ufs.mkdir("/d1/d2")
        ufs.create("/d1/d2/f")
        assert ufs.exists("/d1/d2/f")
        assert ufs.listdir("/d1") == ["d2"]
        assert ufs.listdir("/d1/d2") == ["f"]

    def test_missing_parent(self, ufs):
        with pytest.raises(FileNotFound):
            ufs.create("/no/f")

    def test_file_as_directory_rejected(self, ufs):
        ufs.create("/f")
        with pytest.raises(NotADirectory):
            ufs.create("/f/child")

    def test_unlink(self, ufs):
        ufs.create("/gone")
        ufs.unlink("/gone")
        assert not ufs.exists("/gone")
        with pytest.raises(FileNotFound):
            ufs.unlink("/gone")

    def test_unlink_directory_rejected(self, ufs):
        ufs.mkdir("/d")
        with pytest.raises(IsADirectory):
            ufs.unlink("/d")

    def test_rmdir(self, ufs):
        ufs.mkdir("/d")
        ufs.rmdir("/d")
        assert not ufs.exists("/d")

    def test_rmdir_nonempty_rejected(self, ufs):
        ufs.mkdir("/d")
        ufs.create("/d/f")
        with pytest.raises(DirectoryNotEmpty):
            ufs.rmdir("/d")

    def test_many_files_in_one_directory(self, ufs):
        names = [f"/f{i:04d}" for i in range(600)]
        for name in names:
            ufs.create(name)
        assert ufs.listdir("/") == sorted(n[1:] for n in names)

    def test_inode_reuse_after_unlink(self, ufs):
        ufs.create("/a")
        inum = ufs.stat("/a").inum
        ufs.unlink("/a")
        ufs.create("/b")
        assert ufs.stat("/b").inum == inum


class TestDataPath:
    def test_write_read_roundtrip(self, ufs):
        ufs.create("/f")
        ufs.write("/f", 0, b"hello world")
        data, _ = ufs.read("/f", 0, 11)
        assert data == b"hello world"

    def test_read_past_eof_truncates(self, ufs):
        ufs.create("/f")
        ufs.write("/f", 0, b"abc")
        data, _ = ufs.read("/f", 1, 100)
        assert data == b"bc"

    def test_sparse_file_reads_zero(self, ufs):
        ufs.create("/f")
        ufs.write("/f", 100 * 4096, b"end")
        data, _ = ufs.read("/f", 50 * 4096, 10)
        assert data == bytes(10)
        assert ufs.stat("/f").size == 100 * 4096 + 3

    def test_overwrite_in_place(self, ufs):
        ufs.create("/f")
        ufs.write("/f", 0, b"A" * 8192)
        ufs.write("/f", 4096, b"B" * 4096)
        data, _ = ufs.read("/f", 0, 8192)
        assert data == b"A" * 4096 + b"B" * 4096

    def test_unaligned_overwrite(self, ufs):
        ufs.create("/f")
        ufs.write("/f", 0, b"A" * 10000)
        ufs.write("/f", 5000, b"B" * 100)
        data, _ = ufs.read("/f", 0, 10000)
        assert data[:5000] == b"A" * 5000
        assert data[5000:5100] == b"B" * 100
        assert data[5100:] == b"A" * 4900

    def test_large_file_with_indirect_blocks(self, ufs):
        blob = bytes(range(256)) * 16 * 300  # ~1.2 MB -> indirect blocks
        ufs.create("/big")
        ufs.write("/big", 0, blob)
        data, _ = ufs.read("/big", 0, len(blob))
        assert data == blob

    def test_survives_cache_drop(self, ufs):
        ufs.create("/f")
        ufs.write("/f", 0, b"persist me")
        ufs.sync()
        ufs.drop_caches()
        data, _ = ufs.read("/f", 0, 10)
        assert data == b"persist me"

    def test_write_to_directory_rejected(self, ufs):
        ufs.mkdir("/d")
        with pytest.raises(IsADirectory):
            ufs.write("/d", 0, b"x")

    def test_negative_offset_rejected(self, ufs):
        ufs.create("/f")
        with pytest.raises(ValueError):
            ufs.write("/f", -1, b"x")

    def test_random_interleaved_writes_match_model(self, ufs):
        """Fuzz reads/writes against an in-memory reference."""
        rng = random.Random(77)
        ufs.create("/fuzz")
        model = bytearray()
        for _ in range(60):
            offset = rng.randrange(0, 60000)
            payload = bytes([rng.randrange(256)]) * rng.randrange(1, 9000)
            ufs.write("/fuzz", offset, payload)
            if len(model) < offset:
                model.extend(bytes(offset - len(model)))
            if len(model) < offset + len(payload):
                model.extend(bytes(offset + len(payload) - len(model)))
            model[offset : offset + len(payload)] = payload
        data, _ = ufs.read("/fuzz", 0, len(model))
        assert data == bytes(model)


class TestFragments:
    def test_small_file_occupies_fragments(self, ufs):
        ufs.create("/small")
        ufs.write("/small", 0, b"z" * 1024)
        st = ufs.stat("/small")
        assert st.size == 1024
        # File should consume 1 KB of fragments, not a whole block.
        frag_addr, frag_count = (
            ufs._read_inode(st.inum, __import__("repro.sim.stats",
                fromlist=["Breakdown"]).Breakdown()).tail_frags()
        )
        assert frag_count == 1

    def test_growing_promotes_tail_to_block(self, ufs):
        ufs.create("/g")
        ufs.write("/g", 0, b"a" * 1024)
        ufs.write("/g", 1024, b"b" * 6000)
        data, _ = ufs.read("/g", 0, 7024)
        assert data == b"a" * 1024 + b"b" * 6000

    def test_growing_within_tail(self, ufs):
        ufs.create("/g")
        ufs.write("/g", 0, b"a" * 1000)
        ufs.write("/g", 1000, b"b" * 1000)
        data, _ = ufs.read("/g", 0, 2000)
        assert data == b"a" * 1000 + b"b" * 1000

    def test_fragments_free_on_unlink(self, ufs):
        ufs.create("/warm")  # allocates the root directory's data block
        frags_before = ufs.alloc.free_space()[0]
        ufs.create("/s")
        ufs.write("/s", 0, b"x" * 1024)
        ufs.unlink("/s")
        assert ufs.alloc.free_space()[0] == frags_before


class TestSyncSemantics:
    def test_sync_write_touches_device(self, ufs):
        ufs.create("/f")
        breakdown = ufs.write("/f", 0, b"d" * 4096, sync=True)
        assert breakdown.locate + breakdown.transfer > 0

    def test_async_write_is_memory_speed(self, ufs):
        ufs.create("/f")
        ufs.write("/f", 0, b"warm" * 1024, sync=True)
        breakdown = ufs.write("/f", 0, b"d" * 4096, sync=False)
        assert breakdown.locate == 0.0

    def test_create_is_synchronous_metadata(self, ufs):
        """FFS semantics: create pays synchronous inode + directory
        writes -- the premise of the whole paper."""
        breakdown = ufs.create("/sync-create")
        assert breakdown.locate > 0
        assert ufs.device.disk.writes >= 2

    def test_fsync_flushes_dirty_data(self, ufs):
        ufs.create("/f")
        ufs.write("/f", 0, b"q" * 4096, sync=False)
        writes_before = ufs.device.disk.writes
        ufs.fsync("/f")
        assert ufs.device.disk.writes > writes_before

    def test_sync_flushes_everything(self, ufs):
        ufs.create("/f")
        ufs.write("/f", 0, b"q" * 40960, sync=False)
        ufs.sync()
        assert ufs.cache.dirty_count == 0


class TestRemount:
    def test_remount_sees_files(self, ufs):
        ufs.create("/keep")
        ufs.write("/keep", 0, b"durable data")
        ufs.mkdir("/dir")
        ufs.create("/dir/nested")
        ufs.write("/dir/nested", 0, b"n" * 5000)
        ufs.sync()
        remounted = UFS(ufs.device, ufs.host, format_device=False)
        data, _ = remounted.read("/keep", 0, 12)
        assert data == b"durable data"
        data, _ = remounted.read("/dir/nested", 0, 5000)
        assert data == b"n" * 5000
        assert remounted.listdir("/") == ["dir", "keep"]

    def test_remount_preserves_free_space(self, ufs):
        ufs.create("/f")
        ufs.write("/f", 0, b"x" * 40960)
        ufs.sync()
        before = ufs.alloc.free_space()
        remounted = UFS(ufs.device, ufs.host, format_device=False)
        assert remounted.alloc.free_space() == before


class TestPrefetch:
    def test_sequential_reads_trigger_prefetch(self, ufs):
        blob = bytes(range(256)) * 16 * 64  # 64 blocks
        ufs.create("/seq")
        ufs.write("/seq", 0, blob)
        ufs.sync()
        ufs.drop_caches()
        for i in range(8):
            ufs.read("/seq", i * 4096, 4096)
        reads_after_8 = ufs.device.disk.reads
        for i in range(8, 32):
            ufs.read("/seq", i * 4096, 4096)
        # Prefetch clusters mean far fewer than 24 extra disk commands.
        assert ufs.device.disk.reads - reads_after_8 < 16

    def test_random_reads_do_not_prefetch_wildly(self, ufs):
        blob = bytes(4096) * 64
        ufs.create("/rand")
        ufs.write("/rand", 0, blob)
        ufs.sync()
        ufs.drop_caches()
        rng = random.Random(1)
        sectors_before = ufs.device.disk.sectors_read
        for _ in range(10):
            ufs.read("/rand", rng.randrange(64) * 4096, 4096)
        # At most ~1 block per read plus metadata.
        assert ufs.device.disk.sectors_read - sectors_before < 10 * 8 * 3


class TestOnVld:
    def test_full_workout_on_virtual_log_disk(self, ufs_vld):
        ufs_vld.mkdir("/d")
        for i in range(50):
            ufs_vld.create(f"/d/f{i}")
            ufs_vld.write(f"/d/f{i}", 0, bytes([i]) * 3000, sync=True)
        for i in range(50):
            data, _ = ufs_vld.read(f"/d/f{i}", 0, 3000)
            assert data == bytes([i]) * 3000
        for i in range(0, 50, 2):
            ufs_vld.unlink(f"/d/f{i}")
        assert len(ufs_vld.listdir("/d")) == 25
        ufs_vld.device.vlog.check_invariants()

    def test_sync_updates_faster_on_vld(self, ufs, ufs_vld):
        """Figure 8's core comparison at file system level."""
        rng = random.Random(4)
        results = {}
        for name, fs in (("regular", ufs), ("vld", ufs_vld)):
            fs.create("/t")
            fs.write("/t", 0, bytes(4096) * 512)  # 2 MB
            fs.sync()
            total = 0.0
            for _ in range(60):
                offset = rng.randrange(512) * 4096
                total += fs.write("/t", offset, b"u" * 4096, sync=True).total
            results[name] = total / 60
        assert results["vld"] < results["regular"] / 2
