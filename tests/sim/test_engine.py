"""The discrete-event core: ordering, processes, primitives, intervals.

The load-bearing guarantees:

* deterministic tie-breaking -- events at the same instant fire in
  scheduling order, so a run's event trace is a pure function of the
  schedule calls (the hostile same-timestamp test);
* processes, timers, and wait/signal compose without consuming time
  they should not;
* interval arithmetic (union, intersection, per-key overlap) is exact.
"""

import pytest

from repro.sim.clock import SimClock
from repro.sim.engine import (
    EventEngine,
    IntervalRecorder,
    Timer,
    Until,
)


class TestEventOrdering:
    def test_events_fire_in_time_order(self):
        engine = EventEngine(trace=True)
        fired = []
        engine.at(0.3, lambda: fired.append("c"), name="c")
        engine.at(0.1, lambda: fired.append("a"), name="a")
        engine.at(0.2, lambda: fired.append("b"), name="b")
        engine.run()
        assert fired == ["a", "b", "c"]
        assert engine.now == 0.3

    def test_same_timestamp_fires_in_schedule_order(self):
        """The hostile case: many events at one instant, scheduled in a
        deliberately adversarial order.  Tie-breaking is the scheduling
        sequence number -- never heap internals or name ordering."""
        engine = EventEngine(trace=True)
        fired = []
        names = ["z", "a", "m", "z", "a", "0", "~", " "]
        for name in names:
            engine.at(0.5, lambda n=name: fired.append(n), name=name)
        engine.run()
        assert fired == names  # schedule order, not sorted order
        assert [n for _, _, n in engine.trace.as_tuples()] == names
        seqs = [s for _, s, _ in engine.trace.as_tuples()]
        assert seqs == sorted(seqs)

    def test_event_scheduled_during_fire_at_same_instant_runs_last(self):
        engine = EventEngine()
        fired = []
        engine.at(0.1, lambda: (fired.append("first"),
                                engine.at(0.1, lambda: fired.append("nested"))))
        engine.at(0.1, lambda: fired.append("second"))
        engine.run()
        assert fired == ["first", "second", "nested"]

    def test_cancelled_event_skipped(self):
        engine = EventEngine()
        fired = []
        keep = engine.at(0.2, lambda: fired.append("keep"))
        drop = engine.at(0.1, lambda: fired.append("drop"))
        drop.cancel()
        engine.run()
        assert fired == ["keep"]
        assert keep.time == 0.2

    def test_scheduling_in_the_past_rejected(self):
        engine = EventEngine()
        engine.at(1.0, lambda: None)
        engine.run()
        with pytest.raises(ValueError, match="before now"):
            engine.at(0.5, lambda: None)
        with pytest.raises(ValueError):
            engine.after(-0.1, lambda: None)

    def test_run_until_stops_at_horizon(self):
        engine = EventEngine()
        fired = []
        engine.at(0.1, lambda: fired.append(1))
        engine.at(5.0, lambda: fired.append(2))
        engine.run(until=1.0)
        assert fired == [1]
        assert engine.now == 1.0
        assert engine.pending == 1

    def test_max_events_backstop(self):
        engine = EventEngine()

        def rearm():
            engine.after(0.0, rearm)

        engine.after(0.0, rearm)
        with pytest.raises(RuntimeError, match="runaway"):
            engine.run(max_events=100)


class TestClockView:
    def test_engine_adopts_and_binds_clock(self):
        clock = SimClock()
        engine = EventEngine(clock=clock)
        assert engine.clock is clock
        assert clock.engine is engine
        engine.at(0.25, lambda: None)
        engine.run()
        assert clock.now == 0.25

    def test_fresh_engine_creates_bound_clock(self):
        engine = EventEngine()
        assert engine.clock.engine is engine
        assert SimClock().engine is None


class TestProcesses:
    def test_timer_yields_advance_time(self):
        engine = EventEngine()
        log = []

        def proc():
            log.append(("start", engine.now))
            yield 0.5
            log.append(("mid", engine.now))
            yield Timer(0.25)
            log.append(("end", engine.now))

        process = engine.spawn(proc(), name="p")
        engine.run()
        assert process.done
        assert log == [("start", 0.0), ("mid", 0.5), ("end", 0.75)]

    def test_process_return_value_and_termination_signal(self):
        engine = EventEngine()
        seen = []

        def worker():
            yield 0.1
            return 42

        def watcher(target):
            value = yield target.terminated
            seen.append(value)

        process = engine.spawn(worker(), name="w")
        engine.spawn(watcher(process), name="watch")
        engine.run()
        assert process.result == 42
        assert seen == [42]

    def test_signal_wakes_waiters_in_wait_order(self):
        engine = EventEngine()
        signal = engine.signal("go")
        woken = []

        def waiter(tag):
            value = yield signal
            woken.append((tag, value))

        for tag in ("b", "a", "c"):
            engine.spawn(waiter(tag), name=f"wait-{tag}")
        engine.after(0.2, lambda: signal.fire("payload"))
        engine.run()
        assert woken == [("b", "payload"), ("a", "payload"), ("c", "payload")]

    def test_signal_fire_without_waiters_is_noop(self):
        engine = EventEngine()
        signal = engine.signal("lonely")
        assert signal.fire("lost") == 0
        engine.run()
        assert signal.fires == 1

    def test_resource_serializes_fifo(self):
        engine = EventEngine()
        resource = engine.resource(capacity=1, name="stack")
        order = []

        def user(tag, hold):
            grant = resource.request()
            yield grant
            order.append((tag, engine.now))
            yield hold
            resource.release()

        engine.spawn(user("a", 0.3), name="a")
        engine.spawn(user("b", 0.1), name="b")
        engine.spawn(user("c", 0.1), name="c")
        engine.run()
        tags = [t for t, _ in order]
        starts = [s for _, s in order]
        assert tags == ["a", "b", "c"]  # strictly first-come-first-served
        assert starts == [0.0, 0.3, 0.4]

    def test_release_of_idle_resource_rejected(self):
        engine = EventEngine()
        with pytest.raises(RuntimeError, match="idle resource"):
            engine.resource(name="r").release()

    def test_bad_yield_type_rejected(self):
        engine = EventEngine()

        def bad():
            yield "soon"

        engine.spawn(bad(), name="bad")
        with pytest.raises(TypeError, match="yielded"):
            engine.run()

    def test_negative_timer_rejected(self):
        with pytest.raises(ValueError):
            Timer(-1.0)

    def test_until_is_bit_exact(self):
        """The local-lookahead catch-up: ``now + (t - now)`` need not
        equal ``t`` in floating point (0.1 + (0.41 - 0.1) misses 0.41 by
        an ulp), so a delay-based catch-up drifts once per request.
        Until lands on the absolute target exactly."""
        engine = EventEngine()
        landed = []

        def proc():
            yield 0.1
            yield Until(0.41)
            landed.append(engine.now)

        engine.spawn(proc(), name="p")
        engine.run()
        assert 0.1 + (0.41 - 0.1) != 0.41  # the hazard being guarded
        assert landed == [0.41]

    def test_until_in_the_past_resumes_immediately(self):
        engine = EventEngine()
        landed = []

        def proc():
            yield 0.5
            yield Until(0.2)  # already past: no time travel, no stall
            landed.append(engine.now)

        engine.spawn(proc(), name="p")
        engine.run()
        assert landed == [0.5]


class TestDeterminism:
    @staticmethod
    def _chaotic_run(seed_order):
        """Many processes racing timers and signals at coinciding times."""
        engine = EventEngine(trace=True)
        signal = engine.signal("shared")
        log = []

        def ticker(tag, period):
            for _ in range(4):
                yield period
                log.append((tag, engine.now))
                signal.fire(tag)

        def listener(tag):
            for _ in range(3):
                value = yield signal
                log.append((tag, value, engine.now))

        for tag, period in seed_order:
            engine.spawn(ticker(tag, period), name=f"tick-{tag}")
        engine.spawn(listener("L1"), name="L1")
        engine.spawn(listener("L2"), name="L2")
        engine.run()
        return log, engine.trace.as_tuples()

    def test_identical_trace_across_runs(self):
        order = [("x", 0.25), ("y", 0.5), ("z", 0.25)]
        log1, trace1 = self._chaotic_run(order)
        log2, trace2 = self._chaotic_run(order)
        assert log1 == log2
        assert trace1 == trace2
        # Coinciding timestamps actually occurred (x and z tick together),
        # so the equality above exercised the tie-break.
        times = [t for t, _, _ in trace1]
        assert len(times) != len(set(times))


class TestIntervalRecorder:
    def test_union_merges_overlaps(self):
        rec = IntervalRecorder()
        rec.note("busy", "d0", 0.0, 1.0)
        rec.note("busy", "d0", 0.5, 2.0)
        rec.note("busy", "d0", 3.0, 4.0)
        assert rec.merged("busy", "d0") == [(0.0, 2.0), (3.0, 4.0)]
        assert rec.total("busy", "d0") == pytest.approx(3.0)

    def test_union_across_keys(self):
        rec = IntervalRecorder()
        rec.note("busy", "d0", 0.0, 1.0)
        rec.note("busy", "d1", 0.5, 1.5)
        assert rec.merged("busy") == [(0.0, 1.5)]
        assert rec.keys("busy") == ["d0", "d1"]

    def test_overlap_is_intersection_measure(self):
        rec = IntervalRecorder()
        rec.note("think", "h0", 0.0, 1.0)
        rec.note("service", "d0", 0.5, 2.0)
        assert rec.overlap("think", "service") == pytest.approx(0.5)
        assert rec.overlap("service", "think") == pytest.approx(0.5)

    def test_per_key_overlap_counts_each_host(self):
        rec = IntervalRecorder()
        # Two hosts thinking through the same busy second: both hid work.
        rec.note("think", "h0", 0.0, 1.0)
        rec.note("think", "h1", 0.0, 1.0)
        rec.note("service", "d0", 0.0, 1.0)
        assert rec.overlap("think", "service") == pytest.approx(1.0)
        assert rec.per_key_overlap("think", "service") == pytest.approx(2.0)

    def test_zero_length_skipped_and_backwards_rejected(self):
        rec = IntervalRecorder()
        rec.note("busy", "d0", 1.0, 1.0)
        assert rec.merged("busy", "d0") == []
        with pytest.raises(ValueError, match="ends before"):
            rec.note("busy", "d0", 2.0, 1.0)


class TestTotalWithinBoundaries:
    """The pinned half-open convention for window clipping: intervals
    exactly abutting a window edge contribute zero, tiling windows
    partition measure exactly, degenerate windows are zero."""

    def recorder(self):
        rec = IntervalRecorder()
        rec.note("busy", "d0", 1.0, 2.0)
        rec.note("busy", "d0", 3.0, 5.0)
        return rec

    def test_interior_clip(self):
        rec = self.recorder()
        assert rec.total_within("busy", (1.5, 4.0)) == pytest.approx(1.5)

    def test_interval_ending_at_window_start_contributes_zero(self):
        rec = self.recorder()
        # [1, 2) abuts the window [2, 3): one shared point, measure zero.
        assert rec.total_within("busy", (2.0, 3.0)) == pytest.approx(0.0)

    def test_interval_starting_at_window_end_contributes_zero(self):
        rec = self.recorder()
        # [3, 5) starts exactly where the window [2.5, 3) ends.
        assert rec.total_within("busy", (2.5, 3.0)) == pytest.approx(0.0)

    def test_exactly_coincident_window(self):
        rec = self.recorder()
        assert rec.total_within("busy", (1.0, 2.0)) == pytest.approx(1.0)

    def test_tiling_windows_partition_measure(self):
        # Split at a point interior to an interval: the two halves must
        # sum to the untiled total -- no double count, no drop at the cut.
        rec = self.recorder()
        whole = rec.total_within("busy", (0.0, 6.0))
        for cut in (1.0, 1.5, 2.0, 3.0, 4.0, 5.0):
            left = rec.total_within("busy", (0.0, cut))
            right = rec.total_within("busy", (cut, 6.0))
            assert left + right == pytest.approx(whole), cut
        assert whole == pytest.approx(rec.total("busy"))

    def test_empty_and_inverted_windows_are_zero(self):
        rec = self.recorder()
        assert rec.total_within("busy", (1.5, 1.5)) == 0.0
        assert rec.total_within("busy", (4.0, 1.0)) == 0.0

    def test_window_entirely_outside_activity(self):
        rec = self.recorder()
        assert rec.total_within("busy", (6.0, 9.0)) == 0.0
        assert rec.total_within("busy", (2.0, 3.0)) == 0.0  # the gap

    def test_unknown_kind_is_zero(self):
        rec = self.recorder()
        assert rec.total_within("nope", (0.0, 10.0)) == 0.0
