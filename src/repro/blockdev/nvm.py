"""A byte-addressable NVM device model.

The stable-memory tier of the NVM write-ahead log ("Boosting File
Systems Elegantly: A Transparent NVM Write-ahead Log for Disk File
Systems", PAPERS.md).  The timing model follows "Characterizing
Synchronous Writes in Stable Memory Devices": a store costs a fixed
per-access latency plus bytes over the store bandwidth, and *persistence*
is a separate, explicit step -- stores land in a volatile buffer (CPU
caches / WPQ) and only a flush moves them into the persistence domain.
A crash discards everything still outside the persistence domain, which
is exactly the failure the write-ahead tier's CRC-chained records must
tolerate.

This is a *memory*, not a :class:`~repro.blockdev.interface.BlockDevice`:
it has byte offsets, no blocks, and no idle time.  The block-level
write-ahead tier (:class:`~repro.nvm.NVWal`) is built on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from repro.sim.clock import SimClock
from repro.sim.stats import Breakdown


@dataclass(frozen=True)
class NVMSpec:
    """One stable-memory part: capacity plus the four latency knobs.

    ``load_latency``/``store_latency`` are fixed per-access costs;
    ``load_bandwidth``/``store_bandwidth`` price the byte movement; and
    ``flush_latency`` is the cost of draining the volatile buffer into
    the persistence domain (CLWB+fence on an NVDIMM, a supercap drain
    guarantee on battery-backed SRAM).
    """

    name: str = "nvdimm"
    capacity_bytes: int = 8 << 20
    load_latency: float = 300e-9
    store_latency: float = 150e-9
    load_bandwidth: float = 6.0e9
    store_bandwidth: float = 2.0e9
    flush_latency: float = 500e-9

    def with_overrides(
        self,
        store_latency: Optional[float] = None,
        capacity_bytes: Optional[int] = None,
    ) -> "NVMSpec":
        """The CLI override hook (``--nvm-lat`` / ``--nvm-cap``)."""
        spec = self
        if store_latency is not None:
            spec = replace(spec, store_latency=store_latency)
        if capacity_bytes is not None:
            spec = replace(spec, capacity_bytes=capacity_bytes)
        return spec


#: Named parts for experiments: an NVDIMM-N (DRAM speed, fence-priced
#: persistence), battery-backed SRAM (the classic Prestoserve-style
#: accelerator board), and a slow phase-change part where the store
#: itself is the persistence cost.
NVM_SPECS = {
    "nvdimm": NVMSpec(),
    "battery-sram": NVMSpec(
        name="battery-sram",
        capacity_bytes=2 << 20,
        load_latency=200e-9,
        store_latency=200e-9,
        load_bandwidth=1.0e9,
        store_bandwidth=1.0e9,
        flush_latency=0.0,
    ),
    "slow-pcm": NVMSpec(
        name="slow-pcm",
        capacity_bytes=16 << 20,
        load_latency=1e-6,
        store_latency=3e-6,
        load_bandwidth=1.5e9,
        store_bandwidth=0.5e9,
        flush_latency=5e-6,
    ),
}


class NVMDevice:
    """Byte-addressable stable memory with an explicit persistence domain.

    Stores buffer in ``_pending`` until :meth:`flush` commits them to the
    persistent image; :meth:`load` sees the buffered stores (the CPU's
    own view), :meth:`crash` discards them (power loss).  All costs
    advance the shared simulation ``clock`` and come back as
    :class:`Breakdown` objects -- latency under ``"other"``, byte
    movement under ``"transfer"`` -- so callers fold NVM time into the
    same accounting as disk time.
    """

    def __init__(self, spec: NVMSpec, clock: SimClock) -> None:
        if spec.capacity_bytes <= 0:
            raise ValueError("NVM capacity must be positive")
        self.spec = spec
        self.clock = clock
        self._image = bytearray(spec.capacity_bytes)
        #: Stores not yet in the persistence domain, in program order.
        self._pending: List[Tuple[int, bytes]] = []
        self.loads = 0
        self.stores = 0
        self.flushes = 0
        self.bytes_loaded = 0
        self.bytes_stored = 0
        self.stores_lost_on_crash = 0

    @property
    def capacity_bytes(self) -> int:
        return self.spec.capacity_bytes

    def _check(self, offset: int, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("byte count must be non-negative")
        if not (0 <= offset and offset + nbytes <= self.spec.capacity_bytes):
            raise ValueError(
                f"range [{offset}, {offset + nbytes}) outside NVM of "
                f"{self.spec.capacity_bytes} bytes"
            )

    def _charge(
        self, latency: float, nbytes: int, bandwidth: float, timed: bool
    ) -> Breakdown:
        breakdown = Breakdown()
        if not timed:
            return breakdown
        breakdown.charge("other", latency)
        if nbytes:
            breakdown.charge("transfer", nbytes / bandwidth)
        self.clock.advance(breakdown.total)
        return breakdown

    def store(self, offset: int, data: bytes, timed: bool = True) -> Breakdown:
        """Buffer a store; *not* persistent until :meth:`flush`."""
        self._check(offset, len(data))
        self._pending.append((offset, bytes(data)))
        self.stores += 1
        self.bytes_stored += len(data)
        return self._charge(
            self.spec.store_latency, len(data), self.spec.store_bandwidth, timed
        )

    def load(
        self, offset: int, nbytes: int, timed: bool = True
    ) -> Tuple[bytes, Breakdown]:
        """Read bytes as the CPU sees them (buffered stores included)."""
        self._check(offset, nbytes)
        view = bytearray(self._image[offset : offset + nbytes])
        for off, data in self._pending:
            lo = max(off, offset)
            hi = min(off + len(data), offset + nbytes)
            if hi > lo:
                view[lo - offset : hi - offset] = data[lo - off : hi - off]
        self.loads += 1
        self.bytes_loaded += nbytes
        cost = self._charge(
            self.spec.load_latency, nbytes, self.spec.load_bandwidth, timed
        )
        return bytes(view), cost

    def flush(self, timed: bool = True) -> Breakdown:
        """Drain buffered stores into the persistence domain."""
        for offset, data in self._pending:
            self._image[offset : offset + len(data)] = data
        self._pending = []
        self.flushes += 1
        return self._charge(self.spec.flush_latency, 0, 1.0, timed)

    def crash(self) -> None:
        """Power loss: everything outside the persistence domain is gone."""
        self.stores_lost_on_crash += len(self._pending)
        self._pending = []

    def persisted(self, offset: int, nbytes: int) -> bytes:
        """The persistence-domain contents (untimed; tests and recovery
        assertions -- a real restart reads through :meth:`load`, whose
        buffer is empty after a crash anyway)."""
        self._check(offset, nbytes)
        return bytes(self._image[offset : offset + nbytes])

    def stats(self) -> dict:
        return {
            "loads": self.loads,
            "stores": self.stores,
            "flushes": self.flushes,
            "bytes_loaded": self.bytes_loaded,
            "bytes_stored": self.bytes_stored,
            "stores_lost_on_crash": self.stores_lost_on_crash,
        }

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        return (
            f"NVMDevice({self.spec.name}, {self.spec.capacity_bytes} B, "
            f"stores={self.stores}, pending={len(self._pending)})"
        )
