"""Host machine models (Section 4 / Figure 9's ``other`` component)."""

from repro.hosts.specs import (
    HostSpec,
    SPARCSTATION_10,
    ULTRASPARC_170,
    HOSTS,
)

__all__ = ["HostSpec", "SPARCSTATION_10", "ULTRASPARC_170", "HOSTS"]
