"""Atomic multi-block transactions on the Virtual Log Disk.

Section 3.2 promises that the virtual log "serves as a base mechanism upon
which efficient transactions can be built" and notes that a transaction
whose map entries span map sectors "may need" multiple map-sector writes.
This module builds the mechanism out:

* a transaction's data blocks are eagerly written first (their old copies
  are *retained*);
* the affected map chunks are appended as transaction *members*
  (``txn_id`` tagged), with their superseded predecessors kept in the log;
* a tiny **commit record** — an ordinary log entry in a reserved chunk-id
  range — makes the transaction durable in one final eager write;
* only then are the superseded map records and old data blocks recycled.

Recovery applies a member chunk version only when its commit record is
found; otherwise the predecessor version wins, giving all-or-nothing
semantics across any number of blocks with no write-ahead log, no
update-in-place, and no NVRAM.  Commit records are recycled by slot reuse
once every member of their transaction has been superseded.

One transaction may be open at a time (the simulation is synchronous,
matching a single drive processor).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.sim.stats import Breakdown
from repro.vlog.vld import VirtualLogDisk


class CrashInjected(Exception):
    """Raised by test-only crash points inside :meth:`Transaction.commit`."""


class Transaction:
    """A batch of logical-block writes applied atomically."""

    def __init__(self, vld: "TransactionalVLD") -> None:
        self._vld = vld
        self._writes: Dict[int, bytes] = {}
        self.committed = False
        self.aborted = False

    def write(self, lba: int, data: Optional[bytes] = None) -> None:
        """Buffer one block write (last write to an lba wins)."""
        if self.committed or self.aborted:
            raise RuntimeError("transaction already finished")
        self._vld.check_lba(lba, 1)
        self._writes[lba] = self._vld.check_data(data, 1)

    def commit(self, crash_point: Optional[str] = None) -> Breakdown:
        """Apply every buffered write atomically.

        ``crash_point`` ('after_data' | 'after_members') aborts the commit
        mid-flight by raising :class:`CrashInjected` -- a fault-injection
        hook for recovery tests; callers then simulate power loss with
        ``vld.crash()`` and ``vld.recover()``.
        """
        if self.committed or self.aborted:
            raise RuntimeError("transaction already finished")
        breakdown = self._vld._commit_transaction(
            self._writes, crash_point
        )
        self.committed = True
        return breakdown

    def abort(self) -> None:
        """Discard the buffered writes (nothing has touched the disk)."""
        self._writes.clear()
        self.aborted = True

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> bool:
        if exc_type is None and not self.committed and not self.aborted:
            self.commit()
        elif exc_type is not None and not self.committed:
            self.aborted = True
        return False


class TransactionalVLD(VirtualLogDisk):
    """A Virtual Log Disk with atomic multi-block writes."""

    def begin(self) -> Transaction:
        """Open a transaction."""
        return Transaction(self)

    def write_atomic(
        self, writes: List[Tuple[int, Optional[bytes]]]
    ) -> Breakdown:
        """Convenience: apply ``[(lba, data), ...]`` atomically."""
        txn = self.begin()
        for lba, data in writes:
            txn.write(lba, data)
        return txn.commit()

    # ------------------------------------------------------------------

    def _commit_transaction(
        self, writes: Dict[int, bytes], crash_point: Optional[str]
    ) -> Breakdown:
        breakdown = self._charge_scsi()
        if not writes:
            return breakdown
        self._disarm_power_record(breakdown)
        txn_id = self.vlog.begin_txn()
        # Phase 1: eager-write the new data; keep the old copies.
        displaced: List[int] = []
        touched_chunks: Dict[int, None] = {}
        for lba in sorted(writes):
            new_block = self.allocator.allocate()
            breakdown.add(
                self.disk.write(
                    new_block * self.sectors_per_block,
                    self.sectors_per_block,
                    writes[lba],
                    charge_scsi=False,
                )
            )
            old = self.imap.set(lba, new_block)
            self.reverse[new_block] = lba
            if old is not None:
                displaced.append(old)
            touched_chunks[self.imap.chunk_id_of(lba)] = None
        if crash_point == "after_data":
            raise CrashInjected("crash injected after data writes")
        # Phase 2: the member map records (predecessors retained).
        superseded: List[int] = []
        for chunk_id in touched_chunks:
            cost, old_record = self.vlog.append_txn_member(
                chunk_id, self.imap.chunk_entries(chunk_id), txn_id
            )
            breakdown.add(cost)
            if old_record is not None:
                superseded.append(old_record)
        if crash_point == "after_members":
            raise CrashInjected("crash injected before the commit record")
        # Phase 3: the commit record -- the transaction's durability point.
        breakdown.add(self.vlog.commit_txn(txn_id, superseded))
        # Phase 4: recycle the displaced data blocks.
        for old in displaced:
            self.reverse.pop(old, None)
            self.allocator.free_block(old)
        self.logical_writes += len(writes)
        return breakdown
