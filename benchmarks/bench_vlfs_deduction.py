"""Extension: testing the paper's VLFS deduction directly.

Section 5.1 speculates that VLFS "should approximate the performance of
UFS on the VLD when we must write synchronously, while retaining the
benefits of LFS when asynchronous buffering is acceptable."  The paper
could only deduce this (VLFS was unimplemented); this reproduction built
VLFS, so the bench measures it.
"""

import random

from repro.blockdev.regular import RegularDisk
from repro.disk.cache import ReadAheadPolicy
from repro.disk.disk import Disk
from repro.disk.specs import ST19101
from repro.harness.report import format_table
from repro.hosts.specs import SPARCSTATION_10
from repro.lfs.lfs import LFS
from repro.ufs.ufs import UFS
from repro.vlfs.vlfs import VLFS
from repro.vlog.vld import VirtualLogDisk

from .conftest import full_scale, run_once

_MB = 1 << 20


def _stacks():
    vld_disk = Disk(ST19101, readahead=ReadAheadPolicy.FULL_TRACK)
    return {
        "ufs-regular": UFS(RegularDisk(Disk(ST19101)), SPARCSTATION_10),
        "ufs-vld": UFS(VirtualLogDisk(vld_disk), SPARCSTATION_10),
        "lfs-regular": LFS(RegularDisk(Disk(ST19101)), SPARCSTATION_10),
        "vlfs": VLFS(Disk(ST19101), SPARCSTATION_10),
    }


def _measure(fs, updates):
    rng = random.Random(8)
    file_bytes = 8 * _MB
    fs.create("/t")
    chunk = bytes(4096) * 128
    for offset in range(0, file_bytes, len(chunk)):
        fs.write("/t", offset, chunk)
    fs.sync()
    nblocks = file_bytes // 4096
    sync_total = 0.0
    for _ in range(updates):
        offset = rng.randrange(nblocks) * 4096
        sync_total += fs.write("/t", offset, b"u" * 4096, sync=True).total
    async_total = 0.0
    for _ in range(updates):
        offset = rng.randrange(nblocks) * 4096
        async_total += fs.write("/t", offset, b"v" * 4096).total
    return sync_total / updates * 1e3, async_total / updates * 1e3


def test_vlfs_deduction(benchmark):
    updates = 400 if full_scale() else 150

    def sweep():
        return {
            name: _measure(fs, updates) for name, fs in _stacks().items()
        }

    results = run_once(benchmark, sweep)

    print()
    rows = [
        [name, sync_ms, async_ms]
        for name, (sync_ms, async_ms) in results.items()
    ]
    print(
        format_table(
            ["stack", "sync write (ms)", "async write (ms)"],
            rows,
            title="VLFS deduction (Section 5.1): random 4 KB updates, "
            "8 MB file",
        )
    )

    vlfs_sync, vlfs_async = results["vlfs"]
    vld_sync, _ = results["ufs-vld"]
    reg_sync, _ = results["ufs-regular"]
    _, lfs_async = results["lfs-regular"]
    # Synchronously: VLFS ~ UFS-on-VLD, far below update-in-place.
    assert vlfs_sync < 2.5 * vld_sync
    assert vlfs_sync < reg_sync / 2
    # Asynchronously: VLFS ~ LFS (memory-speed buffering).
    assert vlfs_async < 2 * lfs_async + 1.0
