"""Power-down record and scan-fallback recovery (Section 3.2)."""

import pytest

from repro.disk.disk import Disk
from repro.disk.specs import ST19101
from repro.vlog.recovery import PowerDownStore, scan_for_tail
from repro.vlog.entries import MapRecord


@pytest.fixture
def disk():
    return Disk(ST19101, num_cylinders=2)


@pytest.fixture
def store(disk):
    return PowerDownStore(disk, block=0, block_size=4096)


class TestPowerDownStore:
    def test_write_read_roundtrip(self, store):
        store.write(tail_block=123, seqno=77)
        record, _cost = store.read()
        assert record == (123, 77)

    def test_untimed_mode_does_not_advance_clock(self, store, disk):
        before = disk.clock.now
        store.write(5, 1, timed=False)
        record, _ = store.read(timed=False)
        assert record == (5, 1)
        assert disk.clock.now == before

    def test_blank_disk_reads_none(self, store):
        record, _ = store.read(timed=False)
        assert record is None

    def test_clear_erases(self, store):
        store.write(9, 2, timed=False)
        store.clear(timed=False)
        record, _ = store.read(timed=False)
        assert record is None

    def test_corrupt_record_detected_by_checksum(self, store):
        """The 'extremely rare case when this power down sequence fails'
        must be detected, not trusted."""
        store.write(9, 2, timed=False)
        store.corrupt()
        record, _ = store.read(timed=False)
        assert record is None

    def test_bitflip_detected(self, store, disk):
        store.write(1000, 50, timed=False)
        raw = bytearray(disk.peek(store._sector, store.sectors_per_block))
        raw[9] ^= 0x40  # flip a bit inside the tail field
        disk.poke(store._sector, bytes(raw))
        record, _ = store.read(timed=False)
        assert record is None


class TestScanFallback:
    def _plant(self, disk, block, chunk_id, seqno):
        record = MapRecord(chunk_id=chunk_id, seqno=seqno, entries=[seqno])
        disk.poke(block * 8, record.pack(4096))

    def test_finds_youngest_record(self, disk):
        self._plant(disk, 10, 0, 5)
        self._plant(disk, 200, 1, 9)
        self._plant(disk, 400, 0, 7)
        tail, _cost, examined = scan_for_tail(disk, timed=False)
        assert tail == 200
        assert examined == disk.total_sectors // 8

    def test_empty_disk_finds_nothing(self, disk):
        tail, _cost, _n = scan_for_tail(disk, timed=False)
        assert tail is None

    def test_skip_block_excluded(self, disk):
        self._plant(disk, 0, 0, 99)
        tail, _, _ = scan_for_tail(disk, skip_block=0, timed=False)
        assert tail is None

    def test_data_blocks_ignored(self, disk):
        disk.poke(80, b"Z" * 4096)
        self._plant(disk, 50, 0, 3)
        tail, _, _ = scan_for_tail(disk, timed=False)
        assert tail == 50

    def test_timed_scan_costs_whole_disk_reads(self, disk):
        """The scan is the slow path: it must cost on the order of reading
        every track once (why the power-down record matters)."""
        self._plant(disk, 3, 0, 1)
        _tail, cost, _n = scan_for_tail(disk, timed=True)
        tracks = disk.geometry.num_cylinders * disk.geometry.tracks_per_cylinder
        min_transfer = tracks * disk.geometry.sectors_per_track * (
            disk.mechanics.sector_time
        )
        assert cost.total >= min_transfer * 0.9
