"""On-disk layout: superblock and cylinder groups.

Layout (in 4 KB device blocks)::

    block 0                 superblock
    block 1 ..              cylinder group 0
      +0                    bitmap block (inode bitmap ++ fragment bitmap)
      +1 .. +itable         inode table
      +itable+1 .. end      data blocks
    ...                     cylinder group 1, ...

Groups are sized to match the simulated disk's cylinders when the caller
passes ``blocks_per_group`` accordingly (the harness does), giving the
allocator the physical locality FFS's cylinder groups exist for.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List

from repro.fs.inode import INODE_SIZE

_SB = struct.Struct("<8sIIIIIIII")
_SB_MAGIC = b"REPROUFS"

#: Fragment size in bytes (the paper's UFS config: 4 KB / 1 KB).
FRAG_SIZE = 1024


@dataclass
class Superblock:
    """Mountable file system description, stored in device block 0."""

    block_size: int
    frag_size: int
    total_blocks: int
    blocks_per_group: int
    inodes_per_group: int
    num_groups: int
    root_inum: int
    generation: int = 0

    def pack(self) -> bytes:
        raw = _SB.pack(
            _SB_MAGIC,
            self.block_size,
            self.frag_size,
            self.total_blocks,
            self.blocks_per_group,
            self.inodes_per_group,
            self.num_groups,
            self.root_inum,
            self.generation,
        )
        return raw + bytes(self.block_size - len(raw))

    @classmethod
    def unpack(cls, raw: bytes) -> "Superblock":
        magic, bs, fs, total, bpg, ipg, ngroups, root, gen = _SB.unpack(
            raw[: _SB.size]
        )
        if magic != _SB_MAGIC:
            raise ValueError("not a UFS superblock")
        return cls(bs, fs, total, bpg, ipg, ngroups, root, gen)


class UFSLayout:
    """Derived layout facts for one file system instance."""

    def __init__(self, sb: Superblock) -> None:
        self.sb = sb
        self.block_size = sb.block_size
        self.frag_size = sb.frag_size
        self.frags_per_block = sb.block_size // sb.frag_size
        self.inodes_per_block = sb.block_size // INODE_SIZE
        self.itable_blocks = -(-sb.inodes_per_group // self.inodes_per_block)
        self.meta_blocks_per_group = 1 + self.itable_blocks
        if sb.blocks_per_group <= self.meta_blocks_per_group:
            raise ValueError("groups too small to hold their metadata")
        self.data_blocks_per_group = (
            sb.blocks_per_group - self.meta_blocks_per_group
        )
        self.total_inodes = sb.num_groups * sb.inodes_per_group

    @classmethod
    def design(
        cls,
        total_blocks: int,
        block_size: int = 4096,
        blocks_per_group: int = 512,
        inodes_per_group: int = 0,
    ) -> "UFSLayout":
        """Compute a layout for a device (``mkfs``'s sizing step)."""
        if total_blocks < 8:
            raise ValueError("device too small")
        blocks_per_group = min(blocks_per_group, total_blocks - 1)
        num_groups = (total_blocks - 1) // blocks_per_group
        if num_groups < 1:
            raise ValueError("device cannot hold one cylinder group")
        if inodes_per_group <= 0:
            # One inode per two data blocks, rounded to whole table blocks,
            # at least one table block.
            per_block = block_size // INODE_SIZE
            inodes_per_group = max(
                per_block, (blocks_per_group // 2 // per_block) * per_block
            )
        sb = Superblock(
            block_size=block_size,
            frag_size=FRAG_SIZE,
            total_blocks=total_blocks,
            blocks_per_group=blocks_per_group,
            inodes_per_group=inodes_per_group,
            num_groups=num_groups,
            root_inum=1,
        )
        return cls(sb)

    # -- addressing -------------------------------------------------------

    def group_start(self, group: int) -> int:
        self._check_group(group)
        return 1 + group * self.sb.blocks_per_group

    def bitmap_block(self, group: int) -> int:
        return self.group_start(group)

    def itable_start(self, group: int) -> int:
        return self.group_start(group) + 1

    def data_start(self, group: int) -> int:
        return self.group_start(group) + self.meta_blocks_per_group

    def group_end(self, group: int) -> int:
        return self.group_start(group) + self.sb.blocks_per_group

    def group_of_block(self, lba: int) -> int:
        if lba < 1:
            raise ValueError("block 0 is the superblock")
        group = (lba - 1) // self.sb.blocks_per_group
        self._check_group(group)
        return group

    def group_of_inum(self, inum: int) -> int:
        self._check_inum(inum)
        return inum // self.sb.inodes_per_group

    def inode_position(self, inum: int):
        """(device block, byte offset) of an inode in its table."""
        self._check_inum(inum)
        group = inum // self.sb.inodes_per_group
        index = inum % self.sb.inodes_per_group
        block = self.itable_start(group) + index // self.inodes_per_block
        offset = (index % self.inodes_per_block) * INODE_SIZE
        return block, offset

    def data_block_range(self, group: int):
        """Half-open [start, end) of a group's data blocks."""
        return self.data_start(group), self.group_end(group)

    def frag_to_block(self, frag: int):
        """Absolute fragment -> (device block, byte offset)."""
        return frag // self.frags_per_block, (
            frag % self.frags_per_block
        ) * self.frag_size

    def block_to_frag(self, lba: int) -> int:
        return lba * self.frags_per_block

    def _check_group(self, group: int) -> None:
        if not 0 <= group < self.sb.num_groups:
            raise ValueError(f"group {group} out of range")

    def _check_inum(self, inum: int) -> None:
        if not 0 < inum < self.total_inodes:
            raise ValueError(f"inode {inum} out of range")

    def bitmap_layout(self) -> List[int]:
        """Byte offsets [inode_bitmap, frag_bitmap, end] inside the bitmap
        block."""
        inode_bytes = (self.sb.inodes_per_group + 7) // 8
        frag_bits = self.sb.blocks_per_group * self.frags_per_block
        frag_bytes = (frag_bits + 7) // 8
        if inode_bytes + frag_bytes > self.block_size:
            raise ValueError("bitmaps do not fit in one block")
        return [0, inode_bytes, inode_bytes + frag_bytes]
