"""Figure 6: small-file create/read/delete on the four stacks,
normalized to UFS on the regular disk."""

from repro.harness import experiments
from repro.harness.report import format_table

from .conftest import full_scale, run_once


def test_figure6(benchmark):
    num_files = 1500 if full_scale() else 500

    result = run_once(
        benchmark, lambda: experiments.figure6(num_files=num_files)
    )

    print()
    rows = [
        [
            stack,
            result["normalized"][stack]["create"],
            result["normalized"][stack]["read"],
            result["normalized"][stack]["delete"],
        ]
        for stack in ("ufs-regular", "ufs-vld", "lfs-regular", "lfs-vld")
    ]
    print(
        format_table(
            ["stack", "create", "read", "delete"],
            rows,
            title=(
                f"Figure 6: small-file performance, {num_files} x 1 KB "
                "(normalized to ufs-regular; higher is better)"
            ),
        )
    )

    normalized = result["normalized"]
    # VLD accelerates UFS's synchronous create/delete substantially.
    assert normalized["ufs-vld"]["create"] > 1.3
    assert normalized["ufs-vld"]["delete"] > 2.0
    # Reads are not helped (slightly hurt, within a band).
    assert 0.6 < normalized["ufs-vld"]["read"] < 1.5
    # LFS buffers metadata: asynchronous create/delete far ahead of UFS.
    assert normalized["lfs-regular"]["create"] > 1.3
    assert normalized["lfs-regular"]["delete"] > 2.0
    # LFS reads are slower (user-level port, no read-ahead).
    assert normalized["lfs-regular"]["read"] < 1.0
