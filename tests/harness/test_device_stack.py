"""build_stack's interposer threading: config flags, the process-wide
default, the metrics registry, and metrics-vs-recorder agreement on the
Figure 9 breakdown."""

import pytest

from repro.blockdev.interpose import (
    FaultDevice,
    FaultPlan,
    InterposeOptions,
    MetricsDevice,
    TracingDevice,
    core_device,
    find_layer,
)
from repro.blockdev.regular import RegularDisk
from repro.harness.configs import (
    StackConfig,
    build_stack,
    drain_metrics_stacks,
    set_default_interpose,
)
from repro.sim.stats import COMPONENTS
from repro.vlog.vld import VirtualLogDisk
from repro.workloads.random_update import prepare_file, run_random_updates


@pytest.fixture(autouse=True)
def _clean_global_state():
    set_default_interpose(None)
    drain_metrics_stacks()
    yield
    set_default_interpose(None)
    drain_metrics_stacks()


def _config(**kwargs):
    return StackConfig(
        "ufs-regular", "ufs", "regular", num_cylinders=2, **kwargs
    )


class TestConfigFlags:
    def test_no_flags_builds_bare_device(self):
        _fs, _disk, device = build_stack(_config())
        assert isinstance(device, RegularDisk)

    def test_metrics_flag_wraps_and_registers(self):
        _fs, _disk, device = build_stack(_config(metrics=True))
        assert isinstance(device, MetricsDevice)
        registry = drain_metrics_stacks()
        assert [name for name, _ in registry] == ["ufs-regular"]
        assert registry[0][1] is device

    def test_trace_and_fault_flags(self):
        config = _config(trace=True, faults=FaultPlan(seed=1))
        _fs, _disk, device = build_stack(config)
        assert isinstance(device, TracingDevice)
        assert find_layer(device, FaultDevice) is not None
        assert drain_metrics_stacks() == []

    def test_vld_config_keeps_vld_core(self):
        config = StackConfig(
            "ufs-vld", "ufs", "vld", num_cylinders=2, metrics=True
        )
        _fs, _disk, device = build_stack(config)
        assert isinstance(core_device(device), VirtualLogDisk)

    def test_process_default_applies_to_every_stack(self):
        set_default_interpose(InterposeOptions(metrics=True))
        _fs, _disk, device = build_stack(_config())
        assert isinstance(device, MetricsDevice)
        assert len(drain_metrics_stacks()) == 1

    def test_explicit_override_beats_default(self):
        set_default_interpose(InterposeOptions(metrics=True))
        _fs, _disk, device = build_stack(
            _config(), interpose=InterposeOptions()
        )
        assert isinstance(device, RegularDisk)

    def test_fs_still_works_through_the_stack(self):
        fs, _disk, device = build_stack(_config(metrics=True, trace=True))
        fs.create("/f")
        fs.write("/f", 0, b"payload", sync=True)
        data, _ = fs.read("/f", 0, 7)
        assert data == b"payload"
        assert find_layer(device, MetricsDevice).total_ops > 0


class TestFigure9FromHistograms:
    def test_metrics_fractions_match_recorder_fractions(self):
        """The Figure 9 breakdown regenerated from the MetricsDevice's
        histograms agrees with the workload's own per-call accounting."""
        config = StackConfig(
            "ufs-vld", "ufs", "vld", num_cylinders=2, metrics=True
        )
        fs, _disk, device = build_stack(config)
        metrics = find_layer(device, MetricsDevice)
        file_bytes = 64 * 4096
        prepare_file(fs, "/target", file_bytes)
        recorder = run_random_updates(
            fs, "/target", file_bytes, updates=40, warmup=10,
            on_measure_start=metrics.reset,
        )
        from_metrics = metrics.component_fractions()
        from_recorder = recorder.component_fractions()
        for name in COMPONENTS:
            assert from_metrics[name] == pytest.approx(
                from_recorder[name], abs=1e-6
            )
        # And the absolute time agrees, not just the shape.
        assert sum(metrics.component_totals().values()) == pytest.approx(
            recorder.total_time
        )
