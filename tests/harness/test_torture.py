"""Tests for the composed-fault torture harness.

The harness is itself a checker, so the important test is the
*checker-mutation* one: plant a bug (acked writes that never commit)
and prove the torture point catches it, then prove the minimizer can
shrink that failing plan while keeping it failing.
"""

import json
import os

import pytest

from repro.harness.torture import (
    FAMILIES,
    WORKLOADS,
    long_set,
    matrix,
    minimize,
    quick_set,
    torture_point,
    write_repro,
)
from repro.sim.stats import Breakdown
from repro.vlog.virtual_log import VirtualLog


class TestTorturePoint:
    def test_crash_torn_point_survives(self):
        verdict = torture_point(
            workload="small_writes", ops=60, crash_after=20, torn=True, seed=0
        )
        assert verdict["ok"], verdict["failures"]
        assert verdict["failures"] == []
        assert verdict["crashed_at"] is not None
        assert not verdict["orderly"]
        assert verdict["fsck"].get("violations", 0) == 0
        assert verdict["fsck"]["checked_blocks"] > 0

    def test_orderly_point_uses_power_record(self):
        verdict = torture_point(
            workload="overwrites", ops=40, crash_after=None, torn=False, seed=1
        )
        assert verdict["ok"], verdict["failures"]
        assert verdict["orderly"]
        assert verdict["recovery"]["used_power_down_record"]

    def test_flaky_point_exercises_retries(self):
        verdict = torture_point(
            workload="bursty_idle", ops=100, flaky=6, flaky_rate=0.5, seed=0
        )
        assert verdict["ok"], verdict["failures"]
        assert verdict["counters"]["retries"] > 0

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            torture_point(workload="nope")

    def test_deterministic_verdicts(self):
        a = torture_point(workload="sequential", ops=50, crash_after=15, seed=3)
        b = torture_point(workload="sequential", ops=50, crash_after=15, seed=3)
        assert a == b


class TestMatrix:
    def test_quick_set_covers_every_workload_and_family(self):
        points = quick_set()
        assert len(points) == len(WORKLOADS) * len(FAMILIES)
        params = [p.params for p in points]
        assert {p["workload"] for p in params} == set(WORKLOADS)

    def test_long_set_is_the_multi_seed_grid(self):
        assert len(long_set()) == 8 * len(WORKLOADS) * len(FAMILIES)

    def test_points_name_the_importable_fn(self):
        point = matrix(seeds=(0,))[0]
        assert point.fn_name == "repro.harness.torture:torture_point"


class TestCheckerMutation:
    """Plant a real durability bug and prove the torture point sees it."""

    @pytest.fixture()
    def lost_commits(self, monkeypatch):
        # Acked writes update the in-memory map but the map chunk never
        # reaches the log: every crash silently loses acknowledged data.
        monkeypatch.setattr(
            VirtualLog, "append",
            lambda self, chunk_id, entries, txn_id=0: Breakdown(),
        )

    def test_mutation_is_caught(self, lost_commits):
        verdict = torture_point(
            workload="small_writes", ops=60, crash_after=20, torn=False, seed=0
        )
        assert not verdict["ok"]
        assert verdict["failures"]

    def test_minimizer_shrinks_and_stays_failing(self, lost_commits):
        params = dict(
            workload="small_writes", ops=60, crash_after=20, torn=False
        )
        minimized = minimize(dict(params), seed=0)
        assert minimized["params"]["ops"] <= params["ops"]
        assert minimized["runs"] <= 40
        assert not torture_point(seed=0, **minimized["params"])["ok"]

    def test_write_repro_artifact(self, lost_commits, tmp_path):
        verdict = torture_point(
            workload="small_writes", ops=60, crash_after=20, torn=False, seed=0
        )
        verdict["params"] = dict(
            workload="small_writes", ops=60, crash_after=20, torn=False
        )
        minimized = {"params": verdict["params"], "seed": 0, "runs": 1}
        path = write_repro(verdict, minimized, directory=str(tmp_path))
        assert os.path.dirname(path) == str(tmp_path)
        artifact = json.loads(open(path).read())
        assert artifact["fn"] == "repro.harness.torture:torture_point"
        assert "torture_point(" in artifact["reproduce"]
        assert artifact["failures"]

    def test_minimize_refuses_passing_plan(self):
        with pytest.raises(ValueError, match="failing plan"):
            minimize(
                dict(workload="small_writes", ops=30, crash_after=10,
                     torn=False),
                seed=0,
            )
