"""The idle-time read-locality reorganizer (Section 3.4's future work)."""

import random

import pytest

from repro.disk.cache import ReadAheadPolicy
from repro.disk.disk import Disk
from repro.disk.specs import ST19101
from repro.vlog.reorganizer import ReadReorganizer
from repro.vlog.vld import VirtualLogDisk


@pytest.fixture
def vld():
    return VirtualLogDisk(
        Disk(ST19101, readahead=ReadAheadPolicy.FULL_TRACK)
    )


def scatter(vld, nblocks=512, seed=9):
    """Sequential file written, then randomly overwritten: logically
    sequential, physically scattered."""
    rng = random.Random(seed)
    contents = {}
    for lba in range(nblocks):
        payload = bytes([lba % 251]) * 4096
        vld.write_block(lba, payload)
        contents[lba] = payload
    for _ in range(nblocks * 2):
        lba = rng.randrange(nblocks)
        payload = bytes([(lba * 7) % 251]) * 4096
        vld.write_block(lba, payload)
        contents[lba] = payload
    return contents


def seq_read_time(vld, nblocks):
    start = vld.disk.clock.now
    vld.read_blocks(0, nblocks)
    return vld.disk.clock.now - start


class TestReorganizer:
    def test_preserves_contents(self, vld):
        contents = scatter(vld, nblocks=256)
        ReadReorganizer(vld).run_for(5.0)
        for lba, payload in contents.items():
            data, _ = vld.read_block(lba)
            assert data == payload, f"lba {lba}"

    def test_restores_physical_contiguity(self, vld):
        scatter(vld, nblocks=256)
        reorganizer = ReadReorganizer(vld)

        def total_breaks():
            return sum(
                reorganizer._window_fragmentation(w * reorganizer.window_blocks)
                for w in range(256 // reorganizer.window_blocks)
            )

        before = total_breaks()
        reorganizer.run_for(5.0)
        after = total_breaks()
        assert reorganizer.windows_reorganized > 0
        assert after < before / 2

    def test_improves_sequential_read_time(self, vld):
        nblocks = 512
        scatter(vld, nblocks=nblocks)
        before = seq_read_time(vld, nblocks)
        ReadReorganizer(vld).run_for(10.0)
        vld.disk.cache.invalidate()
        after = seq_read_time(vld, nblocks)
        assert after < before * 0.8

    def test_respects_time_budget(self, vld):
        scatter(vld, nblocks=256)
        clock = vld.disk.clock
        start = clock.now
        used = ReadReorganizer(vld).run_for(0.05)
        assert clock.now - start == pytest.approx(used)
        assert used < 0.05 + 0.2  # one window move of overshoot at most

    def test_noop_on_already_sequential_data(self, vld):
        for lba in range(128):
            vld.write_block(lba, bytes([lba % 251]) * 4096)
        reorganizer = ReadReorganizer(vld)
        reorganizer.run_for(1.0)
        # Track-fill allocation already laid this out nearly sequential;
        # at most a couple of windows need touching.
        assert reorganizer.windows_reorganized <= 3

    def test_invariants_and_recovery_after_reorg(self, vld):
        contents = scatter(vld, nblocks=256)
        ReadReorganizer(vld).run_for(5.0)
        vld.vlog.check_invariants()
        vld.power_down()
        vld.crash()
        vld.recover(timed=False)
        for lba, payload in contents.items():
            data, _ = vld.read_block(lba)
            assert data == payload

    def test_negative_budget_rejected(self, vld):
        with pytest.raises(ValueError):
            ReadReorganizer(vld).run_for(-1.0)

    def test_composes_with_compactor(self, vld):
        """Compaction creates empty tracks; reorganization consumes them
        for contiguous extents."""
        contents = scatter(vld, nblocks=400)
        vld.compactor.run_for(2.0)
        reorganizer = ReadReorganizer(vld)
        reorganizer.run_for(5.0)
        assert reorganizer.windows_reorganized > 0
        for lba, payload in contents.items():
            data, _ = vld.read_block(lba)
            assert data == payload
