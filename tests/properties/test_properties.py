"""Property-based tests (hypothesis) on core invariants.

Covers the structures whose correctness the whole reproduction leans on:
the virtual log's reachability invariant under arbitrary operation
sequences, free-map accounting, bitmap allocation, the analytical models'
internal identities, and file system read/write equivalence to a reference
model.
"""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.disk.disk import Disk
from repro.disk.freemap import FreeSpaceMap
from repro.disk.geometry import DiskGeometry
from repro.disk.specs import ST19101
from repro.models.compactor import (
    average_latency_closed_form,
    nonrandomness_correction,
    total_skip_exact,
)
from repro.models.single_track import (
    expected_skip_recurrence,
    expected_skip_sectors,
)
from repro.ufs.bitmap import Bitmap
from repro.vlog.allocator import AllocationPolicy, EagerAllocator
from repro.vlog.entries import MapRecord
from repro.vlog.virtual_log import VirtualLog

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ----------------------------------------------------------------------
# Analytical model identities
# ----------------------------------------------------------------------

@given(
    n=st.integers(min_value=2, max_value=300),
    k=st.integers(min_value=1, max_value=300),
)
@_SETTINGS
def test_recurrence_equals_closed_form(n, k):
    """Appendix A.1's induction, checked exhaustively-ish."""
    k = min(k, n)
    assert math.isclose(
        expected_skip_recurrence(n, k), (n - k) / (1 + k), rel_tol=1e-9
    )


@given(
    n=st.integers(min_value=4, max_value=512),
    p=st.floats(min_value=0.01, max_value=1.0),
)
@_SETTINGS
def test_skip_expectation_bounds(n, p):
    value = expected_skip_sectors(n, p)
    assert 0.0 <= value <= n


@given(
    n=st.integers(min_value=8, max_value=500),
    m=st.integers(min_value=0, max_value=499),
)
@_SETTINGS
def test_compactor_model_positive_and_finite(n, m):
    m = min(m, n - 1)
    latency = average_latency_closed_form(n, m, 1e-3, 1e-4)
    assert latency > 0.0
    assert math.isfinite(latency)
    assert total_skip_exact(n, m) >= 0.0
    assert nonrandomness_correction(n, m) >= 0.0


# ----------------------------------------------------------------------
# Bitmap allocation
# ----------------------------------------------------------------------

@given(
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=127)),
        max_size=200,
    )
)
@_SETTINGS
def test_bitmap_free_count_matches_contents(ops):
    bitmap = Bitmap(128)
    reference = set()
    for is_set, index in ops:
        if is_set:
            bitmap.set(index)
            reference.add(index)
        else:
            bitmap.clear(index)
            reference.discard(index)
    assert bitmap.free_count == 128 - len(reference)
    for index in range(128):
        assert bitmap.test(index) == (index in reference)


@given(
    used=st.sets(st.integers(min_value=0, max_value=63), max_size=48),
    count=st.integers(min_value=1, max_value=4),
)
@_SETTINGS
def test_bitmap_find_free_run_returns_truly_free(used, count):
    bitmap = Bitmap(64)
    for index in used:
        bitmap.set(index)
    found = bitmap.find_free_run(count, align=count)
    if found is not None:
        assert found % count == 0
        assert all(not bitmap.test(found + k) for k in range(count))


# ----------------------------------------------------------------------
# Free-space map accounting
# ----------------------------------------------------------------------

@given(
    ops=st.lists(
        st.tuples(
            st.booleans(),
            st.integers(min_value=0, max_value=511),
            st.integers(min_value=1, max_value=16),
        ),
        max_size=120,
    )
)
@_SETTINGS
def test_freemap_counts_consistent(ops):
    geometry = DiskGeometry(ST19101, num_cylinders=1)
    fm = FreeSpaceMap(geometry)
    reference = [True] * geometry.total_sectors
    for free, start, count in ops:
        start = start % (geometry.total_sectors - 16)
        if free:
            fm.mark_free(start, count)
        else:
            fm.mark_used(start, count)
        for s in range(start, start + count):
            reference[s] = free
    assert fm.free_sectors == sum(reference)
    for cylinder in range(geometry.num_cylinders):
        for head in range(geometry.tracks_per_cylinder):
            base = geometry.track_start(cylinder, head)
            expected = sum(
                reference[base : base + geometry.sectors_per_track]
            )
            assert fm.track_free_count(cylinder, head) == expected


# ----------------------------------------------------------------------
# Map record serialisation
# ----------------------------------------------------------------------

@given(
    chunk_id=st.integers(min_value=0, max_value=2**31 - 1),
    seqno=st.integers(min_value=0, max_value=2**62),
    entries=st.lists(
        st.integers(min_value=0, max_value=2**32 - 1), max_size=100
    ),
    prev=st.one_of(st.none(), st.integers(min_value=0, max_value=2**31)),
)
@_SETTINGS
def test_map_record_roundtrip(chunk_id, seqno, entries, prev):
    record = MapRecord(
        chunk_id=chunk_id, seqno=seqno, entries=entries, prev_root=prev
    )
    parsed = MapRecord.unpack(record.pack(4096))
    assert parsed == record


# ----------------------------------------------------------------------
# Virtual log: the paper's central data structure
# ----------------------------------------------------------------------

@given(
    writes=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=6),
            st.integers(min_value=0, max_value=10_000),
        ),
        min_size=1,
        max_size=120,
    )
)
@_SETTINGS
def test_virtual_log_recovers_exactly_after_any_history(writes):
    """For every sequence of chunk overwrites: the invariants hold and a
    cold traversal from the tail reconstructs exactly the final state."""
    disk = Disk(ST19101, num_cylinders=2)
    freemap = FreeSpaceMap(disk.geometry)
    chunks = {}
    allocator = EagerAllocator(
        disk, freemap, 8, AllocationPolicy.NEAREST
    )
    vlog = VirtualLog(disk, allocator, lambda c: chunks[c], 4096)
    for chunk_id, value in writes:
        chunks[chunk_id] = [value, value + 1]
        vlog.append(chunk_id, chunks[chunk_id])
    vlog.check_invariants()
    recovered, _cost, _n = vlog.recover_from_tail(vlog.tail, timed=False)
    assert recovered == {c: list(v) for c, v in chunks.items()}
    vlog.check_invariants()


@given(
    writes=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=4),
            st.integers(min_value=0, max_value=1000),
        ),
        min_size=5,
        max_size=80,
    ),
    garbage_seed=st.integers(min_value=0, max_value=1000),
)
@_SETTINGS
def test_virtual_log_recovery_survives_recycled_block_reuse(
    writes, garbage_seed
):
    """Freed record blocks overwritten with arbitrary data must never
    confuse recovery."""
    import random as _random

    disk = Disk(ST19101, num_cylinders=2)
    freemap = FreeSpaceMap(disk.geometry)
    chunks = {}
    allocator = EagerAllocator(disk, freemap, 8, AllocationPolicy.NEAREST)
    vlog = VirtualLog(disk, allocator, lambda c: chunks[c], 4096)
    for chunk_id, value in writes:
        chunks[chunk_id] = [value]
        vlog.append(chunk_id, chunks[chunk_id])
    rng = _random.Random(garbage_seed)
    for block in range(disk.total_sectors // 8):
        if freemap.run_is_free(block * 8, 8) and rng.random() < 0.5:
            disk.poke(block * 8, bytes([rng.randrange(256)]) * 4096)
    recovered, _cost, _n = vlog.recover_from_tail(vlog.tail, timed=False)
    assert recovered == {c: list(v) for c, v in chunks.items()}


# ----------------------------------------------------------------------
# VLD end-to-end equivalence with a dict model
# ----------------------------------------------------------------------

@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["write", "trim", "crash+recover"]),
            st.integers(min_value=0, max_value=40),
            st.integers(min_value=0, max_value=255),
        ),
        max_size=40,
    )
)
@settings(
    max_examples=20, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_vld_equivalent_to_dict_model(ops):
    from repro.vlog.vld import VirtualLogDisk

    vld = VirtualLogDisk(Disk(ST19101, num_cylinders=4))
    model = {}
    for op, lba, fill in ops:
        if op == "write":
            payload = bytes([fill]) * 4096
            vld.write_block(lba, payload)
            model[lba] = payload
        elif op == "trim":
            vld.trim(lba)
            model.pop(lba, None)
        else:
            vld.power_down()
            vld.crash()
            vld.recover(timed=False)
    for lba in range(41):
        data, _ = vld.read_block(lba)
        assert data == model.get(lba, bytes(4096))
    vld.vlog.check_invariants()


# ----------------------------------------------------------------------
# UFS write/read equivalence with a byte-array model
# ----------------------------------------------------------------------

@given(
    ops=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=30_000),
            st.integers(min_value=1, max_value=6_000),
            st.integers(min_value=0, max_value=255),
            st.booleans(),
        ),
        min_size=1,
        max_size=25,
    )
)
@settings(
    max_examples=15, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_ufs_matches_bytearray_model(ops):
    from repro.blockdev.regular import RegularDisk
    from repro.hosts.specs import SPARCSTATION_10
    from repro.ufs.ufs import UFS

    fs = UFS(RegularDisk(Disk(ST19101)), SPARCSTATION_10)
    fs.create("/model")
    model = bytearray()
    for offset, length, fill, sync in ops:
        payload = bytes([fill]) * length
        fs.write("/model", offset, payload, sync=sync)
        if len(model) < offset + length:
            model.extend(bytes(offset + length - len(model)))
        model[offset : offset + length] = payload
    fs.sync()
    fs.drop_caches()
    data, _ = fs.read("/model", 0, len(model))
    assert data == bytes(model)
    assert fs.stat("/model").size == len(model)
    # Structural invariant: the file system stays fsck-clean.
    from repro.ufs.fsck import fsck

    report = fsck(fs)
    assert report.ok, report.errors


@given(
    script=st.lists(
        st.tuples(
            st.sampled_from(
                ["create", "write", "unlink", "mkdir", "truncate", "rename"]
            ),
            st.integers(min_value=0, max_value=9),
            st.integers(min_value=0, max_value=60_000),
        ),
        min_size=1,
        max_size=30,
    )
)
@settings(
    max_examples=15, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_ufs_namespace_churn_stays_fsck_clean(script):
    """Arbitrary create/write/unlink/mkdir/truncate/rename churn never
    corrupts the structure (bitmaps, claims, namespace)."""
    from repro.blockdev.regular import RegularDisk
    from repro.fs.api import FileSystemError
    from repro.hosts.specs import SPARCSTATION_10
    from repro.ufs.fsck import fsck
    from repro.ufs.ufs import UFS

    fs = UFS(RegularDisk(Disk(ST19101)), SPARCSTATION_10)
    for op, slot, size in script:
        name = f"/n{slot}"
        try:
            if op == "create":
                fs.create(name)
            elif op == "mkdir":
                fs.mkdir(name)
            elif op == "write":
                fs.write(name, 0, bytes(max(1, size)))
            elif op == "truncate":
                fs.truncate(name, size)
            elif op == "rename":
                fs.rename(name, f"/n{(slot + 1) % 10}")
            else:
                fs.unlink(name)
        except FileSystemError:
            pass  # duplicate/missing names etc. are legitimate outcomes
    fs.sync()
    report = fsck(fs)
    assert report.ok, report.errors
