import pytest

from repro.disk.disk import Disk
from repro.disk.freemap import FreeSpaceMap
from repro.disk.specs import ST19101
from repro.vlog.allocator import (
    AllocationPolicy,
    DiskFullError,
    EagerAllocator,
)


def make(policy=AllocationPolicy.NEAREST, fill_threshold=0.75):
    disk = Disk(ST19101, num_cylinders=3, store_data=False)
    freemap = FreeSpaceMap(disk.geometry)
    allocator = EagerAllocator(
        disk, freemap, block_sectors=8, policy=policy,
        fill_threshold=fill_threshold,
    )
    return disk, freemap, allocator


class TestBasics:
    def test_allocate_marks_used(self):
        _disk, freemap, allocator = make()
        block = allocator.allocate()
        assert not freemap.run_is_free(block * 8, 8)

    def test_allocate_returns_aligned_blocks(self):
        _disk, _freemap, allocator = make()
        for _ in range(20):
            block = allocator.allocate()
            assert 0 <= block * 8 < _freemap.geometry.total_sectors

    def test_free_block_returns_space(self):
        _disk, freemap, allocator = make()
        block = allocator.allocate()
        allocator.free_block(block)
        assert freemap.run_is_free(block * 8, 8)

    def test_reserve_block_excluded(self):
        _disk, freemap, allocator = make()
        allocator.reserve_block(0)
        for _ in range(50):
            assert allocator.allocate() != 0

    def test_wrong_unit_rejected(self):
        _disk, _freemap, allocator = make()
        with pytest.raises(ValueError):
            allocator.allocate(4)

    def test_disk_full_raises(self):
        _disk, freemap, allocator = make()
        freemap.mark_used(0, freemap.geometry.total_sectors)
        with pytest.raises(DiskFullError):
            allocator.allocate()


class TestNearestPolicy:
    def test_prefers_current_track(self):
        disk, _freemap, allocator = make(AllocationPolicy.NEAREST)
        block = allocator.allocate()
        cylinder, head, _ = disk.geometry.decompose(block * 8)
        assert (cylinder, head) == (disk.head_cylinder, disk.head_head)

    def test_choice_is_rotationally_near(self):
        """The chosen block must cost less than one revolution when the
        current track has free space."""
        disk, _freemap, allocator = make(AllocationPolicy.NEAREST)
        block = allocator.allocate()
        cost = disk.write(block * 8, 8, charge_scsi=False)
        assert cost.locate < disk.mechanics.rotation_time

    def test_spills_to_other_cylinders_when_local_full(self):
        disk, freemap, allocator = make(AllocationPolicy.NEAREST)
        # Fill cylinder 0 entirely.
        freemap.mark_used(0, disk.geometry.sectors_per_cylinder)
        block = allocator.allocate()
        cylinder, _, _ = disk.geometry.decompose(block * 8)
        assert cylinder != 0


class TestGreedyPolicy:
    def test_sweep_is_one_directional(self):
        disk, freemap, allocator = make(AllocationPolicy.GREEDY_CYLINDER)
        # Fill cylinders 0 and 1; free space only in cylinder 2.
        freemap.mark_used(0, 2 * disk.geometry.sectors_per_cylinder)
        block = allocator.allocate()
        cylinder, _, _ = disk.geometry.decompose(block * 8)
        assert cylinder == 2

    def test_stays_in_cylinder_while_space_exists(self):
        disk, _freemap, allocator = make(AllocationPolicy.GREEDY_CYLINDER)
        cylinders = set()
        for _ in range(30):
            block = allocator.allocate()
            cylinder, _, _ = disk.geometry.decompose(block * 8)
            cylinders.add(cylinder)
        assert cylinders == {disk.head_cylinder}


class TestTrackFillPolicy:
    def test_fills_one_track_to_threshold_then_switches(self):
        disk, freemap, allocator = make(
            AllocationPolicy.TRACK_FILL, fill_threshold=0.75
        )
        n = disk.geometry.sectors_per_track
        reserve = allocator.reserve_sectors
        tracks = []
        # Allocate until two tracks have been touched.
        for _ in range(2 * n // 8):
            block = allocator.allocate()
            cylinder, head, _ = disk.geometry.decompose(block * 8)
            if (cylinder, head) not in tracks:
                tracks.append((cylinder, head))
        assert len(tracks) >= 2
        first = tracks[0]
        # The first track was left with (about) the reserve free.
        left_free = freemap.track_free_count(*first)
        assert reserve <= left_free < reserve + 8 + 8

    def test_falls_back_to_greedy_without_empty_tracks(self):
        disk, freemap, allocator = make(AllocationPolicy.TRACK_FILL)
        # Make every track partially used: no empty track remains.
        for cylinder in range(disk.geometry.num_cylinders):
            for head in range(disk.geometry.tracks_per_cylinder):
                freemap.mark_used(disk.geometry.track_start(cylinder, head), 8)
        allocator.allocate()
        assert allocator.fallbacks >= 1

    def test_invalid_threshold_rejected(self):
        disk = Disk(ST19101, num_cylinders=2, store_data=False)
        freemap = FreeSpaceMap(disk.geometry)
        with pytest.raises(ValueError):
            EagerAllocator(disk, freemap, 8, fill_threshold=0.0)


class TestEagerVsInPlaceLatency:
    def test_eager_writes_beat_random_in_place_writes(self):
        """The thesis of the paper, at allocator level: eager placement
        costs far less positioning time than random in-place writes."""
        import random

        rng = random.Random(3)
        disk, freemap, allocator = make(AllocationPolicy.NEAREST)
        # Occupy 50 % of space randomly.
        total = disk.geometry.total_sectors
        for sector in rng.sample(range(total // 8), total // 16):
            freemap.mark_used(sector * 8, 8)
        eager = 0.0
        trials = 50
        for _ in range(trials):
            block = allocator.allocate()
            eager += disk.write(block * 8, 8, charge_scsi=False).locate
            allocator.free_block(block)
        in_place = 0.0
        for _ in range(trials):
            sector = rng.randrange(total // 8) * 8
            in_place += disk.write(sector, 8, charge_scsi=False).locate
        assert eager < in_place / 3
