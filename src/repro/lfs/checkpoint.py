"""Checkpoint regions: persisting the inode map and segment usage table.

Two slots alternate (classic LFS); each is a header block with sequence
number and CRC followed by the packed inode map and segment usage table.
Mounting picks the valid slot with the highest sequence number and rolls
the log forward from there using segment summaries.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.blockdev.interface import BlockDevice
from repro.lfs.inode_map import InodeMap, SegmentUsage
from repro.lfs.layout import LFSLayout
from repro.sim.stats import Breakdown

_HDR = struct.Struct("<8sQQIdI")
_MAGIC = b"LFSCHKPT"


@dataclass
class CheckpointHeader:
    seqno: int
    flush_seqno: int
    payload_blocks: int
    timestamp: float


class CheckpointStore:
    """Reads and writes the two alternating checkpoint slots."""

    def __init__(self, device: BlockDevice, layout: LFSLayout) -> None:
        self.device = device
        self.layout = layout
        self._next_slot = 0
        self._next_seqno = 1

    def write(
        self,
        imap: InodeMap,
        usage: SegmentUsage,
        flush_seqno: int,
        now: float,
    ) -> Breakdown:
        """Persist a checkpoint into the next slot."""
        payload = imap.pack() + usage.pack()
        block_size = self.layout.block_size
        payload_blocks = -(-len(payload) // block_size)
        padded = payload + bytes(payload_blocks * block_size - len(payload))
        crc = zlib.crc32(padded) & 0xFFFFFFFF
        header = _HDR.pack(
            _MAGIC, self._next_seqno, flush_seqno, payload_blocks, now, crc
        )
        header_block = header + bytes(block_size - len(header))
        start = self.layout.checkpoint_slot_start(self._next_slot)
        breakdown = self.device.write_blocks(
            start, 1 + payload_blocks, header_block + padded
        )
        self._next_slot = (self._next_slot + 1) % LFSLayout.CHECKPOINT_SLOTS
        self._next_seqno += 1
        return breakdown

    def read_latest(
        self, imap: InodeMap, usage: SegmentUsage
    ) -> Tuple[Optional[CheckpointHeader], Breakdown]:
        """Load the newest valid checkpoint into ``imap``/``usage``."""
        breakdown = Breakdown()
        best: Optional[Tuple[CheckpointHeader, bytes]] = None
        for slot in range(LFSLayout.CHECKPOINT_SLOTS):
            result = self._read_slot(slot, breakdown)
            if result is None:
                continue
            header, payload = result
            if best is None or header.seqno > best[0].seqno:
                best = (header, payload)
        if best is None:
            return None, breakdown
        header, payload = best
        imap.load(payload)
        usage.load(payload[imap.max_inodes * 4 :])
        self._next_seqno = header.seqno + 1
        # Continue writing into the slot after the one we recovered from.
        self._next_slot = (header.seqno) % LFSLayout.CHECKPOINT_SLOTS
        return header, breakdown

    def _read_slot(
        self, slot: int, breakdown: Breakdown
    ) -> Optional[Tuple[CheckpointHeader, bytes]]:
        start = self.layout.checkpoint_slot_start(slot)
        raw, cost = self.device.read_block(start)
        breakdown.add(cost)
        if len(raw) < _HDR.size:
            return None
        magic, seqno, flush_seqno, nblocks, ts, crc = _HDR.unpack(
            raw[: _HDR.size]
        )
        if magic != _MAGIC or nblocks <= 0:
            return None
        payload, cost = self.device.read_blocks(start + 1, nblocks)
        breakdown.add(cost)
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            return None
        header = CheckpointHeader(
            seqno=seqno,
            flush_seqno=flush_seqno,
            payload_blocks=nblocks,
            timestamp=ts,
        )
        return header, payload
