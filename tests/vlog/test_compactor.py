"""The idle-time free-space compactor (Sections 2.3, 4.2, 5.5)."""

import random

import pytest

from repro.disk.disk import Disk
from repro.disk.specs import ST19101
from repro.vlog.compactor import FreeSpaceCompactor
from repro.vlog.vld import VirtualLogDisk


@pytest.fixture
def vld():
    return VirtualLogDisk(Disk(ST19101))


def fragment(vld, seed=3, fill=0.6, holes=0.5):
    """Write a lot, then trim random blocks to punch holes everywhere."""
    rng = random.Random(seed)
    n = int(vld.num_blocks * fill)
    contents = {}
    for lba in range(n):
        payload = bytes([rng.randrange(256)]) * 4096
        vld.write_block(lba, payload)
        contents[lba] = payload
    for lba in rng.sample(range(n), int(n * holes)):
        vld.trim(lba)
        del contents[lba]
    return contents


class TestCompaction:
    def test_generates_empty_tracks(self, vld):
        fragment(vld)
        geometry = vld.disk.geometry
        per_track = geometry.sectors_per_track

        def empty_tracks():
            count = 0
            for cylinder in range(geometry.num_cylinders):
                for head in range(geometry.tracks_per_cylinder):
                    if vld.freemap.track_free_count(cylinder, head) == per_track:
                        count += 1
            return count

        before = empty_tracks()
        compactor = FreeSpaceCompactor(vld)
        compactor.run_for(3.0)
        assert compactor.blocks_moved > 0
        assert empty_tracks() > before

    def test_preserves_contents(self, vld):
        contents = fragment(vld)
        FreeSpaceCompactor(vld).run_for(3.0)
        for lba, payload in contents.items():
            data, _ = vld.read_block(lba)
            assert data == payload, f"lba {lba} corrupted by compaction"

    def test_respects_time_budget(self, vld):
        fragment(vld)
        clock = vld.disk.clock
        start = clock.now
        used = FreeSpaceCompactor(vld).run_for(0.05)
        # One track move may slightly overshoot, but not wildly.
        assert used <= 0.05 + 0.1
        assert clock.now - start == pytest.approx(used)

    def test_zero_budget_does_nothing(self, vld):
        fragment(vld)
        compactor = FreeSpaceCompactor(vld)
        assert compactor.run_for(0.0) == 0.0
        assert compactor.blocks_moved == 0

    def test_negative_budget_rejected(self, vld):
        with pytest.raises(ValueError):
            FreeSpaceCompactor(vld).run_for(-1.0)

    def test_idle_on_empty_disk_is_harmless(self, vld):
        used = FreeSpaceCompactor(vld).run_for(1.0)
        assert used < 1.0  # nothing to compact: gives the time back

    def test_never_allocates_power_down_block(self, vld):
        fragment(vld)
        vld.power_down(timed=False)
        FreeSpaceCompactor(vld).run_for(2.0)
        # The record may be *cleared* (compaction invalidates a stale
        # power-down record), but its home block is never reallocated.
        raw = vld.disk.peek(0, 8)
        record, _ = vld.power_store.read(timed=False)
        assert record is not None or raw == bytes(4096)
        assert not vld.freemap.run_is_free(0, 8)
        assert 0 not in vld.reverse

    def test_invariants_hold_after_compaction(self, vld):
        fragment(vld)
        FreeSpaceCompactor(vld).run_for(2.0)
        vld.vlog.check_invariants()
        for _lba, physical in vld.imap.items():
            assert not vld.freemap.run_is_free(physical * 8, 8)

    def test_recovery_after_compaction(self, vld):
        contents = fragment(vld)
        FreeSpaceCompactor(vld).run_for(2.0)
        vld.power_down()
        vld.crash()
        vld.recover(timed=False)
        for lba, payload in contents.items():
            data, _ = vld.read_block(lba)
            assert data == payload


class TestCompactionImprovesLatency:
    def test_writes_faster_after_compaction_at_high_utilization(self, vld):
        """Section 5.5 / Figure 11: idle-time compaction lowers subsequent
        eager-write latency."""
        rng = random.Random(17)
        fragment(vld, fill=0.9, holes=0.35)

        def mean_write_latency(samples=60):
            total = 0.0
            for _ in range(samples):
                lba = rng.randrange(int(vld.num_blocks * 0.5))
                total += vld.write_block(lba, b"m" * 4096).total
            return total / samples

        before = mean_write_latency()
        vld.idle(3.0)
        after = mean_write_latency()
        assert after <= before * 1.1  # never worse; usually better


class TestDeviceIdleHook:
    def test_idle_runs_compactor_and_passes_time(self, vld):
        fragment(vld)
        start = vld.disk.clock.now
        vld.idle(1.0)
        # At least the full idle interval passes; a mid-track move may
        # overshoot slightly.
        assert start + 1.0 <= vld.disk.clock.now <= start + 1.2
        assert vld.compactor.blocks_moved > 0

    def test_idle_with_compaction_disabled(self, vld):
        fragment(vld)
        vld.compaction_enabled = False
        start = vld.disk.clock.now
        vld.idle(0.5)
        assert vld.disk.clock.now == pytest.approx(start + 0.5)
        assert vld._compactor is None or vld.compactor.blocks_moved == 0
