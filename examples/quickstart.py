#!/usr/bin/env python3
"""Quickstart: a Virtual Log Disk in five minutes.

Creates a simulated Seagate ST19101, wraps it in a Virtual Log Disk, and
demonstrates the paper's three headline properties:

1. synchronous random writes at a fraction of update-in-place latency,
2. atomicity: a crash loses nothing that was acknowledged,
3. fast recovery from the firmware's power-down record -- with a scan
   fallback when that record is damaged.

Devices are built through :func:`repro.build_device_stack`, which can
thread observability layers into any stack; step 1 uses its metrics
interposer to show *where* each device spends its time.

Run:  python examples/quickstart.py
"""

import random

from repro import MetricsDevice, build_device_stack
from repro.blockdev import find_layer
from repro.disk import Disk, ST19101
from repro.vlog import VirtualLogDisk


def main() -> None:
    rng = random.Random(2026)

    # -- 1. Eager writing vs update-in-place --------------------------
    print("== 1. Random 4 KB synchronous writes ==")
    results = {}
    for label, device_type in (
        ("update-in-place", "regular"),
        ("virtual log disk", "vld"),
    ):
        device = build_device_stack(
            Disk(ST19101), device_type, metrics=True
        )
        metrics = find_layer(device, MetricsDevice)
        total = 0.0
        trials = 200
        for i in range(trials):
            lba = rng.randrange(device.num_blocks)
            breakdown = device.write_block(lba, bytes([i % 251]) * 4096)
            total += breakdown.total
        results[label] = total / trials
        fractions = metrics.component_fractions(include_host=False)
        parts = " ".join(
            f"{k}={v * 100:.0f}%" for k, v in fractions.items() if v
        )
        print(
            f"  {label:18}: {results[label] * 1e3:6.3f} ms per write "
            f"({parts})"
        )
    speedup = results["update-in-place"] / results["virtual log disk"]
    print(f"  -> eager writing is {speedup:.1f}x faster\n")

    # -- 2. Crash atomicity --------------------------------------------
    print("== 2. Crash safety ==")
    disk = Disk(ST19101)
    vld = VirtualLogDisk(disk)
    vld.write_block(7, b"acknowledged data" + bytes(4079))
    vld.crash()  # power fails; no orderly shutdown
    outcome = vld.recover()
    data, _ = vld.read_block(7)
    print(f"  recovery path: {'scan' if outcome.scanned else 'tail record'}")
    print(f"  data survived: {data.startswith(b'acknowledged data')}\n")

    # -- 3. Recovery cost: tail record vs scan -------------------------
    print("== 3. Recovery cost ==")
    disk = Disk(ST19101)
    vld = VirtualLogDisk(disk)
    for lba in range(500):
        vld.write_block(lba, bytes([lba % 251]) * 4096)
    vld.power_down()  # firmware records the log tail
    vld.crash()
    fast = vld.recover()
    print(
        f"  with power-down record: {fast.elapsed * 1e3:7.1f} ms "
        f"({fast.records_read} map records read)"
    )
    vld.power_down()
    vld.power_store.corrupt()  # inject the rare power-down failure
    vld.crash()
    slow = vld.recover()
    print(
        f"  checksum fails -> scan: {slow.elapsed * 1e3:7.1f} ms "
        f"({slow.blocks_scanned} records examined)"
    )
    data, _ = vld.read_block(123)
    print(f"  data intact after both recoveries: "
          f"{data == bytes([123]) * 4096}")


if __name__ == "__main__":
    main()
