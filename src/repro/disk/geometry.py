"""Disk geometry: linear sector numbers, physical coordinates, skew.

Sectors are numbered linearly in the conventional order: all sectors of
track (cylinder 0, head 0), then (cylinder 0, head 1), ..., then cylinder 1,
and so on.  Track and cylinder skew stagger the angular position of sector 0
on successive tracks so that sequential transfers survive head switches and
single-cylinder seeks without losing a revolution -- which matters for the
paper's sequential-bandwidth phases (Figure 7).
"""

from __future__ import annotations

from typing import Tuple

from repro.disk.specs import DiskSpec


class DiskGeometry:
    """Coordinate math for a (possibly truncated) disk.

    Args:
        spec: The drive's parameter set.
        num_cylinders: How many cylinders to expose.  Defaults to the
            spec's ``sim_cylinders`` (the paper simulates a ~24 MB slice of
            each drive because the ramdisk lived in kernel memory).
    """

    def __init__(self, spec: DiskSpec, num_cylinders: int = 0) -> None:
        if num_cylinders < 0:
            raise ValueError("num_cylinders must be non-negative")
        self.spec = spec
        self.num_cylinders = num_cylinders or spec.sim_cylinders
        if self.num_cylinders > spec.num_cylinders:
            raise ValueError(
                f"{spec.name} has only {spec.num_cylinders} cylinders, "
                f"cannot expose {self.num_cylinders}"
            )
        self.sectors_per_track = spec.sectors_per_track
        self.tracks_per_cylinder = spec.tracks_per_cylinder
        self.sectors_per_cylinder = self.sectors_per_track * self.tracks_per_cylinder
        self.total_sectors = self.sectors_per_cylinder * self.num_cylinders
        self.capacity_bytes = self.total_sectors * spec.sector_bytes
        # Skew of every track, burned in once: the angular queries sit on
        # the allocator/scheduler hot path and the per-call derivation
        # (two multiplies and a modulo off spec attributes) dominated them.
        track_skew = spec.track_skew_sectors
        cyl_skew = spec.cylinder_skew_sectors
        n = self.sectors_per_track
        self._skews = [
            (head * track_skew + cylinder * cyl_skew) % n
            for cylinder in range(self.num_cylinders)
            for head in range(self.tracks_per_cylinder)
        ]

    # ------------------------------------------------------------------
    # Linear <-> physical coordinates
    # ------------------------------------------------------------------

    def decompose(self, sector: int) -> Tuple[int, int, int]:
        """Linear sector number -> (cylinder, head, sector-in-track)."""
        self.check_sector(sector)
        cylinder, rest = divmod(sector, self.sectors_per_cylinder)
        head, sect = divmod(rest, self.sectors_per_track)
        return cylinder, head, sect

    def compose(self, cylinder: int, head: int, sect: int) -> int:
        """(cylinder, head, sector-in-track) -> linear sector number."""
        self.check_track(cylinder, head)
        if not 0 <= sect < self.sectors_per_track:
            raise ValueError(f"sector-in-track {sect} out of range")
        return (
            cylinder * self.sectors_per_cylinder
            + head * self.sectors_per_track
            + sect
        )

    def track_start(self, cylinder: int, head: int) -> int:
        """Linear sector number of the first sector on a track."""
        return self.compose(cylinder, head, 0)

    def check_sector(self, sector: int) -> None:
        if not 0 <= sector < self.total_sectors:
            raise ValueError(
                f"sector {sector} outside disk of {self.total_sectors} sectors"
            )

    def check_track(self, cylinder: int, head: int) -> None:
        if not 0 <= cylinder < self.num_cylinders:
            raise ValueError(f"cylinder {cylinder} out of range")
        if not 0 <= head < self.tracks_per_cylinder:
            raise ValueError(f"head {head} out of range")

    # ------------------------------------------------------------------
    # Skew and angular positions
    # ------------------------------------------------------------------

    def skew_offset(self, cylinder: int, head: int) -> int:
        """Angular offset (in sector slots) of sector 0 on a given track."""
        self.check_track(cylinder, head)
        return self._skews[cylinder * self.tracks_per_cylinder + head]

    def angle_of(self, cylinder: int, head: int, sect: int) -> int:
        """Angular slot (0..n-1) at which a sector starts on the platter."""
        return (sect + self.skew_offset(cylinder, head)) % self.sectors_per_track

    def sector_at_angle(self, cylinder: int, head: int, slot: int) -> int:
        """Inverse of :meth:`angle_of`: which sector-in-track starts at a slot."""
        return (slot - self.skew_offset(cylinder, head)) % self.sectors_per_track

    def __repr__(self) -> str:
        return (
            f"DiskGeometry({self.spec.name}, cylinders={self.num_cylinders}, "
            f"capacity={self.capacity_bytes / 2**20:.1f}MB)"
        )
