from repro.disk.cache import ReadAheadPolicy, TrackBuffer
from repro.disk.disk import Disk
from repro.disk.specs import ST19101


TRACK = ((0, 0), 0, 256)  # key, lo, hi


def test_disabled_policy_never_hits():
    buf = TrackBuffer(ReadAheadPolicy.DISABLED)
    assert not buf.note_read(*TRACK, 10, 4)
    assert not buf.note_read(*TRACK, 10, 4)
    assert buf.hit_rate == 0.0


def test_dartmouth_readahead_to_end_of_track():
    buf = TrackBuffer(ReadAheadPolicy.DARTMOUTH)
    assert not buf.note_read(*TRACK, 10, 4)      # miss populates [10, 256)
    assert buf.note_read(*TRACK, 100, 8)         # within read-ahead: hit
    assert buf.hits == 1


def test_dartmouth_discards_lower_addresses():
    """Section 4.2: the stock policy discards data below the current
    request -- fine for monotonic physical addresses, bad under a VLD."""
    buf = TrackBuffer(ReadAheadPolicy.DARTMOUTH)
    buf.note_read(*TRACK, 10, 4)
    assert buf.note_read(*TRACK, 100, 8)         # hit; discards [10, 100)
    assert not buf.note_read(*TRACK, 20, 4)      # lower address: miss now


def test_full_track_policy_retains_lower_addresses():
    buf = TrackBuffer(ReadAheadPolicy.FULL_TRACK)
    buf.note_read(*TRACK, 100, 8)                # miss caches whole track
    assert buf.note_read(*TRACK, 20, 4)          # lower address still hit
    assert buf.note_read(*TRACK, 200, 8)


def test_miss_on_other_track_replaces_segment():
    buf = TrackBuffer(ReadAheadPolicy.FULL_TRACK)
    buf.note_read(*TRACK, 0, 4)
    other = ((0, 1), 256, 512)
    assert not buf.note_read(*other, 300, 4)
    assert buf.note_read(*other, 400, 4)
    assert not buf.note_read(*TRACK, 0, 4)


def test_write_invalidates_overlap():
    buf = TrackBuffer(ReadAheadPolicy.FULL_TRACK)
    buf.note_read(*TRACK, 0, 4)
    buf.note_write(128, 8)
    assert not buf.note_read(*TRACK, 10, 4)


def test_write_outside_does_not_invalidate():
    buf = TrackBuffer(ReadAheadPolicy.FULL_TRACK)
    buf.note_read(*TRACK, 0, 4)
    buf.note_write(1000, 8)
    assert buf.note_read(*TRACK, 10, 4)


def test_invalidate_clears():
    buf = TrackBuffer(ReadAheadPolicy.FULL_TRACK)
    buf.note_read(*TRACK, 0, 4)
    buf.invalidate()
    assert not buf.contains(0, 4)


def test_hit_rate():
    buf = TrackBuffer(ReadAheadPolicy.DARTMOUTH)
    buf.note_read(*TRACK, 0, 4)
    buf.note_read(*TRACK, 4, 4)
    buf.note_read(*TRACK, 8, 4)
    assert buf.hit_rate == 2 / 3


# ----------------------------------------------------------------------
# Requests spanning a track boundary (the seed fed them through the
# buffer one track at a time, so the first track's refill evicted what
# the later tracks were about to hit and a spanning request could never
# be fully served from the buffer).
# ----------------------------------------------------------------------

TRACK2 = ((0, 1), 256, 512)
SPAN = [TRACK + (250, 6), TRACK2 + (256, 6)]  # one request, two tracks


def test_span_disabled_counts_per_track_misses():
    buf = TrackBuffer(ReadAheadPolicy.DISABLED)
    assert buf.note_read_span(SPAN) == [False, False]
    assert (buf.hits, buf.misses) == (0, 2)


def test_span_full_track_caches_whole_request():
    buf = TrackBuffer(ReadAheadPolicy.FULL_TRACK)
    assert buf.note_read_span(SPAN) == [False, False]
    assert buf.note_read_span(SPAN) == [True, True]
    assert buf.contains(0, 4) and buf.contains(500, 12)


def test_span_dartmouth_reads_ahead_to_last_track_end():
    buf = TrackBuffer(ReadAheadPolicy.DARTMOUTH)
    buf.note_read_span(SPAN)
    assert not buf.contains(240, 4)          # below the request: not cached
    assert buf.note_read_span(SPAN) == [True, True]
    assert buf.contains(262, 8)              # read-ahead past the boundary


def test_span_partial_hit_judged_against_prior_segment():
    buf = TrackBuffer(ReadAheadPolicy.FULL_TRACK)
    buf.note_read(*TRACK, 0, 4)              # caches track 0 only
    assert buf.note_read_span(SPAN) == [True, False]
    assert (buf.hits, buf.misses) == (1, 2)
    assert buf.note_read_span(SPAN) == [True, True]


def test_boundary_spanning_read_hits_on_second_pass():
    """Regression: through the disk engine, the second pass of a read that
    straddles a track boundary is served entirely from the buffer (no
    positioning), which the per-track seed path made impossible."""
    disk = Disk(ST19101, readahead=ReadAheadPolicy.FULL_TRACK, store_data=False)
    _, first = disk.read(250, 12, charge_scsi=False)
    assert (disk.cache.hits, disk.cache.misses) == (0, 2)
    assert first.locate > 0.0
    _, second = disk.read(250, 12, charge_scsi=False)
    assert (disk.cache.hits, disk.cache.misses) == (2, 2)
    assert second.locate == 0.0
    assert second.total == disk.mechanics.transfer_time(12)


def test_boundary_spanning_ablation_dartmouth_vs_full_track():
    """Fig. 9's read-ahead ablation depends on spanning requests being
    accounted honestly: FULL_TRACK retains the data below a spanning
    request (VLD-style out-of-order physical addresses still hit) while
    DARTMOUTH discards it -- so FULL_TRACK's hit rate strictly dominates."""
    rates = {}
    for policy in (ReadAheadPolicy.DARTMOUTH, ReadAheadPolicy.FULL_TRACK):
        disk = Disk(ST19101, readahead=policy, store_data=False)
        disk.read(250, 12, charge_scsi=False)   # spanning: 2 misses
        disk.read(240, 8, charge_scsi=False)    # below the request start
        rates[policy] = (disk.cache.hits, disk.cache.misses)
    assert rates[ReadAheadPolicy.FULL_TRACK] == (1, 2)
    assert rates[ReadAheadPolicy.DARTMOUTH] == (0, 3)
