"""Property-based transparency proof for the interposer stack.

The observability interposers promise to be invisible: for *any* sequence
of block operations, a wrapped device must return byte-identical data,
identical latency breakdowns, and leave the simulated clock at the same
instant as a bare device driven by the same sequence.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.blockdev.interpose import (
    MetricsDevice,
    TracingDevice,
    find_layer,
)
from repro.blockdev.regular import RegularDisk
from repro.disk.disk import Disk
from repro.disk.specs import ST19101

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_BLOCK = 4096
# Two simulated cylinders: 2 * 16 * 256 sectors / 8 per block.
_NUM_BLOCKS = (2 * 16 * 256) // 8


def _operations():
    lba = st.integers(min_value=0, max_value=_NUM_BLOCKS - 1)
    fill = st.integers(min_value=0, max_value=255)
    run_lba = st.integers(min_value=0, max_value=_NUM_BLOCKS - 5)
    count = st.integers(min_value=1, max_value=4)
    return st.lists(
        st.one_of(
            st.tuples(st.just("write"), lba, fill),
            st.tuples(st.just("read"), lba),
            st.tuples(st.just("write_many"), run_lba, count, fill),
            st.tuples(st.just("read_many"), run_lba, count),
            st.tuples(
                st.just("idle"),
                st.floats(min_value=0.0, max_value=0.01),
            ),
        ),
        min_size=1,
        max_size=30,
    )


def _apply(device, op):
    kind = op[0]
    if kind == "write":
        return device.write_block(op[1], bytes([op[2]]) * _BLOCK)
    if kind == "read":
        return device.read_block(op[1])
    if kind == "write_many":
        _, lba, count, fill = op
        return device.write_blocks(lba, count, bytes([fill]) * _BLOCK * count)
    if kind == "read_many":
        return device.read_blocks(op[1], op[2])
    device.idle(op[1])
    return None


@given(ops=_operations())
@_SETTINGS
def test_wrapped_device_is_byte_and_latency_identical(ops):
    bare = RegularDisk(Disk(ST19101, num_cylinders=2))
    wrapped = TracingDevice(
        MetricsDevice(RegularDisk(Disk(ST19101, num_cylinders=2)))
    )
    for op in ops:
        got_bare = _apply(bare, op)
        got_wrapped = _apply(wrapped, op)
        if op[0] in ("read", "read_many"):
            assert got_wrapped[0] == got_bare[0]
            assert got_wrapped[1] == got_bare[1]
        elif op[0] != "idle":
            assert got_wrapped == got_bare
    assert wrapped.disk.clock.now == bare.disk.clock.now


@given(ops=_operations())
@_SETTINGS
def test_metrics_totals_equal_sum_of_breakdowns(ops):
    wrapped = TracingDevice(
        MetricsDevice(RegularDisk(Disk(ST19101, num_cylinders=2)))
    )
    metrics = find_layer(wrapped, MetricsDevice)
    device_time = 0.0
    visible_ops = 0
    for op in ops:
        result = _apply(wrapped, op)
        if op[0] in ("read", "read_many"):
            device_time += result[1].total
            visible_ops += 1
        elif op[0] != "idle":
            device_time += result.total
            visible_ops += 1
    assert metrics.total_ops == visible_ops
    assert abs(metrics.device_seconds() - device_time) < 1e-9
