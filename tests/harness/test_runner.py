import pytest

from repro.disk.specs import HP97560, ST19101
from repro.harness.runner import simulate_locate_free, simulate_track_fill
from repro.models.compactor import average_latency_closed_form
from repro.models.cylinder import cylinder_expected_latency


class TestLocateFreeSimulation:
    def test_matches_model_at_moderate_utilization(self):
        """Figure 1's validation claim, as a test."""
        for spec in (HP97560, ST19101):
            for p in (0.3, 0.5):
                model = cylinder_expected_latency(spec, p)
                simulated = simulate_locate_free(spec, p, trials=250)
                assert simulated == pytest.approx(
                    model, rel=0.6, abs=2 * spec.sector_time
                )

    def test_latency_rises_with_utilization(self):
        low = simulate_locate_free(ST19101, 0.8, trials=150)
        high = simulate_locate_free(ST19101, 0.05, trials=150)
        assert high > low

    def test_seagate_much_faster_than_hp(self):
        hp = simulate_locate_free(HP97560, 0.3, trials=150)
        sg = simulate_locate_free(ST19101, 0.3, trials=150)
        assert hp > 4 * sg

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            simulate_locate_free(ST19101, 0.0)


class TestTrackFillSimulation:
    def test_tracks_model_shape(self):
        """Figure 2's validation: simulation tracks formula (13)."""
        spec = ST19101
        n = spec.sectors_per_track
        for threshold in (0.1, 0.3, 0.6):
            m = int(round(threshold * n))
            model = average_latency_closed_form(
                n, m, spec.head_switch_time, spec.sector_time
            )
            simulated = simulate_track_fill(spec, threshold, trials=30)
            assert simulated == pytest.approx(model, rel=0.6)

    def test_extremes_worse_than_middle(self):
        spec = HP97560
        frequent = simulate_track_fill(spec, 0.9, trials=20)
        rare = simulate_track_fill(spec, 0.02, trials=20)
        middle = simulate_track_fill(spec, 0.5, trials=20)
        assert middle < frequent
        assert middle < rare

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            simulate_track_fill(ST19101, 1.0)
