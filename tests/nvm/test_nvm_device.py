"""The byte-addressable NVM device model: buffering, persistence, cost."""

import pytest

from repro.blockdev.nvm import NVM_SPECS, NVMDevice, NVMSpec
from repro.sim.clock import SimClock


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def nvm(clock):
    return NVMDevice(NVM_SPECS["nvdimm"], clock)


class TestPersistenceDomain:
    def test_store_is_buffered_not_persistent(self, nvm):
        nvm.store(0, b"abcd")
        assert nvm.persisted(0, 4) == bytes(4)

    def test_load_sees_buffered_store(self, nvm):
        nvm.store(16, b"wxyz")
        data, _ = nvm.load(16, 4)
        assert data == b"wxyz"

    def test_flush_commits(self, nvm):
        nvm.store(0, b"abcd")
        nvm.flush()
        assert nvm.persisted(0, 4) == b"abcd"

    def test_crash_discards_unflushed(self, nvm):
        nvm.store(0, b"keep")
        nvm.flush()
        nvm.store(0, b"lost")
        nvm.crash()
        assert nvm.persisted(0, 4) == b"keep"
        data, _ = nvm.load(0, 4)
        assert data == b"keep"
        assert nvm.stores_lost_on_crash == 1

    def test_overlapping_pending_stores_apply_in_order(self, nvm):
        nvm.store(0, b"aaaa")
        nvm.store(2, b"bb")
        data, _ = nvm.load(0, 4)
        assert data == b"aabb"
        nvm.flush()
        assert nvm.persisted(0, 4) == b"aabb"


class TestBoundsAndCost:
    def test_out_of_range_rejected(self, nvm):
        with pytest.raises(ValueError):
            nvm.store(nvm.capacity_bytes - 2, b"abcd")
        with pytest.raises(ValueError):
            nvm.load(-1, 4)

    def test_store_cost_is_latency_plus_bytes(self, clock):
        spec = NVMSpec(store_latency=1e-6, store_bandwidth=1e6)
        nvm = NVMDevice(spec, clock)
        cost = nvm.store(0, b"x" * 1000)
        assert cost.total == pytest.approx(1e-6 + 1000 / 1e6)
        assert clock.now == pytest.approx(cost.total)

    def test_untimed_ops_do_not_advance_clock(self, nvm, clock):
        nvm.store(0, b"abcd", timed=False)
        nvm.flush(timed=False)
        nvm.load(0, 4, timed=False)
        assert clock.now == 0.0

    def test_flush_charges_flush_latency(self, clock):
        spec = NVMSpec(flush_latency=2e-6)
        nvm = NVMDevice(spec, clock)
        cost = nvm.flush()
        assert cost.total == pytest.approx(2e-6)

    def test_with_overrides(self):
        spec = NVM_SPECS["nvdimm"].with_overrides(
            store_latency=9e-6, capacity_bytes=1 << 16
        )
        assert spec.store_latency == 9e-6
        assert spec.capacity_bytes == 1 << 16
        # The base spec is untouched (frozen dataclass semantics).
        assert NVM_SPECS["nvdimm"].store_latency == 150e-9
