"""Sharded VLD volumes with independent fault domains.

:class:`ShardedVolume` stripes the logical block space across N complete
Virtual Log Disk stacks; shards crash, degrade, and recover
independently while the volume keeps serving the healthy majority.  See
:mod:`repro.volume.sharded` for the design and the identity contract
(a single-shard volume is a transparent pass-through).
"""

from repro.volume.checker import VolumeFsckReport, volume_fsck
from repro.volume.health import ShardHealthMonitor
from repro.volume.sharded import ShardState, ShardUnavailable, ShardedVolume

__all__ = [
    "ShardHealthMonitor",
    "ShardState",
    "ShardUnavailable",
    "ShardedVolume",
    "VolumeFsckReport",
    "volume_fsck",
]
