"""Batched mechanics pricing over candidate runs (the hot-path engine).

Eager writing's core move is pricing *every* free sector near the head and
picking the cheapest, so the simulator's whole-run throughput is bounded by
how fast ``positioning + rotational wait (+ transfer)`` can be evaluated
for a set of candidates: the eager allocator's free-run sweep, SATF's
pick-next over the pending queue, and the compactor's hole search all ask
the same question N times per decision.  :class:`DiskMechanics` answers it
one candidate at a time through a stack of method calls (seek curve with a
``sqrt``, per-call skew derivation, per-call validation); at tens of
thousands of decisions per simulated second that stack *is* the profile.

:class:`BatchMechanics` precomputes the geometry- and spec-derived pieces
as flat integer/float tables -- the seek curve by cylinder distance, the
angular skew of every track -- and evaluates whole candidate sets in one
pass of a tight loop over those tables.  Every float operation is kept in
the same order as the scalar path, so costs are **bit-for-bit identical**
to composing :class:`DiskMechanics` calls; the scalar path stays as the
oracle (``tests/disk/test_batch_mechanics.py`` pins the two against each
other across random skewed geometries, exactly as
``ReferenceFreeSpaceMap`` pins the bitmap free map).

The rotational term reproduces :meth:`DiskMechanics.rotational_slot`
including its float-boundary normalization: times within a couple of
ulps of a rotation boundary read as slot 0, never as "a hair past it".
"""

from __future__ import annotations

from math import ulp
from typing import List, Optional, Sequence, Tuple

from repro.disk.geometry import DiskGeometry
from repro.disk.specs import DiskSpec


class BatchMechanics:
    """Table-driven batch pricing for one (spec, geometry) pair.

    The tables are burned in at construction (geometry is immutable):

    * ``seek_by_distance[d]`` -- ``spec.seek_time(d)`` for every cylinder
      distance the geometry can produce;
    * ``skew_by_track[cylinder * tracks_per_cylinder + head]`` -- the
      angular offset of sector 0 on every track.
    """

    def __init__(self, spec: DiskSpec, geometry: DiskGeometry) -> None:
        if geometry.spec is not spec and geometry.spec != spec:
            raise ValueError("geometry was built from a different spec")
        self.spec = spec
        self.geometry = geometry
        self.rotation_time = spec.rotation_time
        self.sector_time = spec.sector_time
        self.sectors_per_track = geometry.sectors_per_track
        self.sectors_per_cylinder = geometry.sectors_per_cylinder
        self.tracks_per_cylinder = geometry.tracks_per_cylinder
        self.head_switch_time = spec.head_switch_time
        self.seek_by_distance: List[float] = [
            spec.seek_time(d) for d in range(geometry.num_cylinders)
        ]
        tpc = geometry.tracks_per_cylinder
        self.skew_by_track: List[int] = [
            geometry.skew_offset(idx // tpc, idx % tpc)
            for idx in range(geometry.num_cylinders * tpc)
        ]

    # ------------------------------------------------------------------
    # Scalar table-backed primitives (bit-equal to DiskMechanics)
    # ------------------------------------------------------------------

    def positioning_time(
        self,
        from_cylinder: int,
        from_head: int,
        to_cylinder: int,
        to_head: int,
    ) -> float:
        """``max(seek, head switch)``, answered from the seek table."""
        distance = to_cylinder - from_cylinder
        if distance < 0:
            distance = -distance
        seek = self.seek_by_distance[distance]
        if from_head != to_head and self.head_switch_time > seek:
            return self.head_switch_time
        return seek

    def angle_of(self, cylinder: int, head: int, sect: int) -> int:
        """Angular slot of a sector, answered from the skew table."""
        angle = sect + self.skew_by_track[
            cylinder * self.tracks_per_cylinder + head
        ]
        n = self.sectors_per_track
        return angle - n if angle >= n else angle

    def rotational_slot(self, now: float) -> float:
        """Platter angle at ``now`` -- same result as the (boundary-fixed)
        :meth:`DiskMechanics.rotational_slot`, without revalidating."""
        rotation = self.rotation_time
        rem = now % rotation
        if rem > 4.5e-308 and rem > now * 1e-15:
            # Conservatively past the boundary snap (2 * ulp(now) never
            # exceeds now * 2**-51): the ordinary path, sans ulp() call.
            frac = rem / rotation
            return frac * self.sectors_per_track if frac < 1.0 else 0.0
        if rem <= 0.0 or rem <= 2.0 * ulp(now):
            return 0.0
        frac = rem / rotation
        if frac >= 1.0:
            return 0.0
        return frac * self.sectors_per_track

    def position_and_arrival(
        self,
        now: float,
        head_cyl: int,
        head_head: int,
        cylinder: int,
        head: int,
    ) -> Tuple[float, float]:
        """``(positioning_time, arrival_slot)`` for moving the arm to one
        track: the fused form of ``mechanics.positioning_time`` +
        ``disk.slot_after(positioning)`` the allocator's track queries
        pay per candidate track."""
        positioning = self.positioning_time(head_cyl, head_head, cylinder, head)
        return positioning, self.rotational_slot(now + positioning)

    # ------------------------------------------------------------------
    # Batch pricing
    # ------------------------------------------------------------------

    def price_candidates(
        self,
        now: float,
        head_cyl: int,
        head_head: int,
        candidates: Sequence[int],
        extra_lead: Optional[Sequence[float]] = None,
        transfer_sectors: int = 0,
    ) -> List[float]:
        """Price every candidate in one pass.

        Args:
            now: Current simulated time (the platter position derives
                from it).
            head_cyl, head_head: Where the arm is.
            candidates: Linear sector numbers; each is priced as the
                start of an access.
            extra_lead: Optional per-candidate lead time charged *before*
                positioning (the SCSI overhead of a host-issued request).
                The lead delays the platter exactly as the service path
                does: the rotational wait is measured at
                ``(now + extra) + positioning``.
            transfer_sectors: When nonzero, add the media transfer time
                for that many sectors to every cost.

        Returns:
            ``costs[i]`` = ``extra_lead[i] + positioning + rotational
            wait (+ transfer)`` for ``candidates[i]``, bit-for-bit equal
            to composing the scalar mechanics calls in service order.
        """
        n = self.sectors_per_track
        rotation = self.rotation_time
        sector_time = self.sector_time
        tpc = self.tracks_per_cylinder
        seeks = self.seek_by_distance
        skews = self.skew_by_track
        switch = self.head_switch_time
        transfer = transfer_sectors * sector_time if transfer_sectors else 0.0
        _ulp = ulp
        costs: List[float] = []
        append = costs.append
        # Two copies of the loop body so the common no-lead case pays no
        # per-candidate branch or indexing; both inline rotational_slot
        # (the call itself is measurable at this call rate) with the op
        # order kept identical.  ``rem > t * 1e-15`` conservatively
        # clears the boundary snap without the ulp() call: for normal t
        # (guaranteed by ``rem > 4.5e-308``, since t >= rem), 2 * ulp(t)
        # never exceeds t * 2**-51 < t * 1e-15, so any larger remainder
        # takes the ordinary path with bit-identical results.  Subnormal
        # times (where ulp stops scaling with t) fall through to the
        # exact form.
        if extra_lead is None:
            for sector in candidates:
                track = sector // n
                sect = sector - track * n
                cylinder = track // tpc
                distance = cylinder - head_cyl
                if distance < 0:
                    distance = -distance
                positioning = seeks[distance]
                if track - cylinder * tpc != head_head and switch > positioning:
                    positioning = switch
                t = now + positioning
                rem = t % rotation
                if rem > 4.5e-308 and rem > t * 1e-15:
                    frac = rem / rotation
                    slot = frac * n if frac < 1.0 else 0.0
                elif rem <= 0.0 or rem <= 2.0 * _ulp(t):
                    slot = 0.0
                else:
                    frac = rem / rotation
                    slot = 0.0 if frac >= 1.0 else frac * n
                angle = sect + skews[track]
                if angle >= n:
                    angle -= n
                cost = positioning + ((angle - slot) % n) * sector_time
                if transfer:
                    cost += transfer
                append(cost)
            return costs
        for i, sector in enumerate(candidates):
            track = sector // n
            sect = sector - track * n
            cylinder = track // tpc
            distance = cylinder - head_cyl
            if distance < 0:
                distance = -distance
            positioning = seeks[distance]
            if track - cylinder * tpc != head_head and switch > positioning:
                positioning = switch
            extra = extra_lead[i]
            lead = extra + positioning
            t = (now + extra) + positioning
            rem = t % rotation
            if rem > 4.5e-308 and rem > t * 1e-15:
                frac = rem / rotation
                slot = frac * n if frac < 1.0 else 0.0
            elif rem <= 0.0 or rem <= 2.0 * _ulp(t):
                slot = 0.0
            else:
                frac = rem / rotation
                slot = 0.0 if frac >= 1.0 else frac * n
            angle = sect + skews[track]
            if angle >= n:
                angle -= n
            cost = lead + ((angle - slot) % n) * sector_time
            if transfer:
                cost += transfer
            append(cost)
        return costs

    def price_track_arrivals(
        self,
        now: float,
        head_cyl: int,
        head_head: int,
        tracks: Sequence[Tuple[int, int]],
    ) -> List[Tuple[float, float]]:
        """``(positioning_time, arrival_slot)`` for each ``(cylinder,
        head)`` in one pass -- the compactor's hole search and the
        allocator's cylinder sweep price candidate *tracks* this way
        before asking the free map for the nearest run on the winners."""
        n = self.sectors_per_track
        rotation = self.rotation_time
        seeks = self.seek_by_distance
        switch = self.head_switch_time
        _ulp = ulp
        out: List[Tuple[float, float]] = []
        append = out.append
        for cylinder, head in tracks:
            distance = cylinder - head_cyl
            if distance < 0:
                distance = -distance
            positioning = seeks[distance]
            if head != head_head and switch > positioning:
                positioning = switch
            t = now + positioning
            rem = t % rotation
            if rem > 4.5e-308 and rem > t * 1e-15:
                frac = rem / rotation
                slot = frac * n if frac < 1.0 else 0.0
            elif rem <= 0.0 or rem <= 2.0 * _ulp(t):
                slot = 0.0
            else:
                frac = rem / rotation
                slot = 0.0 if frac >= 1.0 else frac * n
            append((positioning, slot))
        return out
