"""One entry point per table/figure of the paper's evaluation.

Every function returns a plain dict so benchmarks and tests can assert on
the *shape* of the results (who wins, by what factor, where crossovers
fall) without depending on formatting.  ``scale`` trades fidelity for
runtime: 1.0 reproduces the paper's workload sizes; smaller values shrink
file counts / update counts proportionally (used by the test suite).

Each experiment's grid is declared as a list of
:class:`~repro.harness.sweep.SweepPoint` -- a pure, picklable spec naming
a module-level point function below (``_point_*`` / ``_figure8_point``)
-- and executed by :func:`~repro.harness.sweep.run_sweep`, which fans the
points out across worker processes (``--jobs``) and memoizes each one in
the content-addressed result cache (``--cache``).  Point functions derive
all randomness from their explicit ``seed`` argument, so results are
identical at any parallelism and on cache replay.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence

from repro.blockdev.interpose import MetricsDevice, find_layer
from repro.disk.specs import DISKS, HP97560, ST19101
from repro.harness.configs import STACKS, StackConfig, build_stack, utilization_of
from repro.harness.runner import (
    simulate_locate_free,
    simulate_queued_workload,
    simulate_track_fill,
)
from repro.harness.sweep import SweepPoint, sweep_values, warn_dropped
from repro.models.compactor import average_latency_closed_form
from repro.models.cylinder import cylinder_expected_latency
from repro.sim.stats import COMPONENTS
from repro.workloads.bursts import run_bursts
from repro.workloads.largefile import run_large_file
from repro.workloads.random_update import prepare_file, run_random_updates
from repro.workloads.smallfile import run_small_file

_MB = 1 << 20

#: Module path every point spec resolves against.
_HERE = "repro.harness.experiments"

#: The workloads' historical default seeds, made explicit so they sit in
#: every point spec (and therefore in every cache key).
_UPDATE_SEED = 0xF168
_BURST_SEED = 0xB025
_LARGEFILE_SEED = 0x10C5


# ======================================================================
# Table 1
# ======================================================================

def table1() -> Dict[str, Dict[str, float]]:
    """Disk parameters (Table 1) -- straight from the specs."""
    result = {}
    for spec in (HP97560, ST19101):
        result[spec.name] = {
            "sectors_per_track": spec.sectors_per_track,
            "tracks_per_cylinder": spec.tracks_per_cylinder,
            "head_switch_ms": spec.head_switch_time * 1e3,
            "min_seek_ms": spec.min_seek_time * 1e3,
            "rpm": spec.rpm,
            "scsi_overhead_ms": spec.scsi_overhead * 1e3,
        }
    return result


# ======================================================================
# Figure 1: time to locate a free sector vs free space
# ======================================================================

def _point_locate_free(
    *, seed: int, disk_name: str, free_fraction: float, trials: int
) -> float:
    return simulate_locate_free(
        DISKS[disk_name], free_fraction, trials=trials, seed=seed
    )


def figure1(
    fractions: Optional[Sequence[float]] = None,
    trials: int = 300,
    seed: int = 1,
) -> Dict[str, Dict[str, List[float]]]:
    """Model vs simulation of free-sector locate time, both disks."""
    if fractions is None:
        fractions = [0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]
    specs = (HP97560, ST19101)
    points = [
        SweepPoint(
            f"{_HERE}:_point_locate_free",
            {
                "disk_name": spec.name.lower(),
                "free_fraction": p,
                "trials": trials,
            },
            seed,
        )
        for spec in specs
        for p in fractions
    ]
    simulated = sweep_values(points)
    result: Dict[str, Dict[str, List[float]]] = {}
    for i, spec in enumerate(specs):
        chunk = simulated[i * len(fractions) : (i + 1) * len(fractions)]
        result[spec.name] = {
            "free_fraction": list(fractions),
            "model_seconds": [
                cylinder_expected_latency(spec, p) for p in fractions
            ],
            "simulated_seconds": chunk,
        }
    return result


# ======================================================================
# Figure 2: latency vs track-switch threshold
# ======================================================================

def _point_track_fill(
    *, seed: int, disk_name: str, threshold: float, trials: int
) -> float:
    return simulate_track_fill(
        DISKS[disk_name], threshold, trials=trials, seed=seed
    )


def figure2(
    thresholds: Optional[Sequence[float]] = None,
    trials: int = 40,
    seed: int = 2,
) -> Dict[str, Dict[str, List[float]]]:
    """Model vs simulation of the compactor-assisted track-fill regime.

    ``thresholds`` are the fraction of free sectors *reserved* per track
    before switching (the paper's x-axis; high = frequent switches).
    """
    if thresholds is None:
        thresholds = [0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]
    specs = (HP97560, ST19101)
    points = [
        SweepPoint(
            f"{_HERE}:_point_track_fill",
            {
                "disk_name": spec.name.lower(),
                "threshold": threshold,
                "trials": trials,
            },
            seed,
        )
        for spec in specs
        for threshold in thresholds
    ]
    simulated = sweep_values(points)
    result: Dict[str, Dict[str, List[float]]] = {}
    for i, spec in enumerate(specs):
        n = spec.sectors_per_track
        model = []
        for threshold in thresholds:
            m = max(0, min(n - 1, int(round(threshold * n))))
            model.append(
                average_latency_closed_form(
                    n, m, spec.head_switch_time, spec.sector_time
                )
            )
        result[spec.name] = {
            "threshold": list(thresholds),
            "model_seconds": model,
            "simulated_seconds": simulated[
                i * len(thresholds) : (i + 1) * len(thresholds)
            ],
        }
    return result


# ======================================================================
# Figure 6: small-file create/read/delete
# ======================================================================

def _point_smallfile(
    *, seed: int, stack: str, disk_name: str, host_name: str, num_files: int
) -> Dict[str, float]:
    del seed  # the small-file workload is deterministic
    config = STACKS[stack].with_platform(disk_name, host_name)
    fs, _disk, _device = build_stack(config)
    outcome = run_small_file(fs, num_files=num_files)
    return {
        "create": outcome.create_seconds,
        "read": outcome.read_seconds,
        "delete": outcome.delete_seconds,
    }


def figure6(
    num_files: int = 1500,
    disk_name: str = "st19101",
    host_name: str = "sparc10",
) -> Dict[str, Dict[str, float]]:
    """Per-stack phase times, plus normalisation to UFS-on-regular."""
    stacks = list(STACKS)
    points = [
        SweepPoint(
            f"{_HERE}:_point_smallfile",
            {
                "stack": name,
                "disk_name": disk_name,
                "host_name": host_name,
                "num_files": num_files,
            },
        )
        for name in stacks
    ]
    raw = dict(zip(stacks, sweep_values(points)))
    baseline = raw["ufs-regular"]
    normalized = {
        name: {
            phase: baseline[phase] / seconds if seconds > 0 else float("inf")
            for phase, seconds in phases.items()
        }
        for name, phases in raw.items()
    }
    return {"seconds": raw, "normalized": normalized}


# ======================================================================
# Figure 7: large-file bandwidths
# ======================================================================

def _point_largefile(
    *, seed: int, stack: str, disk_name: str, host_name: str, file_mb: float
) -> Dict[str, float]:
    config = STACKS[stack].with_platform(disk_name, host_name)
    fs, _disk, _device = build_stack(config)
    outcome = run_large_file(
        fs,
        file_bytes=int(file_mb * _MB),
        include_sync_phase=config.fs_type == "ufs",
        seed=seed,
    )
    return dict(outcome.bandwidths)


def figure7(
    file_mb: float = 10.0,
    disk_name: str = "st19101",
    host_name: str = "sparc10",
) -> Dict[str, Dict[str, float]]:
    """Per-stack bandwidths for the six large-file phases (MB/s)."""
    stacks = list(STACKS)
    points = [
        SweepPoint(
            f"{_HERE}:_point_largefile",
            {
                "stack": name,
                "disk_name": disk_name,
                "host_name": host_name,
                "file_mb": file_mb,
            },
            _LARGEFILE_SEED,
        )
        for name in stacks
    ]
    return dict(zip(stacks, sweep_values(points)))


# ======================================================================
# Figure 8: random synchronous updates vs disk utilization
# ======================================================================

def _figure8_point(
    *,
    seed: int,
    name: str,
    fs_type: str,
    device_type: str,
    disk_name: str,
    host_name: str,
    nvram: bool,
    file_mb: float,
    updates: int,
    warmup: int,
) -> Optional[List[float]]:
    """One (system, file size) point: ``[utilization, latency]``, or
    ``None`` when the file does not fit (the caller warns and drops)."""
    from repro.fs.api import NoSpace

    config = StackConfig(
        name, fs_type, device_type, disk_name, host_name, nvram=nvram
    )
    fs, _disk, device = build_stack(config)
    file_bytes = int(file_mb * _MB)
    try:
        prepare_file(fs, "/target", file_bytes)
        recorder = run_random_updates(
            fs, "/target", file_bytes, updates, warmup=warmup, seed=seed
        )
    except NoSpace:
        return None
    return [utilization_of(fs, device), recorder.mean()]


def figure8(
    file_mbs: Optional[Sequence[float]] = None,
    updates: int = 300,
    warmup: int = 100,
    lfs_updates: int = 2500,
    lfs_warmup: int = 2000,
    disk_name: str = "st19101",
    host_name: str = "sparc10",
) -> Dict[str, Dict[str, List[float]]]:
    """Latency-vs-utilization curves for the three Figure 8 systems.

    The LFS-with-NVRAM runs need enough updates to overflow the 6.1 MB
    buffer repeatedly (the steady state the paper measures), hence the
    larger ``lfs_updates``/``lfs_warmup`` defaults.
    """
    if file_mbs is None:
        file_mbs = [1, 2, 4, 6, 8, 10, 12, 14, 16, 17, 18]
    systems = {
        "ufs-regular": StackConfig(
            "ufs-regular", "ufs", "regular", disk_name, host_name
        ),
        "ufs-vld": StackConfig(
            "ufs-vld", "ufs", "vld", disk_name, host_name
        ),
        "lfs-nvram-regular": StackConfig(
            "lfs-nvram-regular", "lfs", "regular", disk_name, host_name,
            nvram=True,
        ),
    }
    points = []
    for name, config in systems.items():
        lfs = config.fs_type == "lfs"
        for file_mb in file_mbs:
            points.append(SweepPoint(
                f"{_HERE}:_figure8_point",
                {
                    "name": name,
                    "fs_type": config.fs_type,
                    "device_type": config.device_type,
                    "disk_name": disk_name,
                    "host_name": host_name,
                    "nvram": config.nvram,
                    "file_mb": file_mb,
                    "updates": lfs_updates if lfs else updates,
                    "warmup": lfs_warmup if lfs else warmup,
                },
                _UPDATE_SEED,
            ))
    values = iter(sweep_values(points))
    result: Dict[str, Dict[str, List[float]]] = {}
    for name in systems:
        utilizations: List[float] = []
        latencies: List[float] = []
        for file_mb in file_mbs:
            point = next(values)
            if point is None:
                warn_dropped(
                    "figure8", stack=name, file_mb=file_mb, cause="NoSpace"
                )
                continue
            utilization, latency = point
            utilizations.append(utilization)
            latencies.append(latency)
        result[name] = {
            "utilization": utilizations,
            "latency_ms": [v * 1e3 for v in latencies],
        }
    return result


# ======================================================================
# Table 2 and Figure 9: technology trends and latency breakdown
# ======================================================================

PLATFORMS = (
    ("hp97560", "sparc10"),
    ("st19101", "sparc10"),
    ("st19101", "ultra170"),
)


def _point_table2(
    *,
    seed: int,
    disk_name: str,
    host_name: str,
    device_type: str,
    utilization: float,
    updates: int,
    warmup: int,
    compact_seconds: float,
    from_metrics: bool,
) -> Dict[str, Any]:
    """One (platform, device) cell: mean latency plus the component
    fractions backing Figure 9."""
    spec = DISKS[disk_name]
    capacity = (
        spec.sim_cylinders
        * spec.tracks_per_cylinder
        * spec.sectors_per_track
        * spec.sector_bytes
    )
    file_bytes = int(utilization * capacity)
    config = StackConfig(
        f"ufs-{device_type}", "ufs", device_type, disk_name,
        host_name, metrics=from_metrics,
    )
    fs, _disk, device = build_stack(config)
    metrics = find_layer(device, MetricsDevice)
    prepare_file(fs, "/target", file_bytes)
    # Footnote 1 of the paper: "The VLD latency in this case is
    # measured immediately after running a compactor."  Idle time
    # lets the compactor consolidate free space into empty tracks
    # (a no-op on the regular disk).
    device.idle(compact_seconds)
    recorder = run_random_updates(
        fs, "/target", file_bytes, updates, warmup=warmup, seed=seed,
        on_measure_start=(
            metrics.reset if metrics is not None else None
        ),
    )
    fractions = (
        metrics.component_fractions()
        if metrics is not None
        else recorder.component_fractions()
    )
    return {"latency": recorder.mean(), "fractions": dict(fractions)}


def table2(
    utilization: float = 0.8,
    updates: int = 300,
    warmup: int = 100,
    compact_seconds: float = 20.0,
    from_metrics: bool = True,
) -> Dict[str, Dict[str, float]]:
    """Update-in-place vs virtual-log gap across platforms (Table 2),
    with the Figure 9 component breakdowns of the same runs.

    With ``from_metrics`` (the default) each stack carries a
    :class:`~repro.blockdev.interpose.MetricsDevice` and the component
    breakdown comes from its per-component latency histograms -- the
    device-visible parts measured at the device boundary, host time
    inferred from the clock gaps between device operations -- rather
    than from the per-call breakdowns the workload accumulates.
    """
    points = [
        SweepPoint(
            f"{_HERE}:_point_table2",
            {
                "disk_name": disk_name,
                "host_name": host_name,
                "device_type": device_type,
                "utilization": utilization,
                "updates": updates,
                "warmup": warmup,
                "compact_seconds": compact_seconds,
                "from_metrics": from_metrics,
            },
            _UPDATE_SEED,
        )
        for disk_name, host_name in PLATFORMS
        for device_type in ("regular", "vld")
    ]
    values = iter(sweep_values(points))
    result: Dict[str, Dict[str, float]] = {}
    for disk_name, host_name in PLATFORMS:
        cells = {
            device_type: next(values)
            for device_type in ("regular", "vld")
        }
        entry: Dict[str, float] = {
            "update_in_place_ms": cells["regular"]["latency"] * 1e3,
            "virtual_log_ms": cells["vld"]["latency"] * 1e3,
            "speedup": cells["regular"]["latency"] / cells["vld"]["latency"],
        }
        for component in COMPONENTS:
            for device_type in ("regular", "vld"):
                entry[f"{device_type}_{component}"] = (
                    cells[device_type]["fractions"][component]
                )
        result[f"{disk_name}+{host_name}"] = entry
    return result


def figure9(
    utilization: float = 0.8, updates: int = 300, warmup: int = 100
) -> Dict[str, Dict[str, float]]:
    """Latency breakdowns (same runs as Table 2, reshaped per Figure 9)."""
    table = table2(utilization, updates, warmup)
    result: Dict[str, Dict[str, float]] = {}
    for platform, entry in table.items():
        for device in ("regular", "vld"):
            key = f"{platform}/{device}"
            result[key] = {
                component: entry[f"{device}_{component}"]
                for component in COMPONENTS
            }
            result[key]["total_ms"] = entry[
                "update_in_place_ms" if device == "regular" else "virtual_log_ms"
            ]
    return result


# ======================================================================
# Figures 10 and 11: the value of idle time
# ======================================================================

def figure10(
    burst_kbs: Optional[Sequence[int]] = None,
    idle_seconds: Optional[Sequence[float]] = None,
    utilization: float = 0.8,
    bursts: int = 6,
    disk_name: str = "st19101",
    host_name: str = "sparc10",
) -> Dict[str, Dict[str, List[float]]]:
    """LFS (with NVRAM) latency vs idle-interval length (Figure 10)."""
    if burst_kbs is None:
        burst_kbs = [128, 256, 504, 1008, 2016, 4032]
    if idle_seconds is None:
        idle_seconds = [0.0, 0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]
    config = StackConfig(
        "lfs-nvram-regular", "lfs", "regular", disk_name, host_name,
        nvram=True,
    )
    return _idle_sweep(
        config, burst_kbs, idle_seconds, utilization, bursts
    )


def figure11(
    burst_kbs: Optional[Sequence[int]] = None,
    idle_seconds: Optional[Sequence[float]] = None,
    utilization: float = 0.8,
    bursts: int = 6,
    disk_name: str = "st19101",
    host_name: str = "sparc10",
) -> Dict[str, Dict[str, List[float]]]:
    """UFS on the VLD latency vs idle-interval length (Figure 11)."""
    if burst_kbs is None:
        burst_kbs = [128, 256, 512, 1024, 2048, 4096]
    if idle_seconds is None:
        idle_seconds = [0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6]
    config = StackConfig(
        "ufs-vld", "ufs", "vld", disk_name, host_name
    )
    return _idle_sweep(
        config, burst_kbs, idle_seconds, utilization, bursts
    )


def _point_idle_burst(
    *,
    seed: int,
    name: str,
    fs_type: str,
    device_type: str,
    disk_name: str,
    host_name: str,
    nvram: bool,
    utilization: float,
    burst_kb: int,
    idle: float,
    bursts: int,
) -> float:
    spec = DISKS[disk_name]
    capacity = (
        spec.sim_cylinders
        * spec.tracks_per_cylinder
        * spec.sectors_per_track
        * spec.sector_bytes
    )
    file_bytes = int(utilization * capacity)
    config = StackConfig(
        name, fs_type, device_type, disk_name, host_name, nvram=nvram
    )
    fs, _disk, _device = build_stack(config)
    prepare_file(fs, "/target", file_bytes)
    recorder = run_bursts(
        fs,
        "/target",
        file_bytes,
        burst_bytes=burst_kb << 10,
        idle_seconds=idle,
        bursts=bursts,
        seed=seed,
    )
    return recorder.mean()


def _idle_sweep(
    config: StackConfig,
    burst_kbs: Sequence[int],
    idle_seconds: Sequence[float],
    utilization: float,
    bursts: int,
) -> Dict[str, Dict[str, List[float]]]:
    points = [
        SweepPoint(
            f"{_HERE}:_point_idle_burst",
            {
                "name": config.name,
                "fs_type": config.fs_type,
                "device_type": config.device_type,
                "disk_name": config.disk_name,
                "host_name": config.host_name,
                "nvram": config.nvram,
                "utilization": utilization,
                "burst_kb": burst_kb,
                "idle": idle,
                "bursts": bursts,
            },
            _BURST_SEED,
        )
        for burst_kb in burst_kbs
        for idle in idle_seconds
    ]
    values = iter(sweep_values(points))
    result: Dict[str, Dict[str, List[float]]] = {}
    for burst_kb in burst_kbs:
        latencies = [next(values) for _ in idle_seconds]
        result[f"{burst_kb}K"] = {
            "idle_seconds": list(idle_seconds),
            "latency_ms": [v * 1e3 for v in latencies],
        }
    return result


# ======================================================================
# Queue-depth sweep: scheduling policy x queue depth x workload
# ======================================================================

def _point_qdepth(
    *,
    seed: int,
    disk_name: str,
    queue_depth: int,
    policy: str,
    workload: str,
    requests: int,
    think_us: float,
) -> Dict[str, float]:
    return simulate_queued_workload(
        DISKS[disk_name],
        queue_depth=queue_depth,
        policy=policy,
        workload=workload,
        requests=requests,
        think_seconds=think_us * 1e-6,
        seed=seed,
    )


def figure_qdepth(
    depths: Optional[Sequence[int]] = None,
    policies: Sequence[str] = ("fifo", "scan", "satf"),
    workloads: Sequence[str] = ("random-update", "sequential", "mixed"),
    requests: int = 400,
    think_us: float = 200.0,
    disk_name: str = "st19101",
    seed: int = 3,
) -> Dict[str, Dict[str, Dict[str, List[float]]]]:
    """Mean service time vs queue depth, per scheduling policy and
    workload, on the raw disk through the host pipeline.

    The queued counterpart of the figure experiments: at depth 1 every
    policy collapses to the unscheduled baseline, and the depth axis
    shows how much a queue-aware policy (SATF priced by the mechanics
    model) buys over FIFO once the disk can reorder.
    """
    if depths is None:
        depths = [1, 2, 4, 8]
    points = [
        SweepPoint(
            f"{_HERE}:_point_qdepth",
            {
                "disk_name": disk_name,
                "queue_depth": depth,
                "policy": policy,
                "workload": workload,
                "requests": requests,
                "think_us": think_us,
            },
            seed,
        )
        for workload in workloads
        for policy in policies
        for depth in depths
    ]
    values = iter(sweep_values(points))
    result: Dict[str, Dict[str, Dict[str, List[float]]]] = {}
    for workload in workloads:
        per_policy: Dict[str, Dict[str, List[float]]] = {}
        for policy in policies:
            runs = [next(values) for _ in depths]
            per_policy[policy] = {
                "queue_depth": [float(d) for d in depths],
                "mean_service_ms": [r["mean_service_ms"] for r in runs],
                "p95_service_ms": [r["p95_service_ms"] for r in runs],
                "p99_service_ms": [r["p99_service_ms"] for r in runs],
                "p999_service_ms": [r["p999_service_ms"] for r in runs],
                "mean_response_ms": [r["mean_response_ms"] for r in runs],
                "p99_response_ms": [r["p99_response_ms"] for r in runs],
                "elapsed_seconds": [r["elapsed_seconds"] for r in runs],
            }
        result[workload] = per_policy
    return result


# ======================================================================
# Multi-host sweep: N closed-loop hosts x M disks on the event engine
# ======================================================================

def _point_multihost(
    *,
    seed: int,
    disk_name: str,
    hosts: int,
    disks: int,
    requests_per_host: int,
    workload: str,
    policy: str,
    think_us: float,
    shards: Optional[int] = None,
    shard_slow: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    # Imported lazily: repro.hosts initializes before the harness, and
    # the fork workers only pay for the driver when they run this point.
    from repro.hosts.multihost import run_multihost

    report = run_multihost(
        DISKS[disk_name],
        hosts=hosts,
        disks=disks,
        requests_per_host=requests_per_host,
        think_seconds=think_us * 1e-6,
        workload=workload,
        policy=policy,
        seed=seed,
        shards=shards,
        shard_slow=shard_slow,
    )
    report.pop("trace", None)
    return report


def figure_multihost(
    host_counts: Optional[Sequence[int]] = None,
    disks: int = 1,
    workloads: Sequence[str] = ("random-update", "sequential"),
    requests_per_host: int = 200,
    think_us: float = 200.0,
    policy: str = "fifo",
    disk_name: str = "st19101",
    seed: int = 3,
    shards: Optional[int] = None,
    shard_slow: Optional[Dict[str, object]] = None,
) -> Dict[str, Dict[str, object]]:
    """Throughput and tail latency vs host count on the event engine.

    The scale-out counterpart of ``figure_qdepth``: instead of one host
    queueing deeper, more closed-loop hosts share ``disks`` striped
    device stacks.  Reports mean and p99/p999 response time (queueing
    shows in the tail first), throughput, and the exactly-measured
    think/service overlap per host count.

    With ``shards=N`` the grid runs in sharded-volume mode (the N-hosts
    x M-shards grid): each row additionally carries the per-shard
    response tails, and ``shard_slow`` injects a fail-slow window into
    one shard so the degraded-window throughput rides along.
    """
    if host_counts is None:
        host_counts = [1, 2, 4, 8]
    params: Dict[str, object] = {
        "disk_name": disk_name,
        "disks": disks,
        "requests_per_host": requests_per_host,
        "policy": policy,
        "think_us": think_us,
    }
    if shards is not None:
        params["shards"] = shards
        if shard_slow is not None:
            params["shard_slow"] = dict(shard_slow)
    points = [
        SweepPoint(
            f"{_HERE}:_point_multihost",
            {**params, "hosts": hosts, "workload": workload},
            seed,
        )
        for workload in workloads
        for hosts in host_counts
    ]
    values = iter(sweep_values(points))
    result: Dict[str, Dict[str, object]] = {}
    for workload in workloads:
        runs = [next(values) for _ in host_counts]
        result[workload] = {
            "hosts": [float(h) for h in host_counts],
            "requests_per_second": [
                float(r["requests_per_second"]) for r in runs
            ],
            "mean_response_ms": [float(r["mean_response_ms"]) for r in runs],
            "p99_response_ms": [float(r["p99_response_ms"]) for r in runs],
            "p999_response_ms": [float(r["p999_response_ms"]) for r in runs],
            "mean_service_ms": [float(r["mean_service_ms"]) for r in runs],
            "hidden_think_seconds": [
                float(r["hidden_think_seconds"]) for r in runs
            ],
            "elapsed_seconds": [float(r["elapsed_seconds"]) for r in runs],
        }
        if shards is not None:
            result[workload]["per_shard"] = [r["per_shard"] for r in runs]
    return result


# ======================================================================
# NVM write-ahead tier: sync-write latency vs eager writing
# ======================================================================

def _point_nvm(
    *,
    seed: int,
    mode: str,
    workload: str,
    requests: int,
    disk_name: str,
    nvm_part: str,
    nvm_store_latency: Optional[float],
    nvm_capacity: Optional[int],
    idle_every: int = 16,
    idle_seconds: float = 0.05,
) -> Dict[str, float]:
    """One (mode, workload) cell of :func:`figure_nvm`.

    ``mode`` picks the stack: ``eager`` is the bare Virtual Log Disk
    (the paper's technique -- every write is already near-minimal
    positioning cost), ``nvm-wal`` is the write-ahead tier over a plain
    update-in-place disk (the NVLog arrangement), ``nvm+vld`` stacks the
    tier on the VLD so destage I/O also rides eager writing.  The driver
    issues synchronous writes and measures each acknowledgement by clock
    delta; every ``idle_every`` requests the device gets
    ``idle_seconds`` of idle time, which is where the tier destages.
    """
    import random

    from repro.blockdev.nvm import NVM_SPECS
    from repro.blockdev.regular import RegularDisk
    from repro.disk.disk import Disk
    from repro.nvm import NVWal
    from repro.vlog.vld import VirtualLogDisk

    rng = random.Random(seed)
    disk = Disk(DISKS[disk_name], num_cylinders=6)
    if mode == "eager":
        device = VirtualLogDisk(disk)
    elif mode in ("nvm-wal", "nvm+vld"):
        core = (
            VirtualLogDisk(disk) if mode == "nvm+vld"
            else RegularDisk(disk)
        )
        spec = NVM_SPECS[nvm_part].with_overrides(
            store_latency=nvm_store_latency, capacity_bytes=nvm_capacity
        )
        device = NVWal(core, spec=spec)
    else:
        raise ValueError(f"unknown mode {mode!r}")

    span = 192
    clock = disk.clock

    def next_op() -> tuple:
        if workload == "small-sync":
            return ("write", rng.randrange(span), 1)
        if workload == "random-update":
            return ("write", rng.randrange(span), 1)
        if workload == "mixed":
            roll = rng.random()
            if roll < 0.2:
                return ("read", rng.randrange(span), 1)
            if roll < 0.4:
                start = rng.randrange(span - 8)
                return ("write", start, rng.randrange(2, 8))
            return ("write", rng.randrange(span), 1)
        raise ValueError(f"unknown workload {workload!r}")

    block_size = device.block_size
    if workload == "random-update":
        # Updates hit a prewritten region (the prewrite is untimed setup:
        # latencies below measure only the update stream).
        for lba in range(span):
            device.write_block(lba, bytes([lba % 251]) * block_size)
        if hasattr(device, "destage_all"):
            device.destage_all()

    write_latencies: List[float] = []
    for index in range(requests):
        op, lba, count = next_op()
        if op == "read":
            device.read_blocks(lba, count)
            continue
        payload = bytes([index % 251]) * (count * block_size)
        before = clock.now
        device.write_blocks(lba, count, payload)
        write_latencies.append(clock.now - before)
        if (index + 1) % idle_every == 0:
            device.idle(idle_seconds)

    ordered = sorted(write_latencies)

    def _pct(fraction: float) -> float:
        if not ordered:
            return float("nan")
        rank = min(len(ordered), max(1, math.ceil(fraction * len(ordered))))
        return ordered[rank - 1]

    result: Dict[str, float] = {
        "mean_write_ms": sum(ordered) / len(ordered) * 1e3,
        "p99_write_ms": _pct(0.99) * 1e3,
        "max_write_ms": ordered[-1] * 1e3,
        "writes": float(len(ordered)),
        "elapsed_seconds": clock.now,
    }
    if isinstance(device, NVWal):
        stats = device.stats()
        result["absorbed_writes"] = float(stats["absorbed_writes"])
        result["bypassed_writes"] = float(stats["bypassed_writes"])
        result["destaged_blocks"] = float(stats["destaged_blocks"])
        result["pressure_destages"] = float(stats["pressure_destages"])
    return result


def figure_nvm(
    modes: Sequence[str] = ("eager", "nvm-wal", "nvm+vld"),
    workloads: Sequence[str] = ("small-sync", "random-update", "mixed"),
    requests: int = 400,
    disk_name: str = "st19101",
    nvm_part: str = "nvdimm",
    nvm_store_latency: Optional[float] = None,
    nvm_capacity: Optional[int] = None,
    seed: int = 11,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Synchronous-write latency: eager writing vs the NVM write-ahead
    tier vs both stacked, per workload.

    The paper's claim is that eager writing makes small synchronous
    writes cheap *on disk*; the NVM tier makes them cheap *before* the
    disk.  The interesting cells are where they differ: the tier
    acknowledges in microseconds regardless of position, but a bounded
    log must destage -- under sustained load with no idle time, pressure
    destages surface the backing store's write cost again (visible in
    ``p99_write_ms``/``max_write_ms``).
    """
    points = [
        SweepPoint(
            f"{_HERE}:_point_nvm",
            {
                "mode": mode,
                "workload": workload,
                "requests": requests,
                "disk_name": disk_name,
                "nvm_part": nvm_part,
                "nvm_store_latency": nvm_store_latency,
                "nvm_capacity": nvm_capacity,
            },
            seed,
        )
        for workload in workloads
        for mode in modes
    ]
    values = iter(sweep_values(points))
    result: Dict[str, Dict[str, Dict[str, float]]] = {}
    for workload in workloads:
        result[workload] = {mode: next(values) for mode in modes}
    return result
