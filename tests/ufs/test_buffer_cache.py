import pytest

from repro.blockdev.regular import RegularDisk
from repro.disk.disk import Disk
from repro.disk.specs import ST19101
from repro.ufs.buffer_cache import BufferCache


@pytest.fixture
def device():
    return RegularDisk(Disk(ST19101, num_cylinders=2))


@pytest.fixture
def cache(device):
    return BufferCache(device, capacity_bytes=64 * 4096)


class TestReadPath:
    def test_miss_then_hit(self, cache, device):
        device.write_block(5, b"\x05" * 4096)
        data, first = cache.read(5)
        assert data == b"\x05" * 4096
        assert first.total > 0
        data, second = cache.read(5)
        assert data == b"\x05" * 4096
        assert second.total == 0.0
        assert cache.hits == 1 and cache.misses == 1

    def test_populate_run_prefetches(self, cache, device):
        for lba in range(8):
            device.write_block(lba, bytes([lba]) * 4096)
        cache.populate_run(0, 8)
        for lba in range(8):
            data, cost = cache.read(lba)
            assert data == bytes([lba]) * 4096
            assert cost.total == 0.0

    def test_populate_run_keeps_dirty_copies(self, cache, device):
        cache.write(3, b"dirty" + bytes(4091), sync=False)
        cache.populate_run(0, 8)
        data, _ = cache.read(3)
        assert data.startswith(b"dirty")


class TestWritePath:
    def test_sync_write_reaches_device(self, cache, device):
        cost = cache.write(7, b"\x07" * 4096, sync=True)
        assert cost.total > 0
        assert not cache.is_dirty(7)
        data, _ = device.read_block(7)
        assert data == b"\x07" * 4096

    def test_async_write_stays_in_cache(self, cache, device):
        cost = cache.write(7, b"\x07" * 4096, sync=False)
        assert cost.total == 0.0
        assert cache.is_dirty(7)
        data, _ = device.read_block(7)
        assert data == bytes(4096)  # not flushed yet

    def test_flush_block(self, cache, device):
        cache.write(7, b"\x07" * 4096, sync=False)
        cache.flush_block(7)
        assert not cache.is_dirty(7)
        data, _ = device.read_block(7)
        assert data == b"\x07" * 4096

    def test_flush_coalesces_contiguous_runs(self, cache, device):
        for lba in (10, 11, 12, 20):
            cache.write(lba, bytes([lba]) * 4096, sync=False)
        writes_before = device.disk.writes
        cache.flush()
        assert device.disk.writes - writes_before == 2  # [10..12] + [20]
        assert cache.dirty_count == 0

    def test_wrong_size_rejected(self, cache):
        with pytest.raises(ValueError):
            cache.write(0, b"small", sync=False)


class TestPartialWrites:
    def test_sync_partial_reaches_device(self, cache, device):
        device.write_block(4, b"\xaa" * 4096)
        cache.write_partial(4, 1024, b"\xbb" * 1024, sync=True)
        data, _ = device.read_block(4)
        assert data[1024:2048] == b"\xbb" * 1024
        assert data[:1024] == b"\xaa" * 1024

    def test_async_partial_merges_in_cache(self, cache, device):
        device.write_block(4, b"\xaa" * 4096)
        cache.write_partial(4, 0, b"\xcc" * 1024, sync=False)
        data, _ = cache.read(4)
        assert data[:1024] == b"\xcc" * 1024
        assert data[1024:] == b"\xaa" * 3072
        assert cache.is_dirty(4)

    def test_fresh_partial_skips_read(self, cache, device):
        cost = cache.write_partial(4, 0, b"\xdd" * 1024, sync=False,
                                   fresh=True)
        assert cost.total == 0.0
        data, _ = cache.read(4)
        assert data[:1024] == b"\xdd" * 1024

    def test_uncached_partial_reads_before_merge(self, cache, device):
        device.write_block(4, b"\xaa" * 4096)
        cost = cache.write_partial(4, 0, b"\xee" * 1024, sync=False)
        assert cost.total > 0  # had to fetch the block first

    def test_overflow_rejected(self, cache):
        with pytest.raises(ValueError):
            cache.write_partial(0, 4000, b"\x00" * 1024, sync=False)


class TestEviction:
    def test_evicting_dirty_blocks_writes_them(self, device):
        cache = BufferCache(device, capacity_bytes=4 * 4096)
        for lba in range(8):
            cache.write(lba, bytes([lba]) * 4096, sync=False)
        # Earlier blocks were evicted and must have hit the device.
        data, _ = device.read_block(0)
        assert data == bytes([0]) * 4096

    def test_drop_clean_keeps_dirty(self, cache):
        cache.write(1, b"\x01" * 4096, sync=True)
        cache.write(2, b"\x02" * 4096, sync=False)
        cache.drop_clean()
        assert 1 not in cache
        assert 2 in cache

    def test_invalidate(self, cache):
        cache.write(9, b"\x09" * 4096, sync=False)
        cache.invalidate(9)
        assert 9 not in cache

    def test_capacity_must_hold_one_block(self, device):
        with pytest.raises(ValueError):
            BufferCache(device, capacity_bytes=100)
