"""Path parsing shared by all file system implementations."""

from __future__ import annotations

from typing import List, Tuple

from repro.fs.api import FileSystemError

#: Longest file name a directory entry can hold.
MAX_NAME = 255


def validate_name(name: str) -> str:
    """Check one path component; returns it unchanged."""
    if not name or name in (".", ".."):
        raise FileSystemError(f"invalid name {name!r}")
    if "/" in name or "\x00" in name:
        raise FileSystemError(f"invalid character in name {name!r}")
    if len(name.encode()) > MAX_NAME:
        raise FileSystemError(f"name too long: {name!r}")
    return name


def split_path(path: str) -> List[str]:
    """Split an absolute path into validated components."""
    if not path.startswith("/"):
        raise FileSystemError(f"path must be absolute: {path!r}")
    parts = [p for p in path.split("/") if p]
    return [validate_name(p) for p in parts]


def dirname_basename(path: str) -> Tuple[List[str], str]:
    """Parent components and final name; the path must not be the root."""
    parts = split_path(path)
    if not parts:
        raise FileSystemError("operation not permitted on the root directory")
    return parts[:-1], parts[-1]
