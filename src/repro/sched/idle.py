"""Idle-time budget dispatch.

The seed plumbed idle time through per-filesystem ``idle()`` methods,
each hand-ordering its background work (VLD: scrubber then compactor;
LFS: cleaner then device; VLFS: compactor).  :class:`IdleManager`
factors that shared shape out: background *workers* register once, in
priority order, and every idle grant walks them -- gated, budgeted, and
accounted -- then advances the clock to the deadline.

With the request scheduler in front of the disk, queue-emptiness is the
natural trigger: a device grants idle time only after draining its queue,
so background work never competes with outstanding foreground requests.
(The *amount* of idle time still comes from the host: the simulator's
clock only moves inside explicit operations, so a drive cannot discover
wall-clock idleness on its own -- a deliberate deviation noted in
DESIGN.md.)

Under the event engine that deviation finally closes: queue-drained is a
real *event*, so :meth:`IdleManager.process` turns the manager into an
engine process that wakes on each drained signal and runs its workers
during genuinely idle engine time, the grant's media cost becoming a
real timer instead of a host-donated budget.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional

from repro.sim.clock import SimClock
from repro.sim.engine import EventEngine, Signal, Until
from repro.sim.stats import Breakdown


class IdleWorker:
    """One registered consumer of idle time."""

    __slots__ = ("name", "run", "gate", "needs_time")

    def __init__(
        self,
        name: str,
        run: Callable[[float], Optional[Breakdown]],
        gate: Optional[Callable[[], bool]] = None,
        needs_time: bool = True,
    ) -> None:
        self.name = name
        self.run = run
        self.gate = gate
        #: Workers that only make progress against a positive budget are
        #: skipped once the deadline has passed; urgent bookkeeping (the
        #: scrubber's disarm-and-sweep, which the seed ran even on a
        #: zero-second grant) registers with ``needs_time=False``.
        self.needs_time = needs_time


class IdleManager:
    """Dispatches idle-time budgets to registered workers, in order."""

    def __init__(self, clock: SimClock) -> None:
        self.clock = clock
        self.workers: List[IdleWorker] = []
        self.grants = 0
        self.granted_seconds = 0.0

    def register(
        self,
        name: str,
        run: Callable[[float], Optional[Breakdown]],
        gate: Optional[Callable[[], bool]] = None,
        needs_time: bool = True,
    ) -> IdleWorker:
        """Append a worker; earlier registrations run first.

        ``run`` receives the remaining budget in seconds and may return a
        :class:`Breakdown` to surface its media costs; ``gate`` (when
        given) is consulted at each grant and must be cheap.
        """
        worker = IdleWorker(name, run, gate, needs_time)
        self.workers.append(worker)
        return worker

    def grant(self, seconds: float) -> Breakdown:
        """Hand ``seconds`` of idle time down the worker list, then
        advance the clock to the deadline regardless of how much of the
        budget the workers consumed."""
        if seconds < 0.0:
            raise ValueError("idle time must be non-negative")
        clock = self.clock
        deadline = clock.now + seconds
        self.grants += 1
        self.granted_seconds += seconds
        total = Breakdown()
        for worker in self.workers:
            remaining = deadline - clock.now
            if worker.needs_time and remaining <= 0.0:
                continue
            if worker.gate is not None and not worker.gate():
                continue
            result = worker.run(remaining)
            if result is not None:
                total.add(result)
        clock.advance_to(deadline)
        return total

    def process(
        self,
        engine: EventEngine,
        trigger: Signal,
        budget: float,
        name: str = "idle",
    ) -> Generator:
        """The manager as an engine process: each time ``trigger`` fires
        (typically a scheduler's drained signal), grant ``budget``
        seconds of idle work and sleep the real elapsed time so engine
        time covers the grant.  Idle spans are recorded as ``"idle"``
        intervals keyed by ``name``."""
        if budget < 0.0:
            raise ValueError("idle budget must be non-negative")
        while True:
            yield trigger
            # The manager's clock is the stack's local frontier: catch it
            # up to the event's time, grant closed-form, then let the
            # engine catch up to the frontier.
            start = engine.now
            self.clock.advance_to(start)
            self.grant(budget)
            engine.intervals.note("idle", name, start, self.clock.now)
            # Absolute catch-up (bit-exact; immediate when the manager's
            # clock is the engine clock and the grant already advanced
            # engine time).
            yield Until(self.clock.now)
