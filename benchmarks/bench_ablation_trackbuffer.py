"""Ablation: the track-buffer read-ahead fix of Section 4.2.

"The Dartmouth simulator tends to purge data prematurely from its
read-ahead buffer under VLD.  The solution is to aggressively prefetch the
entire track ... and not discard data until it is delivered."  This bench
quantifies that fix: sequential reads through a VLD with the stock
Dartmouth policy versus the full-track policy.
"""

from repro.disk.cache import ReadAheadPolicy
from repro.disk.disk import Disk
from repro.disk.specs import ST19101
from repro.harness.report import format_table
from repro.hosts.specs import SPARCSTATION_10
from repro.ufs.ufs import UFS
from repro.vlog.vld import VirtualLogDisk

from .conftest import full_scale, run_once

_MB = 1 << 20


def _run(policy):
    disk = Disk(ST19101, readahead=policy)
    fs = UFS(VirtualLogDisk(disk), SPARCSTATION_10)
    size = (6 if full_scale() else 3) * _MB
    fs.create("/seq")
    chunk = bytes(64 * 4096)
    for offset in range(0, size, len(chunk)):
        fs.write("/seq", offset, chunk)
    fs.sync()
    fs.drop_caches()
    clock = fs.clock
    start = clock.now
    for offset in range(0, size, 4096):
        fs.read("/seq", offset, 4096)
    elapsed = clock.now - start
    return (size / _MB) / elapsed  # MB/s


def test_ablation_trackbuffer_policy(benchmark):
    results = run_once(
        benchmark,
        lambda: {
            policy.value: _run(policy)
            for policy in (
                ReadAheadPolicy.DARTMOUTH,
                ReadAheadPolicy.FULL_TRACK,
                ReadAheadPolicy.DISABLED,
            )
        },
    )

    print()
    print(
        format_table(
            ["read-ahead policy", "seq read (MB/s)"],
            [[name, bw] for name, bw in results.items()],
            title="Ablation: track-buffer policy under a VLD "
            "(sequential read of an eagerly-written file)",
        )
    )

    # The paper's fix: full-track retention beats the stock policy under
    # a VLD, and any read-ahead beats none.
    assert results["full_track"] >= results["dartmouth"] * 0.95
    assert results["full_track"] > results["disabled"]
