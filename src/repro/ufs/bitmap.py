"""Allocation bitmaps (inodes, fragments) for the UFS cylinder groups."""

from __future__ import annotations

from typing import Optional


class Bitmap:
    """A bitmap over ``nbits`` items; bit set = in use."""

    def __init__(self, nbits: int, raw: Optional[bytes] = None) -> None:
        if nbits <= 0:
            raise ValueError("bitmap must cover at least one bit")
        self.nbits = nbits
        nbytes = (nbits + 7) // 8
        if raw is None:
            self._bits = bytearray(nbytes)
        else:
            if len(raw) < nbytes:
                raise ValueError("raw bitmap too short")
            self._bits = bytearray(raw[:nbytes])
        self._free = sum(1 for i in range(nbits) if not self.test(i))

    def _check(self, index: int) -> None:
        if not 0 <= index < self.nbits:
            raise IndexError(f"bit {index} out of range")

    def test(self, index: int) -> bool:
        self._check(index)
        return bool(self._bits[index >> 3] & (1 << (index & 7)))

    def set(self, index: int) -> None:
        self._check(index)
        if not self.test(index):
            self._bits[index >> 3] |= 1 << (index & 7)
            self._free -= 1

    def clear(self, index: int) -> None:
        self._check(index)
        if self.test(index):
            self._bits[index >> 3] &= ~(1 << (index & 7)) & 0xFF
            self._free += 1

    @property
    def free_count(self) -> int:
        return self._free

    def find_free(self, goal: int = 0) -> Optional[int]:
        """First free bit at/after ``goal``, wrapping; None when full."""
        if self._free == 0:
            return None
        goal = goal % self.nbits
        for offset in range(self.nbits):
            index = (goal + offset) % self.nbits
            if not self.test(index):
                return index
        return None

    def find_free_run(
        self, count: int, align: int = 1, goal: int = 0
    ) -> Optional[int]:
        """First aligned run of ``count`` free bits at/after ``goal``."""
        if count <= 0 or align <= 0:
            raise ValueError("count and align must be positive")
        if self._free < count:
            return None
        start = (goal // align) * align
        positions = list(range(start, self.nbits - count + 1, align))
        positions += list(range(0, min(start, self.nbits - count + 1), align))
        for index in positions:
            if all(not self.test(index + k) for k in range(count)):
                return index
        return None

    def find_frag_run(
        self, count: int, frags_per_block: int, goal: int = 0
    ) -> Optional[int]:
        """A run of ``count`` free bits that stays inside one block's frags.

        Prefers blocks that are already partially used (classic FFS keeps
        fragments together so whole blocks stay allocatable), falling back
        to carving a fresh block.
        """
        if not 0 < count <= frags_per_block:
            raise ValueError("fragment run must fit within one block")
        if self._free < count:
            return None
        nblocks = self.nbits // frags_per_block
        start_block = (goal // frags_per_block) % max(nblocks, 1)
        fresh: Optional[int] = None
        for offset in range(nblocks):
            block = (start_block + offset) % nblocks
            base = block * frags_per_block
            used = sum(
                1 for k in range(frags_per_block) if self.test(base + k)
            )
            run = self._run_in_block(base, frags_per_block, count)
            if run is None:
                continue
            if used > 0:
                return run  # partially-used block: best choice
            if fresh is None:
                fresh = run
        return fresh

    def _run_in_block(
        self, base: int, frags_per_block: int, count: int
    ) -> Optional[int]:
        for start in range(frags_per_block - count + 1):
            if all(not self.test(base + start + k) for k in range(count)):
                return base + start
        return None

    def pack(self) -> bytes:
        return bytes(self._bits)
