"""Logical block devices: the interface file systems program against.

Both the plain update-in-place disk and the Virtual Log Disk export this
same interface, which is how the paper runs an *unmodified* UFS on either
(Section 4: "Because both the regular disk and the VLD export the standard
device driver interface...").
"""

from repro.blockdev.interface import BlockDevice
from repro.blockdev.interpose import (
    DeviceCrashed,
    DeviceFault,
    DiskFaultInjector,
    FaultDevice,
    FaultPlan,
    InjectedReadError,
    InterposedDevice,
    InterposeOptions,
    MetricsDevice,
    TraceEvent,
    TracingDevice,
    build_device_stack,
    core_device,
    find_layer,
    layers,
    wrap_device,
)
from repro.blockdev.regular import RegularDisk

__all__ = [
    "BlockDevice",
    "RegularDisk",
    "InterposedDevice",
    "InterposeOptions",
    "TracingDevice",
    "TraceEvent",
    "MetricsDevice",
    "FaultDevice",
    "FaultPlan",
    "DiskFaultInjector",
    "DeviceFault",
    "DeviceCrashed",
    "InjectedReadError",
    "build_device_stack",
    "wrap_device",
    "core_device",
    "find_layer",
    "layers",
]
