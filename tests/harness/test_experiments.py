"""Shape checks on the paper's experiments, at reduced scale.

These are the integration tests of the whole reproduction: each asserts
the qualitative claims of a table or figure (who wins, which direction
curves move) using workload sizes small enough for the test suite.
"""

import pytest

from repro.harness import experiments


class TestTable1:
    def test_matches_paper(self):
        table = experiments.table1()
        assert table["HP97560"]["sectors_per_track"] == 72
        assert table["ST19101"]["rpm"] == pytest.approx(10000)
        assert table["ST19101"]["scsi_overhead_ms"] == pytest.approx(0.1)


class TestFigure1:
    @pytest.fixture(scope="class")
    def result(self):
        return experiments.figure1(fractions=[0.1, 0.4, 0.8], trials=120)

    def test_model_tracks_simulation(self, result):
        for disk in ("HP97560", "ST19101"):
            for model, sim in zip(
                result[disk]["model_seconds"],
                result[disk]["simulated_seconds"],
            ):
                assert sim == pytest.approx(model, rel=1.0, abs=1e-3)

    def test_latency_decreasing_in_free_space(self, result):
        for disk in ("HP97560", "ST19101"):
            sims = result[disk]["simulated_seconds"]
            assert sims[0] > sims[-1]

    def test_seagate_order_of_magnitude_better(self, result):
        hp = result["HP97560"]["model_seconds"][1]
        sg = result["ST19101"]["model_seconds"][1]
        assert hp / sg > 5


class TestFigure2:
    def test_u_shape_and_model_agreement(self):
        result = experiments.figure2(
            thresholds=[0.05, 0.4, 0.9], trials=15
        )
        for disk in ("HP97560", "ST19101"):
            sims = result[disk]["simulated_seconds"]
            assert sims[1] < sims[0]  # middle beats too-rare switching
            assert sims[1] < sims[2]  # and too-frequent switching


class TestFigure6:
    @pytest.fixture(scope="class")
    def result(self):
        return experiments.figure6(num_files=200)

    def test_vld_speeds_up_ufs_writes(self, result):
        normalized = result["normalized"]["ufs-vld"]
        assert normalized["create"] > 1.3
        assert normalized["delete"] > 2.0

    def test_vld_read_close_to_regular(self, result):
        # Paper: slightly worse; we accept a narrow band around parity.
        assert 0.7 < result["normalized"]["ufs-vld"]["read"] < 1.4

    def test_lfs_asynchronous_writes_fast(self, result):
        assert result["normalized"]["lfs-regular"]["create"] > 1.3

    def test_lfs_reads_slower(self, result):
        assert result["normalized"]["lfs-regular"]["read"] < 1.0


class TestFigure7:
    @pytest.fixture(scope="class")
    def result(self):
        return experiments.figure7(file_mb=3)

    def test_sync_random_write_much_faster_on_vld(self, result):
        assert (
            result["ufs-vld"]["rand_write_sync"]
            > 2 * result["ufs-regular"]["rand_write_sync"]
        )

    def test_seq_read_after_random_write_collapses_on_vld(self, result):
        vld = result["ufs-vld"]
        assert vld["seq_read_again"] < 0.6 * vld["seq_read"]

    def test_in_place_keeps_locality(self, result):
        regular = result["ufs-regular"]
        assert regular["seq_read_again"] == pytest.approx(
            regular["seq_read"], rel=0.3
        )

    def test_lfs_has_no_sync_phase(self, result):
        assert "rand_write_sync" not in result["lfs-regular"]


class TestFigure8:
    @pytest.fixture(scope="class")
    def result(self):
        return experiments.figure8(
            file_mbs=[4, 17], updates=120, warmup=40,
            lfs_updates=2500, lfs_warmup=1500,
        )

    def test_vld_beats_update_in_place_everywhere(self, result):
        for vld, regular in zip(
            result["ufs-vld"]["latency_ms"],
            result["ufs-regular"]["latency_ms"],
        ):
            assert vld < regular

    def test_vld_latency_rises_with_utilization(self, result):
        latencies = result["ufs-vld"]["latency_ms"]
        assert latencies[-1] >= latencies[0]

    def test_lfs_cheap_inside_nvram_expensive_beyond(self, result):
        latencies = result["lfs-nvram-regular"]["latency_ms"]
        assert latencies[0] < 1.0  # 4 MB fits in 6.1 MB NVRAM
        assert latencies[-1] > 3 * latencies[0]


class TestTable2AndFigure9:
    @pytest.fixture(scope="class")
    def table(self):
        return experiments.table2(utilization=0.7, updates=80, warmup=30)

    def test_speedup_grows_with_technology(self, table):
        """Table 2's claim: the gap widens from (HP, SPARC) to (Seagate,
        SPARC) to (Seagate, UltraSPARC)."""
        hp_sparc = table["hp97560+sparc10"]["speedup"]
        sg_sparc = table["st19101+sparc10"]["speedup"]
        sg_ultra = table["st19101+ultra170"]["speedup"]
        assert sg_sparc > hp_sparc * 0.9
        assert sg_ultra > sg_sparc
        assert sg_ultra > 2.0

    def test_update_in_place_dominated_by_locate(self, table):
        """Figure 9: mechanical delay dominates update-in-place on the
        modern disk."""
        entry = table["st19101+sparc10"]
        assert entry["regular_locate"] > 0.5

    def test_virtual_log_balanced(self, table):
        """Figure 9: no single component dominates virtual logging on the
        modern platform."""
        entry = table["st19101+ultra170"]
        for component in ("scsi", "transfer", "locate", "other"):
            assert entry[f"vld_{component}"] < 0.75

    def test_figure9_reshape(self):
        shaped = experiments.figure9(
            utilization=0.7, updates=40, warmup=10
        )
        assert "st19101+sparc10/regular" in shaped
        entry = shaped["st19101+sparc10/vld"]
        fractions = [
            entry[c] for c in ("scsi", "transfer", "locate", "other")
        ]
        assert sum(fractions) == pytest.approx(1.0, abs=0.01)


class TestFigures10And11:
    def test_vld_profits_from_short_idle_intervals(self):
        """Figure 11: UFS-on-VLD latency improves along a continuum of
        small idle intervals."""
        result = experiments.figure11(
            burst_kbs=[512], idle_seconds=[0.0, 0.4], utilization=0.85,
            bursts=4,
        )
        latencies = result["512K"]["latency_ms"]
        assert latencies[1] <= latencies[0] * 1.05

    def test_lfs_needs_long_idle_intervals(self):
        """Figure 10: short idle intervals buy LFS little; long ones
        (enough to clean/flush) help."""
        result = experiments.figure10(
            burst_kbs=[504], idle_seconds=[0.0, 4.0], utilization=0.8,
            bursts=4,
        )
        latencies = result["504K"]["latency_ms"]
        assert latencies[1] <= latencies[0] * 1.05


class TestFigureQdepth:
    def test_depth_axis_and_satf_advantage(self):
        result = experiments.figure_qdepth(
            depths=[1, 4], workloads=("random-update",), requests=150
        )
        series = result["random-update"]
        assert set(series) == {"fifo", "scan", "satf"}
        # Depth 1 collapses every policy to the unscheduled baseline.
        baseline = series["fifo"]["mean_service_ms"][0]
        for policy in ("scan", "satf"):
            assert series[policy]["mean_service_ms"][0] == baseline
        # At depth 4 SATF reorders its way below FIFO (the acceptance
        # criterion, at figure scale).
        assert (
            series["satf"]["mean_service_ms"][1]
            < series["fifo"]["mean_service_ms"][1]
        )

    def test_result_shape(self):
        result = experiments.figure_qdepth(
            depths=[2], policies=("satf",), workloads=("sequential",),
            requests=60,
        )
        entry = result["sequential"]["satf"]
        assert entry["queue_depth"] == [2.0]
        for key in (
            "mean_service_ms", "p95_service_ms", "mean_response_ms",
            "elapsed_seconds",
        ):
            assert len(entry[key]) == 1
            assert entry[key][0] > 0.0
