"""Invalidation and robustness contract of the content-addressed cache.

Every input of the key -- point function name, params, seed, and the
environment fingerprint over the source tree and platform specs -- must
independently produce a miss when it changes; and no on-disk corruption
may ever surface as anything worse than a recomputation.
"""

import json
import os

import pytest

from repro.harness import cache as cache_mod
from repro.harness.cache import (
    ResultCache,
    code_fingerprint,
    environment_fingerprint,
    spec_fingerprint,
)

FN = "pkg.module:point"


@pytest.fixture
def cache(tmp_path):
    return ResultCache(str(tmp_path / "cache"), fingerprint="f0")


class TestKeying:
    def test_roundtrip_canonicalizes(self, cache):
        stored = cache.put(FN, {"a": 1}, 7, ("x", 2.5))
        hit, value = cache.get(FN, {"a": 1}, 7)
        assert hit
        assert value == ["x", 2.5] == stored  # tuple -> list, both paths
        assert cache.stats() == {"hits": 1, "misses": 0}

    def test_param_order_irrelevant(self, cache):
        assert cache.key_of(FN, {"a": 1, "b": 2}, 0) == cache.key_of(
            FN, {"b": 2, "a": 1}, 0
        )

    @pytest.mark.parametrize(
        "fn,params,seed",
        [
            ("pkg.module:other", {"a": 1}, 7),  # different function
            (FN, {"a": 2}, 7),  # different param value
            (FN, {"a": 1, "b": 0}, 7),  # extra param
            (FN, {"a": 1}, 8),  # different seed
        ],
    )
    def test_any_input_change_misses(self, cache, fn, params, seed):
        cache.put(FN, {"a": 1}, 7, "value")
        hit, _ = cache.get(fn, params, seed)
        assert not hit

    def test_fingerprint_change_misses(self, tmp_path):
        directory = str(tmp_path / "cache")
        ResultCache(directory, fingerprint="f0").put(FN, {"a": 1}, 7, 42)
        hit, _ = ResultCache(directory, fingerprint="f1").get(FN, {"a": 1}, 7)
        assert not hit
        hit, value = ResultCache(directory, fingerprint="f0").get(
            FN, {"a": 1}, 7
        )
        assert hit and value == 42


class TestCorruption:
    def _entry_path(self, cache):
        key = cache.key_of(FN, {"a": 1}, 7)
        return os.path.join(cache.directory, key[:2], key + ".json")

    @pytest.mark.parametrize(
        "mangle",
        [
            lambda text: "not json at all {",  # garbage
            lambda text: text[: len(text) // 2],  # truncated write
            lambda text: "",  # empty file
            lambda text: json.dumps({"schema": 99}),  # missing fields
            lambda text: text.replace('"key"', '"kez"'),  # key mismatch
        ],
    )
    def test_corrupt_entries_are_misses(self, cache, mangle):
        cache.put(FN, {"a": 1}, 7, {"fine": True})
        path = self._entry_path(cache)
        with open(path) as fh:
            text = fh.read()
        with open(path, "w") as fh:
            fh.write(mangle(text))
        hit, value = cache.get(FN, {"a": 1}, 7)
        assert not hit and value is None
        # And a re-put repairs the entry.
        cache.put(FN, {"a": 1}, 7, {"fine": True})
        hit, value = cache.get(FN, {"a": 1}, 7)
        assert hit and value == {"fine": True}

    def test_missing_directory_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path / "never-created"))
        hit, _ = cache.get(FN, {}, 0)
        assert not hit


class TestFingerprints:
    def test_code_fingerprint_tracks_source_edits(self, tmp_path):
        tree = tmp_path / "tree"
        tree.mkdir()
        (tree / "mod.py").write_text("x = 1\n")
        code_fingerprint.cache_clear()
        before = code_fingerprint(str(tree))
        (tree / "mod.py").write_text("x = 2\n")
        code_fingerprint.cache_clear()
        after = code_fingerprint(str(tree))
        assert before != after
        # Non-.py files are not inputs.
        (tree / "notes.txt").write_text("irrelevant")
        code_fingerprint.cache_clear()
        assert code_fingerprint(str(tree)) == after

    def test_code_fingerprint_tracks_new_files(self, tmp_path):
        tree = tmp_path / "tree"
        tree.mkdir()
        (tree / "mod.py").write_text("x = 1\n")
        code_fingerprint.cache_clear()
        before = code_fingerprint(str(tree))
        (tree / "new.py").write_text("")
        code_fingerprint.cache_clear()
        assert code_fingerprint(str(tree)) != before

    def test_default_fingerprint_covers_repo_and_specs(self):
        env = environment_fingerprint()
        assert len(env) == 64
        # Deterministic within a process...
        assert env == environment_fingerprint()
        # ... and built from the repro tree + platform specs.
        assert len(code_fingerprint()) == 64
        assert len(spec_fingerprint()) == 64

    def test_default_cache_uses_environment_fingerprint(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert cache.fingerprint == environment_fingerprint()


def test_canonicalize_float_exactness():
    values = [0.1, 1 / 3, 1e-17, 123456.789]
    assert cache_mod.canonicalize(values) == values
