"""Virtual Log Based File Systems for a Programmable Disk -- reproduction.

A full Python implementation of Wang, Anderson & Patterson's OSDI '99
system: eager writing, the virtual log, the Virtual Log Disk (VLD), the
analytical latency models, and the evaluation substrate (a rotational disk
simulator, an FFS-style UFS, a log-structured file system) plus the VLFS
design the paper describes but did not build.

Quick start::

    from repro import Disk, ST19101, VirtualLogDisk

    vld = VirtualLogDisk(Disk(ST19101))
    vld.write_block(7, b"hello" + bytes(4091))   # eager, synchronous
    vld.power_down()                             # firmware saves the tail
    vld.crash()
    vld.recover()                                # map rebuilt from the log
    data, latency = vld.read_block(7)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.blockdev import (
    BlockDevice,
    DeviceCrashed,
    DeviceFault,
    DiskFaultInjector,
    FaultDevice,
    FaultPlan,
    InjectedReadError,
    InterposedDevice,
    InterposeOptions,
    MetricsDevice,
    RegularDisk,
    TracingDevice,
    build_device_stack,
)
from repro.disk import (
    Disk,
    DiskGeometry,
    DiskMechanics,
    DiskSpec,
    FreeSpaceMap,
    HP97560,
    ReadAheadPolicy,
    ST19101,
    TrackBuffer,
)
from repro.fs import FileStat, FileSystem
from repro.hosts import HOSTS, HostSpec, SPARCSTATION_10, ULTRASPARC_170
from repro.lfs import LFS
from repro.sim import Breakdown, LatencyRecorder, SimClock
from repro.ufs import UFS
from repro.vlfs import VLFS
from repro.vlog import (
    AllocationPolicy,
    EagerAllocator,
    FreeSpaceCompactor,
    IndirectionMap,
    VirtualLog,
    VirtualLogDisk,
)

__version__ = "1.0.0"

__all__ = [
    "Breakdown",
    "LatencyRecorder",
    "SimClock",
    "Disk",
    "DiskSpec",
    "DiskGeometry",
    "DiskMechanics",
    "FreeSpaceMap",
    "TrackBuffer",
    "ReadAheadPolicy",
    "HP97560",
    "ST19101",
    "HostSpec",
    "HOSTS",
    "SPARCSTATION_10",
    "ULTRASPARC_170",
    "BlockDevice",
    "RegularDisk",
    "InterposedDevice",
    "InterposeOptions",
    "TracingDevice",
    "MetricsDevice",
    "FaultDevice",
    "FaultPlan",
    "DiskFaultInjector",
    "DeviceFault",
    "DeviceCrashed",
    "InjectedReadError",
    "build_device_stack",
    "VirtualLog",
    "VirtualLogDisk",
    "IndirectionMap",
    "EagerAllocator",
    "AllocationPolicy",
    "FreeSpaceCompactor",
    "FileSystem",
    "FileStat",
    "UFS",
    "LFS",
    "VLFS",
    "__version__",
]
