import pytest

from repro.disk.mechanics import DiskMechanics
from repro.disk.specs import HP97560, ST19101


@pytest.fixture
def mech():
    return DiskMechanics(ST19101)


class TestRotation:
    def test_position_at_time_zero(self, mech):
        assert mech.rotational_slot(0.0) == pytest.approx(0.0)

    def test_position_wraps_each_revolution(self, mech):
        assert mech.rotational_slot(mech.rotation_time) == pytest.approx(
            0.0, abs=1e-6
        )

    def test_position_mid_revolution(self, mech):
        half = mech.rotation_time / 2
        assert mech.rotational_slot(half) == pytest.approx(128.0)

    def test_negative_time_rejected(self, mech):
        with pytest.raises(ValueError):
            mech.rotational_slot(-1.0)

    def test_wait_for_current_slot_is_zero(self, mech):
        assert mech.wait_for_slot(0.0, 0) == pytest.approx(0.0)

    def test_wait_wraps_around(self, mech):
        # Just past slot 10: must wait almost a full revolution for it.
        now = 10.5 * mech.sector_time
        wait = mech.wait_for_slot(now, 10)
        assert wait == pytest.approx(255.5 * mech.sector_time)

    def test_wait_bounded_by_revolution(self, mech):
        for slot in (0, 100, 255):
            wait = mech.wait_for_slot(0.00123, slot)
            assert 0.0 <= wait < mech.rotation_time

    def test_wait_bad_slot(self, mech):
        with pytest.raises(ValueError):
            mech.wait_for_slot(0.0, 256)


class TestTransferAndPositioning:
    def test_transfer_scales_linearly(self, mech):
        assert mech.transfer_time(8) == pytest.approx(8 * mech.sector_time)

    def test_transfer_zero(self, mech):
        assert mech.transfer_time(0) == 0.0

    def test_transfer_negative_rejected(self, mech):
        with pytest.raises(ValueError):
            mech.transfer_time(-1)

    def test_seek_symmetry(self, mech):
        assert mech.seek_time(0, 5) == mech.seek_time(5, 0)

    def test_head_switch_only_when_heads_differ(self, mech):
        assert mech.head_switch_time(3, 3) == 0.0
        assert mech.head_switch_time(0, 1) == ST19101.head_switch_time

    def test_positioning_overlaps_seek_and_switch(self, mech):
        # Concurrent: max, not sum.
        seek = mech.seek_time(0, 5)
        switch = ST19101.head_switch_time
        combined = mech.positioning_time(0, 0, 5, 1)
        assert combined == pytest.approx(max(seek, switch))

    def test_positioning_same_track_free(self, mech):
        assert mech.positioning_time(2, 3, 2, 3) == 0.0

    def test_hp_rotation_slower(self):
        hp = DiskMechanics(HP97560)
        sg = DiskMechanics(ST19101)
        assert hp.rotation_time > 2 * sg.rotation_time
