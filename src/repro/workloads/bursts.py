"""Bursts of updates separated by idle intervals (Figures 10, 11).

"We modify the benchmark of Section 5.3 to perform a burst of random
updates, pause, and repeat.  The disk utilization is kept at 80 %."
(Section 5.5.)  During the pauses the LFS cleaner or the VLD compactor may
run; the latency reported is the steady-state mean per 4 KB write.
"""

from __future__ import annotations

import random

from repro.fs.api import FileSystem
from repro.sim.stats import LatencyRecorder


def run_bursts(
    fs: FileSystem,
    path: str,
    file_bytes: int,
    burst_bytes: int,
    idle_seconds: float,
    bursts: int,
    io_bytes: int = 4096,
    sync: bool = True,
    warmup_bursts: int = 1,
    seed: int = 0xB025,
) -> LatencyRecorder:
    """Run ``bursts`` bursts of ``burst_bytes`` random updates each."""
    rng = random.Random(seed)
    nblocks = file_bytes // io_bytes
    writes_per_burst = max(1, burst_bytes // io_bytes)
    payload = b"\x5A" * io_bytes
    recorder = LatencyRecorder()
    for burst in range(warmup_bursts + bursts):
        for _ in range(writes_per_burst):
            block = rng.randrange(nblocks)
            breakdown = fs.write(path, block * io_bytes, payload, sync=sync)
            if burst >= warmup_bursts:
                recorder.record(breakdown)
        fs.idle(idle_seconds)
    return recorder
