"""The LFS inode map and segment usage table.

The inode map translates inode numbers to the log address of the inode's
current copy (an inode *block* holds several inodes; the map records block
address and slot).  The segment usage table records live bytes and a
last-write timestamp per segment -- exactly what the cleaning policies of
Rosenblum & Ousterhout consume.

Both tables are volatile during operation and persisted by checkpoints.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

#: Inodes per 4 KB inode block (matches the shared 128-byte inode).
INODES_PER_BLOCK_SLOT_BITS = 5
SLOT_MASK = (1 << INODES_PER_BLOCK_SLOT_BITS) - 1


class InodeMap:
    """inum -> (inode block address, slot), packed into a u32 each."""

    def __init__(self, max_inodes: int) -> None:
        if max_inodes <= 1:
            raise ValueError("need room for at least the root inode")
        self.max_inodes = max_inodes
        self._entries: List[int] = [0] * max_inodes  # 0 = free/unknown

    def _check(self, inum: int) -> None:
        if not 0 < inum < self.max_inodes:
            raise ValueError(f"inode {inum} out of range")

    def get(self, inum: int) -> Optional[Tuple[int, int]]:
        """(block address, slot) of an inode's current copy."""
        self._check(inum)
        packed = self._entries[inum]
        if packed == 0:
            return None
        return packed >> INODES_PER_BLOCK_SLOT_BITS, packed & SLOT_MASK

    def set(self, inum: int, address: int, slot: int) -> None:
        self._check(inum)
        if not 0 <= slot <= SLOT_MASK:
            raise ValueError("slot out of range")
        if address <= 0:
            raise ValueError("address must be positive")
        self._entries[inum] = (address << INODES_PER_BLOCK_SLOT_BITS) | slot

    def clear(self, inum: int) -> None:
        self._check(inum)
        self._entries[inum] = 0

    def allocated(self, inum: int) -> bool:
        self._check(inum)
        return self._entries[inum] != 0

    def alloc_inum(self) -> Optional[int]:
        """Lowest unused inode number (1 is conventionally the root)."""
        for inum in range(1, self.max_inodes):
            if self._entries[inum] == 0:
                return inum
        return None

    def live_inums(self):
        return (i for i in range(1, self.max_inodes) if self._entries[i])

    def entries_slice(self, lo: int, hi: int) -> List[int]:
        """Raw packed entries in [lo, hi) -- virtual-log chunk payloads."""
        if not 0 <= lo <= hi <= self.max_inodes:
            raise ValueError("slice out of range")
        return self._entries[lo:hi]

    def load_slice(self, lo: int, entries: List[int]) -> None:
        """Install raw packed entries starting at ``lo``."""
        if lo < 0 or lo + len(entries) > self.max_inodes:
            raise ValueError("slice out of range")
        self._entries[lo : lo + len(entries)] = entries

    # -- serialisation (checkpoints) --------------------------------------

    def pack(self) -> bytes:
        return struct.pack(f"<{self.max_inodes}I", *self._entries)

    def load(self, raw: bytes) -> None:
        self._entries = list(
            struct.unpack(f"<{self.max_inodes}I", raw[: self.max_inodes * 4])
        )


class SegmentUsage:
    """Per-segment live-byte counts and ages."""

    _ENTRY = struct.Struct("<Id")

    def __init__(self, num_segments: int, segment_bytes: int) -> None:
        self.num_segments = num_segments
        self.segment_bytes = segment_bytes
        self.live_bytes: List[int] = [0] * num_segments
        self.last_write: List[float] = [0.0] * num_segments
        #: segments never written (or fully reclaimed and rewritable)
        self._clean: List[bool] = [True] * num_segments

    def _check(self, segment: int) -> None:
        if not 0 <= segment < self.num_segments:
            raise ValueError(f"segment {segment} out of range")

    def note_write(self, segment: int, nbytes: int, now: float) -> None:
        """A segment received ``nbytes`` of (live) data."""
        self._check(segment)
        self.live_bytes[segment] += nbytes
        self.last_write[segment] = now
        self._clean[segment] = False

    def note_dead(self, segment: int, nbytes: int) -> None:
        """``nbytes`` of a segment's contents became dead."""
        self._check(segment)
        self.live_bytes[segment] = max(0, self.live_bytes[segment] - nbytes)

    def mark_clean(self, segment: int) -> None:
        self._check(segment)
        self.live_bytes[segment] = 0
        self._clean[segment] = True

    def is_clean(self, segment: int) -> bool:
        self._check(segment)
        return self._clean[segment]

    def utilization(self, segment: int) -> float:
        self._check(segment)
        return self.live_bytes[segment] / self.segment_bytes

    def clean_segments(self, exclude: Optional[int] = None) -> List[int]:
        return [
            s
            for s in range(self.num_segments)
            if self._clean[s] and s != exclude
        ]

    def dirty_segments(self, exclude: Optional[int] = None) -> List[int]:
        return [
            s
            for s in range(self.num_segments)
            if not self._clean[s] and s != exclude
        ]

    def reclaimable(self, exclude: Optional[int] = None) -> List[int]:
        """Dirty segments with zero live bytes: free to reuse immediately."""
        return [
            s
            for s in self.dirty_segments(exclude)
            if self.live_bytes[s] == 0
        ]

    # -- serialisation (checkpoints) --------------------------------------

    def pack(self) -> bytes:
        pieces = [
            self._ENTRY.pack(self.live_bytes[s], self.last_write[s])
            for s in range(self.num_segments)
        ]
        flags = bytes(
            1 if self._clean[s] else 0 for s in range(self.num_segments)
        )
        return b"".join(pieces) + flags

    def load(self, raw: bytes) -> None:
        offset = 0
        for s in range(self.num_segments):
            live, ts = self._ENTRY.unpack(
                raw[offset : offset + self._ENTRY.size]
            )
            self.live_bytes[s] = live
            self.last_write[s] = ts
            offset += self._ENTRY.size
        for s in range(self.num_segments):
            self._clean[s] = raw[offset + s] == 1

    def packed_size(self) -> int:
        return self._ENTRY.size * self.num_segments + self.num_segments
