"""Figure 9: latency breakdown (SCSI / transfer / locate / other) for
update-in-place vs virtual logging across the three platforms."""

from repro.harness import experiments
from repro.harness.report import format_table
from repro.sim.stats import COMPONENTS

from .conftest import full_scale, run_once


def test_figure9(benchmark):
    updates, warmup = (400, 150) if full_scale() else (150, 50)

    result = run_once(
        benchmark,
        lambda: experiments.figure9(
            utilization=0.8, updates=updates, warmup=warmup
        ),
    )

    print()
    rows = []
    for key, entry in result.items():
        rows.append(
            [
                key,
                *(f"{entry[c] * 100:.0f}%" for c in COMPONENTS),
                entry["total_ms"],
            ]
        )
    print(
        format_table(
            ["platform/system", *COMPONENTS, "total (ms)"],
            rows,
            title="Figure 9: latency breakdown",
        )
    )

    # Update-in-place becomes increasingly dominated by mechanical delay.
    assert result["st19101+sparc10/regular"]["locate"] > 0.5
    assert result["st19101+ultra170/regular"]["locate"] > 0.6
    # Virtual logging slashes 'locate'...
    for platform in ("hp97560+sparc10", "st19101+sparc10",
                     "st19101+ultra170"):
        assert (
            result[f"{platform}/vld"]["locate"]
            < result[f"{platform}/regular"]["locate"]
        )
    # ... and stays balanced between processor and disk on the modern
    # platform: no component above 3/4.
    entry = result["st19101+ultra170/vld"]
    assert all(entry[c] < 0.75 for c in COMPONENTS)
    # On the old disk, SCSI overhead is a visible share of VLD latency.
    assert result["hp97560+sparc10/vld"]["scsi"] > 0.15
