"""The interposer stack: delegation, tracing, metrics, fault injection,
and the build_device_stack factory."""

import io
import json

import pytest

from repro.blockdev.interpose import (
    DeviceCrashed,
    DiskFaultInjector,
    FaultDevice,
    FaultPlan,
    InjectedReadError,
    InterposedDevice,
    InterposeOptions,
    MetricsDevice,
    TracingDevice,
    build_device_stack,
    core_device,
    find_layer,
    layers,
    wrap_device,
)
from repro.blockdev.regular import RegularDisk
from repro.disk.disk import Disk
from repro.disk.specs import ST19101
from repro.sim.stats import COMPONENTS
from repro.vlog.vld import VirtualLogDisk


@pytest.fixture
def disk():
    return Disk(ST19101, num_cylinders=2)


@pytest.fixture
def device(disk):
    return RegularDisk(disk)


PAYLOAD = b"\xAB" * 4096


class TestInterposedDevice:
    def test_pure_passthrough_roundtrip(self, device):
        wrapped = InterposedDevice(device)
        wrapped.write_block(5, PAYLOAD)
        data, _ = wrapped.read_block(5)
        assert data == PAYLOAD

    def test_geometry_properties_delegate(self, device):
        wrapped = InterposedDevice(device)
        assert wrapped.block_size == device.block_size
        assert wrapped.num_blocks == device.num_blocks

    def test_unknown_attributes_fall_through(self, device):
        wrapped = InterposedDevice(InterposedDevice(device))
        assert wrapped.disk is device.disk
        assert wrapped.sectors_per_block == device.sectors_per_block

    def test_missing_attribute_raises(self, device):
        with pytest.raises(AttributeError):
            InterposedDevice(device).definitely_not_an_attribute

    def test_layers_outermost_first(self, device):
        stack = TracingDevice(MetricsDevice(device))
        kinds = [type(layer) for layer in layers(stack)]
        assert kinds == [TracingDevice, MetricsDevice, RegularDisk]

    def test_core_device_unwraps_fully(self, device):
        stack = TracingDevice(MetricsDevice(device))
        assert core_device(stack) is device
        assert core_device(device) is device

    def test_find_layer(self, device):
        stack = TracingDevice(MetricsDevice(device))
        assert isinstance(find_layer(stack, MetricsDevice), MetricsDevice)
        assert find_layer(stack, FaultDevice) is None

    def test_vld_surface_reachable_through_wrappers(self, disk):
        stack = TracingDevice(MetricsDevice(VirtualLogDisk(disk)))
        stack.write_block(3, PAYLOAD)
        stack.vlog.check_invariants()  # reaches the VLD through two layers
        assert stack.imap is core_device(stack).imap


class TestTracingDevice:
    def test_records_one_event_per_operation(self, device):
        traced = TracingDevice(device)
        traced.write_block(1, PAYLOAD)
        traced.write_blocks(2, 2, PAYLOAD * 2)
        traced.read_block(1)
        assert [e.op for e in traced.events] == ["write", "write", "read"]
        assert [e.count for e in traced.events] == [1, 2, 1]
        assert [e.seq for e in traced.events] == [0, 1, 2]
        assert traced.total_events == 3

    def test_event_carries_timestamp_and_breakdown(self, device):
        traced = TracingDevice(device)
        clock = device.disk.clock
        before = clock.now
        breakdown = traced.write_block(9, PAYLOAD)
        event = traced.events[-1]
        assert event.start == before
        assert event.breakdown == breakdown
        assert event.breakdown is not breakdown  # a snapshot, not a ref
        assert event.elapsed == breakdown.total

    def test_ring_buffer_evicts_oldest(self, device):
        traced = TracingDevice(device, capacity=4)
        for lba in range(10):
            traced.write_block(lba, PAYLOAD)
        assert len(traced.events) == 4
        assert [e.lba for e in traced.events] == [6, 7, 8, 9]
        assert traced.total_events == 10

    def test_jsonl_sink_mirrors_events(self, device):
        sink = io.StringIO()
        traced = TracingDevice(device, sink=sink)
        traced.write_block(4, PAYLOAD)
        traced.read_block(4)
        records = [json.loads(line) for line in
                   sink.getvalue().splitlines()]
        assert [r["op"] for r in records] == ["write", "read"]
        assert records[0]["lba"] == 4
        assert set(records[0]["breakdown"]) == set(COMPONENTS)

    def test_path_sink_opened_lazily_and_closed(self, device, tmp_path):
        path = tmp_path / "trace.jsonl"
        traced = TracingDevice(device, sink=str(path))
        assert not path.exists()
        traced.write_block(0, PAYLOAD)
        traced.close()
        assert len(path.read_text().splitlines()) == 1

    def test_disabled_records_nothing(self, device):
        traced = TracingDevice(device)
        traced.enabled = False
        traced.write_block(1, PAYLOAD)
        assert traced.total_events == 0

    def test_rejects_nonpositive_capacity(self, device):
        with pytest.raises(ValueError):
            TracingDevice(device, capacity=0)


class TestMetricsDevice:
    def test_counts_ops_and_blocks(self, device):
        metered = MetricsDevice(device)
        metered.write_blocks(0, 3, PAYLOAD * 3)
        metered.write_block(8, PAYLOAD)
        metered.read_block(8)
        assert metered.ops == {"write": 2, "read": 1}
        assert metered.blocks == {"write": 4, "read": 1}
        assert metered.total_ops == 3

    def test_component_totals_match_breakdowns(self, device):
        metered = MetricsDevice(device)
        expected = {name: 0.0 for name in COMPONENTS}
        for lba in (3, 200, 41):
            breakdown = metered.write_block(lba, PAYLOAD)
            for name in COMPONENTS:
                expected[name] += getattr(breakdown, name)
        totals = metered.component_totals(include_host=False)
        for name in COMPONENTS:
            assert totals[name] == pytest.approx(expected[name])

    def test_host_time_inferred_from_clock_gaps(self, device):
        metered = MetricsDevice(device)
        clock = device.disk.clock
        metered.write_block(0, PAYLOAD)
        clock.advance(0.25)  # host-side work between device ops
        metered.write_block(1, PAYLOAD)
        assert metered.host_seconds == pytest.approx(0.25)
        assert metered.component_totals()["other"] == pytest.approx(
            0.25, abs=1e-9
        )

    def test_idle_time_not_misread_as_host_time(self, device):
        metered = MetricsDevice(device)
        metered.write_block(0, PAYLOAD)
        metered.idle(5.0)
        metered.write_block(1, PAYLOAD)
        assert metered.idle_seconds == pytest.approx(5.0)
        assert metered.host_seconds == pytest.approx(0.0)

    def test_fractions_sum_to_one(self, device):
        metered = MetricsDevice(device)
        for lba in range(5):
            metered.write_block(lba * 30, PAYLOAD)
        fractions = metered.component_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_fractions_empty_when_nothing_recorded(self, device):
        metered = MetricsDevice(device)
        assert metered.component_fractions() == {
            name: 0.0 for name in COMPONENTS
        }

    def test_reset_clears_everything(self, device):
        metered = MetricsDevice(device)
        metered.write_block(0, PAYLOAD)
        device.disk.clock.advance(1.0)
        metered.reset()
        assert metered.total_ops == 0
        assert metered.host_seconds == 0.0
        assert metered.device_seconds() == 0.0
        # The gap origin moved to "now": pre-reset time is not counted.
        metered.write_block(1, PAYLOAD)
        assert metered.host_seconds == pytest.approx(0.0)

    def test_summary_mentions_ops_and_components(self, device):
        metered = MetricsDevice(device)
        metered.write_block(0, PAYLOAD)
        text = metered.summary()
        assert "write=1(1blk)" in text
        assert "locate=" in text


class _StubScheduler:
    """Wraps the device's real scheduler but reports a scripted
    ``outstanding`` count, so the tests control the probe directly."""

    def __init__(self, real) -> None:
        self._real = real
        self.outstanding = 0

    def __getattr__(self, name):
        return getattr(self._real, name)


class TestQueueAwareMetrics:
    """Clock-gap attribution once the wrapped device runs a queue.

    The seed read *every* inter-op gap as host compute; under a queue the
    gap between two completions is the device draining its backlog, and
    counting it as host time double-counts it (it is already inside the
    queued ops' service times).
    """

    def test_depth_one_gaps_still_host_time(self, device):
        device.scheduler = _StubScheduler(device.scheduler)
        metered = MetricsDevice(device)
        clock = device.disk.clock
        metered.write_block(0, PAYLOAD)
        clock.advance(0.25)
        metered.write_block(1, PAYLOAD)
        assert metered.host_seconds == pytest.approx(0.25)
        assert metered.overlapped_seconds == 0.0

    def test_no_host_time_while_requests_outstanding(self, device):
        device.scheduler = _StubScheduler(device.scheduler)
        metered = MetricsDevice(device)
        clock = device.disk.clock
        device.scheduler.outstanding = 3
        metered.write_block(0, PAYLOAD)
        clock.advance(0.25)  # the queue draining, not host compute
        metered.write_block(1, PAYLOAD)
        assert metered.host_seconds == pytest.approx(0.0)
        assert metered.overlapped_seconds == pytest.approx(0.25)
        # Back at depth 0 the old inference applies again.
        device.scheduler.outstanding = 0
        metered.write_block(2, PAYLOAD)
        clock.advance(0.1)
        metered.write_block(3, PAYLOAD)
        assert metered.host_seconds == pytest.approx(0.1)
        assert metered.overlapped_seconds == pytest.approx(0.25)

    def test_queue_depth_sampled_per_op(self, device):
        device.scheduler = _StubScheduler(device.scheduler)
        metered = MetricsDevice(device)
        device.scheduler.outstanding = 2
        metered.write_block(0, PAYLOAD)
        device.scheduler.outstanding = 4
        metered.write_block(1, PAYLOAD)
        device.scheduler.outstanding = 0
        metered.write_block(2, PAYLOAD)
        stats = metered.queue_stats()
        assert metered.queue_depth_samples == {2: 1, 4: 1, 0: 1}
        assert stats["max_depth"] == 4.0
        assert stats["mean_depth"] == pytest.approx(2.0)
        assert "queue[max=4" in metered.summary()

    def test_unscheduled_devices_never_overlap(self, device):
        metered = MetricsDevice(device)
        clock = device.disk.clock
        metered.write_block(0, PAYLOAD)
        clock.advance(0.5)
        metered.write_block(1, PAYLOAD)
        assert metered.overlapped_seconds == 0.0
        assert metered.host_seconds == pytest.approx(0.5)
        assert metered.queue_depth_samples == {0: 2}

    def test_service_percentiles_from_op_latencies(self, device):
        metered = MetricsDevice(device)
        for lba in range(8):
            metered.write_block(lba * 16, PAYLOAD)
        pct = metered.service_percentiles("write")
        assert pct["p50"] > 0.0
        assert pct["p50"] <= pct["p95"] <= pct["p99"]
        assert metered.service_percentiles() == pct
        # No reads recorded: every quantile is NaN ("no data"), never a
        # lying 0.0 that reads as "instantaneous".
        import math

        empty = metered.service_percentiles("read")
        assert set(empty) == {"p50", "p95", "p99", "p999"}
        assert all(math.isnan(v) for v in empty.values())

    def test_real_scheduler_depth_four_reports_overlap(self, disk):
        device = RegularDisk(disk, queue_depth=4, sched="satf")
        metered = MetricsDevice(device)
        for lba in range(10):
            metered.write_block(lba * 16, PAYLOAD)
        # Steady state keeps depth-1 requests pending after each submit.
        assert max(metered.queue_depth_samples) == 3
        assert metered.queue_stats()["max_depth"] == 3.0
        # Inter-op gaps while the queue is busy count as overlap, not
        # host compute.
        disk.clock.advance(0.05)
        metered.write_block(200, PAYLOAD)
        assert metered.overlapped_seconds == pytest.approx(0.05)
        assert metered.host_seconds == 0.0
        metered.idle(0.0)  # drains: the queue empties
        disk.clock.advance(0.01)
        metered.write_block(201, PAYLOAD)
        assert metered.host_seconds == pytest.approx(0.01)

    def test_real_scheduler_depth_one_never_overlaps(self, disk):
        device = RegularDisk(disk)  # depth 1, FIFO: the baseline
        metered = MetricsDevice(device)
        metered.write_block(0, PAYLOAD)
        disk.clock.advance(0.02)
        metered.write_block(1, PAYLOAD)
        assert metered.overlapped_seconds == 0.0
        assert metered.host_seconds == pytest.approx(0.02)
        assert set(metered.queue_depth_samples) == {0}


class TestFaultPlan:
    def test_parse_full_spec(self):
        plan = FaultPlan.parse(
            "crash_after=40,torn=0.05,drop=0.02,read_err=0.01,seed=7"
        )
        assert plan.crash_after_ops == 40
        assert plan.torn_write_rate == 0.05
        assert plan.dropped_write_rate == 0.02
        assert plan.read_error_rate == 0.01
        assert plan.seed == 7

    def test_parse_rejects_unknown_key(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("explode=1")

    def test_rejects_out_of_range_rate(self):
        with pytest.raises(ValueError):
            FaultPlan(torn_write_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(crash_after_ops=0)


class TestFaultDevice:
    def test_crash_after_n_ops(self, device):
        faulty = FaultDevice(device, FaultPlan(crash_after_ops=3))
        faulty.write_block(0, PAYLOAD)
        faulty.read_block(0)
        with pytest.raises(DeviceCrashed):
            faulty.write_block(1, PAYLOAD)
        # The device stays dead.
        with pytest.raises(DeviceCrashed):
            faulty.read_block(0)
        assert faulty.crashed

    def test_crashed_op_never_reaches_inner_device(self, device):
        device.write_block(2, PAYLOAD)
        faulty = FaultDevice(device, FaultPlan(crash_after_ops=1))
        with pytest.raises(DeviceCrashed):
            faulty.write_block(2, b"\xCD" * 4096)
        assert device.read_block(2)[0] == PAYLOAD

    def test_read_errors_are_deterministic(self, disk):
        outcomes = []
        for _ in range(2):
            dev = RegularDisk(Disk(ST19101, num_cylinders=2))
            faulty = FaultDevice(
                dev, FaultPlan(seed=11, read_error_rate=0.3)
            )
            run = []
            for lba in range(30):
                try:
                    faulty.read_block(lba)
                    run.append(True)
                except InjectedReadError:
                    run.append(False)
            outcomes.append(run)
        assert outcomes[0] == outcomes[1]
        assert False in outcomes[0] and True in outcomes[0]

    def test_dropped_write_leaves_old_data(self, device):
        device.write_block(6, PAYLOAD)
        faulty = FaultDevice(device, FaultPlan(dropped_write_rate=1.0))
        breakdown = faulty.write_block(6, b"\x11" * 4096)
        assert breakdown.total == 0.0
        assert faulty.writes_dropped == 1
        assert device.read_block(6)[0] == PAYLOAD

    def test_torn_write_keeps_only_a_prefix(self, device):
        old = bytes([7]) * (4 * 4096)
        new = bytes([9]) * (4 * 4096)
        device.write_blocks(20, 4, old)
        faulty = FaultDevice(
            device, FaultPlan(seed=3, torn_write_rate=1.0)
        )
        faulty.write_blocks(20, 4, new)
        assert faulty.writes_torn == 1
        data, _ = device.read_blocks(20, 4)
        blocks = [data[i * 4096: (i + 1) * 4096] for i in range(4)]
        survived = sum(b == new[:4096] for b in blocks)
        assert survived < 4  # never the whole write
        # The survivors form a prefix: no new-data block after an old one.
        flags = [b == new[:4096] for b in blocks]
        assert flags == sorted(flags, reverse=True)

    def test_single_block_torn_write_is_dropped(self, device):
        device.write_block(1, PAYLOAD)
        faulty = FaultDevice(device, FaultPlan(torn_write_rate=1.0))
        faulty.write_block(1, b"\x55" * 4096)
        assert device.read_block(1)[0] == PAYLOAD


class TestDiskFaultInjector:
    def test_crashes_on_nth_physical_write(self, disk):
        device = RegularDisk(disk)
        injector = DiskFaultInjector(crash_after_writes=2).install(disk)
        device.write_block(0, PAYLOAD)
        with pytest.raises(DeviceCrashed):
            device.write_block(1, PAYLOAD)
        injector.uninstall(disk)
        assert disk.fault_injector is None
        # After uninstall the disk works again.
        device.write_block(1, PAYLOAD)

    def test_fatal_write_is_torn_at_sector_granularity(self, disk):
        device = RegularDisk(disk)
        device.write_block(5, bytes([1]) * 4096)
        DiskFaultInjector(crash_after_writes=1, torn=True).install(disk)
        with pytest.raises(DeviceCrashed):
            device.write_block(5, bytes([2]) * 4096)
        disk.fault_injector = None
        sector = 5 * device.sectors_per_block
        assert disk.peek(sector, 4) == bytes([2]) * (4 * 512)  # first half
        assert disk.peek(sector + 4, 4) == bytes([1]) * (4 * 512)

    def test_kills_vld_inside_internal_sequence(self, disk):
        vld = VirtualLogDisk(disk)
        vld.write_block(0, PAYLOAD)
        clean_writes = disk.writes
        injector = DiskFaultInjector(crash_after_writes=1).install(disk)
        with pytest.raises(DeviceCrashed):
            vld.write_block(1, PAYLOAD)
        injector.uninstall(disk)
        # The VLD issues several physical writes per logical write; the
        # injector fired inside that sequence.
        assert disk.writes == clean_writes


class TestWrapDeviceAndFactory:
    def test_no_options_returns_bare_device(self, disk):
        device = build_device_stack(disk, "regular")
        assert isinstance(device, RegularDisk)
        assert wrap_device(device, None) is device
        assert wrap_device(device, InterposeOptions()) is device

    def test_layer_order_fault_innermost_trace_outermost(self, disk):
        device = build_device_stack(
            disk, "regular",
            options=InterposeOptions(
                trace=True, metrics=True, faults=FaultPlan(seed=1)
            ),
        )
        kinds = [type(layer) for layer in layers(device)]
        assert kinds == [
            TracingDevice, MetricsDevice, FaultDevice, RegularDisk
        ]

    def test_builds_vld_core(self, disk):
        device = build_device_stack(disk, "vld", metrics=True)
        assert isinstance(core_device(device), VirtualLogDisk)
        device.write_block(0, PAYLOAD)
        assert find_layer(device, MetricsDevice).total_ops == 1

    def test_custom_device_factory(self, disk):
        calls = {}

        def factory(d, block_size):
            calls["block_size"] = block_size
            return RegularDisk(d, block_size=block_size)

        device = build_device_stack(
            disk, block_size=8192, device_factory=factory
        )
        assert calls["block_size"] == 8192
        assert device.block_size == 8192

    def test_unknown_device_type_rejected(self, disk):
        with pytest.raises(ValueError):
            build_device_stack(disk, "mystery")

    def test_wrapped_stack_is_transparent(self, disk):
        bare_disk = Disk(ST19101, num_cylinders=2)
        bare = RegularDisk(bare_disk)
        stacked = build_device_stack(disk, "regular", trace=True,
                                     metrics=True)
        for lba in (0, 17, 300):
            b1 = bare.write_block(lba, PAYLOAD)
            b2 = stacked.write_block(lba, PAYLOAD)
            assert b1 == b2
            assert bare.read_block(lba)[0] == stacked.read_block(lba)[0]
        assert bare_disk.clock.now == disk.clock.now


class TestDeviceFaultContext:
    def test_structured_fields_and_context(self):
        fault = InjectedReadError(
            "boom", op="read", lba=7, sector=56, count=2, attempt=3
        )
        assert fault.op == "read"
        assert fault.context() == {
            "op": "read", "lba": 7, "sector": 56, "count": 2, "attempt": 3
        }

    def test_context_drops_unset_fields(self):
        fault = DeviceCrashed("gone", op="write", count=4)
        assert fault.context() == {"op": "write", "count": 4}

    def test_injectors_fill_fields(self, disk):
        DiskFaultInjector(bad_sectors={80}).install(disk)
        with pytest.raises(InjectedReadError) as excinfo:
            disk.read(80, 1)
        assert excinfo.value.sector == 80
        assert excinfo.value.op == "read"


class TestTracingFaultEvents:
    def test_faulted_op_still_traced(self, device):
        traced = TracingDevice(
            FaultDevice(device, FaultPlan(read_error_rate=1.0))
        )
        with pytest.raises(InjectedReadError):
            traced.read_block(3)
        assert len(traced.events) == 1
        event = traced.events[0]
        assert event.fault == "InjectedReadError"
        assert event.fault_context["lba"] == 3
        assert event.elapsed == 0.0

    def test_fault_event_serializes_to_jsonl(self, device):
        sink = io.StringIO()
        traced = TracingDevice(
            FaultDevice(device, FaultPlan(read_error_rate=1.0)), sink=sink
        )
        with pytest.raises(InjectedReadError):
            traced.read_block(9)
        record = json.loads(sink.getvalue())
        assert record["fault"] == "InjectedReadError"
        assert record["fault_context"]["op"] == "read"


class TestMetricsFaultedBucket:
    def test_faults_land_in_their_own_bucket(self, device):
        metrics = MetricsDevice(
            FaultDevice(device, FaultPlan(read_error_rate=1.0))
        )
        metrics.write_block(1, PAYLOAD)
        with pytest.raises(InjectedReadError):
            metrics.read_block(1)
        assert metrics.faulted == {"read": 1}
        assert metrics.ops == {"write": 1}  # completed ops unpolluted
        assert "read" not in metrics.op_latency

    def test_faulted_device_time_not_misread_as_host_time(self, disk):
        """A faulted operation that consumed simulated time (VLD read
        retries with backoff before escalating) must charge that time to
        the faulted bucket, not leak it into the next op's host gap."""
        from repro.vlog.resilience import MediaError

        vld = VirtualLogDisk(disk)
        vld.write_block(0, PAYLOAD)
        sector = vld.imap.get(0) * vld.sectors_per_block
        metrics = MetricsDevice(vld)
        DiskFaultInjector(bad_sectors={sector}).install(disk)
        with pytest.raises(MediaError):
            metrics.read_block(0)
        assert metrics.faulted == {"read": 1}
        assert metrics.faulted_seconds > 0.0
        host_before = metrics.host_seconds
        metrics.write_block(1, PAYLOAD)
        # Back-to-back ops: no host gap should have been inferred.
        assert metrics.host_seconds == pytest.approx(host_before)


class TestSectorGranularInjection:
    def test_bad_sectors_fail_every_touching_read(self, disk):
        DiskFaultInjector(bad_sectors={100}).install(disk)
        for _ in range(3):
            with pytest.raises(InjectedReadError):
                disk.read(96, 8)
        data, _ = disk.read(104, 8)  # a run that avoids the defect
        assert len(data) == 8 * disk.sector_bytes

    def test_flaky_sectors_reroll_per_attempt(self, disk):
        injector = DiskFaultInjector(
            flaky_sectors={100: 1.0}, seed=0
        ).install(disk)
        with pytest.raises(InjectedReadError):
            disk.read(100, 1)
        injector.flaky_sectors[100] = 0.0  # transient: next attempt clean
        data, _ = disk.read(100, 1)
        assert len(data) == disk.sector_bytes
        assert injector.read_errors_raised == 1

    def test_writes_never_fault_on_degraded_sectors(self, disk):
        DiskFaultInjector(
            bad_sectors={100}, flaky_sectors={101: 1.0}
        ).install(disk)
        disk.write(100, 2, b"\x77" * 2 * disk.sector_bytes)  # no raise
