"""The virtual log file system (Section 3.3, Figure 4).

Structure shared with LFS (inodes, directories, the file cache, the flush
discipline) is inherited; the storage engine differs:

* every staged block is **eagerly written immediately** to a free 4 KB
  block near the disk head (no segments, no partial-segment threshold);
* the inode map is chunked into 512-byte records threaded through a
  :class:`~repro.vlog.virtual_log.VirtualLog` -- the *only* log content,
  exactly as Figure 4 draws it;
* superseded blocks return directly to a free-space map: **no cleaner**
  ("the free space compactor is only an optimization for VLFS, the
  cleaner is a necessity for LFS");
* recovery bootstraps from the firmware power-down record (scan fallback)
  and rebuilds the inode map from the virtual log, then walks the inodes
  to reconstruct space accounting.

The host/drive split: VLFS runs on the drive's processor, so each file
system operation is charged one drive command overhead plus host CPU time,
while internal block I/O pays mechanics only.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.blockdev.regular import RegularDisk

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.blockdev.interpose import InterposeOptions
from repro.disk.disk import Disk
from repro.disk.freemap import FreeSpaceMap
from repro.fs.api import NoSpace
from repro.fs.inode import FileType, Inode
from repro.hosts.specs import HostSpec
from repro.lfs.cleaner import Cleaner
from repro.lfs.inode_map import InodeMap, SegmentUsage
from repro.lfs.layout import LFSLayout
from repro.lfs.lfs import LFS, ROOT_INUM
from repro.lfs.nvram import FileCache
from repro.lfs.segment import BlockKind
from repro.sim.stats import Breakdown
from repro.vlog.allocator import AllocationPolicy, DiskFullError, EagerAllocator
from repro.vlog.entries import entries_per_chunk
from repro.vlog.recovery import PowerDownStore, RecoveryOutcome, scan_for_tail
from repro.vlog.virtual_log import VirtualLog


class _InternalDevice(RegularDisk):
    """Identity block device used by the drive's own processor: internal
    transfers pay mechanics but no per-command SCSI overhead."""

    def read_blocks(self, lba: int, count: int):
        self.check_lba(lba, count)
        return self.disk.read(
            self._sector_of(lba), count * self.sectors_per_block,
            charge_scsi=False,
        )

    def write_blocks(self, lba, count, data=None):
        self.check_lba(lba, count)
        data = self.check_data(data, count)
        return self.disk.write(
            self._sector_of(lba), count * self.sectors_per_block, data,
            charge_scsi=False,
        )

    def write_partial(self, lba: int, offset: int, data: bytes):
        self.check_lba(lba, 1)
        sector_bytes = self.disk.sector_bytes
        start = self._sector_of(lba) + offset // sector_bytes
        return self.disk.write(
            start, len(data) // sector_bytes, data, charge_scsi=False
        )


class _EagerLogWriter:
    """Drop-in for :class:`SegmentWriter`: stage == write, immediately,
    at an eagerly chosen block near the head."""

    def __init__(self, device: _InternalDevice, allocator: EagerAllocator):
        self.device = device
        self.allocator = allocator
        self.current_segment = None  # interface compatibility
        self.flush_seqno = 0
        self.partial_flushes = 0
        self.segments_written = 0
        self.blocks_written = 0

    def stage(
        self, kind: int, inum: int, fblk: int, data: bytes
    ) -> Tuple[int, Breakdown]:
        try:
            address = self.allocator.allocate()
        except DiskFullError as exc:
            raise NoSpace(str(exc)) from exc
        breakdown = self.device.write_block(address, data)
        self.blocks_written += 1
        return address, breakdown

    def staged_data(self, address: int) -> Optional[bytes]:
        return None  # nothing is ever deferred

    def sync(self) -> Breakdown:
        self.flush_seqno += 1
        return Breakdown()  # every block already reached the platter

    def finish_segment(self) -> Breakdown:
        return Breakdown()


class VLFS(LFS):
    """LFS semantics over eager writing and a virtual log (Section 3.3)."""

    POWER_DOWN_BLOCK = 0

    def __init__(
        self,
        disk: Disk,
        host: HostSpec,
        cache_bytes: int = int(6.1 * 2**20),
        nvram: bool = False,
        map_record_bytes: int = 512,
        fill_threshold: float = 0.75,
        host_factor: float = 1.0,
        interpose: Optional["InterposeOptions"] = None,
    ) -> None:
        # NOTE: deliberately does not call LFS.__init__ -- the segment
        # machinery it builds is replaced wholesale.  Every attribute the
        # inherited methods use is established here.
        self.disk = disk
        self.device = _InternalDevice(disk)
        if interpose is not None:
            # VLFS runs *on the drive*, so the interposers wrap its
            # internal device: they observe the drive-internal block
            # traffic rather than host-issued commands.
            from repro.blockdev.interpose import wrap_device

            self.device = wrap_device(self.device, interpose)
        self.host = host
        self.host_factor = host_factor
        self.clock = disk.clock
        self.block_size = self.device.block_size
        self.map_record_bytes = map_record_bytes
        self.layout = LFSLayout.design(
            self.device.num_blocks, self.block_size
        )
        sb = self.layout.sb
        self.imap = InodeMap(sb.max_inodes)
        self._chunk_capacity = entries_per_chunk(map_record_bytes)
        # Segment usage exists only for interface compatibility (the
        # inherited cleaner is never invoked); space lives in the freemap.
        self.segusage = SegmentUsage(
            sb.num_segments, self.layout.segment_bytes
        )
        self.cache = FileCache(cache_bytes, self.block_size, nvram=nvram)
        self.freemap = FreeSpaceMap(disk.geometry)
        self.allocator = EagerAllocator(
            disk,
            self.freemap,
            block_sectors=self.device.sectors_per_block,
            policy=AllocationPolicy.TRACK_FILL,
            fill_threshold=fill_threshold,
        )
        self.allocator.reserve_block(self.POWER_DOWN_BLOCK)
        self.map_allocator = EagerAllocator(
            disk,
            self.freemap,
            block_sectors=map_record_bytes // disk.sector_bytes,
            policy=AllocationPolicy.GREEDY_CYLINDER,
        )
        self.vlog = VirtualLog(
            disk,
            self.map_allocator,
            chunk_provider=self._imap_chunk_entries,
            block_size=map_record_bytes,
        )
        self.power_store = PowerDownStore(disk, self.POWER_DOWN_BLOCK)
        self.writer = _EagerLogWriter(self.device, self.allocator)
        self.checkpoints = None  # the virtual log replaces checkpoints
        self.cleaner = Cleaner(self)  # interface only; never scheduled
        self.reserve_segments = 0
        self._inodes: Dict[int, Inode] = {}
        self._dirty_inodes: Set[int] = set()
        self._inode_block_weights: Dict[int, Dict[int, int]] = {}
        self._cleaning = False
        self._flushing = False
        self._mkfs()

    # ==================================================================
    # Inode-map chunking (the virtual log's payload)
    # ==================================================================

    def _imap_chunk_bounds(self, chunk_id: int) -> Tuple[int, int]:
        lo = chunk_id * self._chunk_capacity
        hi = min(lo + self._chunk_capacity, self.imap.max_inodes)
        return lo, hi

    def _imap_chunk_entries(self, chunk_id: int) -> List[int]:
        lo, hi = self._imap_chunk_bounds(chunk_id)
        return self.imap.entries_slice(lo, hi)

    def _chunk_of_inum(self, inum: int) -> int:
        return inum // self._chunk_capacity

    def _append_imap_chunks(
        self, inums, breakdown: Breakdown
    ) -> None:
        for chunk_id in sorted({self._chunk_of_inum(i) for i in inums}):
            breakdown.add(
                self.vlog.append(chunk_id, self._imap_chunk_entries(chunk_id))
            )

    # ==================================================================
    # Setup
    # ==================================================================

    def _mkfs(self) -> None:
        self._inodes[ROOT_INUM] = Inode(itype=FileType.DIRECTORY, nlink=2)
        self._dirty_inodes.add(ROOT_INUM)
        self._stage_dirty_inodes(Breakdown())

    # ==================================================================
    # Storage-engine overrides
    # ==================================================================

    def _start_op(self, blocks: int = 1) -> Breakdown:
        """Host CPU plus one drive command per file system operation."""
        host_cost = self.host.request_overhead(blocks) * self.host_factor
        self.clock.advance(host_cost)
        breakdown = Breakdown()
        breakdown.charge("other", host_cost)
        breakdown.charge("scsi", self.disk.spec.scsi_overhead)
        self.clock.advance(self.disk.spec.scsi_overhead)
        return breakdown

    def _note_live_block(self, address: int) -> None:
        pass  # the allocator marked the space at stage time

    def _note_dead_block(self, address: int) -> None:
        self.allocator.free_block(address)

    def _note_dead_inode(self, inum: int) -> None:
        location = self.imap.get(inum)
        if location is None:
            return
        address, slot = location
        weights = self._inode_block_weights.get(address)
        if weights is None:
            return
        weights.pop(slot, None)
        if not weights:
            del self._inode_block_weights[address]
            self.allocator.free_block(address)

    def _ensure_free_segments(self, target: int, breakdown: Breakdown) -> None:
        pass  # no segments: free space is managed by the freemap

    def _pick_free_segment(self) -> int:  # pragma: no cover - unused
        raise NoSpace("VLFS has no segments")

    def _stage_dirty_inodes(self, breakdown: Breakdown) -> None:
        staged = sorted(i for i in self._dirty_inodes if i in self._inodes)
        super()._stage_dirty_inodes(breakdown)
        # The commit point: affected inode-map chunks enter the virtual
        # log (Figure 4: the map is the log's only content).
        if staged:
            self._append_imap_chunks(staged, breakdown)

    def _free_inode_storage(self, inum, inode, breakdown) -> None:
        super()._free_inode_storage(inum, inode, breakdown)
        self._append_imap_chunks([inum], breakdown)

    # ==================================================================
    # Space and idle
    # ==================================================================

    @property
    def utilization(self) -> float:
        return self.freemap.utilization

    def free_segments(self) -> int:
        """Free space expressed in segment-equivalents (compatibility)."""
        free_bytes = self.freemap.free_sectors * self.disk.sector_bytes
        return free_bytes // self.layout.segment_bytes

    def checkpoint(self) -> Breakdown:
        """VLFS needs no checkpoint region: flushing suffices, because the
        virtual log *is* the recoverable inode map.  (The paper's optional
        contiguous-map checkpoint would only shorten log traversal.)"""
        breakdown = Breakdown()
        self._flush_all(breakdown)
        return breakdown

    def idle(self, seconds: float) -> Breakdown:
        """Idle time flushes buffered writes block-by-block, then compacts.

        Eager writing needs no cleaner; the compactor ("only an
        optimization for VLFS", Section 3.4) consolidates free space into
        empty tracks for the track-fill allocator.
        """
        return self.idle_manager.grant(seconds)

    def _register_idle_workers(self, mgr) -> None:
        mgr.register("flush", self._idle_flush, gate=self._has_dirty)
        mgr.register("compact", self._idle_compact)

    def _idle_flush_batch(self) -> int:
        return 64

    def _idle_compact(self, remaining: float) -> None:
        self.compactor.run_for(remaining)

    @property
    def compactor(self) -> "VLFSCompactor":
        if getattr(self, "_compactor", None) is None:
            self._compactor = VLFSCompactor(self)
        return self._compactor

    # ==================================================================
    # Crash and recovery (virtual-log based)
    # ==================================================================

    def power_down(self, timed: bool = True) -> Breakdown:
        breakdown = Breakdown()
        self._flush_all(breakdown)
        if self.vlog.tail is not None:
            breakdown.add(
                self.power_store.write(
                    self.vlog.tail, self.vlog.next_seqno - 1, timed
                )
            )
        return breakdown

    def crash(self) -> None:
        self.cache.crash()
        if not self.cache.nvram:
            self._inodes.clear()
            self._dirty_inodes.clear()

    def mount(self) -> Breakdown:
        outcome = self.recover()
        return outcome.breakdown

    def recover(self, timed: bool = True) -> RecoveryOutcome:
        """Rebuild the inode map from the virtual log, then walk the
        inodes to reconstruct free-space accounting."""
        record, cost = self.power_store.read(timed)
        breakdown = Breakdown().add(cost)
        scanned = False
        blocks_scanned = 0
        if record is not None:
            tail = record[0]
        else:
            scanned = True
            tail, scan_cost, blocks_scanned = scan_for_tail(
                self.disk,
                self.map_record_bytes,
                skip_sectors=(self.POWER_DOWN_BLOCK + 1)
                * self.device.sectors_per_block,
                timed=timed,
            )
            breakdown.add(scan_cost)
        records_read = 0
        if tail is not None:
            chunks, traverse_cost, records_read = (
                self.vlog.recover_from_tail(tail, timed=timed)
            )
            breakdown.add(traverse_cost)
            for chunk_id, entries in chunks.items():
                lo, _hi = self._imap_chunk_bounds(chunk_id)
                self.imap.load_slice(lo, entries)
            breakdown.add(self.power_store.clear(timed))
        self._rebuild_space_state(breakdown, timed)
        return RecoveryOutcome(
            used_power_down_record=record is not None,
            scanned=scanned,
            records_read=records_read,
            blocks_scanned=blocks_scanned,
            breakdown=breakdown,
        )

    def _rebuild_space_state(
        self, breakdown: Breakdown, timed: bool
    ) -> None:
        """Mark used: the power-down home, live map records, inode blocks,
        and every block reachable from a live inode."""
        self.freemap.mark_free(0, self.disk.total_sectors)
        spb = self.device.sectors_per_block
        self.freemap.mark_used(self.POWER_DOWN_BLOCK * spb, spb)
        map_spb = self.vlog.sectors_per_block
        for record in self.vlog.live_blocks():
            self.freemap.mark_used(record * map_spb, map_spb)
        self._inode_block_weights.clear()
        inode_blocks: Dict[int, Dict[int, int]] = {}
        for inum in self.imap.live_inums():
            address, slot = self.imap.get(inum)
            inode_blocks.setdefault(address, {})[slot] = 1
        for address, slots in inode_blocks.items():
            self.freemap.mark_used(address * spb, spb)
            weights = LFS._block_weights(max(slots) + 1)
            self._inode_block_weights[address] = {
                slot: weights[slot] for slot in slots
            }
        for inum in list(self.imap.live_inums()):
            inode = self._load_inode(inum, breakdown)
            self._mark_inode_blocks_used(inum, inode, breakdown)

    def _mark_inode_blocks_used(
        self, inum: int, inode: Inode, breakdown: Breakdown
    ) -> None:
        spb = self.device.sectors_per_block
        nblocks = -(-inode.size // self.block_size)
        for fblk in range(nblocks):
            address = self._get_pointer(inode, inum, fblk, breakdown)
            if address:
                self.freemap.mark_used(address * spb, spb)
        for code in (BlockKind.SINGLE_INDIRECT, BlockKind.DOUBLE_INDIRECT):
            address = self._meta_address(inode, inum, code, breakdown)
            if address:
                self.freemap.mark_used(address * spb, spb)
        if inode.double_indirect:
            root = self._meta_block(
                inum, BlockKind.DOUBLE_INDIRECT, inode.double_indirect,
                breakdown,
            )
            for i in range(self._ppb):
                address = int.from_bytes(root[i * 4 : i * 4 + 4], "little")
                if address:
                    self.freemap.mark_used(address * spb, spb)


class VLFSCompactor:
    """Idle-time hole-plugging compactor for VLFS.

    Like the VLD's compactor it empties partially-filled tracks by moving
    live blocks into holes elsewhere, but ownership is resolved through
    the file system's own structures: data and indirect blocks move by
    pointer update, inode blocks by re-staging their inodes, and map
    records by relocation through the virtual log.
    """

    def __init__(self, fs: VLFS) -> None:
        self.fs = fs
        self.blocks_moved = 0
        self.tracks_compacted = 0

    # ------------------------------------------------------------------

    def run_for(self, seconds: float) -> float:
        if seconds < 0.0:
            raise ValueError("idle budget must be non-negative")
        fs = self.fs
        clock = fs.clock
        start = clock.now
        deadline = start + seconds
        while clock.now < deadline:
            owners = self._ownership()
            target = self._pick_target(owners)
            if target is None:
                break
            if not self._compact_track(target, owners, deadline):
                break
        return clock.now - start

    # ------------------------------------------------------------------

    def _ownership(self) -> Dict[int, Tuple]:
        """physical block -> ('data', inum, fblk) | ('meta', inum, code) |
        ('inodes', None, None).  Map records are asked of the vlog."""
        fs = self.fs
        breakdown = Breakdown()
        owners: Dict[int, Tuple] = {}
        inums = set(fs.imap.live_inums()) | set(fs._inodes)
        for inum in inums:
            inode = fs._live_inode_for(inum, breakdown)
            if inode is None:
                continue
            nblocks = -(-inode.size // fs.block_size)
            for fblk in range(nblocks):
                address = fs._get_pointer(inode, inum, fblk, breakdown)
                if address:
                    owners[address] = ("data", inum, fblk)
            for code in (
                BlockKind.SINGLE_INDIRECT, BlockKind.DOUBLE_INDIRECT
            ):
                address = fs._meta_address(inode, inum, code, breakdown)
                if address:
                    owners[address] = ("meta", inum, code)
            if inode.double_indirect:
                root = fs._meta_block(
                    inum, BlockKind.DOUBLE_INDIRECT, inode.double_indirect,
                    breakdown,
                )
                for i in range(fs._ppb):
                    address = int.from_bytes(
                        root[i * 4 : i * 4 + 4], "little"
                    )
                    if address:
                        owners[address] = ("meta", inum, BlockKind.level1(i))
            location = fs.imap.get(inum) if fs.imap.allocated(inum) else None
            if location is not None:
                owners[location[0]] = ("inodes", None, None)
        return owners

    def _pick_target(self, owners) -> Optional[Tuple[int, int]]:
        """The partially-filled track with the least live data (cheapest
        to empty), excluding the allocator's fill track."""
        fs = self.fs
        geometry = fs.disk.geometry
        per_track = geometry.sectors_per_track
        fill_track = fs.allocator._fill_track
        power_track = geometry.decompose(
            fs.POWER_DOWN_BLOCK * fs.device.sectors_per_block
        )[:2]
        best = None
        for cylinder in range(geometry.num_cylinders):
            for head in range(geometry.tracks_per_cylinder):
                if (cylinder, head) in (fill_track, power_track):
                    continue
                free = fs.freemap.track_free_count(cylinder, head)
                if 0 < free < per_track:
                    used = per_track - free
                    if best is None or used < best[0]:
                        best = (used, (cylinder, head))
        return None if best is None else best[1]

    def _compact_track(self, track, owners, deadline) -> bool:
        fs = self.fs
        geometry = fs.disk.geometry
        spb = fs.device.sectors_per_block
        map_spb = fs.vlog.sectors_per_block
        base = geometry.track_start(*track)
        end = base + geometry.sectors_per_track
        breakdown = Breakdown()
        progressed = False
        sector = base
        dirty_inodes_to_flush = False
        while sector < end:
            if fs.clock.now >= deadline:
                break
            if fs.freemap.is_free(sector):
                sector += 1
                continue
            block = sector // spb
            owner = owners.get(block) if sector % spb == 0 else None
            if owner is not None:
                if self._move_block(block, owner, track, breakdown):
                    progressed = True
                    dirty_inodes_to_flush = True
                    owners.pop(block, None)
                sector += spb
                continue
            record = sector // map_spb
            if (
                sector % map_spb == 0
                and fs.vlog.chunk_of_block(record) is not None
            ):
                fs.vlog.relocate(fs.vlog.chunk_of_block(record))
                progressed = True
                sector += map_spb
                continue
            sector += 1
        if dirty_inodes_to_flush:
            fs._stage_dirty_inodes(breakdown)
        if progressed:
            self.tracks_compacted += 1
        return progressed

    def _move_block(self, block, owner, source_track, breakdown) -> bool:
        fs = self.fs
        spb = fs.device.sectors_per_block
        kind, inum, key = owner
        if kind == "inodes":
            # Re-staging the resident inodes supersedes this inode block.
            moved = False
            for cand in list(fs.imap.live_inums()):
                location = fs.imap.get(cand)
                if location and location[0] == block:
                    fs._load_inode(cand, breakdown)
                    fs._mark_inode_dirty(cand)
                    moved = True
            return moved
        destination = self._find_hole(source_track)
        if destination is None:
            return False
        data, _cost = fs.disk.read(block * spb, spb, charge_scsi=False)
        fs.freemap.mark_used(destination * spb, spb)
        fs.disk.write(destination * spb, spb, data, charge_scsi=False)
        inode = fs._live_inode_for(inum, breakdown)
        if inode is None:
            fs.freemap.mark_free(destination * spb, spb)
            return False
        if kind == "data":
            old = fs._set_pointer(inode, inum, key, destination, breakdown)
        else:
            old = self._repoint_meta(inode, inum, key, destination, breakdown)
        if old:
            fs._note_dead_block(old)
        self.blocks_moved += 1
        return True

    def _repoint_meta(self, inode, inum, code, destination, breakdown):
        fs = self.fs
        if code == BlockKind.SINGLE_INDIRECT:
            old, inode.indirect = inode.indirect, destination
        elif code == BlockKind.DOUBLE_INDIRECT:
            old, inode.double_indirect = (
                inode.double_indirect, destination
            )
        else:
            index = -(code + 3)
            root = fs._meta_block(
                inum, BlockKind.DOUBLE_INDIRECT, inode.double_indirect,
                breakdown,
            )
            old = int.from_bytes(root[index * 4 : index * 4 + 4], "little")
            root[index * 4 : index * 4 + 4] = destination.to_bytes(
                4, "little"
            )
            fs._put_meta_dirty(
                inum, BlockKind.DOUBLE_INDIRECT, root, breakdown
            )
        fs._mark_inode_dirty(inum)
        return old

    def _find_hole(self, source_track) -> Optional[int]:
        fs = self.fs
        geometry = fs.disk.geometry
        spb = fs.device.sectors_per_block
        per_track = geometry.sectors_per_track
        disk = fs.disk
        best = None
        for cylinder in range(geometry.num_cylinders):
            for head in range(geometry.tracks_per_cylinder):
                if (cylinder, head) == source_track:
                    continue
                free = fs.freemap.track_free_count(cylinder, head)
                if free < spb or free == per_track:
                    continue
                found = fs.freemap.nearest_free_run(
                    cylinder, head, disk.slot_after(0.0), spb, align=spb
                )
                if found is None:
                    continue
                gap, linear = found
                if best is None or gap < best[0]:
                    best = (gap, linear // spb)
        return None if best is None else best[1]
