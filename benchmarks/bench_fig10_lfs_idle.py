"""Figure 10: LFS (with NVRAM) latency as a function of idle-interval
length, one curve per burst size."""

from repro.harness import experiments
from repro.harness.report import format_table

from .conftest import full_scale, run_once


def test_figure10(benchmark):
    if full_scale():
        burst_kbs = [128, 256, 504, 1008, 2016, 4032]
        idle_seconds = [0.0, 0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]
        bursts = 6
    else:
        burst_kbs = [128, 504, 2016]
        idle_seconds = [0.0, 0.25, 1.0, 4.0, 7.0]
        bursts = 4

    result = run_once(
        benchmark,
        lambda: experiments.figure10(
            burst_kbs=burst_kbs,
            idle_seconds=idle_seconds,
            utilization=0.8,
            bursts=bursts,
        ),
    )

    print()
    for burst, series in result.items():
        rows = [
            [f"{idle:.1f}s", latency]
            for idle, latency in zip(
                series["idle_seconds"], series["latency_ms"]
            )
        ]
        print(
            format_table(
                ["idle interval", "latency (ms/4KB)"],
                rows,
                title=f"Figure 10 (LFS + NVRAM): burst {burst}",
            )
        )
        print()

    # Idle time helps: with long intervals every burst is absorbed and
    # flushed/cleaned in the background.
    for burst, series in result.items():
        latencies = series["latency_ms"]
        assert latencies[-1] <= latencies[0] * 1.05
    # Small bursts reach memory speed with enough idle time (point D).
    smallest = result[f"{burst_kbs[0]}K"]["latency_ms"]
    assert smallest[-1] < 1.0
