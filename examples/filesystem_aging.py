#!/usr/bin/env python3
"""File system aging: mail-server-style churn on UFS, regular vs VLD.

A long-running workload of small file creates, appends, and deletes (the
shape of a mail spool or a package cache) ages the file system.  This
example ages a UFS on both device types, then measures the three costs the
paper's evaluation revolves around: small synchronous operations,
steady-state write latency, and the read-locality price of eager writing
-- including how much of that price the idle-time compactor buys back.

Run:  python examples/filesystem_aging.py
"""

import random

from repro.blockdev import build_device_stack
from repro.disk import Disk, ST19101
from repro.hosts import SPARCSTATION_10
from repro.sim.stats import LatencyRecorder
from repro.ufs import UFS

_MB = 1 << 20


def age(fs, rng: random.Random, rounds: int = 900) -> None:
    """Churn: create small files, append to some, delete others."""
    alive = []
    counter = 0
    for _ in range(rounds):
        action = rng.random()
        if action < 0.5 or len(alive) < 10:
            name = f"/mail{counter:06d}"
            counter += 1
            fs.create(name)
            fs.write(name, 0, bytes([counter % 251]) * rng.randrange(512, 8192))
            alive.append(name)
        elif action < 0.75:
            name = rng.choice(alive)
            size = fs.stat(name).size
            fs.write(name, size, b"appended line\n" * rng.randrange(1, 40))
        else:
            fs.unlink(alive.pop(rng.randrange(len(alive))))
    fs.sync()


def measure(fs, rng: random.Random, alive_hint: str):
    """Post-aging costs: sync creates, sync updates, sequential read."""
    sync_create = LatencyRecorder()
    for i in range(50):
        sync_create.record(fs.create(f"/probe{i:03d}"))
    update = LatencyRecorder()
    target = "/probe000"
    fs.write(target, 0, bytes(4096) * 128)  # 512 KB working file
    fs.sync()
    for _ in range(100):
        offset = rng.randrange(128) * 4096
        update.record(fs.write(target, offset, b"u" * 4096, sync=True))
    fs.drop_caches()
    clock = fs.clock
    start = clock.now
    data, _ = fs.read(target, 0, 128 * 4096)
    seq_bw = (len(data) / _MB) / (clock.now - start)
    return sync_create.mean(), update.mean(), seq_bw


def main() -> None:
    print("Aging a UFS with mail-spool churn (create/append/delete)\n")
    header = (
        f"  {'device':22} {'create (ms)':>12} {'update (ms)':>12} "
        f"{'seq read (MB/s)':>16}"
    )
    print(header)
    for label, device_type, idle in (
        ("regular disk", "regular", 0.0),
        ("VLD (no idle)", "vld", 0.0),
        ("VLD + 2s compaction", "vld", 2.0),
    ):
        rng = random.Random(7)
        device = build_device_stack(Disk(ST19101), device_type)
        fs = UFS(device, SPARCSTATION_10)
        age(fs, rng)
        if idle:
            fs.idle(idle)
        create_ms, update_ms, seq_bw = measure(fs, rng, label)
        print(
            f"  {label:22} {create_ms * 1e3:12.2f} {update_ms * 1e3:12.2f} "
            f"{seq_bw:16.2f}"
        )
    print(
        "\nEager writing keeps synchronous updates cheap even on an aged"
        "\ndisk, and idle-time compaction restores create latency by"
        "\nregenerating empty tracks.  Sequential reads pay a locality"
        "\nprice that compaction does *not* recover -- the paper's"
        "\ncompactor picks targets randomly and defers read-locality"
        "\nreorganization to future work (Sections 3.4, 4.2)."
    )


if __name__ == "__main__":
    main()
