"""Table 1 of the paper, verified against the spec objects."""

import pytest

from repro.disk.specs import DISKS, HP97560, ST19101, DiskSpec


class TestTable1:
    def test_hp_sectors_per_track(self):
        assert HP97560.sectors_per_track == 72

    def test_hp_tracks_per_cylinder(self):
        assert HP97560.tracks_per_cylinder == 19

    def test_hp_head_switch(self):
        assert HP97560.head_switch_time == pytest.approx(2.5e-3)

    def test_hp_minimum_seek(self):
        # Table 1: 3.6 ms.
        assert HP97560.min_seek_time == pytest.approx(3.64e-3, abs=0.1e-3)

    def test_hp_rpm(self):
        assert HP97560.rpm == pytest.approx(4002)

    def test_hp_scsi_overhead(self):
        assert HP97560.scsi_overhead == pytest.approx(2.3e-3)

    def test_seagate_sectors_per_track(self):
        assert ST19101.sectors_per_track == 256

    def test_seagate_tracks_per_cylinder(self):
        assert ST19101.tracks_per_cylinder == 16

    def test_seagate_head_switch(self):
        assert ST19101.head_switch_time == pytest.approx(0.5e-3)

    def test_seagate_minimum_seek(self):
        assert ST19101.min_seek_time == pytest.approx(0.5e-3, abs=0.05e-3)

    def test_seagate_rpm(self):
        assert ST19101.rpm == pytest.approx(10000)

    def test_seagate_scsi_overhead(self):
        assert ST19101.scsi_overhead == pytest.approx(0.1e-3)


class TestDerivedQuantities:
    def test_rotation_time_from_rpm(self):
        assert ST19101.rotation_time == pytest.approx(6e-3, rel=1e-3)
        assert HP97560.rotation_time == pytest.approx(60.0 / 4002)

    def test_sector_time(self):
        assert ST19101.sector_time == pytest.approx(
            ST19101.rotation_time / 256
        )

    def test_seek_curve_monotonic(self):
        for spec in (HP97560, ST19101):
            previous = 0.0
            for distance in range(1, spec.num_cylinders, 97):
                current = spec.seek_time(distance)
                assert current >= previous
                previous = current

    def test_zero_seek_is_free(self):
        assert HP97560.seek_time(0) == 0.0

    def test_negative_seek_rejected(self):
        with pytest.raises(ValueError):
            HP97560.seek_time(-1)

    def test_track_skew_covers_head_switch(self):
        for spec in (HP97560, ST19101):
            assert (
                spec.track_skew_sectors * spec.sector_time
                >= spec.head_switch_time
            )

    def test_cylinder_skew_covers_min_seek(self):
        for spec in (HP97560, ST19101):
            assert (
                spec.cylinder_skew_sectors * spec.sector_time
                >= spec.min_seek_time
            )

    def test_media_bandwidth_improves_on_newer_disk(self):
        # The paper's premise: disk bandwidth grows ~40 %/year.
        assert ST19101.media_bandwidth > 4 * HP97560.media_bandwidth

    def test_sim_cylinders_give_paper_scale(self):
        # ~24 MB slices (limited kernel memory, Section 4.1).
        hp_bytes = (
            HP97560.sim_cylinders
            * HP97560.tracks_per_cylinder
            * HP97560.track_bytes
        )
        sg_bytes = (
            ST19101.sim_cylinders
            * ST19101.tracks_per_cylinder
            * ST19101.track_bytes
        )
        assert 20 * 2**20 < hp_bytes < 28 * 2**20
        assert 20 * 2**20 < sg_bytes < 28 * 2**20

    def test_registry(self):
        assert DISKS["hp97560"] is HP97560
        assert DISKS["st19101"] is ST19101

    def test_projected_disk_continues_the_trends(self):
        """The FUTURE2004 extrapolation must actually extrapolate: faster
        in every dimension the paper's Section 1 trends name."""
        from repro.disk.specs import FUTURE2004

        assert FUTURE2004.media_bandwidth > 2 * ST19101.media_bandwidth
        assert FUTURE2004.rotation_time < ST19101.rotation_time
        assert FUTURE2004.min_seek_time < ST19101.min_seek_time
        assert FUTURE2004.head_switch_time < ST19101.head_switch_time
        assert FUTURE2004.scsi_overhead < ST19101.scsi_overhead
        assert FUTURE2004.sectors_per_track % 8 == 0  # 4 KB alignment

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            DiskSpec(
                name="bad",
                sectors_per_track=0,
                tracks_per_cylinder=1,
                num_cylinders=1,
                sim_cylinders=1,
                rpm=1000,
                head_switch_time=0.001,
                scsi_overhead=0.001,
                sector_bytes=512,
                seek_short_a=0.001,
                seek_short_b=0.001,
                seek_long_c=0.001,
                seek_long_e=0.001,
                seek_boundary=10,
            )
