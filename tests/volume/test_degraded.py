"""Degraded-mode operation: bounded unavailability, no hangs, and
hedged reads against a fail-slow shard."""

import pytest

from repro.blockdev.interpose import FaultPlan
from repro.harness.configs import build_sharded_volume
from repro.vlog.resilience import RetryPolicy
from repro.volume import ShardUnavailable


def payload(lba, size):
    return bytes([lba % 251]) * size


def fill(volume, n=24):
    for lba in range(n):
        volume.write_block(lba, payload(lba, volume.block_size))


class TestBoundedUnavailability:
    def test_down_shard_requests_fail_within_the_retry_budget(self):
        policy = RetryPolicy(
            max_attempts=3, initial_backoff=0.002, backoff_factor=2.0
        )
        volume, _, disks = build_sharded_volume(
            shards=3, num_cylinders=2, retry_policy=policy
        )
        fill(volume)
        volume.crash_shard(1)
        budget = policy.backoff(1) + policy.backoff(2)
        clock = disks[0].clock
        victim = next(
            lba for lba in range(24) if volume.shard_of(lba)[0] == 1
        )
        before = clock.now
        with pytest.raises(ShardUnavailable):
            volume.read_block(victim)
        # The request paid exactly the bounded budget -- deterministic
        # simulated time, not a hang, not a free instant failure.
        assert clock.now - before == pytest.approx(budget)
        assert volume.backoff_seconds[1] == pytest.approx(budget)
        assert volume.unavailable_errors[1] == 1

    def test_down_shard_is_never_called(self):
        volume, _, _ = build_sharded_volume(shards=3, num_cylinders=2)
        fill(volume)
        volume.crash_shard(0)
        calls_before = volume.shard_calls[0]
        victim = next(
            lba for lba in range(24) if volume.shard_of(lba)[0] == 0
        )
        for _ in range(3):
            with pytest.raises(ShardUnavailable):
                volume.write_block(victim, payload(9, volume.block_size))
        assert volume.shard_calls[0] == calls_before
        assert volume.unavailable_errors[0] == 3

    def test_healthy_io_flows_while_one_shard_is_down(self):
        volume, _, _ = build_sharded_volume(shards=3, num_cylinders=2)
        fill(volume)
        volume.crash_shard(2)
        size = volume.block_size
        healthy = [
            lba for lba in range(24) if volume.shard_of(lba)[0] != 2
        ]
        for lba in healthy:
            volume.write_block(lba, payload(lba + 100, size))
        for lba in healthy:
            data, _ = volume.read_block(lba)
            assert data == payload(lba + 100, size)

    def test_unavailable_carries_shard_and_cause(self):
        volume, _, _ = build_sharded_volume(shards=3, num_cylinders=2)
        fill(volume)
        volume.crash_shard(1)
        victim = next(
            lba for lba in range(24) if volume.shard_of(lba)[0] == 1
        )
        with pytest.raises(ShardUnavailable) as err:
            volume.read_block(victim)
        assert err.value.shard == 1
        assert "backoff" in str(err.value)


class TestHedgedReads:
    def hedging_volume(self, factor=16.0):
        # The slow onset sits past the monitor's 32-sample baseline so
        # "normal" is learned from genuinely normal operations.
        plan = FaultPlan(
            seed=5, slow_factor=factor, slow_after_ops=64,
            slow_duration_ops=4000,
        )
        return build_sharded_volume(
            shards=3, num_cylinders=2, fault_plans={1: plan}
        )

    def read_until_tripped(self, volume, rounds=60):
        limping = [
            lba for lba in range(24) if volume.shard_of(lba)[0] == 1
        ]
        for _ in range(rounds):
            for lba in limping:
                volume.read_block(lba)
            if volume.monitors[1].tripped:
                return True
        return volume.monitors[1].tripped

    def test_monitor_trips_and_reads_get_hedged(self):
        volume, _, _ = self.hedging_volume()
        fill(volume)
        assert self.read_until_tripped(volume)
        before = volume.hedged_reads[1]
        limping = [
            lba for lba in range(24) if volume.shard_of(lba)[0] == 1
        ]
        for lba in limping:
            volume.read_block(lba)
        assert volume.hedged_reads[1] > before

    def test_hedged_read_is_cheaper_than_unhedged(self):
        # 64x surplus dwarfs the monitor's hedge delay, so the cap binds.
        hedged_vol, _, _ = self.hedging_volume(factor=64.0)
        fill(hedged_vol)
        assert self.read_until_tripped(hedged_vol)
        lba = next(
            l for l in range(24) if hedged_vol.shard_of(l)[0] == 1
        )
        _, hedged_cost = hedged_vol.read_block(lba)

        plain_vol, _, _ = build_sharded_volume(
            shards=3, num_cylinders=2,
            fault_plans={1: FaultPlan(
                seed=5, slow_factor=64.0, slow_after_ops=64,
                slow_duration_ops=4000,
            )},
            hedge_reads=False,
        )
        fill(plain_vol)
        self.read_until_tripped(plain_vol)  # same op sequence, no trip use
        _, raw_cost = plain_vol.read_block(lba)
        # The hedge caps the fail-slow surplus at the monitor's delay;
        # the unhedged read pays the full 16x factor.
        assert hedged_cost.total < raw_cost.total

    def test_hedge_cap_is_restored_after_the_read(self):
        volume, devices, _ = self.hedging_volume()
        fill(volume)
        assert self.read_until_tripped(volume)
        layer = volume._fault_layers[1]
        lba = next(
            l for l in range(24) if volume.shard_of(l)[0] == 1
        )
        volume.read_block(lba)
        assert layer.hedge_cap is None

    def test_recovered_shard_relearns_its_baseline(self):
        volume, _, _ = self.hedging_volume()
        fill(volume)
        assert self.read_until_tripped(volume)
        volume.recover_shard(1)
        monitor = volume.monitors[1]
        assert not monitor.tripped
        assert monitor.baseline_p99 is None
        assert monitor.samples == 0


class TestBaselineCalibration:
    """A shard slow from op 0 froze an inflated baseline: slow looked
    normal, so the local 4x comparison could never fire.  Calibration
    against the sibling medians must still trip it."""

    def slow_from_birth_volume(self, factor=16.0):
        # slow_after_ops=1: degraded from (effectively) the first op,
        # so the whole 32-sample baseline pool is slow samples.
        plan = FaultPlan(
            seed=5, slow_factor=factor, slow_after_ops=1,
            slow_duration_ops=100000,
        )
        return build_sharded_volume(
            shards=3, num_cylinders=2, fault_plans={1: plan}
        )

    def drive(self, volume, rounds=40):
        for _ in range(rounds):
            for lba in range(24):
                try:
                    volume.read_block(lba)
                except ShardUnavailable:
                    pass

    def test_slow_from_op_zero_still_trips(self):
        volume, _, _ = self.slow_from_birth_volume()
        fill(volume)
        self.drive(volume)
        monitor = volume.monitors[1]
        # Every sample the monitor ever saw was degraded; without
        # cross-shard calibration its baseline is ~16x the siblings' and
        # the trip can never fire locally.
        assert monitor.baseline_p99 is not None
        assert monitor.tripped
        # The adopted baseline is the siblings' normal, so the hedge
        # delay is sized to healthy latencies, not the inflated ones.
        healthy = volume.monitors[0].baseline_p99
        assert monitor.baseline_p99 == pytest.approx(healthy, rel=2.0)

    def test_slow_from_birth_draws_hedged_reads(self):
        volume, _, _ = self.slow_from_birth_volume(factor=64.0)
        fill(volume)
        self.drive(volume)
        limping = [
            lba for lba in range(24) if volume.shard_of(lba)[0] == 1
        ]
        before = volume.hedged_reads[1]
        for lba in limping:
            volume.read_block(lba)
        assert volume.hedged_reads[1] > before

    def test_healthy_volume_never_miscalibrates(self):
        volume, _, _ = build_sharded_volume(shards=3, num_cylinders=2)
        fill(volume)
        self.drive(volume, rounds=10)
        for monitor in volume.monitors:
            assert monitor.baseline_p99 is not None
            assert monitor.calibrated
            assert not monitor.tripped
        assert sum(m.trips for m in volume.monitors) == 0

    def test_late_onset_family_is_untouched_by_calibration(self):
        # The existing fail-slow story: baseline learned while healthy,
        # onset later.  Calibration must not replace that sane baseline.
        plan = FaultPlan(
            seed=5, slow_factor=16.0, slow_after_ops=64,
            slow_duration_ops=4000,
        )
        volume, _, _ = build_sharded_volume(
            shards=3, num_cylinders=2, fault_plans={1: plan}
        )
        fill(volume)
        baseline_before = None
        for _ in range(60):
            for lba in range(24):
                volume.read_block(lba)
            monitor = volume.monitors[1]
            if monitor.calibrated and baseline_before is None:
                baseline_before = monitor.baseline_p99
        assert volume.monitors[1].tripped  # the normal trip path fired
        assert volume.monitors[1].baseline_p99 == baseline_before
